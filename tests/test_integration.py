"""Cross-module integration tests: the full paper pipeline.

These exercise the complete toolchain the way the paper's analysis did:
specify/compose -> generate -> (exchange via .aut) -> reduce -> model
check -> extract and narrate counterexamples.
"""

import dataclasses
import io

import pytest

from repro.analysis.explain import explain_trace
from repro.jackal import CONFIG_1, JackalModel, ProtocolVariant
from repro.jackal.actions import PROBE_LABELS, Labels
from repro.jackal.requirements import build_lts, formula_3_1, formula_4_write
from repro.lts.aut import read_aut, write_aut
from repro.lts.bitstate import bitstate_explore
from repro.lts.distributed import distributed_explore
from repro.lts.explore import explore
from repro.lts.reduction import minimize_branching, minimize_strong
from repro.mucalc.bes import bes_holds
from repro.mucalc.checker import holds
from repro.mucalc.parser import parse_formula


@pytest.fixture(scope="module")
def probe_lts():
    _m, lts = build_lts(CONFIG_1, ProtocolVariant.fixed(), probes=True)
    return lts


def test_aut_roundtrip_preserves_verdicts(probe_lts):
    back = read_aut(io.StringIO(write_aut(probe_lts)))
    f = formula_3_1()
    assert holds(back, f) == holds(probe_lts, f)
    assert back.n_states == probe_lts.n_states


def test_strong_reduction_preserves_formulas(probe_lts):
    reduced = minimize_strong(probe_lts)
    assert reduced.n_states <= probe_lts.n_states
    for text in (
        "[T*.c_home] F",
        "<T*.c_copy> T",
        "<T*.writeover(t0)> T",
    ):
        f = parse_formula(text)
        assert holds(reduced, f) == holds(probe_lts, f), text


def test_branching_reduction_preserves_visible_safety():
    cfg = dataclasses.replace(CONFIG_1, with_probes=False)
    lts = explore(JackalModel(cfg, ProtocolVariant.fixed()))
    hide = [
        l for l in lts.labels
        if not l.startswith(("write", "flush"))
    ]
    hidden = lts.hidden(hide)
    reduced = minimize_branching(hidden)
    f = parse_formula("<T*.writeover(t1)> T")
    assert holds(reduced, f) == holds(hidden, f) is True


def test_direct_checker_agrees_with_bes_on_protocol(probe_lts):
    # keep it small: strong-reduce first
    lts = minimize_strong(probe_lts)
    for text in ("[T*.c_home] F", "<T*.c_copy> T"):
        f = parse_formula(text)
        assert holds(lts, f) == bes_holds(lts, f)


def test_generation_strategies_agree():
    cfg = dataclasses.replace(CONFIG_1, with_probes=False)
    model = JackalModel(cfg, ProtocolVariant.fixed())
    exact = explore(model)
    _l, dstats = distributed_explore(model, n_workers=3, backend="inline")
    assert dstats.states == exact.n_states
    assert dstats.transitions == exact.n_transitions
    bres = bitstate_explore(model, table_bytes=1 << 18)
    assert bres.visited == exact.n_states  # ample table: no omissions


def test_requirement4_formula_on_raw_lts():
    cfg = dataclasses.replace(CONFIG_1, with_probes=False)
    lts = explore(JackalModel(cfg, ProtocolVariant.fixed()))
    assert holds(lts, formula_4_write(0))
    assert holds(lts, formula_4_write(1))


def test_probe_labels_only_in_probe_model(probe_lts):
    cfg = dataclasses.replace(CONFIG_1, with_probes=False)
    plain = explore(JackalModel(cfg, ProtocolVariant.fixed()))
    assert not set(plain.labels) & set(PROBE_LABELS)
    assert set(probe_lts.labels) & set(PROBE_LABELS)


def test_counterexample_pipeline_end_to_end():
    # buggy protocol -> find violation -> diagnose -> narrate
    from repro.jackal.requirements import check_requirement_3_2

    rep = check_requirement_3_2(CONFIG_1, ProtocolVariant.error2())
    assert not rep.holds
    story = explain_trace(rep.trace)
    assert len(story) == len(rep.trace)
    assert any("Sponmigrate" in s for s in story)


def test_thread_alphabet_completeness(probe_lts):
    # every thread-level label the requirements rely on is reachable
    for t in range(CONFIG_1.n_threads):
        for lab in (Labels.write(t), Labels.writeover(t),
                    Labels.flush(t), Labels.flushover(t)):
            assert probe_lts.has_label(lab), lab
