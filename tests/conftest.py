"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.lts.lts import LTS, TAU


class ChainSystem:
    """a-b-c chain with a branch; the standard tiny test system."""

    def initial_state(self):
        return 0

    def successors(self, s):
        table = {
            0: [("a", 1), ("b", 3)],
            1: [("b", 2)],
            2: [("c", 0)],
            3: [],
        }
        return table[s]


@pytest.fixture
def chain_system():
    return ChainSystem()


@pytest.fixture
def small_lts() -> LTS:
    """0 -a-> 1 -b-> 2 -c-> 0, plus 1 -d-> 3 (terminal)."""
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "b", 2)
    l.add_transition(2, "c", 0)
    l.add_transition(1, "d", 3)
    return l


@pytest.fixture
def tau_lts() -> LTS:
    """0 -tau-> 1 -a-> 2 ; 0 -a-> 2 (branching-bisim collapsible)."""
    l = LTS(0)
    l.add_transition(0, TAU, 1)
    l.add_transition(1, "a", 2)
    l.add_transition(0, "a", 2)
    return l


# -- hypothesis strategies --------------------------------------------------

LABELS = ["a", "b", "c", TAU]


@st.composite
def random_lts(draw, max_states: int = 6, max_transitions: int = 12) -> LTS:
    """A random small LTS (states reachable or not, any labels)."""
    n = draw(st.integers(min_value=1, max_value=max_states))
    m = draw(st.integers(min_value=0, max_value=max_transitions))
    l = LTS(0)
    l.ensure_states(n)
    for _ in range(m):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        lab = draw(st.sampled_from(LABELS))
        l.add_transition(src, lab, dst)
    return l


class LTSAsSystem:
    """Adapter: treat an explicit LTS as a TransitionSystem."""

    def __init__(self, lts: LTS):
        self.lts = lts

    def initial_state(self):
        return self.lts.initial

    def successors(self, s):
        return self.lts.successors(s)
