"""Tests for the formula parser."""

import pytest

from repro.errors import FormulaSyntaxError
from repro.mucalc.parser import parse_formula
from repro.mucalc.syntax import (
    ActLit,
    And,
    AnyAct,
    Box,
    Diamond,
    Ff,
    Mu,
    Not,
    NotAct,
    Nu,
    Or,
    RAct,
    RAlt,
    RSeq,
    RStar,
    Tt,
    Var,
)


def test_truth_values():
    assert parse_formula("T") == Tt()
    assert parse_formula("F") == Ff()


def test_variable():
    assert parse_formula("X") == Var("X")


def test_connectives():
    f = parse_formula("T /\\ F \\/ T")
    # /\ binds tighter than \/
    assert f == Or(And(Tt(), Ff()), Tt())


def test_parentheses():
    f = parse_formula("T /\\ (F \\/ T)")
    assert f == And(Tt(), Or(Ff(), Tt()))


def test_negation():
    assert parse_formula("~T") == Not(Tt())


def test_box_any():
    f = parse_formula("[T] F")
    assert f == Box(RAct(AnyAct()), Ff())


def test_paper_formula_3_1():
    f = parse_formula("[T*.c_home] F")
    assert f == Box(RSeq(RStar(RAct(AnyAct())), RAct(ActLit("c_home"))), Ff())


def test_paper_formula_3_2():
    f = parse_formula(
        "<T*> (<c_copy>T /\\ <lock_empty>T /\\ <homequeue_empty>T"
        " /\\ <remotequeue_empty>T)"
    )
    assert isinstance(f, Diamond)
    assert isinstance(f.reg, RStar)
    assert isinstance(f.inner, And)


def test_paper_formula_4():
    f = parse_formula("[T*.write(t0)] mu X. (<T>T /\\ [not writeover(t0)] X)")
    assert isinstance(f, Box)
    inner = f.inner
    assert inner == Mu(
        "X",
        And(
            Diamond(RAct(AnyAct()), Tt()),
            Box(RAct(NotAct(ActLit("writeover(t0)"))), Var("X")),
        ),
    )


def test_quoted_labels():
    f = parse_formula('<"c_copy">T')
    assert f == Diamond(RAct(ActLit("c_copy")), Tt())


def test_quoted_prefix_label():
    f = parse_formula('<"write(*">T')
    assert f == Diamond(RAct(ActLit("write(", prefix=True)), Tt())


def test_bare_prefix_label():
    f = parse_formula("<write(*)>T")
    assert f == Diamond(RAct(ActLit("write(", prefix=True)), Tt())


def test_label_with_args():
    f = parse_formula("<signal(t0,p1)>T")
    assert f == Diamond(RAct(ActLit("signal(t0,p1)")), Tt())


def test_regular_alternation_and_star():
    f = parse_formula("[(a|b)*.c] F")
    reg = f.reg
    assert reg == RSeq(RStar(RAlt(RAct(ActLit("a")), RAct(ActLit("b")))),
                       RAct(ActLit("c")))


def test_double_star():
    f = parse_formula("<a**>T")
    assert f == Diamond(RStar(RStar(RAct(ActLit("a")))), Tt())


def test_tilde_in_regular():
    f = parse_formula("[~a] F")
    assert f == Box(RAct(NotAct(ActLit("a"))), Ff())


def test_nu():
    f = parse_formula("nu X. [T] X")
    assert f == Nu("X", Box(RAct(AnyAct()), Var("X")))


def test_errors_have_positions():
    with pytest.raises(FormulaSyntaxError) as ei:
        parse_formula("[T*.a F")
    assert ei.value.position is not None


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "mu . T",
        "mu T. T",
        "[a>T",
        "<a]T",
        "T /\\",
        "T T",
        "not T",
        "[(a|b]F",
        "~(a*)",  # negation of a regular expression (in formula pos: parses ~ then (..) is formula... adjust below
    ],
)
def test_rejects_malformed(bad):
    with pytest.raises(FormulaSyntaxError):
        parse_formula(bad)


def test_negation_of_regex_rejected():
    with pytest.raises(FormulaSyntaxError, match="negation applies"):
        parse_formula("[~(a.b)] F")


def test_trailing_input_rejected():
    with pytest.raises(FormulaSyntaxError, match="trailing"):
        parse_formula("T F")


def test_roundtrip_via_str():
    texts = [
        "[T*.c_home]F",
        "mu X.(<T>T /\\ [not writeover(t0)]X)",
        "nu Y.([a]Y /\\ <b>T)",
    ]
    for t in texts:
        f = parse_formula(t)
        again = parse_formula(str(f))
        assert again == f
