"""Tests for witness/counterexample extraction."""

from hypothesis import given, settings

from repro.lts.lts import LTS
from repro.mucalc.checker import check, holds
from repro.mucalc.diagnostics import (
    compile_nfa,
    counterexample_box,
    witness_diamond,
)
from repro.mucalc.parser import parse_formula
from repro.mucalc.syntax import (
    ActLit,
    AnyAct,
    Ff,
    RAct,
    RAlt,
    RSeq,
    RStar,
    Tt,
)
from tests.conftest import random_lts


def ladder() -> LTS:
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "b", 2)
    l.add_transition(0, "x", 3)
    l.add_transition(3, "b", 2)
    l.add_transition(2, "bad", 4)
    return l


def test_counterexample_shortest():
    l = ladder()
    f = parse_formula("[T*.bad] F")
    t = counterexample_box(l, f.reg, f.inner)
    assert t is not None
    assert len(t) == 3
    assert t.labels[-1] == "bad"


def test_counterexample_none_when_holds():
    l = LTS(0)
    l.add_transition(0, "a", 1)
    f = parse_formula("[T*.bad] F")
    assert counterexample_box(l, f.reg, f.inner) is None


def test_witness_diamond():
    l = ladder()
    f = parse_formula("<T*.bad> T")
    t = witness_diamond(l, f.reg, f.inner)
    assert t.labels[-1] == "bad"
    assert len(t) == 3


def test_witness_empty_path():
    l = ladder()
    t = witness_diamond(l, RStar(RAct(AnyAct())), Tt())
    assert t.labels == ()


def test_witness_respects_regex():
    l = ladder()
    # path must be exactly x then b
    reg = RSeq(RAct(ActLit("x")), RAct(ActLit("b")))
    t = witness_diamond(l, reg, Tt())
    assert t.labels == ("x", "b")


def test_witness_alternation():
    l = ladder()
    reg = RSeq(RAlt(RAct(ActLit("a")), RAct(ActLit("x"))), RAct(ActLit("b")))
    t = witness_diamond(l, reg, Tt())
    assert t.labels in (("a", "b"), ("x", "b"))


def test_witness_none_when_unreachable():
    l = ladder()
    assert witness_diamond(l, RAct(ActLit("zzz")), Tt()) is None


def test_nfa_construction():
    nfa = compile_nfa(RStar(RAct(ActLit("a"))))
    assert nfa.n >= 2
    assert len(nfa.edges) == 1
    assert len(nfa.eps) == 4


@given(random_lts())
@settings(max_examples=40, deadline=None)
def test_witness_exists_iff_formula_holds(l):
    from repro.mucalc.syntax import Diamond

    reg = RSeq(RStar(RAct(AnyAct())), RAct(ActLit("a")))
    f = Diamond(reg, Tt())
    t = witness_diamond(l, reg, Tt())
    assert (t is not None) == holds(l, f)


@given(random_lts())
@settings(max_examples=40, deadline=None)
def test_witness_replays_through_regex(l):
    reg = RSeq(RStar(RAct(ActLit("a"))), RAct(ActLit("b")))
    t = witness_diamond(l, reg, Tt())
    if t is not None:
        # every label but the last must be 'a', last must be 'b'
        assert all(lab == "a" for lab in t.labels[:-1])
        assert t.labels[-1] == "b"
