"""Tests for formula syntax and static checks."""

import pytest

from repro.errors import FormulaSemanticsError
from repro.mucalc.syntax import (
    ActLit,
    And,
    AnyAct,
    AndAct,
    Box,
    Diamond,
    Ff,
    Mu,
    Not,
    NotAct,
    Nu,
    Or,
    OrAct,
    RAct,
    RSeq,
    RStar,
    Tt,
    Var,
    assert_alternation_free,
    free_variables,
    subformulas,
)


def test_action_predicates():
    assert AnyAct().matches("anything")
    assert ActLit("a").matches("a")
    assert not ActLit("a").matches("ab")
    assert ActLit("write(", prefix=True).matches("write(t0)")
    assert NotAct(ActLit("a")).matches("b")
    assert OrAct(ActLit("a"), ActLit("b")).matches("b")
    assert AndAct(AnyAct(), NotAct(ActLit("a"))).matches("b")
    assert not AndAct(AnyAct(), NotAct(ActLit("a"))).matches("a")


def test_action_predicate_str():
    assert str(AnyAct()) == "T"
    assert str(ActLit("a")) == '"a"'
    assert str(ActLit("w", prefix=True)) == '"w*"'
    assert "not" in str(NotAct(ActLit("a")))


def test_free_variables():
    f = Mu("X", Or(Var("X"), Diamond(RAct(AnyAct()), Var("Y"))))
    assert free_variables(f) == {"Y"}
    assert free_variables(Tt()) == frozenset()


def test_subformulas():
    f = And(Tt(), Or(Ff(), Var("X")))
    kinds = [type(g).__name__ for g in subformulas(f)]
    assert kinds == ["And", "Tt", "Or", "Ff", "Var"]


def test_alternation_free_accepts_nested_same_sign():
    f = Mu("X", Or(Var("X"), Mu("Y", Or(Var("Y"), Var("X")))))
    assert_alternation_free(f)


def test_alternation_free_accepts_independent_mixed():
    # a nu inside a mu is fine when it does not use the mu variable
    f = Mu("X", Or(Var("X"), Nu("Y", And(Var("Y"), Tt()))))
    assert_alternation_free(f)


def test_alternation_rejected():
    f = Nu("X", Mu("Y", Or(Var("X"), Var("Y"))))
    with pytest.raises(FormulaSemanticsError, match="alternating"):
        assert_alternation_free(f)


def test_alternation_rejected_through_intermediate():
    f = Mu("X", Nu("Y", Mu("Z", And(Var("X"), Var("Z")))))
    with pytest.raises(FormulaSemanticsError, match="alternating"):
        assert_alternation_free(f)


def test_unbound_variable_rejected():
    with pytest.raises(FormulaSemanticsError, match="unbound"):
        assert_alternation_free(Var("X"))


def test_negated_variable_rejected():
    f = Mu("X", Not(Var("X")))
    with pytest.raises(FormulaSemanticsError):
        assert_alternation_free(f)


def test_negation_over_closed_ok():
    f = Mu("X", Or(Not(Diamond(RAct(ActLit("a")), Tt())), Var("X")))
    assert_alternation_free(f)


def test_str_rendering():
    f = Box(RSeq(RStar(RAct(AnyAct())), RAct(ActLit("c_home"))), Ff())
    assert str(f) == '[T*."c_home"]F'
    g = Mu("X", And(Diamond(RAct(AnyAct()), Tt()), Var("X")))
    assert str(g) == "mu X.(<T>T /\\ X)"
