"""Tests for the boolean equation system backend."""

import pytest

from repro.errors import FormulaSemanticsError
from repro.lts.lts import LTS
from repro.mucalc.bes import BES, Block, bes_holds, formula_to_bes, solve_bes
from repro.mucalc.parser import parse_formula
from repro.mucalc.syntax import Diamond, Not, RAct, ActLit, Tt


def ring() -> LTS:
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "b", 2)
    l.add_transition(2, "c", 0)
    l.add_transition(1, "d", 3)
    return l


def test_simple_diamond():
    l = ring()
    bes = formula_to_bes(l, parse_formula("<d> T"))
    vals = solve_bes(bes)
    answers = [vals[v] for v in bes.root_of_state]
    assert answers == [False, True, False, False]


def test_safety_formula():
    l = ring()
    assert not bes_holds(l, parse_formula("[T*.d] F"))
    assert bes_holds(l, parse_formula("[T*.z] F"))


def test_inevitability():
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "b", 2)
    assert bes_holds(l, parse_formula("mu X. (<T>T /\\ [not b] X)"))
    assert not bes_holds(ring(), parse_formula("mu X. (<T>T /\\ [not d] X)"))


def test_nu_blocks_default_true():
    l = LTS(0)
    l.add_transition(0, "a", 0)
    assert bes_holds(l, parse_formula("nu X. <a> X"))
    assert not bes_holds(l, parse_formula("mu X. <a> X"))


def test_negation_rejected():
    l = ring()
    with pytest.raises(FormulaSemanticsError, match="negation"):
        formula_to_bes(l, Not(Diamond(RAct(ActLit("a")), Tt())))


def test_blocks_structure():
    l = ring()
    bes = formula_to_bes(l, parse_formula("[T*.d] F /\\ <T*.d> T"))
    signs = [b.sign for b in bes.blocks]
    assert "mu" in signs and "nu" in signs


def test_owner_lookup():
    l = ring()
    bes = formula_to_bes(l, parse_formula("<d> T"))
    blk = bes.owner(bes.root)
    assert bes.root in blk.eqs
    with pytest.raises(KeyError):
        bes.owner(10**9)


def test_solve_empty_bes():
    assert solve_bes(BES(blocks=[Block("mu")], n_vars=0)) == []


def test_shadowed_variables():
    # outer and inner fixpoint share the name X; binding must restore
    l = ring()
    f = parse_formula("mu X. (<d>T \\/ (mu X. (<b>T \\/ <T>X)) \\/ <a>X)")
    from repro.mucalc.checker import holds

    assert bes_holds(l, f) == holds(l, f)
