"""Tests for the model checker semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormulaSemanticsError
from repro.lts.lts import LTS
from repro.mucalc.checker import check, expand_regular, holds, satisfying_states
from repro.mucalc.parser import parse_formula
from repro.mucalc.syntax import (
    ActLit,
    And,
    AnyAct,
    Box,
    Diamond,
    Ff,
    Mu,
    Not,
    Nu,
    Or,
    RAct,
    RAlt,
    RSeq,
    RStar,
    Tt,
    Var,
)
from tests.conftest import random_lts


def ring() -> LTS:
    """0 -a-> 1 -b-> 2 -c-> 0 with 1 -d-> 3 (terminal)."""
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "b", 2)
    l.add_transition(2, "c", 0)
    l.add_transition(1, "d", 3)
    return l


def test_truth_and_falsity():
    l = ring()
    assert check(l, Tt()).all()
    assert not check(l, Ff()).any()


def test_diamond_single_step():
    l = ring()
    v = check(l, Diamond(RAct(ActLit("b")), Tt()))
    assert v.tolist() == [False, True, False, False]


def test_box_single_step_vacuous_on_terminal():
    l = ring()
    v = check(l, Box(RAct(ActLit("z")), Ff()))
    assert v.all()  # no z-transitions anywhere: vacuously true


def test_box_violated():
    l = ring()
    v = check(l, Box(RAct(ActLit("d")), Ff()))
    assert v.tolist() == [True, False, True, True]


def test_reachability_diamond_star():
    l = ring()
    v = check(l, Diamond(RSeq(RStar(RAct(AnyAct())), RAct(ActLit("d"))), Tt()))
    # d reachable from 0,1,2 (cycle) but not from 3
    assert v.tolist() == [True, True, True, False]


def test_safety_box_star():
    l = ring()
    f = parse_formula("[T*.d] F")
    assert not holds(l, f)
    l2 = LTS(0)
    l2.add_transition(0, "a", 1)
    assert holds(l2, parse_formula("[T*.d] F"))


def test_inevitability_true():
    # 0 -a-> 1 -b-> 2 (all roads lead through b)
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "b", 2)
    f = parse_formula("mu X. (<T>T /\\ [not b] X)")
    assert holds(l, f)


def test_inevitability_false_on_cycle():
    f = parse_formula("mu X. (<T>T /\\ [not d] X)")
    assert not holds(ring(), f)  # can cycle a-b-c forever


def test_inevitability_false_on_terminal_escape():
    # 0 -a-> 1 (terminal), 0 -b-> 2 -goal-> 3
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(0, "b", 2)
    l.add_transition(2, "goal", 3)
    f = parse_formula("mu X. (<T>T /\\ [not goal] X)")
    assert not holds(l, f)


def test_nu_safety_invariant():
    l = ring()
    # invariant: always some move OR we are state 3
    f = Nu("X", And(Or(Diamond(RAct(AnyAct()), Tt()), Not(Diamond(RAct(AnyAct()), Tt()))), Box(RAct(AnyAct()), Var("X"))))
    assert holds(l, f)  # trivially true invariant


def test_nu_diamond_cycle_detection():
    # nu X. <a> X holds exactly on states with an infinite a-path
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "a", 0)
    l.add_transition(2, "a", 0)
    l.ensure_states(4)  # 3 has no moves
    v = check(l, Nu("X", Diamond(RAct(ActLit("a")), Var("X"))))
    assert v.tolist() == [True, True, True, False]


def test_regular_alternative():
    l = ring()
    v = check(l, Diamond(RAlt(RAct(ActLit("a")), RAct(ActLit("c"))), Tt()))
    assert v.tolist() == [True, False, True, False]


def test_box_alternative_is_conjunction():
    l = ring()
    f = Box(RAlt(RAct(ActLit("a")), RAct(ActLit("d"))), Ff())
    v = check(l, f)
    assert v.tolist() == [False, False, True, True]


def test_expand_regular_structure():
    f = Box(RStar(RAct(AnyAct())), Ff())
    g = expand_regular(f)
    assert isinstance(g, Nu)
    f2 = Diamond(RStar(RAct(AnyAct())), Tt())
    assert isinstance(expand_regular(f2), Mu)


def test_satisfying_states():
    l = ring()
    assert satisfying_states(l, Diamond(RAct(ActLit("d")), Tt())) == [1]


def test_unexpanded_modality_rejected():
    from repro.mucalc.checker import _Context, _Evaluator

    l = ring()
    ctx = _Context(l)
    with pytest.raises(FormulaSemanticsError):
        _Evaluator(ctx).eval(Box(RStar(RAct(AnyAct())), Ff()), {})


def test_kleene_fallback_matches_fast_path():
    # force the fallback by using the variable twice
    l = ring()
    fast = check(l, Mu("X", Or(Diamond(RAct(ActLit("d")), Tt()),
                               Diamond(RAct(AnyAct()), Var("X")))))
    slow = check(l, Mu("X", Or(Diamond(RAct(ActLit("d")), Tt()),
                               Or(Diamond(RAct(AnyAct()), Var("X")),
                                  Diamond(RAct(ActLit("a")), Var("X"))))))
    assert np.array_equal(fast, slow)


def test_negation_of_closed():
    l = ring()
    v = check(l, Not(Diamond(RAct(ActLit("d")), Tt())))
    assert v.tolist() == [True, False, True, True]


# -- property-based: duality and backend agreement -------------------------


@st.composite
def closed_formula(draw, depth=3):
    """Random closed negation-free formula over labels a/b/c/tau."""
    labels = ["a", "b", "c", "tau"]
    if depth == 0:
        return draw(st.sampled_from([Tt(), Ff(),
                                     Diamond(RAct(ActLit(draw(st.sampled_from(labels)))), Tt()),
                                     Box(RAct(ActLit(draw(st.sampled_from(labels)))), Ff())]))
    kind = draw(st.sampled_from(["and", "or", "dia", "box", "mu", "nu", "leaf"]))
    if kind == "leaf":
        return draw(closed_formula(depth=0))
    if kind in ("and", "or"):
        l = draw(closed_formula(depth=depth - 1))
        r = draw(closed_formula(depth=depth - 1))
        return And(l, r) if kind == "and" else Or(l, r)
    if kind in ("dia", "box"):
        lab = draw(st.sampled_from(labels + ["*any*"]))
        pred = AnyAct() if lab == "*any*" else ActLit(lab)
        reg = draw(st.sampled_from([RAct(pred), RStar(RAct(pred)),
                                    RSeq(RAct(AnyAct()), RAct(pred))]))
        inner = draw(closed_formula(depth=depth - 1))
        return Diamond(reg, inner) if kind == "dia" else Box(reg, inner)
    # fixpoints: single-variable canonical shapes
    inner = draw(closed_formula(depth=depth - 1))
    lab = draw(st.sampled_from(labels))
    if kind == "mu":
        return Mu("Z", Or(inner, Diamond(RAct(ActLit(lab)), Var("Z"))))
    return Nu("Z", And(inner, Box(RAct(ActLit(lab)), Var("Z"))))


@given(random_lts(), closed_formula())
@settings(max_examples=60, deadline=None)
def test_checker_agrees_with_bes_backend(l, f):
    from repro.mucalc.bes import bes_holds

    r = l.restricted_to_reachable()
    if r.n_states == 0:
        return
    assert holds(r, f) == bes_holds(r, f)


@given(random_lts())
@settings(max_examples=60, deadline=None)
def test_box_diamond_duality(l):
    f_box = Box(RAct(ActLit("a")), Diamond(RAct(AnyAct()), Tt()))
    f_dual = Not(Diamond(RAct(ActLit("a")), Not(Diamond(RAct(AnyAct()), Tt()))))
    assert np.array_equal(check(l, f_box), check(l, f_dual))


@given(random_lts())
@settings(max_examples=60, deadline=None)
def test_star_unfolding(l):
    # <a*>phi == phi \/ <a><a*>phi
    phi = Diamond(RAct(ActLit("b")), Tt())
    star = Diamond(RStar(RAct(ActLit("a"))), phi)
    unfolded = Or(phi, Diamond(RAct(ActLit("a")), star))
    assert np.array_equal(check(l, star), check(l, unfolded))


def test_check_many_matches_holds():
    from repro.mucalc.checker import check_many

    l = ring()
    formulas = [
        parse_formula("[T*.d] F"),
        parse_formula("<T*.d> T"),
        parse_formula("mu X. (<T>T /\\ [not d] X)"),
        parse_formula("nu Y. ([T] Y /\\ T)"),
    ]
    assert check_many(l, formulas) == [holds(l, f) for f in formulas]


def test_check_many_reuses_context():
    from repro.mucalc.checker import check_many

    l = ring()
    # duplicate formulas exercise the memo path
    f = parse_formula("<T*.d> T")
    assert check_many(l, [f, f, f]) == [True, True, True]


def test_nu_diamond_fast_path():
    # nu X. a \/ (b /\ <p>X): complement-based solver
    l = LTS(0)
    l.add_transition(0, "p", 1)
    l.add_transition(1, "p", 0)
    l.add_transition(2, "p", 3)
    l.ensure_states(4)
    # states with an infinite p-path: 0 and 1
    f = Nu("X", Diamond(RAct(ActLit("p")), Var("X")))
    assert check(l, f).tolist() == [True, True, False, False]


def test_nu_box_fast_path():
    # nu X. <goal>T \/ [p]X — safety-ish mixed form exercising the dual
    l = LTS(0)
    l.add_transition(0, "p", 1)
    l.add_transition(1, "goal", 2)
    l.add_transition(2, "p", 2)
    f = Nu("X", Or(Diamond(RAct(ActLit("goal")), Tt()),
                   Box(RAct(ActLit("p")), Var("X"))))
    v = check(l, f)
    # greatest fixpoint: state 2 loops via p forever (box holds along
    # the loop), state 1 can do goal, state 0's only p-succ is 1
    assert v.tolist() == [True, True, True]


def test_fast_path_matches_kleene_for_nu():
    import numpy as np

    l = ring()
    # single-occurrence form (fast path)
    fast = check(l, Nu("X", And(Diamond(RAct(AnyAct()), Tt()),
                                Box(RAct(ActLit("a")), Var("X")))))
    # same formula with a redundant second occurrence (Kleene fallback)
    slow = check(l, Nu("X", And(Diamond(RAct(AnyAct()), Tt()),
                                And(Box(RAct(ActLit("a")), Var("X")),
                                    Box(RAct(ActLit("a")), Var("X"))))))
    assert np.array_equal(fast, slow)


def test_deeply_nested_closed_fixpoints_memoised():
    l = ring()
    inner = Diamond(RSeq(RStar(RAct(AnyAct())), RAct(ActLit("d"))), Tt())
    f = Box(RStar(RAct(AnyAct())), Or(inner, Not(inner)))
    assert holds(l, f)  # tautology, but exercises memo + nesting
