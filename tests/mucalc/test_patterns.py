"""Tests for the formula pattern library."""

from repro.lts.lts import LTS
from repro.mucalc.checker import holds
from repro.mucalc.parser import parse_formula
from repro.mucalc.patterns import (
    always_possible,
    eventually_reachable,
    exclusion,
    fair_responds,
    inevitably,
    never,
    responds,
)


def protocolish() -> LTS:
    """0 -req-> 1 -grant-> 2 -work-> 3 -release-> 0."""
    l = LTS(0)
    l.add_transition(0, "req", 1)
    l.add_transition(1, "grant", 2)
    l.add_transition(2, "work", 3)
    l.add_transition(3, "release", 0)
    return l


def test_never():
    l = protocolish()
    assert holds(l, never("explode"))
    assert not holds(l, never("work"))


def test_never_matches_requirement_3_1_shape():
    from repro.jackal.requirements import formula_3_1

    assert never("c_home") == formula_3_1()


def test_eventually_reachable():
    l = protocolish()
    assert holds(l, eventually_reachable("release"))
    assert not holds(l, eventually_reachable("explode"))


def test_inevitably_on_cycle_false():
    # the loop never forces 'work' from state 0? it does: single path
    l = protocolish()
    assert holds(l, inevitably("work"))
    # with an escape branch, inevitability fails
    l.add_transition(0, "skip", 4)
    assert not holds(l, inevitably("work"))


def test_responds():
    l = protocolish()
    assert holds(l, responds("req", "grant"))
    assert holds(l, responds("req", "release"))


def test_responds_matches_requirement_4():
    from repro.jackal.requirements import formula_4_write
    from repro.jackal.actions import Labels

    assert responds(Labels.write(0), Labels.writeover(0)) == formula_4_write(0)


def test_fair_responds():
    # add an unfair self-loop: exact responds fails, fair holds
    l = protocolish()
    l.add_transition(1, "stutter", 1)
    assert not holds(l, responds("req", "grant"))
    assert holds(l, fair_responds("req", "grant"))


def test_fair_responds_matches_requirement_4_fair():
    from repro.jackal.requirements import formula_4_write
    from repro.jackal.actions import Labels

    assert (
        fair_responds(Labels.write(1), Labels.writeover(1))
        == formula_4_write(1, fair=True)
    )


def test_exclusion():
    l = protocolish()
    # between grant and release, no second grant
    assert holds(l, exclusion("grant", "release", "grant"))
    # but 'work' does occur between grant and release
    assert not holds(l, exclusion("grant", "release", "work"))


def test_always_possible():
    l = protocolish()
    assert holds(l, always_possible("req"))
    l.add_transition(2, "escape", 4)  # terminal state 4
    assert not holds(l, always_possible("req"))


def test_patterns_equal_parsed_text():
    assert never("a") == parse_formula("[T*.a] F")
    assert eventually_reachable("a") == parse_formula("<T*.a> T")
    assert responds("a", "b") == parse_formula(
        "[T*.a] mu X. (<T>T /\\ [not b] X)"
    )
