"""Tests for on-the-fly (LTS-free) checking."""

import dataclasses

import pytest

from repro.errors import ExplorationLimitError
from repro.jackal import CONFIG_1, CONFIG_2, JackalModel, ProtocolVariant
from repro.mucalc.onthefly import check_never, check_reachable, find_path
from repro.mucalc.parser import parse_formula
from repro.mucalc.syntax import ActLit, AnyAct, RAct, RSeq, RStar

T_STAR = RStar(RAct(AnyAct()))


def after(label: str):
    return RSeq(T_STAR, RAct(ActLit(label)))


class Chain:
    def initial_state(self):
        return 0

    def successors(self, s):
        if s < 3:
            return [("step", s + 1)]
        return [("goal", 4)] if s == 3 else []


def test_find_path_simple():
    t = find_path(Chain(), after("goal"))
    assert t.labels == ("step", "step", "step", "goal")


def test_find_path_with_state_goal():
    t = find_path(Chain(), T_STAR, state_goal=lambda s: s == 2)
    assert len(t) == 2


def test_find_path_empty_match():
    t = find_path(Chain(), T_STAR)
    assert t.labels == ()


def test_find_path_none():
    assert find_path(Chain(), after("missing")) is None


def test_max_states_limit():
    class Infinite:
        def initial_state(self):
            return 0

        def successors(self, s):
            return [("tick", s + 1)]

    with pytest.raises(ExplorationLimitError):
        find_path(Infinite(), after("never"), max_states=100)


def test_check_never_and_reachable():
    holds, witness = check_never(Chain(), after("goal"))
    assert not holds and witness is not None
    holds, witness = check_never(Chain(), after("missing"))
    assert holds and witness is None
    ok, w = check_reachable(Chain(), after("goal"))
    assert ok and w.labels[-1] == "goal"


class TestOnProtocol:
    def test_requirement_3_1_on_the_fly(self):
        # [T*.c_home] F without building the LTS
        model = JackalModel(CONFIG_1, ProtocolVariant.fixed())
        holds, witness = check_never(model, after("c_home"))
        assert holds and witness is None

    def test_error1_found_early(self):
        # the buggy path is reachable; on-the-fly search returns the
        # shortest witness without a full exploration
        cfg = dataclasses.replace(CONFIG_1, rounds=None)
        model = JackalModel(cfg, ProtocolVariant.error1())
        ok, witness = check_reachable(model, after("stale_remote_wait(t0)"))
        assert ok
        assert witness.labels[-1] == "stale_remote_wait(t0)"
        # replayable on the model
        from repro.lts.trace import replay

        replay(model, witness.labels)

    def test_agrees_with_offline_checker(self):
        from repro.jackal.requirements import build_lts
        from repro.mucalc.checker import holds as lts_holds

        model, lts = build_lts(
            CONFIG_2, ProtocolVariant.error2(), probes=True
        )
        f = parse_formula("<T*.c_copy> T")
        on_the_fly, _w = check_reachable(model, after("c_copy"))
        assert on_the_fly == lts_holds(lts, f)
