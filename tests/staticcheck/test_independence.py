"""The static independence analysis: footprints, commutation, tables."""

from repro.jackal.params import CONFIG_1, CONFIG_2
from repro.staticcheck.independence import (
    TOP,
    ample_table,
    is_safe,
    is_visible,
    label_footprint,
    may_commute,
    parse_label,
)


def test_parse_label_extracts_indices():
    assert parse_label("send_datareq(t0,p0,p1)") == (
        "send_datareq", [0], [0, 1]
    )
    assert parse_label("c_home") == ("c_home", [], [])
    assert parse_label("assertion_violation(rc_ge_zero)") == (
        "assertion_violation", [], []
    )


def test_queue_takes_on_distinct_processors_commute():
    a = label_footprint("lock_remotequeue(p0)", CONFIG_1)
    b = label_footprint("lock_homequeue(p1)", CONFIG_1)
    assert may_commute(a, b)
    # ... but on the same processor the remote take and signal conflict
    # (both touch rqa[p0])
    c = label_footprint("signal(t0,p0)", CONFIG_1)
    assert not may_commute(a, c)


def test_remote_take_is_independent_of_home_take_same_processor():
    # the migpend predicate atom makes this pair commute: the remote
    # take moves rq -> rqa preserving "a migration is pending", which
    # is all the home take reads of the remote side
    a = label_footprint("lock_remotequeue(p0)", CONFIG_1)
    b = label_footprint("lock_homequeue(p0)", CONFIG_1)
    assert may_commute(a, b)


def test_migration_senders_conflict_with_home_take():
    # send_dataret_mig flips migpend[d], which lock_homequeue(d) reads
    a = label_footprint("send_dataret_mig(p0,p1)", CONFIG_1)
    b = label_footprint("lock_homequeue(p1)", CONFIG_1)
    assert not may_commute(a, b)


def test_writes_on_different_threads_commute_across_processors():
    a = label_footprint("write(t0)", CONFIG_1)
    b = label_footprint("write(t1)", CONFIG_1)
    # t0 lives on p0, t1 on p1 in CONFIG_1: disjoint atoms
    assert may_commute(a, b)


def test_unknown_labels_fail_safe():
    fp = label_footprint("some_new_rule(t0,p0)", CONFIG_1)
    assert fp == (TOP, TOP)
    assert not may_commute(fp, label_footprint("c_home", CONFIG_1))
    assert not may_commute(fp, fp)


def test_probes_are_read_only_and_visible():
    reads, writes = label_footprint("c_home", CONFIG_1)
    assert writes == frozenset()
    assert reads
    assert is_visible("c_home") and is_visible("homequeue_empty")
    assert not is_safe("c_home")


def test_safe_classes_are_the_queue_takes():
    assert is_safe("lock_remotequeue(p1)")
    assert is_safe("lock_homequeue(p0)")
    assert not is_safe("recv_sponmigrate(p0)")
    assert not is_safe("flush_recv(p0)")


def test_ample_table_is_deterministic_and_total():
    t1 = ample_table(CONFIG_2)
    t2 = ample_table(CONFIG_2)
    assert t1 == t2
    # every label the fixed and error1 vocabularies contain is covered
    from dataclasses import replace

    from repro.jackal.model import JackalModel
    from repro.jackal.params import ProtocolVariant
    from repro.staticcheck.labelcheck import model_labels

    for variant in (ProtocolVariant.fixed(), ProtocolVariant.error1()):
        model = JackalModel(replace(CONFIG_2, with_probes=True), variant)
        assert model_labels(model) <= set(t1["labels"])
    # and none of them is the fail-safe TOP footprint
    for label, row in t1["labels"].items():
        if not label.startswith("assertion_violation"):
            assert row["reads"] != ["*"], label
