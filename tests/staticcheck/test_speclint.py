"""Unit tests for the specification linter (JKL1xx)."""

from repro.algebra import (
    Act,
    Alt,
    Call,
    Comm,
    Cond,
    Delta,
    DVar,
    Encap,
    FiniteSort,
    Fn,
    Hide,
    Par,
    ProcessDef,
    Rename,
    Seq,
    Spec,
    SpecSystem,
    Sum,
)
from repro.jackal.mucrl_spec import (
    locker_system,
    region_system,
    thread_write_remote_spec,
)
from repro.staticcheck import lint_spec, lint_system

BIT = FiniteSort("Bit", (0, 1))


def _rules(findings):
    return [f.rule for f in findings]


# -- the shipped specifications are clean ----------------------------------


def test_shipped_systems_are_clean():
    assert lint_system(region_system(), "region") == []
    assert lint_system(locker_system(), "locker") == []
    assert lint_spec(thread_write_remote_spec(), "thread") == []


# -- JKL101: guard satisfiability ------------------------------------------


def test_unsatisfiable_guard_over_sum_variable():
    eq = Fn("eq", lambda x, y: x == y, DVar("b"), 2)  # b ranges over 0/1
    spec = Spec(defs=[ProcessDef(
        "P", (), Sum("b", BIT, Cond(Act("a"), eq, Act("other")))
    )])
    findings = lint_spec(spec)
    assert _rules(findings) == ["JKL101"]
    assert "unsatisfiable" in findings[0].message


def test_tautological_guard_with_live_else_branch():
    eq = Fn("eq", lambda x, y: x == y, DVar("b"), DVar("b"))
    spec = Spec(defs=[ProcessDef(
        "P", (), Sum("b", BIT, Cond(Act("a"), eq, Act("dead")))
    )])
    findings = lint_spec(spec)
    assert _rules(findings) == ["JKL101"]
    assert "tautology" in findings[0].message


def test_tautological_guard_with_delta_else_is_fine():
    # `a <| true |> delta` is the idiomatic guarded action, not a bug
    eq = Fn("eq", lambda x, y: x == y, DVar("b"), DVar("b"))
    spec = Spec(defs=[ProcessDef(
        "P", (), Sum("b", BIT, Cond(Act("a"), eq))
    )])
    assert lint_spec(spec) == []


def test_guard_over_process_parameter_is_skipped():
    # the linter cannot enumerate parameter domains; no false positive
    eq = Fn("eq", lambda x, y: x == y, DVar("p"), 99)
    spec = Spec(defs=[ProcessDef(
        "P", ("p",), Cond(Act("a"), eq, Act("b"))
    )])
    assert lint_spec(spec) == []


# -- JKL102: dead summands --------------------------------------------------


def test_delta_alternative_is_flagged():
    spec = Spec(defs=[ProcessDef("P", (), Alt(Act("a"), Delta()))])
    findings = lint_spec(spec)
    assert _rules(findings) == ["JKL102"]


def test_sequence_after_delta_is_flagged():
    spec = Spec(defs=[ProcessDef("P", (), Seq(Delta(), Act("a")))])
    findings = lint_spec(spec)
    assert _rules(findings) == ["JKL102"]
    assert "never execute" in findings[0].message


# -- JKL103: unused sum variables ------------------------------------------


def test_unused_sum_variable():
    spec = Spec(defs=[ProcessDef("P", (), Sum("b", BIT, Act("a")))])
    findings = lint_spec(spec)
    assert _rules(findings) == ["JKL103"]
    assert "2 times" in findings[0].message


# -- JKL104/JKL105: comm and sync sets over the closed system ---------------


def _toy_system(comm, encap_names):
    spec = Spec(defs=[
        ProcessDef("S", (), Seq(Act("s_msg"), Call("S"))),
        ProcessDef("R", (), Seq(Act("r_msg"), Call("R"))),
    ])
    init = Encap(encap_names, Par(Call("S"), Call("R"), comm))
    return SpecSystem(spec, init)


def test_comm_referencing_unperformed_action():
    comm = Comm(("s_msg", "r_typo", "c_msg"))
    findings = lint_system(_toy_system(comm, ["s_msg"]), "toy")
    assert "JKL104" in _rules(findings)
    (f,) = [f for f in findings if f.rule == "JKL104"]
    assert "r_typo" in f.message


def test_encap_referencing_unperformed_action():
    comm = Comm(("s_msg", "r_msg", "c_msg"))
    findings = lint_system(
        _toy_system(comm, ["s_msg", "r_msg", "s_ghost"]), "toy"
    )
    assert _rules(findings) == ["JKL105"]
    assert "s_ghost" in findings[0].message


def test_encap_of_comm_result_is_fine():
    # encapsulating the *result* of a communication is legitimate
    comm = Comm(("s_msg", "r_msg", "c_msg"))
    findings = lint_system(
        _toy_system(comm, ["s_msg", "r_msg", "c_msg"]), "toy"
    )
    assert findings == []


def test_hide_set_is_checked_and_rename_respected():
    spec = Spec(defs=[ProcessDef("P", (), Seq(Act("a"), Call("P")))])
    # rename a -> b, then hide b: fine; hiding c: typo
    init = Hide(["b", "c"], Rename({"a": "b"}, Call("P")))
    findings = lint_system(SpecSystem(spec, init), "toy")
    assert _rules(findings) == ["JKL105"]
    assert "'c'" in findings[0].message


# -- JKL106: declared but never forced communications ------------------------


def test_comm_pair_never_forced_fires_jkl106():
    from repro.staticcheck import Severity

    comm = Comm(("s_msg", "r_msg", "c_msg"))
    findings = lint_system(_toy_system(comm, []), "toy")
    assert _rules(findings) == ["JKL106"]
    (finding,) = findings
    assert finding.severity == Severity.WARNING
    assert "never forced" in finding.message


def test_encapsulating_only_the_result_still_fires_jkl106():
    # blocking c_msg does not stop s_msg/r_msg from stepping alone,
    # so the synchronisation is still not forced
    comm = Comm(("s_msg", "r_msg", "c_msg"))
    findings = lint_system(_toy_system(comm, ["c_msg"]), "toy")
    assert "JKL106" in _rules(findings)


def test_encapsulating_one_operand_silences_jkl106():
    comm = Comm(("s_msg", "r_msg", "c_msg"))
    findings = lint_system(_toy_system(comm, ["s_msg"]), "toy")
    assert "JKL106" not in _rules(findings)
