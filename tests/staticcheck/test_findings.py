"""The lint report contract: schema version, ordering, fingerprint."""

import json

from repro.jackal.params import CONFIG_1, ProtocolVariant
from repro.staticcheck import run_lint
from repro.staticcheck.findings import (
    LINT_SCHEMA_VERSION,
    Finding,
    LintReport,
    Severity,
)


def test_json_report_carries_schema_version_and_fingerprint():
    report = run_lint(CONFIG_1, ProtocolVariant.fixed())
    data = json.loads(report.render_json())
    assert data["schema_version"] == LINT_SCHEMA_VERSION
    assert LINT_SCHEMA_VERSION >= 2
    # 64 hex chars: the key reduction certificates are issued under
    assert isinstance(data["fingerprint"], str)
    assert len(data["fingerprint"]) == 64


def test_finding_order_is_deterministic():
    """Findings serialize sorted by (rule, location, message), no
    matter the order the analysis passes emitted them in."""
    a = Finding("JKL202", Severity.WARNING, "b-loc", "m")
    b = Finding("JKL101", Severity.ERROR, "z-loc", "m")
    c = Finding("JKL101", Severity.ERROR, "a-loc", "m")
    for order in ([a, b, c], [c, a, b], [b, c, a]):
        report = LintReport(findings=list(order))
        rules = [
            (f["rule"], f["location"])
            for f in report.as_dict()["findings"]
        ]
        assert rules == [
            ("JKL101", "a-loc"),
            ("JKL101", "z-loc"),
            ("JKL202", "b-loc"),
        ]


def test_same_spec_same_fingerprint_across_runs():
    r1 = run_lint(CONFIG_1, ProtocolVariant.fixed())
    r2 = run_lint(CONFIG_1, ProtocolVariant.fixed())
    assert r1.fingerprint == r2.fingerprint
    r3 = run_lint(CONFIG_1, ProtocolVariant.error1())
    assert r3.fingerprint != r1.fingerprint
