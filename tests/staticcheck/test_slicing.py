"""Cone-of-influence slicing: the derived slice, its refusals, and the
projection laws the certified reduction relies on.

The property tests sample real reachable states (bounded BFS, never the
exploration machinery) and check, under random admissible permutations,
exactly the algebra :mod:`repro.lts.certreduce` depends on: projection
commutes with the group action, only the dropped fields change, and the
sliced encoding is the encoding of the projection.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import ModelError
from repro.jackal.codec import PROJECTABLE_FIELDS
from repro.jackal.model import JackalModel
from repro.jackal.params import CONFIG_1, CONFIG_2, ProtocolVariant
from repro.staticcheck.slicing import (
    RSTATE_FIELDS,
    UNIVERSE,
    cone_of_influence,
    selftest_findings,
    slices_section,
    verify_slice,
)
from repro.staticcheck.symmetry import _sample_states, admissible_group

FIXED = ProtocolVariant.fixed()


def _model(config):
    return JackalModel(config, FIXED)


# -- the derived slice -------------------------------------------------------


@pytest.mark.parametrize("config", [CONFIG_1, CONFIG_2], ids=["c1", "c2"])
def test_slice_is_exactly_the_rstate_family(config):
    section, findings = slices_section(config)
    assert findings == []
    assert section is not None
    assert frozenset(section["common_dropped"]) == RSTATE_FIELDS
    assert RSTATE_FIELDS <= PROJECTABLE_FIELDS


def test_cone_partitions_the_universe():
    kept, dropped = cone_of_influence(CONFIG_1)
    assert kept | dropped == frozenset(UNIVERSE)
    assert not kept & dropped
    assert dropped == RSTATE_FIELDS


def test_verify_slice_refuses_observed_fields():
    # dropping a field every guard reads must be a JKL403 refusal
    findings = verify_slice(CONFIG_1, RSTATE_FIELDS | {"thr.phase"})
    assert findings
    assert {f.rule for f in findings} == {"JKL403"}
    assert all(f.severity.name == "ERROR" for f in findings)
    assert any(f.data for f in findings)


def test_verify_slice_refuses_unknown_fields():
    findings = verify_slice(CONFIG_1, {"no.such.field"})
    assert {f.rule for f in findings} == {"JKL403"}


def test_congruence_selftest_passes_on_the_shipped_model():
    assert selftest_findings(_model(CONFIG_1), RSTATE_FIELDS) == []


# -- projection laws ---------------------------------------------------------

_MODEL = _model(CONFIG_1)
_CODEC = _MODEL.codec()
_STATES = _sample_states(_MODEL, 150)
_PERMS = admissible_group(CONFIG_1)
_PROJECT = _CODEC.projector(RSTATE_FIELDS)


@settings(max_examples=200, deadline=None)
@given(
    si=st.integers(0, len(_STATES) - 1),
    pi=st.integers(0, len(_PERMS) - 1),
)
def test_projection_commutes_with_admissible_permutations(si, pi):
    state, perm = _STATES[si], _PERMS[pi]
    assert _PROJECT(perm.apply(state)) == perm.apply(_PROJECT(state))


@settings(max_examples=200, deadline=None)
@given(si=st.integers(0, len(_STATES) - 1))
def test_projection_changes_only_dropped_fields(si):
    state = _STATES[si]
    proj = _PROJECT(state)
    threads, copies, hq, rq, hqa, rqa, locks, migs = state
    pthreads, pcopies, phq, prq, phqa, prqa, plocks, pmigs = proj
    # everything outside the slice is untouched
    assert (pthreads, phq, phqa, plocks) == (threads, hq, hqa, locks)
    for row, prow in zip(copies, pcopies):
        for (h, _rs, wl, lt), (ph, prs, pwl, plt) in zip(row, prow):
            assert (ph, pwl, plt) == (h, wl, lt)
            assert prs == 0
    for q, pq in ((rq, prq), (rqa, prqa)):
        for m, pm in zip(q, pq):
            if m == 0:
                assert pm == 0
            else:
                assert pm[:5] + pm[6:] == m[:5] + m[6:]
                assert pm[5] == 0
    for row, prow in zip(migs, pmigs):
        for m, pm in zip(row, prow):
            if m == 0:
                assert pm == 0
            else:
                assert pm[0] == m[0] and pm[1] == 0


@settings(max_examples=200, deadline=None)
@given(
    si=st.integers(0, len(_STATES) - 1),
    pi=st.integers(0, len(_PERMS) - 1),
)
def test_sliced_encoding_is_encoding_of_projection(si, pi):
    state, perm = _STATES[si], _PERMS[pi]
    permuted = perm.apply(state)
    assert _CODEC.encode_sliced(permuted, RSTATE_FIELDS) == _CODEC.encode(
        _PROJECT(permuted)
    )
    # idempotent: projecting a projection is the identity (same object)
    proj = _PROJECT(permuted)
    assert _PROJECT(proj) is proj


def test_projector_refuses_unsliceable_fields():
    with pytest.raises(ModelError, match="thr.phase"):
        _CODEC.projector({"thr.phase"})
