"""Unit tests for the lockset dataflow and its JKL0xx checks."""

from repro.jackal.model import Phase
from repro.jackal.params import ProtocolVariant
from repro.staticcheck import compute_locksets, lint_locksets, phase_graph
from repro.staticcheck.phasegraph import LockSlot, PhaseGraph, PhaseRule


def _rule(name, src, dst, **kw):
    kw.setdefault("acquires", frozenset())
    kw.setdefault("releases", frozenset())
    kw.setdefault("waits", frozenset())
    return PhaseRule(name=name, src=src, dst=dst, **kw)


def _graph(*rules):
    return PhaseGraph(variant=ProtocolVariant.fixed(), rules=tuple(rules))


SRV, FLT, FLS = LockSlot.SERVER, LockSlot.FAULT, LockSlot.FLUSH


# -- the fixpoint ----------------------------------------------------------


def test_fixpoint_on_the_fixed_protocol():
    result = compute_locksets(phase_graph(ProtocolVariant.fixed()))
    assert result.must[Phase.IDLE] == frozenset()
    assert result.must[Phase.HAVE_SERVER] == frozenset({SRV})
    assert result.must[Phase.HAVE_FAULT] == frozenset({FLT})
    assert result.must[Phase.WAIT_DATA] == frozenset({FLT})
    assert result.must[Phase.REMOTE_READY] == frozenset({FLT})
    assert result.must[Phase.HAVE_FLUSH] == frozenset({FLS})
    # on this protocol every phase has a unique lockset: may == must
    assert result.may == result.must


def test_fixpoint_joins_paths():
    # two paths into dst: one holding SRV, one holding nothing
    g = _graph(
        _rule("a", Phase.IDLE, Phase.WANT_SERVER,
              acquires=frozenset({SRV})),
        _rule("b", Phase.IDLE, Phase.WANT_FAULT),
        _rule("c", Phase.WANT_SERVER, Phase.LOCAL),
        _rule("d", Phase.WANT_FAULT, Phase.LOCAL),
    )
    result = compute_locksets(g)
    assert result.may[Phase.LOCAL] == frozenset({SRV})
    assert result.must[Phase.LOCAL] == frozenset()


# -- the checks, each on a minimal seeded graph ----------------------------


def test_jkl001_double_acquire():
    g = _graph(
        _rule("take", Phase.IDLE, Phase.WANT_SERVER,
              acquires=frozenset({SRV})),
        _rule("take_again", Phase.WANT_SERVER, Phase.HAVE_SERVER,
              acquires=frozenset({SRV})),
    )
    assert [f.rule for f in lint_locksets(g) if f.severity >= 2] == ["JKL001"]


def test_jkl002_release_of_free_slot():
    g = _graph(
        _rule("free_it", Phase.IDLE, Phase.LOCAL,
              releases=frozenset({FLT})),
    )
    findings = [f for f in lint_locksets(g) if f.rule == "JKL002"]
    assert len(findings) == 1
    assert "free on every path" in findings[0].message


def test_jkl002_warns_on_may_only_release():
    # LOCAL reachable with and without SRV; the release is only wrong on
    # one path -> warning, not error
    g = _graph(
        _rule("a", Phase.IDLE, Phase.WANT_SERVER,
              acquires=frozenset({SRV})),
        _rule("b", Phase.IDLE, Phase.LOCAL),
        _rule("c", Phase.WANT_SERVER, Phase.LOCAL),
        _rule("d", Phase.LOCAL, Phase.IDLE, releases=frozenset({SRV})),
    )
    findings = [f for f in lint_locksets(g) if f.rule == "JKL002"]
    assert [int(f.severity) for f in findings] == [1]


def test_jkl003_imbalance_back_to_idle():
    g = _graph(
        _rule("take", Phase.IDLE, Phase.LOCAL,
              acquires=frozenset({SRV})),
        _rule("forget", Phase.LOCAL, Phase.IDLE),  # never releases
    )
    assert "JKL003" in [f.rule for f in lint_locksets(g)]


def test_jkl004_wait_while_holding_blocker():
    # holding the flush lock while queueing for the fault lock: the
    # grant condition (flush free) can never be met by this thread
    g = _graph(
        _rule("take_fls", Phase.IDLE, Phase.HAVE_FLUSH,
              acquires=frozenset({FLS})),
        _rule("then_fault", Phase.HAVE_FLUSH, Phase.WANT_FAULT,
              waits=frozenset({FLT})),
    )
    findings = [f for f in lint_locksets(g) if f.rule == "JKL004"]
    assert len(findings) == 1
    assert "deadlock" in findings[0].message


def test_jkl005_home_side_under_fault_lock():
    g = _graph(
        _rule("take_flt", Phase.IDLE, Phase.HAVE_FAULT,
              acquires=frozenset({FLT})),
        _rule("home_op", Phase.HAVE_FAULT, Phase.WAIT_DATA,
              home_side=True),
    )
    assert "JKL005" in [f.rule for f in lint_locksets(g)]


def test_jkl005_not_raised_with_server_lock_too():
    # holding the server lock as well makes the home-side op legitimate
    g = _graph(
        _rule("take_both", Phase.IDLE, Phase.HAVE_FAULT,
              acquires=frozenset({FLT, SRV})),
        _rule("home_op", Phase.HAVE_FAULT, Phase.WAIT_DATA,
              home_side=True),
    )
    assert "JKL005" not in [f.rule for f in lint_locksets(g)]


def test_jkl006_unreachable_phase():
    g = _graph(
        _rule("a", Phase.IDLE, Phase.LOCAL),
        _rule("island", Phase.ALF_WRITE, Phase.ALF_FLUSH),
    )
    unreachable = {f.location for f in lint_locksets(g) if f.rule == "JKL006"}
    assert unreachable == {"ALF_WRITE", "ALF_FLUSH"}


def test_only_reachable_rules_are_judged():
    # the island rule is buggy (double acquire) but unreachable; only
    # JKL006 may fire for it
    g = _graph(
        _rule("a", Phase.IDLE, Phase.LOCAL),
        _rule("island", Phase.ALF_WRITE, Phase.ALF_WRITE,
              acquires=frozenset({SRV})),
    )
    assert [f.rule for f in lint_locksets(g)] == ["JKL006"]
