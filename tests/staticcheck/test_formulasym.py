"""Formula symmetrization: the group action on formulas, orbit
closure of the shipped requirement families, and the JKL401/402
refusals that keep asymmetric specs off the full quotient."""

import pytest

from repro.jackal.params import CONFIG_1, CONFIG_2, ProtocolVariant
from repro.mucalc.syntax import ActLit, Box, Ff, RAct
from repro.staticcheck.formulasym import (
    formulas_section,
    licenses_full_quotient,
    permute_formula,
    requirement4_orbit_formulas,
    requirement_formula_families,
    thread_orbits,
    vocabulary_findings,
)
from repro.staticcheck.symmetry import admissible_group, certify

FIXED = ProtocolVariant.fixed()


def _nontrivial(config):
    return [g for g in admissible_group(config) if not g.is_identity]


# -- the group action on formulas --------------------------------------------


def test_permute_formula_renames_thread_tokens():
    from repro.jackal.requirements import formula_4_write

    swap = _nontrivial(CONFIG_1)[0]
    assert permute_formula(formula_4_write(0), swap) == formula_4_write(1)
    assert permute_formula(formula_4_write(1), swap) == formula_4_write(0)


def test_permute_formula_fixes_index_free_formulas():
    from repro.jackal.requirements import formula_3_1, formula_3_2_bad_state

    for perm in _nontrivial(CONFIG_1):
        assert permute_formula(formula_3_1(), perm) == formula_3_1()
        assert (
            permute_formula(formula_3_2_bad_state(), perm)
            == formula_3_2_bad_state()
        )


def test_thread_orbits_follow_the_topology():
    # CONFIG_1 = (1, 1): the two singleton-processor threads swap
    assert thread_orbits(CONFIG_1) == ((0, 1),)
    # CONFIG_2 = (2, 1): t0/t1 share a processor, t2 is alone
    assert thread_orbits(CONFIG_2) == ((0, 1), (2,))


def _conjuncts(f):
    from repro.mucalc.syntax import And

    if isinstance(f, And):
        return _conjuncts(f.left) + _conjuncts(f.right)
    return [f]


def test_orbit_formulas_conjoin_each_orbit():
    checks = requirement4_orbit_formulas(CONFIG_1, fair=False)
    assert [name for name, _ in checks] == ["write({t0,t1})", "flush({t0,t1})"]
    # each orbit conjunction is invariant (as a set of conjuncts —
    # permuting reorders them) under the whole group
    for _name, f in checks:
        for perm in _nontrivial(CONFIG_1):
            assert set(_conjuncts(permute_formula(f, perm))) == set(
                _conjuncts(f)
            )


# -- the shipped families certify --------------------------------------------


@pytest.mark.parametrize("config", [CONFIG_1, CONFIG_2], ids=["c1", "c2"])
def test_shipped_families_are_orbit_closed(config):
    section, findings = formulas_section(config)
    assert findings == []
    assert section is not None
    assert section["plain_quotient"] == "full"
    assert section["requirements"]["4"]["status"] == "orbit-closed"
    assert section["requirements"]["3.1"]["status"] == "invariant"


def test_full_quotient_license_follows_the_section():
    cert, findings = certify(CONFIG_1, FIXED)
    assert cert is not None, findings
    assert licenses_full_quotient(cert)

    class NoSection:
        formulas: dict = {}

    assert not licenses_full_quotient(NoSection())


# -- refusals ----------------------------------------------------------------


def test_asymmetric_family_is_refused_with_jkl401():
    # a family quoting only t0 cannot be orbit-closed: permuting it
    # leaves the family, so the full quotient must be refused
    from repro.jackal.requirements import formula_4_write

    section, findings = formulas_section(
        CONFIG_1, families={"4": [("only_t0", formula_4_write(0))]}
    )
    assert section is None
    assert findings
    assert {f.rule for f in findings} == {"JKL401"}
    assert all(f.severity.name == "ERROR" for f in findings)
    data = findings[0].data
    assert data is not None and data["requirement"] == "4"
    assert "permutation" in data


class _FakeModel:
    """Just enough surface for ``labelcheck.model_labels``: ``lbl_``
    vocabulary tables plus the variant/config refinement flags."""

    def __init__(self, labels):
        self.lbl_all = list(labels)
        self.lbl_stale: list = []
        self.lbl_f2s: list = []
        self.variant = FIXED
        self.config = CONFIG_1


def test_vocabulary_gap_in_the_orbit_is_refused_with_jkl402():
    # "write(t0)" is emitted but its renaming "write(t1)" is not: the
    # symmetrized property would be vacuous, so JKL402 must refuse
    family = {"4": [("gap", Box(RAct(ActLit("write(t0)")), Ff()))]}
    findings = vocabulary_findings(
        _FakeModel(["write(t0)"]),
        CONFIG_1,
        _nontrivial(CONFIG_1),
        families=family,
    )
    assert {f.rule for f in findings} == {"JKL402"}
    assert findings[0].data is not None
    assert findings[0].data["expected"] == "write(t0)"
    assert findings[0].data["found"] == "write(t1)"


def test_phantom_literals_are_not_jkl402s_problem():
    # a literal the model never emits at all belongs to JKL201/202;
    # JKL402 only owns orbit gaps of genuine vocabulary
    family = {"4": [("phantom", Box(RAct(ActLit("write(t0)")), Ff()))]}
    findings = vocabulary_findings(
        _FakeModel(["unrelated"]),
        CONFIG_1,
        _nontrivial(CONFIG_1),
        families=family,
    )
    assert findings == []


def test_closed_vocabulary_passes_jkl402():
    family = {"4": [("ok", Box(RAct(ActLit("write(t0)")), Ff()))]}
    findings = vocabulary_findings(
        _FakeModel(["write(t0)", "write(t1)"]),
        CONFIG_1,
        _nontrivial(CONFIG_1),
        families=family,
    )
    assert findings == []
