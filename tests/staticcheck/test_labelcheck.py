"""Unit tests for the label cross-checker (JKL2xx)."""

from dataclasses import replace

from repro.jackal.model import JackalModel
from repro.jackal.params import CONFIG_1, ProtocolVariant
from repro.jackal.requirements import formula_4_write
from repro.mucalc.parser import parse_formula
from repro.staticcheck import (
    formula_literals,
    lint_labels,
    model_labels,
)


def _model(variant=None, *, probes=True):
    cfg = replace(CONFIG_1, with_probes=probes)
    return JackalModel(cfg, variant or ProtocolVariant.fixed())


def test_model_labels_cover_the_vocabulary():
    labels = model_labels(_model())
    assert "write(t0)" in labels
    assert "writeover(t1)" in labels
    assert "lock_fault(t0,p1)" in labels
    assert "assertion_violation(localthreads_negative)" in labels
    assert "c_home" in labels  # probes on
    # out-of-range ids are not in the vocabulary
    assert "write(t2)" not in labels


def test_probe_labels_follow_the_config():
    assert "c_home" not in model_labels(_model(probes=False))


def test_variant_gates_the_error1_labels():
    fixed = model_labels(_model(ProtocolVariant.fixed()))
    buggy = model_labels(_model(ProtocolVariant.error1()))
    assert "fault_to_server(t0)" in fixed
    assert "stale_remote_wait(t0)" not in fixed
    assert "fault_to_server(t0)" not in buggy
    assert "stale_remote_wait(t0)" in buggy


def test_formula_literals_walks_modalities():
    f = formula_4_write(0)
    lits = {lit.label for lit in formula_literals(f)}
    assert lits == {"write(t0)", "writeover(t0)"}


def test_requirement_formulas_are_not_vacuous():
    model = _model()
    named = [("4_write(t0)", formula_4_write(0))]
    assert lint_labels(model, named) == []


def test_jkl201_fires_on_phantom_label():
    model = _model()
    named = [("bad", formula_4_write(5))]  # only threads t0/t1 exist
    findings = lint_labels(model, named)
    assert {f.rule for f in findings} == {"JKL201"}
    assert all(f.location == "bad" for f in findings)
    assert any("write(t5)" in f.message for f in findings)


def test_jkl202_fires_on_phantom_prefix():
    f = parse_formula("[T*.writeover_(*)] F")
    findings = lint_labels(_model(), [("typo", f)])
    assert [f.rule for f in findings] == ["JKL202"]
    assert "vacuous" in findings[0].message


def test_matching_prefix_is_clean():
    f = parse_formula("[T*.writeover(*)] F")
    assert lint_labels(_model(), [("ok", f)]) == []
