"""The analyzer's self-check: the shipped artefacts lint clean, the
seeded Error-1 mutation is caught, and no LTS is ever built."""

import importlib
import time

import pytest

from repro.jackal.params import CONFIG_1, CONFIG_2, CONFIG_3, ProtocolVariant
from repro.staticcheck import run_lint


@pytest.fixture(autouse=True)
def _no_exploration(monkeypatch):
    """``repro lint`` must never explore the state space."""

    def boom(*_args, **_kwargs):  # pragma: no cover - failure path
        raise AssertionError("static analysis must not build an LTS")

    # the submodule is shadowed by the function `repro.lts.explore`
    # re-exported on the package, so resolve it through importlib
    monkeypatch.setattr(
        importlib.import_module("repro.lts.engine"), "explore_fast", boom
    )
    monkeypatch.setattr(
        importlib.import_module("repro.lts.explore"), "explore", boom
    )
    # also the already-imported binding the requirement checks use
    monkeypatch.setattr(
        importlib.import_module("repro.jackal.requirements"),
        "explore_fast",
        boom,
    )


@pytest.mark.parametrize("config", [CONFIG_1, CONFIG_2, CONFIG_3])
def test_shipped_artefacts_lint_clean(config):
    report = run_lint(config, ProtocolVariant.fixed())
    assert report.findings == []
    assert report.exit_code == 0


@pytest.mark.parametrize(
    "variant",
    [
        ProtocolVariant.fixed(),
        ProtocolVariant.error2(),
        ProtocolVariant.no_migration(),
        ProtocolVariant.alf(),
    ],
)
def test_variants_without_error1_are_clean(variant):
    assert run_lint(CONFIG_1, variant).findings == []


@pytest.mark.parametrize(
    "variant", [ProtocolVariant.error1(), ProtocolVariant.buggy()]
)
def test_error1_mutation_fires_jkl005(variant):
    """Reintroducing the Error-1 bug (no post-fault-lock re-check) must
    produce the fault-lock/home-path finding and a nonzero exit."""
    report = run_lint(CONFIG_1, variant)
    rules = [f.rule for f in report.errors()]
    assert rules == ["JKL005"]
    (finding,) = report.errors()
    assert "stale_remote_wait" in finding.location
    assert "fault lock" in finding.message
    assert report.exit_code == 1


def test_suppression_turns_the_gate_off():
    report = run_lint(
        CONFIG_1, ProtocolVariant.error1(), suppress=("JKL005",)
    )
    assert report.findings == []
    assert report.exit_code == 0
    assert report.suppressed == ("JKL005",)


def test_full_run_is_fast():
    start = time.perf_counter()
    for config in (CONFIG_1, CONFIG_2, CONFIG_3):
        run_lint(config, ProtocolVariant.fixed())
        run_lint(config, ProtocolVariant.buggy())
    assert time.perf_counter() - start < 5.0
