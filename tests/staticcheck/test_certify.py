"""The certifier and the certificate trust chain (JKL301–JKL305)."""

import importlib
import json
from dataclasses import replace

import pytest

from repro.jackal.model import JackalModel
from repro.jackal.params import CONFIG_1, CONFIG_2, ProtocolVariant
from repro.staticcheck import certificates
from repro.staticcheck.certificates import (
    ReductionCertificate,
    spec_fingerprint,
    validate,
)
from repro.staticcheck.independence import ample_table
from repro.staticcheck.symmetry import certify

FIXED = ProtocolVariant.fixed()


@pytest.fixture(autouse=True)
def _no_exploration(monkeypatch):
    """Certification is a static pass: it must never build an LTS."""

    def boom(*_args, **_kwargs):  # pragma: no cover - failure path
        raise AssertionError("certification must not build an LTS")

    monkeypatch.setattr(
        importlib.import_module("repro.lts.engine"), "explore_fast", boom
    )
    monkeypatch.setattr(
        importlib.import_module("repro.lts.explore"), "explore", boom
    )


@pytest.mark.parametrize("config", [CONFIG_1, CONFIG_2])
def test_certify_shipped_specs(config):
    cert, findings = certify(config, FIXED)
    assert findings == []
    assert cert is not None
    assert cert.signature_valid()
    assert cert.fingerprint == spec_fingerprint(config, FIXED)
    assert cert.group  # at least one non-identity permutation
    assert cert.independence == ample_table(config)
    assert validate(cert, config, FIXED) == []


def test_certify_error_variants_too():
    # the error variants are index-generic as well — symmetry is about
    # the topology, not about whether the protocol is correct
    for variant in (ProtocolVariant.error1(), ProtocolVariant.error2()):
        cert, findings = certify(CONFIG_1, variant)
        assert findings == []
        assert cert is not None


class _AsymmetricModel(JackalModel):
    """A model with a processor-special-cased rule: thread t0's write
    kickoff is silently dropped, so permuting t0 with another thread no
    longer commutes with stepping."""

    def successors(self, state):
        return [
            (lbl, ns)
            for lbl, ns in super().successors(state)
            if not lbl.startswith("write(t0")
        ]


def test_asymmetrized_spec_is_refused():
    """The CI mutation smoke: a spec that special-cases an index must
    not receive a certificate."""
    model = _AsymmetricModel(replace(CONFIG_1, with_probes=True), FIXED)
    cert, findings = certify(CONFIG_1, FIXED, model=model)
    assert cert is None
    assert findings, "asymmetric spec must produce findings"
    assert {f.rule for f in findings} == {"JKL302"}
    assert all(f.severity.name == "ERROR" for f in findings)


def test_roundtrip_through_json(tmp_path):
    cert, _ = certify(CONFIG_1, FIXED)
    path = tmp_path / "CERT.json"
    cert.save(path)
    loaded = certificates.load(path)
    assert loaded == cert
    assert validate(loaded, CONFIG_1, FIXED) == []


def test_tampered_certificate_fires_jkl304(tmp_path):
    cert, _ = certify(CONFIG_1, FIXED)
    path = tmp_path / "CERT.json"
    cert.save(path)
    data = json.loads(path.read_text())
    # an attacker widens the group without re-signing
    data["group"].append({"pid_map": [1, 0], "tid_map": [1, 0]})
    tampered = ReductionCertificate.from_dict(data)
    rules = [f.rule for f in validate(tampered, CONFIG_1, FIXED)]
    assert rules == ["JKL304"]


def test_stale_fingerprint_fires_jkl303():
    cert, _ = certify(CONFIG_1, FIXED)
    # same certificate, different spec (another variant re-keys it)
    rules = [
        f.rule for f in validate(cert, CONFIG_1, ProtocolVariant.error1())
    ]
    assert rules == ["JKL303"]


def test_wrong_schema_version_fires_jkl305():
    cert, _ = certify(CONFIG_1, FIXED)
    cert.schema_version = 99
    cert.sign()  # even correctly re-signed, the schema gates first
    rules = [f.rule for f in validate(cert, CONFIG_1, FIXED)]
    assert rules == ["JKL305"]


def test_inadmissible_group_fires_jkl305():
    cert, _ = certify(CONFIG_2, FIXED)
    # CONFIG_2's processors host different thread counts: swapping
    # them is not admissible, no matter how the entry is signed
    cert.group = [{"pid_map": [1, 0], "tid_map": [2, 1, 0]}]
    cert.sign()
    rules = [f.rule for f in validate(cert, CONFIG_2, FIXED)]
    assert "JKL305" in rules


def test_empty_group_fires_jkl305():
    cert, _ = certify(CONFIG_1, FIXED)
    cert.group = []
    cert.sign()
    rules = [f.rule for f in validate(cert, CONFIG_1, FIXED)]
    assert "JKL305" in rules


def test_independence_drift_fires_jkl305():
    cert, _ = certify(CONFIG_1, FIXED)
    cert.independence = dict(cert.independence, safe_classes=[])
    cert.sign()
    rules = [f.rule for f in validate(cert, CONFIG_1, FIXED)]
    assert rules == ["JKL305"]


def test_missing_field_raises():
    from repro.errors import ReproError

    with pytest.raises(ReproError, match="missing required field"):
        ReductionCertificate.from_dict({"fingerprint": "x"})


def test_fingerprint_is_stable_and_variant_sensitive():
    a = spec_fingerprint(CONFIG_1, FIXED)
    assert a == spec_fingerprint(CONFIG_1, FIXED)
    assert a != spec_fingerprint(CONFIG_2, FIXED)
    assert a != spec_fingerprint(CONFIG_1, ProtocolVariant.error1())
    # probes do not re-key: one certificate serves the probe LTS
    # (requirement 3) and the plain LTS (requirements 1/2/4)
    assert a == spec_fingerprint(
        replace(CONFIG_1, with_probes=True), FIXED
    )
