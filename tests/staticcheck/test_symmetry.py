"""Unit and property tests for the symmetry certifier's group machinery.

The property tests are the satellite obligations: codec round-trips
commute with random admissible permutations on configurations 1 and 2,
and ``encode_canonical`` is constant on every orbit it claims to
canonicalize.
"""

import random

import pytest

from repro.jackal.model import JackalModel
from repro.jackal.params import CONFIG_1, CONFIG_2, CONFIG_3, ProtocolVariant
from repro.staticcheck.symmetry import (
    Permutation,
    _sample_states,
    admissible_group,
    is_admissible,
)


def _model(config, variant=None, probes=False):
    from dataclasses import replace

    return JackalModel(
        replace(config, with_probes=probes),
        variant or ProtocolVariant.fixed(),
    )


# -- group structure ---------------------------------------------------------


@pytest.mark.parametrize(
    "config,order", [(CONFIG_1, 2), (CONFIG_2, 2), (CONFIG_3, 6)]
)
def test_admissible_group_order(config, order):
    group = admissible_group(config)
    assert len(group) == order
    assert sum(1 for g in group if g.is_identity) == 1


def test_group_is_closed_under_composition():
    group = admissible_group(CONFIG_3)
    maps = {(g.pid_map, g.tid_map) for g in group}
    for a in group:
        for b in group:
            pid = tuple(a.pid_map[p] for p in b.pid_map)
            tid = tuple(a.tid_map[t] for t in b.tid_map)
            assert (pid, tid) in maps


def test_admissibility_respects_thread_topology():
    # CONFIG_2 is 2p(2+1): the processors host different thread counts,
    # so swapping them is NOT admissible
    assert not is_admissible(CONFIG_2, [1, 0], [2, 1, 0])
    # but swapping p0's two threads is
    assert is_admissible(CONFIG_2, [0, 1], [1, 0, 2])
    # non-permutations are rejected outright
    assert not is_admissible(CONFIG_1, [0, 0], [0, 1])


def test_permutation_moves_initial_state_components():
    model = _model(CONFIG_1)
    (perm,) = [g for g in admissible_group(CONFIG_1) if not g.is_identity]
    state = model.initial_state()
    permuted = perm.apply(state)
    # the home moves with the processor permutation, so the initial
    # state (home fixed at processor 0) is not a fixed point
    assert permuted != state
    # applying the involution twice is the identity
    assert perm.apply(permuted) == state


def test_apply_label_renames_every_index():
    perm = Permutation((1, 0), (1, 0))
    assert perm.apply_label("send_datareq(t0,p0,p1)") == (
        "send_datareq(t1,p1,p0)"
    )
    assert perm.apply_label("c_home") == "c_home"


# -- property: codec round-trip commutes with permutation --------------------


@pytest.mark.parametrize("config", [CONFIG_1, CONFIG_2])
def test_codec_round_trip_under_random_permutations(config):
    model = _model(config, probes=True)
    codec = model.codec()
    group = [g for g in admissible_group(config) if not g.is_identity]
    states = _sample_states(model, 150)
    rng = random.Random(7)
    for state in states:
        perm = rng.choice(group)
        permuted = perm.apply(state)
        assert codec.decode(codec.encode(permuted)) == permuted
        assert codec.decode(codec.encode(state)) == state


# -- property: encode_canonical is an orbit invariant ------------------------


@pytest.mark.parametrize("config", [CONFIG_1, CONFIG_2])
def test_encode_canonical_is_orbit_invariant(config):
    model = _model(config, probes=True)
    codec = model.codec()
    group = admissible_group(config)
    nontrivial = [g for g in group if not g.is_identity]
    for state in _sample_states(model, 150):
        key = codec.encode_canonical(state, nontrivial)
        orbit_keys = {
            codec.encode_canonical(g.apply(state), nontrivial)
            for g in group
        }
        # the whole orbit maps to one canonical key, and that key is
        # the minimum packed key over the orbit
        assert orbit_keys == {key}
        assert key == min(codec.encode(g.apply(state)) for g in group)


def test_canonicalize_returns_matching_key_and_representative():
    model = _model(CONFIG_1)
    codec = model.codec()
    nontrivial = [
        g for g in admissible_group(CONFIG_1) if not g.is_identity
    ]
    state = model.initial_state()
    key, rep = codec.canonicalize(state, nontrivial)
    assert codec.encode(rep) == key
    # when the state already is the representative, the identical
    # object comes back (certreduce counts on this for its hit counter)
    key2, rep2 = codec.canonicalize(rep, nontrivial)
    assert key2 == key and rep2 is rep
