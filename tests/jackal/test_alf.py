"""Tests for the adaptive lazy flushing extension (paper §4.5).

The paper did not model this optimisation; we implement it as a variant
and verify that (a) it preserves all four requirements, (b) it actually
removes protocol-lock traffic for processor-exclusive regions, and
(c) its fast paths fall back correctly when a region becomes shared.
"""

import dataclasses

import pytest

from repro.jackal import CONFIG_1, CONFIG_2, Config, JackalModel, ProtocolVariant
from repro.jackal.requirements import check_all_requirements
from repro.jackal.statistics import protocol_statistics
from repro.lts.explore import explore

ALF = ProtocolVariant.alf()


def test_variant_factory():
    assert ALF.adaptive_lazy_flushing
    assert ALF.describe() == "fixed+alf"
    assert ProtocolVariant.fixed().describe() == "fixed"


@pytest.mark.parametrize("cfg", [CONFIG_1, CONFIG_2], ids=("C1", "C2"))
def test_requirements_hold_with_alf(cfg):
    res = check_all_requirements(cfg, ALF)
    for rep in res.values():
        assert rep.holds, rep.summary()


def test_requirements_hold_with_alf_two_rounds():
    cfg = dataclasses.replace(CONFIG_1, rounds=2)
    res = check_all_requirements(cfg, ALF)
    assert all(r.holds for r in res.values())


def test_exclusive_workload_needs_no_locks():
    # a single processor with two threads: every region stays exclusive,
    # so ALF removes every server/flush lock grant
    cfg = Config(threads_per_processor=(2,), rounds=1, with_probes=False)
    lts_alf = explore(JackalModel(cfg, ALF))
    stats = protocol_statistics(lts_alf)
    assert stats.count("lock_grant") == 0
    assert stats.count("data_request") == 0
    lts_plain = explore(JackalModel(cfg, ProtocolVariant.fixed()))
    plain = protocol_statistics(lts_plain)
    assert plain.count("lock_grant") > 0
    assert lts_alf.n_states < lts_plain.n_states


def test_shared_regions_still_use_locks():
    cfg = dataclasses.replace(CONFIG_1, rounds=1, with_probes=False)
    lts = explore(JackalModel(cfg, ALF))
    stats = protocol_statistics(lts)
    # the remote thread still takes the fault-lock path
    assert stats.count("lock_grant") > 0
    assert stats.count("data_request") > 0


def test_fast_path_falls_back_when_sharing_appears():
    # with two processors, interleavings exist where a remote Data
    # Request lands between the ALF check and its completion; the
    # restart label marks the fallback
    cfg = dataclasses.replace(CONFIG_1, rounds=2, with_probes=False)
    lts = explore(JackalModel(cfg, ALF))
    assert any(l.startswith("restart_write") for l in lts.labels)


def test_alf_with_buggy_variants_still_finds_bugs():
    # the optimisation must not mask the historical errors
    from repro.jackal.requirements import check_requirement_1, check_requirement_3_2

    cyclic = dataclasses.replace(CONFIG_1, rounds=None)
    e1 = dataclasses.replace(
        ProtocolVariant.error1(), adaptive_lazy_flushing=True
    )
    assert not check_requirement_1(cyclic, e1).holds
    e2 = dataclasses.replace(
        ProtocolVariant.error2(), adaptive_lazy_flushing=True
    )
    assert not check_requirement_3_2(CONFIG_2, e2).holds


def test_alf_shrinks_exclusive_state_space():
    cfg = Config(threads_per_processor=(2,), rounds=2, with_probes=False)
    alf = explore(JackalModel(cfg, ALF))
    plain = explore(JackalModel(cfg, ProtocolVariant.fixed()))
    assert alf.n_states < plain.n_states
    assert alf.n_transitions < plain.n_transitions
