"""Tests for configurations and variants."""

import pytest

from repro.errors import ModelError
from repro.jackal.params import CONFIG_1, CONFIG_2, CONFIG_3, Config, ProtocolVariant


def test_paper_configurations():
    assert CONFIG_1.n_processors == 2 and CONFIG_1.n_threads == 2
    assert CONFIG_2.n_processors == 2 and CONFIG_2.n_threads == 3
    assert CONFIG_3.n_processors == 3 and CONFIG_3.n_threads == 3
    for c in (CONFIG_1, CONFIG_2, CONFIG_3):
        assert c.n_regions == 1


def test_processor_of():
    c = Config(threads_per_processor=(2, 1))
    assert [c.processor_of(t) for t in range(3)] == [0, 0, 1]
    with pytest.raises(ModelError):
        c.processor_of(3)


def test_thread_ids_of():
    c = Config(threads_per_processor=(2, 1))
    assert c.thread_ids_of(0) == [0, 1]
    assert c.thread_ids_of(1) == [2]


def test_describe():
    c = Config(threads_per_processor=(2, 1), rounds=None)
    assert c.describe() == "2p(2+1)x1reg,rounds=inf"
    assert "rounds=1" in CONFIG_1.describe()


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(threads_per_processor=()),
        dict(threads_per_processor=(0, 0)),
        dict(threads_per_processor=(-1, 2)),
        dict(threads_per_processor=(1, 1), n_regions=0),
        dict(threads_per_processor=(1, 1), initial_home=5),
        dict(threads_per_processor=(1, 1), rounds=0),
        dict(threads_per_processor=(1, 1), writes_per_round=0),
    ],
)
def test_invalid_configs(kwargs):
    with pytest.raises(ModelError):
        Config(**kwargs)


def test_variant_factories():
    assert ProtocolVariant.fixed().describe() == "fixed"
    assert ProtocolVariant.buggy().describe() == "error1+error2"
    assert ProtocolVariant.error1().describe() == "error1"
    assert ProtocolVariant.error2().describe() == "error2"
    assert ProtocolVariant.no_migration().describe() == "no-migration"


def test_variant_flags():
    v = ProtocolVariant.error1()
    assert not v.fault_lock_recheck
    assert v.sponmigrate_informs_threads
    assert v.home_migration
