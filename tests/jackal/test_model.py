"""Tests for the protocol state machine basics."""

import dataclasses

import pytest

from repro.jackal.actions import PROBE_LABELS, Labels
from repro.jackal.model import VIOLATION, JackalModel, Msg, Phase, RegionState
from repro.jackal.params import CONFIG_1, CONFIG_2, Config, ProtocolVariant
from repro.lts.explore import explore


@pytest.fixture
def model():
    return JackalModel(CONFIG_1, ProtocolVariant.fixed())


def test_initial_state_shape(model):
    s = model.initial_state()
    threads, copies, hq, rq, hqa, rqa, locks, migs = s
    assert len(threads) == 2
    assert all(th[0] == Phase.IDLE for th in threads)
    assert copies[0][0] == (0, RegionState.UNUSED, 0, 0)
    assert copies[1][0] == (0, RegionState.UNUSED, 0, 0)
    assert hq == (0, 0) and rq == (0, 0)
    assert locks == ((0, 0, 0, 0, 0, 0),) * 2


def test_initial_moves(model):
    labels = {l for l, _ in model.successors(model.initial_state())}
    # both threads can start a write; plus the probes
    assert Labels.write(0) in labels
    assert Labels.write(1) in labels
    assert "homequeue_empty" in labels
    assert "lock_empty" in labels


def test_probes_are_self_loops(model):
    s = model.initial_state()
    for label, nxt in model.successors(s):
        if label in PROBE_LABELS:
            assert nxt == s


def test_probes_can_be_disabled():
    cfg = dataclasses.replace(CONFIG_1, with_probes=False)
    m = JackalModel(cfg, ProtocolVariant.fixed())
    labels = {l for l, _ in m.successors(m.initial_state())}
    assert not labels & set(PROBE_LABELS)


def test_successors_deterministic(model):
    s = model.initial_state()
    assert model.successors(s) == model.successors(s)


def test_states_hashable(model):
    seen = set()
    s = model.initial_state()
    frontier = [s]
    for _ in range(3):
        nxt = []
        for st in frontier:
            for _l, d in model.successors(st):
                if d not in seen:
                    seen.add(d)
                    nxt.append(d)
        frontier = nxt
    assert len(seen) > 2


def test_violation_is_terminal(model):
    assert model.successors(VIOLATION) == []
    assert not model.is_done_state(VIOLATION)


def test_is_done_state(model):
    s = model.initial_state()
    assert not model.is_done_state(s)  # rounds pending
    threads, *rest = s
    done_threads = tuple(
        (int(Phase.IDLE), 0, 0, 0, 0, 0) for _ in threads
    )
    assert model.is_done_state((done_threads, *rest))


def test_decode_state(model):
    d = model.decode_state(model.initial_state())
    assert d["threads"][0]["phase"] == "IDLE"
    assert d["threads"][1]["pid"] == 1
    assert d["copies"][0][0]["home"] == 0
    assert d["copies"][0][0]["state"] == "UNUSED"
    assert d["homequeue"] == [None, None]
    assert model.decode_state(VIOLATION) == {"violation": True}


def test_decode_message_kinds(model):
    s = model.initial_state()
    threads, copies, hq, rq, hqa, rqa, locks, migs = s
    msg = (int(Msg.REQ), 0, 0, 0)
    d = model.decode_state(
        (threads, copies, (0, msg), rq, hqa, rqa, locks, migs)
    )
    assert d["homequeue"][1][0] == "REQ"


def test_write_goes_server_path_at_home(model):
    s = model.initial_state()
    # thread 0 lives on processor 0, the initial home
    (nxt,) = [d for l, d in model.successors(s) if l == Labels.write(0)]
    threads = nxt[0]
    assert threads[0][0] == Phase.WANT_SERVER
    # and it is registered as a server-lock waiter
    assert nxt[6][0][1] == 1  # srv_wait bitmask on p0 contains t0


def test_write_goes_fault_path_remote(model):
    s = model.initial_state()
    (nxt,) = [d for l, d in model.successors(s) if l == Labels.write(1)]
    threads = nxt[0]
    assert threads[1][0] == Phase.WANT_FAULT
    assert nxt[6][1][3] == 2  # flt_wait bitmask on p1 contains t1


def test_multi_region_config():
    cfg = Config(threads_per_processor=(1, 1), n_regions=2)
    m = JackalModel(cfg, ProtocolVariant.fixed())
    l = explore(m)
    assert l.n_states > 300  # strictly more behaviour than one region
    # writes may target either region
    labels = {lab for lab, _ in m.successors(m.initial_state())}
    assert Labels.write(0) in labels


def test_rounds_none_is_cyclic():
    cfg = dataclasses.replace(CONFIG_1, rounds=None, with_probes=False)
    m = JackalModel(cfg, ProtocolVariant.fixed())
    l = explore(m)
    assert l.deadlock_states() == []  # cyclic: no terminal states


def test_writes_per_round_uses_local_path():
    cfg = dataclasses.replace(CONFIG_1, writes_per_round=2, with_probes=False)
    m = JackalModel(cfg, ProtocolVariant.fixed())
    # a second write to a still-dirty region goes through Phase.LOCAL
    from repro.lts.explore import breadth_first_states

    assert any(
        any(th[0] == Phase.LOCAL for th in state[0])
        for state in breadth_first_states(m, max_states=100_000)
        if state != VIOLATION
    )
