"""Tests for protocol traffic statistics."""

import dataclasses

import pytest

from repro.jackal import CONFIG_1, CONFIG_2, JackalModel, ProtocolVariant
from repro.jackal.statistics import (
    ProtocolStatistics,
    categorize_label,
    protocol_statistics,
)
from repro.lts.explore import explore


@pytest.fixture(scope="module")
def stats_c2():
    cfg = dataclasses.replace(CONFIG_2, rounds=1, with_probes=False)
    lts = explore(JackalModel(cfg, ProtocolVariant.fixed()))
    return protocol_statistics(lts)


def test_categorize_label():
    assert categorize_label("send_datareq(t0,p0,p1)") == "data_request"
    assert categorize_label("send_dataret_mig(p0,p1)") == "migration_case1"
    assert categorize_label("send_dataret(p0,p1)") == "data_return"
    assert categorize_label("flush_home_migrate(t0,p0,p1)") == "migration_case2"
    assert categorize_label("c_home") == "probe"
    assert categorize_label("writeover(t1)") == "thread_write"
    assert categorize_label("zzz") == "other"


def test_totals_add_up(stats_c2):
    assert stats_c2.total == sum(stats_c2.by_category.values())
    assert stats_c2.total > 0
    assert "other" not in stats_c2.by_category  # every label categorised


def test_migration_traffic_present(stats_c2):
    assert stats_c2.migrations > 0
    assert stats_c2.count("sponmigrate_recv") > 0


def test_messages_metric(stats_c2):
    assert stats_c2.messages >= stats_c2.count("data_request")
    assert 0 < stats_c2.share("data_request") < 1


def test_no_bug_path_in_fixed(stats_c2):
    assert stats_c2.count("bug_path") == 0
    assert stats_c2.count("assertion") == 0


def test_bug_path_in_error1_variant():
    cfg = dataclasses.replace(CONFIG_1, rounds=None, with_probes=False)
    lts = explore(JackalModel(cfg, ProtocolVariant.error1()))
    stats = protocol_statistics(lts)
    assert stats.count("bug_path") > 0


def test_no_migration_variant_has_no_migration_traffic():
    cfg = dataclasses.replace(CONFIG_2, rounds=1, with_probes=False)
    lts = explore(JackalModel(cfg, ProtocolVariant.no_migration()))
    stats = protocol_statistics(lts)
    assert stats.migrations == 0
    assert stats.count("sponmigrate_recv") == 0


def test_as_rows_sorted(stats_c2):
    rows = stats_c2.as_rows()
    counts = [r["transitions"] for r in rows]
    assert counts == sorted(counts, reverse=True)
    assert abs(sum(r["share"] for r in rows) - 1.0) < 0.01


def test_empty_statistics():
    s = ProtocolStatistics()
    assert s.share("anything") == 0.0
    assert s.messages == 0
