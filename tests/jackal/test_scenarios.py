"""Scripted protocol walkthroughs.

Each test drives the model through one concrete scenario with the
simulator, asserting the protocol state after every phase — executable
documentation of the semantics described in docs/protocol.md.
"""

import dataclasses

import pytest

from repro.analysis.simulator import Simulator
from repro.jackal import CONFIG_1, Config, JackalModel, ProtocolVariant
from repro.jackal.model import Phase


def sim(config=CONFIG_1, variant=ProtocolVariant.fixed()):
    cfg = dataclasses.replace(config, with_probes=False)
    return Simulator(JackalModel(cfg, variant))


def homes(s: Simulator) -> list[int]:
    d = s.describe()
    return [c[0]["home"] for c in d["copies"]]


def writers(s: Simulator, pid: int) -> list[int]:
    return s.describe()["copies"][pid][0]["writers"]


class TestAtHomeWrite:
    def test_full_round(self):
        s = sim()
        s.step("write(t0)")  # t0 is at the initial home p0
        assert s.describe()["threads"][0]["phase"] == "WANT_SERVER"
        s.step("lock_server(t0,p0)")
        s.step("writeover(t0)")
        d = s.describe()
        assert d["threads"][0]["dirty"] == [0]
        assert writers(s, 0) == [0]
        assert d["copies"][0][0]["localthreads"] == 1
        s.step("flush(t0)")
        s.step("lock_flush(t0,p0)")
        s.step("flush_home(t0,p0)")
        s.step("flushover(t0)")
        d = s.describe()
        assert d["threads"][0]["rounds_left"] == 0
        assert writers(s, 0) == []
        assert d["copies"][0][0]["state"] == "UNUSED"


class TestRemoteWriteWithCase1Migration:
    def test_full_round(self):
        s = sim()
        s.step("write(t1)")  # t1 on p1, home is p0: remote path
        s.step("lock_fault(t1,p1)")
        s.step("send_datareq(t1,p1,p0)")
        assert s.describe()["homequeue"][0][0] == "REQ"
        s.step("lock_homequeue(p0)")
        # p1 is the only writing processor: migration case 1 fires
        s.step("send_dataret_mig(p0,p1)")
        assert homes(s)[0] == 1  # old home already points away
        s.step("lock_remotequeue(p1)")
        s.step("signal(t1,p1)")
        assert homes(s) == [1, 1]  # both point at the new home p1
        s.step("writeover(t1)")
        assert writers(s, 1) == [1]
        # flush is now an at-home flush on p1
        s.step("flush(t1)")
        s.step("lock_flush(t1,p1)")
        s.step("flush_home(t1,p1)")
        s.step("flushover(t1)")
        assert homes(s) == [1, 1]


class TestCase2MigrationViaFlush:
    def test_home_follows_the_writer(self):
        # two writers; the at-home one flushes last and hands the home
        # to the remaining remote writer
        s = sim()
        # t0 writes at home p0
        s.run(["write(t0)", "lock_server(t0,p0)", "writeover(t0)"])
        # t1 writes remotely; writers = {p0, p1}: no case-1 migration
        s.run([
            "write(t1)", "lock_fault(t1,p1)", "send_datareq(t1,p1,p0)",
            "lock_homequeue(p0)", "send_dataret(p0,p1)",
            "lock_remotequeue(p1)", "signal(t1,p1)", "writeover(t1)",
        ])
        assert sorted(writers(s, 0)) == [0, 1]
        # t0 flushes: only p1 keeps writing -> case-2 migration to p1
        s.run(["flush(t0)", "lock_flush(t0,p0)"])
        s.step("flush_home_migrate(t0,p0,p1)")
        assert homes(s)[0] == 1
        assert s.describe()["migrations"][1][0] is not None
        s.step("recv_sponmigrate(p1)")
        assert homes(s) == [1, 1]
        assert writers(s, 1) == [1]


class TestErrorOneMechanism:
    def test_stale_wait_step_by_step(self):
        cfg = dataclasses.replace(CONFIG_1, rounds=None, with_probes=False)
        s = Simulator(JackalModel(cfg, ProtocolVariant.error1()))
        # round 1: t1 writes remotely, home migrates to p1 (case 1)
        s.run([
            "write(t1)", "lock_fault(t1,p1)", "send_datareq(t1,p1,p0)",
            "lock_homequeue(p0)", "send_dataret_mig(p0,p1)",
            "lock_remotequeue(p1)", "signal(t1,p1)", "writeover(t1)",
        ])
        # t0 now writes remotely towards p1
        s.run(["write(t0)", "lock_fault(t0,p0)", "send_datareq(t0,p0,p1)"])
        # t1 flushes at home: t0's processor is in the writer list
        # (request processed first), and after t1's flush only p0
        # writes -> the home migrates onto the WAITING t0's processor
        s.run(["lock_homequeue(p1)", "send_dataret(p1,p0)"])
        s.run([
            "flush(t1)", "lock_flush(t1,p1)",
        ])
        s.step("flush_home_migrate(t1,p1,p0)")
        s.step("recv_sponmigrate(p0)")
        assert homes(s) == [0, 0]
        # t0's Data Return is still pending; deliver it, then complete.
        # In the buggy variant the NEXT write of t0 will hit the stale
        # path; drive t0 to it
        s.run(["lock_remotequeue(p0)", "signal(t0,p0)", "writeover(t0)"])
        s.run(["flush(t0)", "lock_flush(t0,p0)", "flush_home(t0,p0)",
               "flushover(t0)"])
        # t0 starts a new write; p0 IS the home, but interleavings exist
        # where the home migrates after the access check. Simplest
        # visible fact: the buggy model still offers stale_remote_wait
        # transitions somewhere in its state space
        from repro.lts.explore import explore

        lts = explore(s.system)
        assert any(l.startswith("stale_remote_wait") for l in lts.labels)


class TestForwarding:
    def test_request_follows_migrated_home(self):
        # three processors: a request addressed to a stale home gets
        # forwarded to the current one
        cfg = Config(threads_per_processor=(1, 1, 1), rounds=2,
                     with_probes=False)
        s = Simulator(JackalModel(cfg, ProtocolVariant.fixed()))
        # t1 (p1) writes remotely -> case-1 migration p0 -> p1
        s.run([
            "write(t1)", "lock_fault(t1,p1)", "send_datareq(t1,p1,p0)",
            "lock_homequeue(p0)", "send_dataret_mig(p0,p1)",
            "lock_remotequeue(p1)", "signal(t1,p1)", "writeover(t1)",
        ])
        # t2 (p2) still believes p0 is the home: its copy was never
        # refreshed. Its request lands at p0 and is forwarded to p1.
        assert homes(s)[2] == 0
        s.run(["write(t2)", "lock_fault(t2,p2)", "send_datareq(t2,p2,p0)"])
        s.run(["lock_homequeue(p0)"])
        s.step("forward_req(p0,p1)")
        assert s.describe()["homequeue"][1][0] == "REQ"
        # p1 answers (t1 still writes, so no further migration)
        s.run(["lock_homequeue(p1)", "send_dataret(p1,p2)"])
        s.run(["lock_remotequeue(p2)", "signal(t2,p2)", "writeover(t2)"])
        assert homes(s)[2] == 1  # refreshed to the true home
