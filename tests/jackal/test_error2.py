"""Reproduction of the paper's Error 2 (Section 5.4.3).

"The error may happen when a thread is writing to a region from remote.
During its waiting for an up-to-date copy ... the home node may migrate
(by a Region Sponmigrate message) to the processor where the thread
resides. When the Data Return message ... arrives, the thread refreshes
the region's home by the sender of the answer message. In the resulting
state ... neither of the two processors is the home of the region."
"""

import dataclasses

import pytest

from repro.jackal.model import JackalModel
from repro.jackal.params import CONFIG_1, CONFIG_2, ProtocolVariant
from repro.jackal.requirements import (
    build_model,
    check_requirement_3_1,
    check_requirement_3_2,
    check_requirement_4,
)
from repro.lts.trace import replay


@pytest.fixture(scope="module")
def violation_report():
    # the paper found the error on configuration 2
    return check_requirement_3_2(CONFIG_2, ProtocolVariant.error2())


def test_3_2_violated(violation_report):
    assert not violation_report.holds
    assert violation_report.trace is not None


def test_fix_restores_3_2():
    rep = check_requirement_3_2(CONFIG_2, ProtocolVariant.fixed())
    assert rep.holds, rep.summary()


def test_witness_ends_in_homeless_stable_state(violation_report):
    model = build_model(CONFIG_2, ProtocolVariant.error2(), probes=True)
    t = replay(model, violation_report.trace.labels)
    d = model.decode_state(t.final_state)
    homes = [p for p in range(model.n_proc) if d["copies"][p][0]["home"] == p]
    assert homes == []  # neither processor is the home
    # and the state is stable: no lock held, queues empty
    assert all(m is None for m in d["homequeue"] + d["remotequeue"])
    for p in range(model.n_proc):
        assert d["locks"][p]["server"] == 0
        assert d["locks"][p]["fault"] == 0
        assert d["locks"][p]["flush"] == 0


def test_witness_contains_the_racing_messages(violation_report):
    labels = violation_report.trace.labels
    assert any(l.startswith("recv_sponmigrate") for l in labels)
    assert any(l.startswith("signal") for l in labels)
    # the sponmigrate must be processed before the stale data return
    mig_at = min(
        i for i, l in enumerate(labels) if l.startswith("recv_sponmigrate")
    )
    sig_at = max(i for i, l in enumerate(labels) if l.startswith("signal"))
    assert mig_at < sig_at


def test_3_1_still_holds_in_error2_variant():
    # the bug loses the home; it never creates two of them
    rep = check_requirement_3_1(CONFIG_2, ProtocolVariant.error2())
    assert rep.holds


def test_error_also_visible_on_config_1():
    # our model exhibits the same race with only two threads; the paper
    # reports it on the three-thread configuration (see EXPERIMENTS.md)
    rep = check_requirement_3_2(CONFIG_1, ProtocolVariant.error2())
    assert not rep.holds


def test_trace_length(violation_report):
    assert len(violation_report.trace) >= 15


def test_homeless_region_breaks_liveness():
    # once the home is lost, flushes bounce between the processors
    # forever: the paper's Requirement 4 fails too
    cfg = dataclasses.replace(CONFIG_2, rounds=None)
    rep = check_requirement_4(cfg, ProtocolVariant.error2())
    assert not rep.holds


def test_fully_buggy_variant_also_violates():
    rep = check_requirement_3_2(CONFIG_2, ProtocolVariant.buggy())
    assert not rep.holds
