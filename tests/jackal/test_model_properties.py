"""Property-based tests of the protocol model (hypothesis).

Random walks through arbitrary configurations and variants must keep
the model's structural guarantees: hashable deterministic successors,
decodable states, lock sanity, and queue-capacity discipline. These
complement the exhaustive sweeps of ``test_invariants.py`` with
coverage of *unusual* configurations (multiple regions, uneven thread
placement, many rounds).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jackal.model import VIOLATION, JackalModel, Phase
from repro.jackal.params import Config, ProtocolVariant


@st.composite
def configs(draw):
    n_proc = draw(st.integers(min_value=1, max_value=3))
    tpp = tuple(
        draw(st.integers(min_value=0, max_value=2)) for _ in range(n_proc)
    )
    if sum(tpp) == 0:
        tpp = tpp[:-1] + (1,)
    return Config(
        threads_per_processor=tpp,
        n_regions=draw(st.integers(min_value=1, max_value=2)),
        initial_home=draw(st.integers(min_value=0, max_value=n_proc - 1)),
        rounds=draw(st.sampled_from([1, 2, None])),
        writes_per_round=draw(st.integers(min_value=1, max_value=2)),
        with_probes=draw(st.booleans()),
    )


@st.composite
def variants(draw):
    return ProtocolVariant(
        fault_lock_recheck=draw(st.booleans()),
        sponmigrate_informs_threads=draw(st.booleans()),
        home_migration=draw(st.booleans()),
    )


def _walk(model, seed: int, steps: int = 60):
    rng = random.Random(seed)
    state = model.initial_state()
    visited = [state]
    for _ in range(steps):
        succ = model.successors(state)
        if not succ:
            break
        _, state = succ[rng.randrange(len(succ))]
        visited.append(state)
    return visited


@given(configs(), variants(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_random_walk_states_stay_sane(config, variant, seed):
    model = JackalModel(config, variant)
    for state in _walk(model, seed):
        if state == VIOLATION:
            continue
        assert hash(state) == hash(state)
        threads, copies, hq, rq, hqa, rqa, locks, migs = state
        # thread sanity
        for tid, th in enumerate(threads):
            ph, reg, aho, wdone, rounds, dirty = th
            assert 0 <= reg < config.n_regions
            assert 0 <= wdone <= config.writes_per_round
            assert Phase(ph) in Phase
            assert dirty < (1 << config.n_regions)
        # copy sanity: home pointers in range, localthreads bounded
        for p in range(config.n_processors):
            for r in range(config.n_regions):
                home, rstate, wl, lt = copies[p][r]
                assert 0 <= home < config.n_processors
                assert 0 <= lt <= config.n_threads
                assert wl < (1 << config.n_processors)
        # at most one holder per lock, holders are local threads
        for p in range(config.n_processors):
            for slot in (0, 2, 4):
                holder = locks[p][slot]
                if holder:
                    assert model.pid_of[holder - 1] == p


@given(configs(), variants(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_successors_are_deterministic_and_decodable(config, variant, seed):
    model = JackalModel(config, variant)
    for state in _walk(model, seed, steps=25):
        assert model.successors(state) == model.successors(state)
        d = model.decode_state(state)
        assert isinstance(d, dict)


@given(configs(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_fixed_variant_never_hits_violation(config, seed):
    model = JackalModel(config, ProtocolVariant.fixed())
    for state in _walk(model, seed):
        assert state != VIOLATION


@given(configs(), variants(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_probe_self_loops_only(config, variant, seed):
    from repro.jackal.actions import PROBE_LABELS

    model = JackalModel(config, variant)
    for state in _walk(model, seed, steps=25):
        for label, nxt in model.successors(state):
            if label in PROBE_LABELS:
                assert nxt == state
                assert config.with_probes
