"""Multi-region and multi-write configurations.

The paper's analysed configurations hold one region ("to avoid state
explosion, we only analysed configurations containing one region"), but
the protocol — and this model — is parametric in the region count and
in how many writes a thread performs per synchronisation round. These
tests cover the parametric behaviour the paper abstracted away.
"""

import dataclasses

import pytest

from repro.jackal import Config, JackalModel, ProtocolVariant
from repro.jackal.requirements import (
    check_all_requirements,
    check_requirement_1,
    check_requirement_3_1,
    check_requirement_3_2,
)
from repro.lts.explore import explore

TWO_REGIONS = Config(threads_per_processor=(1, 1), n_regions=2, rounds=1)


class TestTwoRegions:
    def test_all_requirements_hold(self):
        res = check_all_requirements(TWO_REGIONS, ProtocolVariant.fixed())
        for rep in res.values():
            assert rep.holds, rep.summary()

    def test_regions_migrate_independently(self):
        cfg = dataclasses.replace(TWO_REGIONS, with_probes=False)
        lts = explore(JackalModel(cfg, ProtocolVariant.fixed()))
        # both regions can be fetched remotely (region ids appear in
        # message labels only indirectly; check via model walk)
        model = JackalModel(cfg, ProtocolVariant.fixed())
        seen_regions = set()
        from repro.lts.explore import breadth_first_states

        for state in breadth_first_states(model, max_states=50_000):
            threads = state[0]
            for th in threads:
                if th[0] != 0:  # any active phase records its region
                    seen_regions.add(th[1])
        assert seen_regions == {0, 1}
        assert lts.n_states > 300

    def test_error1_still_found_with_two_regions(self):
        cfg = dataclasses.replace(TWO_REGIONS, rounds=2)
        rep = check_requirement_1(cfg, ProtocolVariant.error1())
        assert not rep.holds

    def test_error2_still_found_with_two_regions(self):
        rep = check_requirement_3_2(TWO_REGIONS, ProtocolVariant.error2())
        assert not rep.holds

    def test_one_home_per_region_independently(self):
        rep = check_requirement_3_1(TWO_REGIONS, ProtocolVariant.fixed())
        assert rep.holds


class TestWritesPerRound:
    def test_requirements_hold_with_two_writes(self):
        cfg = Config(threads_per_processor=(1, 1), writes_per_round=2)
        res = check_all_requirements(cfg, ProtocolVariant.fixed())
        assert all(r.holds for r in res.values())

    def test_second_write_to_same_region_is_local(self):
        from repro.jackal.model import Phase
        from repro.lts.explore import breadth_first_states

        cfg = Config(
            threads_per_processor=(1,), writes_per_round=2, with_probes=False
        )
        model = JackalModel(cfg, ProtocolVariant.fixed())
        # the second write to a dirty region takes the protocol-free
        # LOCAL path (access check passes on the cached copy)
        assert any(
            state[0][0][0] == Phase.LOCAL
            for state in breadth_first_states(model, max_states=10_000)
        )

    def test_two_writes_across_two_regions(self):
        cfg = Config(
            threads_per_processor=(1, 1),
            n_regions=2,
            writes_per_round=2,
            with_probes=False,
        )
        model = JackalModel(cfg, ProtocolVariant.fixed())
        lts = explore(model)
        from repro.lts.deadlock import find_deadlocks
        from repro.jackal.actions import PROBE_LABELS
        from repro.jackal.model import VIOLATION

        lts2 = explore(model, keep_states=True)
        rep = find_deadlocks(
            lts2,
            ignore_labels=PROBE_LABELS,
            is_valid_end=lambda s: s == VIOLATION or model.is_done_state(s),
        )
        assert rep.deadlock_free, rep.summary()
        assert lts.n_states > 1000

    def test_flush_handles_multiple_dirty_regions(self):
        cfg = Config(
            threads_per_processor=(1, 1),
            n_regions=2,
            writes_per_round=2,
            with_probes=False,
        )
        lts = explore(JackalModel(cfg, ProtocolVariant.fixed()))
        # a single flush round can carry two per-region flush steps
        flush_labels = {l for l in lts.labels if l.startswith(
            ("flush_home(", "send_flush(")
        )}
        assert flush_labels


class TestInitialHomePlacement:
    @pytest.mark.parametrize("home", [0, 1])
    def test_requirements_insensitive_to_initial_home(self, home):
        cfg = Config(threads_per_processor=(2, 1), initial_home=home)
        res = check_all_requirements(cfg, ProtocolVariant.fixed())
        assert all(r.holds for r in res.values())

    def test_error2_found_from_either_home(self):
        for home in (0, 1):
            cfg = Config(threads_per_processor=(2, 1), initial_home=home)
            rep = check_requirement_3_2(cfg, ProtocolVariant.error2())
            assert not rep.holds, f"initial home {home}"
