"""Tests for the packed state codec and the fast successor path.

The codec must be a bijection between reachable protocol states and
packed integers (``decode(encode(s)) == s``), and ``successors_fast``
must agree with the readable reference relation transition-for-
transition — these two guarantees are what let the exploration engine
substitute for the reference explorer without changing any analysis.
"""

import pytest

from repro.errors import ExplorationLimitError
from repro.jackal import Config, JackalModel, ProtocolVariant
from repro.jackal.codec import StateCodec, codec_for
from repro.jackal.model import VIOLATION
from repro.lts.explore import breadth_first_states

CONFIGS = [
    (Config(threads_per_processor=(1, 1), rounds=1, with_probes=False),
     ProtocolVariant.fixed()),
    (Config(threads_per_processor=(2,), rounds=2, with_probes=False),
     ProtocolVariant.fixed()),
    (Config(threads_per_processor=(1, 1), n_regions=2, rounds=1,
            with_probes=False), ProtocolVariant.fixed()),
    (Config(threads_per_processor=(1, 1), rounds=1, with_probes=False),
     ProtocolVariant.error1()),
    (Config(threads_per_processor=(1, 1), rounds=1, with_probes=False),
     ProtocolVariant.error2()),
    (Config(threads_per_processor=(1, 1), rounds=None, with_probes=False),
     ProtocolVariant.fixed()),
]


def _sample_states(model, cap=4000):
    try:
        return list(breadth_first_states(model, max_states=cap))
    except ExplorationLimitError:
        # enough states sampled; the generator raises at the cap
        return list(breadth_first_states(model, max_states=None))[:cap]


@pytest.mark.parametrize("cfg,variant", CONFIGS)
def test_roundtrip_over_reachable_states(cfg, variant):
    model = JackalModel(cfg, variant)
    codec = model.codec()
    states = _sample_states(model)
    keys = [codec.encode(s) for s in states]
    for s, k in zip(states, keys):
        assert codec.decode(k) == s
    # injective: distinct states get distinct keys
    assert len(set(keys)) == len(states)


def test_cold_decode_matches_warm_encode():
    """The half memos must never be load-bearing: a codec that has
    decoded nothing (cold caches) must invert keys produced by another
    instance, and re-encoding its decodes must reproduce the keys."""
    cfg = Config(threads_per_processor=(1, 1), rounds=1, with_probes=False)
    model = JackalModel(cfg)
    warm = model.codec()
    cold = StateCodec(JackalModel(cfg))
    states = _sample_states(model, cap=1500)
    for s in states:
        k = warm.encode(s)
        assert cold.decode(k) == s
        assert cold.encode(cold.decode(k)) == k


def test_half_memo_cap_only_costs_rework():
    """Clearing the split-half memo caches mid-stream must not change
    any key or decode — the caches are pure."""
    cfg = Config(threads_per_processor=(1, 1), rounds=1, with_probes=False)
    model = JackalModel(cfg)
    codec = model.codec()
    states = _sample_states(model, cap=300)
    keys = [codec.encode(s) for s in states]
    codec._enc_hi.clear()
    codec._enc_lo.clear()
    codec._dec_hi.clear()
    codec._dec_lo.clear()
    assert [codec.encode(s) for s in states] == keys
    for s, k in zip(states, keys):
        assert codec.decode(k) == s


def test_violation_is_key_zero():
    codec = JackalModel(Config(rounds=1)).codec()
    assert codec.encode(VIOLATION) == 0
    assert codec.decode(0) == VIOLATION


def test_ordinary_keys_are_odd_and_bounded():
    model = JackalModel(
        Config(threads_per_processor=(1, 1), rounds=1, with_probes=False)
    )
    codec = model.codec()
    for s in _sample_states(model, cap=500):
        k = codec.encode(s)
        assert k & 1  # tag bit distinguishing real states from VIOLATION
        assert k.bit_length() <= codec.n_bits


def test_bytes_roundtrip():
    model = JackalModel(
        Config(threads_per_processor=(1, 1), rounds=1, with_probes=False)
    )
    codec = model.codec()
    for s in _sample_states(model, cap=200):
        b = codec.encode_bytes(s)
        assert len(b) == codec.n_bytes
        assert codec.decode_bytes(b) == s


def test_codec_for_helper():
    model = JackalModel(Config(rounds=1))
    assert isinstance(codec_for(model), StateCodec)
    assert codec_for(object()) is None


def test_codec_cached_on_model():
    model = JackalModel(Config(rounds=1))
    assert model.codec() is model.codec()


@pytest.mark.parametrize("cfg,variant", CONFIGS)
def test_fast_successors_agree_exactly(cfg, variant):
    """successors_fast is transition-for-transition the reference."""
    model = JackalModel(cfg, variant)
    for s in _sample_states(model):
        assert model.successors_fast(s) == model.successors(s)


def test_fast_successors_agree_with_probes():
    cfg = Config(threads_per_processor=(1, 1), rounds=1, with_probes=True)
    model = JackalModel(cfg, ProtocolVariant.fixed())
    for s in _sample_states(model, cap=2000):
        assert model.successors_fast(s) == model.successors(s)


def test_fast_successors_on_violation():
    model = JackalModel(Config(rounds=1))
    assert model.successors_fast(VIOLATION) == model.successors(VIOLATION)
