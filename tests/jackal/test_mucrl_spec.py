"""Tests for the algebraic (muCRL-style) protocol fragments."""

import pytest

from repro.jackal.mucrl_spec import (
    locker_spec,
    locker_system,
    region_spec,
    region_system,
    thread_write_remote_spec,
)
from repro.lts.deadlock import find_deadlocks
from repro.lts.explore import explore
from repro.mucalc.checker import holds
from repro.mucalc.parser import parse_formula


@pytest.fixture(scope="module")
def locker_lts():
    return explore(locker_system(1, 1))


def test_locker_deadlock_free(locker_lts):
    assert find_deadlocks(locker_lts).deadlock_free


def test_locker_deadlock_free_with_contention():
    l = explore(locker_system(2, 2))
    assert find_deadlocks(l).deadlock_free


def test_locker_mutual_exclusion(locker_lts):
    # after a fault grant, no flush grant may occur before the fault
    # lock is freed (and vice versa) — the paper's 5.2.4 exclusions
    grant_f = "(c_no_faultwait|c_signal_faultwait)"
    grant_l = "(c_no_flushwait|c_signal_flushwait)"
    free_f = "c_free_faultlock"
    free_l = "c_free_flushlock"
    f1 = parse_formula(f"[T*.{grant_f}.(not {free_f})*.{grant_l}] F")
    f2 = parse_formula(f"[T*.{grant_l}.(not {free_l})*.{grant_f}] F")
    assert holds(locker_lts, f1)
    assert holds(locker_lts, f2)


def test_locker_no_double_grant():
    l = explore(locker_system(2, 0))
    # two fault clients: a second grant cannot occur while held
    f = parse_formula(
        "[T*.(c_no_faultwait|c_signal_faultwait)"
        ".(not c_free_faultlock)*"
        ".(c_no_faultwait|c_signal_faultwait)] F"
    )
    assert holds(l, f)


def test_locker_grants_eventually_possible(locker_lts):
    # from anywhere, a fault grant remains reachable (no starvation trap)
    f = parse_formula("[T*] <T*.(c_no_faultwait|c_signal_faultwait)> T")
    assert holds(locker_lts, f)


def test_locker_critical_sections_exclusive(locker_lts):
    # fault_cs between flush grant and flush free is impossible
    f = parse_formula(
        "[T*.(c_no_flushwait|c_signal_flushwait)"
        ".(not c_free_flushlock)*.fault_cs] F"
    )
    assert holds(locker_lts, f)


def test_region_spec_validates():
    spec = region_spec()
    assert "Region" in spec.process_names()


def test_region_system_serialises_accesses():
    l = explore(region_system())
    assert find_deadlocks(l).deadlock_free
    # between a sendback to t and t's answer, no other sendback happens
    f = parse_formula(
        "[T*.c_sendback(t0,p0)"
        ".(not (c_norefresh(t0)|c_refresh(t0,p0)))*"
        ".c_sendback(t1,p0)] F"
    )
    # the region hands its record to one thread at a time; the home
    # parameter in c_sendback labels varies, so check via label scan
    labels = set(l.labels)
    assert any(lab.startswith("c_sendback") for lab in labels)
    del f  # formula shape depends on data values; structural check below

    # structural serialisation check: states never enable two distinct
    # answers for different threads simultaneously
    for s in range(l.n_states):
        answering = {
            lab.split("(")[1].split(",")[0].rstrip(")")
            for lab, _ in l.successors(s)
            if lab.startswith(("c_norefresh", "c_refresh"))
        }
        assert len(answering) <= 1


def test_region_home_changes_tracked():
    l = explore(region_system(home=0))
    # a refresh to home 1 is reachable
    f = parse_formula("<T*.c_refresh(t1,p1)> T")
    # labels are c_refresh(1,1) with our int formatting; check by scan
    assert any(lab.startswith("c_refresh(1") for lab in l.labels)
    del f


def test_thread_write_remote_spec_validates():
    spec = thread_write_remote_spec()
    d = spec.lookup("WriteRemote")
    assert d.params == ("tid", "pid")


def test_locker_spec_standalone_validates():
    spec = locker_spec()
    assert "Locker" in spec.process_names()
