"""Whole-state-space invariants of the fixed protocol.

These sweep every reachable state of small configurations and assert
structural properties the informal description promises — the
reproduction of the paper's Requirement 2 methodology at the model
level.
"""

import dataclasses

import pytest

from repro.jackal.model import VIOLATION, JackalModel, Msg, Phase
from repro.jackal.params import CONFIG_1, CONFIG_2, Config, ProtocolVariant
from repro.lts.explore import breadth_first_states

CONFIGS = [
    dataclasses.replace(CONFIG_1, with_probes=False),
    dataclasses.replace(CONFIG_1, rounds=2, with_probes=False),
    dataclasses.replace(CONFIG_2, with_probes=False),
]


def sweep(config: Config, variant=ProtocolVariant.fixed()):
    model = JackalModel(config, variant)
    for state in breadth_first_states(model, max_states=400_000):
        if state == VIOLATION:
            continue
        yield model, state


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
def test_at_most_one_home(config):
    for model, state in sweep(config):
        copies = state[1]
        for r in range(model.n_regions):
            homes = [p for p in range(model.n_proc) if copies[p][r][0] == p]
            assert len(homes) <= 1, model.decode_state(state)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
def test_writerlist_only_at_home(config):
    for model, state in sweep(config):
        copies = state[1]
        for p in range(model.n_proc):
            for r in range(model.n_regions):
                home, _rs, wl, _lt = copies[p][r]
                if home != p:
                    assert wl == 0, model.decode_state(state)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
def test_localthreads_bounded(config):
    for model, state in sweep(config):
        copies = state[1]
        for p in range(model.n_proc):
            n_local = len(model.threads_on[p])
            for r in range(model.n_regions):
                lt = copies[p][r][3]
                assert 0 <= lt <= n_local


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
def test_lock_holders_match_thread_phases(config):
    have_phase = {
        0: (Phase.HAVE_SERVER,),  # server slot
        2: (Phase.HAVE_FAULT, Phase.WAIT_DATA, Phase.REMOTE_READY),
        4: (Phase.HAVE_FLUSH,),
    }
    for model, state in sweep(config):
        threads, _c, _hq, _rq, _hqa, _rqa, locks, _m = state
        for p in range(model.n_proc):
            for slot, phases in have_phase.items():
                holder = locks[p][slot]
                if holder:
                    tid = holder - 1
                    assert model.pid_of[tid] == p
                    assert threads[tid][0] in phases, model.decode_state(state)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
def test_mutual_exclusions_of_locks(config):
    for model, state in sweep(config):
        locks = state[6]
        for p in range(model.n_proc):
            sh, _sw, fh, _fw, lh, _lw = locks[p]
            # server/flush and fault/flush mutually exclusive (paper 5.2.4)
            assert not (sh and lh)
            assert not (fh and lh)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
def test_waiting_threads_are_in_want_phase(config):
    want_phase = {1: Phase.WANT_SERVER, 3: Phase.WANT_FAULT, 5: Phase.WANT_FLUSH}
    for model, state in sweep(config):
        threads, _c, _hq, _rq, _hqa, _rqa, locks, _m = state
        for p in range(model.n_proc):
            for slot, phase in want_phase.items():
                mask = locks[p][slot]
                for tid in JackalModel._bits(mask):
                    assert threads[tid][0] == phase
                    assert model.pid_of[tid] == p


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
def test_messages_well_formed(config):
    for model, state in sweep(config):
        _t, _c, hq, rq, _hqa, _rqa, _l, _m = state
        for p in range(model.n_proc):
            m = hq[p]
            if m != 0:
                assert m[0] in (Msg.REQ, Msg.FLUSH)
            m = rq[p]
            if m != 0:
                assert m[0] == Msg.RET
                # a Data Return is always for a local waiting thread
                tid = m[1]
                assert model.pid_of[tid] == p


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
def test_handler_holds_well_formed_message(config):
    for model, state in sweep(config):
        _t, _c, hq, rq, hqa, rqa, _l, _m = state
        for p in range(model.n_proc):
            if hqa[p] != 0:
                # migrations never pass through the handler: they are
                # absorbed eagerly from their dedicated slot
                assert hqa[p][0] in (Msg.REQ, Msg.FLUSH)
            if rqa[p] != 0:
                assert rqa[p][0] == Msg.RET
                assert model.pid_of[rqa[p][1]] == p


def test_dirty_thread_has_positive_localthreads():
    config = CONFIGS[0]
    for model, state in sweep(config):
        threads, copies, *_ = state
        for tid in range(model.n_threads):
            ph, _reg, _aho, _w, _rounds, dirty = threads[tid]
            p = model.pid_of[tid]
            for r in range(model.n_regions):
                if dirty >> r & 1:
                    assert copies[p][r][3] >= 1


def test_no_assertion_violations_reachable_fixed():
    for config in CONFIGS:
        model = JackalModel(config, ProtocolVariant.fixed())
        for state in breadth_first_states(model, max_states=400_000):
            assert state != VIOLATION


VARIANTS = [
    ProtocolVariant.fixed(),
    ProtocolVariant.error1(),
    ProtocolVariant.error2(),
    ProtocolVariant.buggy(),
    ProtocolVariant.no_migration(),
    ProtocolVariant.alf(),
]


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.describe())
def test_at_most_one_home_across_variants(variant):
    # even the buggy variants never create TWO homes (Error 2 loses it)
    config = dataclasses.replace(CONFIG_1, rounds=2, with_probes=False)
    for model, state in sweep(config, variant):
        copies = state[1]
        for r in range(model.n_regions):
            homes = [p for p in range(model.n_proc) if copies[p][r][0] == p]
            assert len(homes) <= 1, model.decode_state(state)


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.describe())
def test_lock_exclusions_across_variants(variant):
    config = dataclasses.replace(CONFIG_1, rounds=2, with_probes=False)
    for model, state in sweep(config, variant):
        locks = state[6]
        for p in range(model.n_proc):
            sh, _sw, fh, _fw, lh, _lw = locks[p]
            assert not (sh and lh)
            assert not (fh and lh)


def test_alf_variant_invariants():
    config = dataclasses.replace(CONFIG_2, rounds=1, with_probes=False)
    for model, state in sweep(config, ProtocolVariant.alf()):
        threads, copies, *_ = state
        for p in range(model.n_proc):
            for r in range(model.n_regions):
                home, _rs, wl, lt = copies[p][r]
                if home != p:
                    assert wl == 0
                assert 0 <= lt <= model.n_threads
