"""Reproduction of the paper's Error 1 (Section 5.4.1).

"When a thread wants to write to a region from remote ... while a
thread is waiting for a fault lock, the home of the region may migrate
to the thread's processor. Then in fact the thread writes to the region
at home, it needs to acquire the server lock instead of the fault lock.
This error resulted in a deadlock."
"""

import dataclasses

import pytest

from repro.jackal.model import JackalModel, Phase
from repro.jackal.params import CONFIG_1, ProtocolVariant
from repro.jackal.requirements import build_model, check_requirement_1
from repro.lts.trace import replay

CFG = dataclasses.replace(CONFIG_1, rounds=2)


@pytest.fixture(scope="module")
def buggy_report():
    return check_requirement_1(CFG, ProtocolVariant.error1())


def test_deadlock_found(buggy_report):
    assert not buggy_report.holds
    assert buggy_report.trace is not None


def test_fix_removes_deadlock():
    rep = check_requirement_1(CFG, ProtocolVariant.fixed())
    assert rep.holds, rep.summary()


def test_single_round_insufficient():
    # the race needs an earlier write to seed the WriterList, so one
    # write+flush round per thread cannot trigger it
    rep = check_requirement_1(CONFIG_1, ProtocolVariant.error1())
    assert rep.holds


def test_error_trace_shows_stale_wait(buggy_report):
    assert any(
        l.startswith("stale_remote_wait") for l in buggy_report.trace.labels
    )


def test_error_trace_replays_to_wedged_state(buggy_report):
    model = build_model(CFG, ProtocolVariant.error1(), probes=False)
    t = replay(model, buggy_report.trace.labels)
    final = t.final_state
    assert model.successors(final) == []
    assert not model.is_done_state(final)
    # the wedged thread waits for data while holding its fault lock
    d = model.decode_state(final)
    stuck = [th for th in d["threads"] if th["phase"] == "WAIT_DATA"]
    assert stuck
    tid = stuck[0]["tid"]
    pid = stuck[0]["pid"]
    assert d["locks"][pid]["fault"] == tid + 1


def test_error_trace_preceded_by_migration(buggy_report):
    labels = buggy_report.trace.labels
    stale_at = next(
        i for i, l in enumerate(labels) if l.startswith("stale_remote_wait")
    )
    # the home must have migrated to the waiter's processor beforehand
    assert any(
        "migrate" in l or "sponmigrate" in l or "dataret_mig" in l
        for l in labels[:stale_at]
    )


def test_error_trace_length_reported(buggy_report):
    # the paper reports >100-transition shortest traces for its model;
    # ours is less granular, but the trace is still a long scenario
    assert len(buggy_report.trace) >= 25
    assert "shortest error trace" in buggy_report.detail


def test_deadlock_also_found_in_fully_buggy_variant():
    rep = check_requirement_1(CFG, ProtocolVariant.buggy())
    assert not rep.holds


def test_cyclic_model_reproduces_paper_deadlock():
    # the paper found this deadlock on a configuration of two
    # processors, one (cyclic) thread each — so does the cyclic model:
    # both threads end up in stale remote waits holding their fault
    # locks, and the whole system wedges
    cfg = dataclasses.replace(CONFIG_1, rounds=None)
    rep = check_requirement_1(cfg, ProtocolVariant.error1())
    assert not rep.holds
    stales = [
        l for l in rep.trace.labels if l.startswith("stale_remote_wait")
    ]
    assert stales  # the Error-1 mechanism, not some other wedge


def test_cyclic_model_liveness_catches_it_too():
    from repro.jackal.requirements import check_requirement_4

    cfg = dataclasses.replace(CONFIG_1, rounds=None)
    rep = check_requirement_4(cfg, ProtocolVariant.error1())
    assert not rep.holds
    assert "write" in rep.detail
