"""The paper's four requirements on the fixed protocol (Section 5.4)."""

import dataclasses

import pytest

from repro.jackal.params import CONFIG_1, CONFIG_2, CONFIG_3, ProtocolVariant
from repro.jackal.requirements import (
    check_all_requirements,
    check_requirement_1,
    check_requirement_2,
    check_requirement_3_1,
    check_requirement_3_2,
    check_requirement_4,
    formula_3_1,
    formula_4_write,
)

FIXED = ProtocolVariant.fixed()


class TestConfig1:
    def test_all_requirements_hold(self):
        res = check_all_requirements(CONFIG_1, FIXED)
        for key, rep in res.items():
            assert rep.holds, rep.summary()
        assert set(res) == {"1", "2", "3.1", "3.2", "4"}

    def test_two_rounds(self):
        cfg = dataclasses.replace(CONFIG_1, rounds=2)
        res = check_all_requirements(cfg, FIXED)
        assert all(r.holds for r in res.values())

    def test_cyclic_model_uses_fair_liveness(self):
        cfg = dataclasses.replace(CONFIG_1, rounds=None)
        rep = check_requirement_4(cfg, FIXED)
        assert "fair" in rep.requirement
        assert rep.holds, rep.detail

    def test_cyclic_model_deadlock_free(self):
        cfg = dataclasses.replace(CONFIG_1, rounds=None)
        rep = check_requirement_1(cfg, FIXED)
        assert rep.holds


class TestConfig2:
    def test_requirements_1_to_3(self):
        rep1 = check_requirement_1(CONFIG_2, FIXED)
        assert rep1.holds, rep1.summary()
        rep2 = check_requirement_2(CONFIG_2, FIXED)
        assert rep2.holds
        rep31 = check_requirement_3_1(CONFIG_2, FIXED)
        assert rep31.holds
        rep32 = check_requirement_3_2(CONFIG_2, FIXED)
        assert rep32.holds

    def test_requirement_4(self):
        rep = check_requirement_4(CONFIG_2, FIXED)
        assert rep.holds, rep.detail


class TestConfig3:
    """The paper could only check requirements 1 and 2 on its third
    configuration; ours is tractable enough for those too."""

    def test_requirements_1_and_2(self):
        rep1 = check_requirement_1(CONFIG_3, FIXED)
        assert rep1.holds, rep1.summary()
        rep2 = check_requirement_2(CONFIG_3, FIXED)
        assert rep2.holds

    def test_requirement_3_2_skipped_for_three_processors(self):
        rep = check_requirement_3_2(CONFIG_3, FIXED)
        assert rep.holds
        assert "skipped" in rep.detail


class TestReportPlumbing:
    def test_reports_carry_lts_sizes(self):
        rep = check_requirement_1(CONFIG_1, FIXED)
        assert rep.lts_states > 100
        assert rep.lts_transitions > rep.lts_states

    def test_summary_wording(self):
        rep = check_requirement_1(CONFIG_1, FIXED)
        assert "HOLDS" in rep.summary()

    def test_skip_selection(self):
        res = check_all_requirements(CONFIG_1, FIXED, skip=("3.1", "3.2", "4"))
        assert set(res) == {"1", "2"}

    def test_formula_builders_parse_equivalent(self):
        from repro.mucalc.parser import parse_formula

        assert formula_3_1() == parse_formula("[T*.c_home] F")
        f = formula_4_write(0)
        g = parse_formula(
            "[T*.write(t0)] mu X. (<T>T /\\ [not writeover(t0)] X)"
        )
        assert f == g


class TestNoMigrationAblation:
    """With migration disabled both bugs are impossible by construction
    and all requirements hold — the ablation baseline."""

    def test_all_requirements_hold_without_migration(self):
        res = check_all_requirements(CONFIG_1, ProtocolVariant.no_migration())
        assert all(r.holds for r in res.values())

    def test_no_migration_smaller_state_space(self):
        full = check_requirement_1(CONFIG_1, FIXED)
        ablated = check_requirement_1(CONFIG_1, ProtocolVariant.no_migration())
        assert ablated.lts_states < full.lts_states


class TestBitstateApproximation:
    """Supertrace-hashed requirement 1 for oversized configurations."""

    def test_finds_error1_deadlock(self):
        cfg = dataclasses.replace(CONFIG_1, rounds=None)
        from repro.jackal.requirements import check_requirement_1_bitstate

        rep = check_requirement_1_bitstate(
            cfg, ProtocolVariant.error1(), table_bytes=1 << 20
        )
        assert not rep.holds
        assert "improper terminal" in rep.detail

    def test_clean_on_fixed(self):
        cfg = dataclasses.replace(CONFIG_1, rounds=None)
        from repro.jackal.requirements import check_requirement_1_bitstate

        rep = check_requirement_1_bitstate(
            cfg, ProtocolVariant.fixed(), table_bytes=1 << 20
        )
        assert rep.holds
        assert "fill" in rep.detail

    def test_sweeps_config3(self):
        from repro.jackal.requirements import check_requirement_1_bitstate

        rep = check_requirement_1_bitstate(
            CONFIG_3, ProtocolVariant.fixed(), table_bytes=1 << 22
        )
        assert rep.holds
        assert rep.lts_states > 5000

    @pytest.mark.slow
    def test_config3_cyclic_prefix_deadlock_free(self):
        # regression for the store-and-forward wedge that existed before
        # migrations moved to their control slot: a 300k-state prefix of
        # the cyclic 3-processor instance used to contain deadlocks
        cfg = dataclasses.replace(CONFIG_3, rounds=None)
        from repro.jackal.requirements import check_requirement_1_bitstate

        rep = check_requirement_1_bitstate(
            cfg, ProtocolVariant.fixed(),
            table_bytes=1 << 23, max_states=300_000,
        )
        assert rep.holds, rep.detail
