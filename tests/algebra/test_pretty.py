"""Tests for runtime-term pretty printing."""

from repro.algebra import (
    Act,
    Alt,
    Call,
    Comm,
    Delta,
    Encap,
    Hide,
    Par,
    ProcessDef,
    Rename,
    Seq,
    Spec,
    SpecSystem,
    pretty_term,
)
from repro.algebra.semantics import TERMINATED

SPEC = Spec(defs=[ProcessDef("P", (), Act("a"))])
SYS = SpecSystem(SPEC, Act("a"))


def close(term):
    return SYS.close(term, {})


def test_terminated():
    assert pretty_term(TERMINATED) == "√"


def test_delta_and_act():
    assert pretty_term(close(Delta())) == "delta"
    assert pretty_term(close(Act("a"))) == "a"
    assert pretty_term(close(Act("a", 1, 2))) == "a(1,2)"


def test_call():
    assert pretty_term(close(Call("P"))) == "P"


def test_seq_and_alt():
    t = close(Seq(Act("a"), Alt(Act("b"), Act("c"))))
    assert pretty_term(t) == "a . (b + c)"
    t2 = close(Alt(Seq(Act("a"), Act("b")), Act("c")))
    assert pretty_term(t2) == "a . b + c"


def test_par():
    t = close(Par(Act("a"), Act("b"), Comm(("a", "b", "c"))))
    assert pretty_term(t) == "(a || b)"


def test_encap_hide_rename():
    assert pretty_term(close(Encap(["x"], Act("a")))) == "encap({x}, a)"
    assert pretty_term(close(Hide(["x", "y"], Act("a")))) == "hide({x,y}, a)"
    assert pretty_term(close(Rename({"a": "z"}, Act("a")))) == (
        "rename({a->z}, a)"
    )


def test_state_pretty_through_execution():
    sys = SpecSystem(SPEC, Seq(Act("a"), Call("P")))
    s0 = sys.initial_state()
    assert pretty_term(s0) == "a . P"
    ((_, s1),) = sys.successors(s0)
    assert pretty_term(s1) == "P"
