"""Tests for specification validation."""

import pytest

from repro.errors import SpecificationError
from repro.algebra import (
    Act,
    Alt,
    Call,
    Cond,
    DVar,
    FiniteSort,
    ProcessDef,
    Seq,
    Spec,
    Sum,
)

D = FiniteSort("D", (0, 1))


def test_valid_spec():
    spec = Spec(defs=[ProcessDef("P", ("x",), Act("a", DVar("x")))])
    assert spec.lookup("P").params == ("x",)
    assert list(spec.process_names()) == ["P"]


def test_duplicate_definition_rejected():
    with pytest.raises(SpecificationError, match="duplicate"):
        Spec(defs=[
            ProcessDef("P", (), Act("a")),
            ProcessDef("P", (), Act("b")),
        ])


def test_duplicate_params_rejected():
    with pytest.raises(SpecificationError, match="duplicate parameter"):
        Spec(defs=[ProcessDef("P", ("x", "x"), Act("a"))])


def test_unknown_call_rejected():
    with pytest.raises(SpecificationError, match="unknown process"):
        Spec(defs=[ProcessDef("P", (), Call("Q"))])


def test_arity_mismatch_rejected():
    with pytest.raises(SpecificationError, match="parameter"):
        Spec(defs=[
            ProcessDef("P", ("x",), Act("a", DVar("x"))),
            ProcessDef("Q", (), Call("P")),
        ])


def test_unbound_variable_rejected():
    with pytest.raises(SpecificationError, match="unbound"):
        Spec(defs=[ProcessDef("P", (), Act("a", DVar("x")))])


def test_unbound_in_condition_rejected():
    with pytest.raises(SpecificationError, match="unbound"):
        Spec(defs=[ProcessDef("P", (), Cond(Act("a"), DVar("b")))])


def test_sum_binds_variable():
    Spec(defs=[ProcessDef("P", (), Sum("d", D, Act("a", DVar("d"))))])


def test_sum_shadowing_rejected():
    with pytest.raises(SpecificationError, match="shadows"):
        Spec(defs=[
            ProcessDef("P", ("d",), Sum("d", D, Act("a", DVar("d"))))
        ])


def test_lookup_unknown():
    spec = Spec(defs=[ProcessDef("P", (), Act("a"))])
    with pytest.raises(SpecificationError, match="unknown"):
        spec.lookup("Nope")


def test_validate_extra_terms():
    spec = Spec(defs=[ProcessDef("P", ("x",), Act("a", DVar("x")))])
    with pytest.raises(SpecificationError):
        spec.validate(extra_terms=[Call("P")])
    spec.validate(extra_terms=[Call("P", 1)])


def test_nested_operators_checked():
    with pytest.raises(SpecificationError, match="unbound"):
        Spec(defs=[
            ProcessDef("P", (), Seq(Act("a"), Alt(Act("b", DVar("q")), Act("c"))))
        ])


def test_str_of_def():
    d = ProcessDef("P", ("x",), Act("a", DVar("x")))
    assert str(d) == "proc P(x) = a(x)"
    d2 = ProcessDef("Q", (), Act("b"))
    assert str(d2) == "proc Q = b"
