"""Tests for the SOS semantics: algebraic laws and composition."""

import pytest

from repro.errors import SpecificationError
from repro.algebra import (
    Act,
    Alt,
    Call,
    Comm,
    Cond,
    Delta,
    DVar,
    Encap,
    FiniteSort,
    Fn,
    Hide,
    Par,
    ProcessDef,
    Rename,
    Seq,
    Spec,
    SpecSystem,
    Sum,
    Tau,
    TERMINATED,
)
from repro.lts.explore import explore
from repro.lts.reduction import minimize_strong

D = FiniteSort("D", (0, 1))
EMPTY = Spec(defs=[])


def lts_of(term, spec=EMPTY):
    return explore(SpecSystem(spec, term))


def bisimilar(t1, t2, spec=EMPTY) -> bool:
    return minimize_strong(lts_of(t1, spec)) == minimize_strong(lts_of(t2, spec))


def test_single_action():
    l = lts_of(Act("a"))
    assert l.n_states == 2
    assert [t.label for t in l.transitions()] == ["a"]


def test_delta_deadlocks():
    l = lts_of(Delta())
    assert l.n_states == 1
    assert l.n_transitions == 0


def test_seq_order():
    l = lts_of(Seq(Act("a"), Act("b")))
    assert [t.label for t in l.transitions()] == ["a", "b"]
    assert l.n_states == 3


def test_alt_commutative_and_associative():
    a, b, c = Act("a"), Act("b"), Act("c")
    assert bisimilar(Alt(a, b), Alt(b, a))
    assert bisimilar(Alt(Alt(a, b), c), Alt(a, Alt(b, c)))


def test_alt_delta_unit():
    a = Act("a")
    assert bisimilar(Alt(a, Delta()), a)


def test_seq_associative():
    a, b, c = Act("a"), Act("b"), Act("c")
    assert bisimilar(Seq(Seq(a, b), c), Seq(a, Seq(b, c)))


def test_delta_absorbs_seq():
    # delta . p == delta
    assert bisimilar(Seq(Delta(), Act("a")), Delta())


def test_cond_resolution():
    l = lts_of(Cond(Act("a"), True, Act("b")))
    assert [t.label for t in l.transitions()] == ["a"]
    l2 = lts_of(Cond(Act("a"), False, Act("b")))
    assert [t.label for t in l2.transitions()] == ["b"]


def test_cond_non_boolean_rejected():
    with pytest.raises(SpecificationError, match="non-boolean"):
        lts_of(Cond(Act("a"), Fn("n", lambda: 3)))


def test_sum_expansion():
    l = lts_of(Sum("d", D, Act("a", DVar("d"))))
    labels = sorted(t.label for t in l.transitions())
    assert labels == ["a(0)", "a(1)"]


def test_recursion_cycles():
    spec = Spec(defs=[ProcessDef("P", (), Seq(Act("a"), Call("P")))])
    l = explore(SpecSystem(spec, Call("P")))
    assert l.n_states == 1
    assert l.n_transitions == 1


def test_parameterised_recursion():
    inc = Fn("inc_mod", lambda x: (x + 1) % 3, DVar("n"))
    spec = Spec(defs=[
        ProcessDef("Count", ("n",), Seq(Act("tick", DVar("n")), Call("Count", inc)))
    ])
    l = explore(SpecSystem(spec, Call("Count", 0)))
    assert l.n_states == 3
    assert sorted(t.label for t in l.transitions()) == ["tick(0)", "tick(1)", "tick(2)"]


def test_unguarded_recursion_detected():
    spec = Spec(defs=[ProcessDef("P", (), Alt(Call("P"), Act("a")))])
    with pytest.raises(SpecificationError, match="unguarded"):
        explore(SpecSystem(spec, Call("P")))


def test_par_interleaving():
    l = lts_of(Par(Act("a"), Act("b")))
    assert l.n_states == 4
    assert l.n_transitions == 4


def test_par_communication():
    comm = Comm(("s", "r", "c"))
    l = lts_of(Par(Act("s", 1), Act("r", 1), comm))
    labels = {t.label for t in l.transitions()}
    assert "c(1)" in labels  # synchronisation happened
    assert "s(1)" in labels  # interleaved singles still possible


def test_communication_requires_matching_data():
    comm = Comm(("s", "r", "c"))
    l = lts_of(Par(Act("s", 1), Act("r", 2), comm))
    assert not any(t.label.startswith("c") for t in l.transitions())


def test_encap_forces_synchronisation():
    comm = Comm(("s", "r", "c"))
    l = lts_of(Encap(["s", "r"], Par(Act("s", 1), Act("r", 1), comm)))
    assert [t.label for t in l.transitions()] == ["c(1)"]
    assert l.n_states == 2


def test_encap_can_deadlock():
    comm = Comm(("s", "r", "c"))
    l = lts_of(Encap(["s", "r"], Par(Act("s", 1), Act("r", 2), comm)))
    assert l.n_transitions == 0


def test_hide_renames_to_tau():
    l = lts_of(Hide(["a"], Seq(Act("a"), Act("b"))))
    assert [t.label for t in l.transitions()] == ["tau", "b"]


def test_rename():
    l = lts_of(Rename({"a": "z"}, Act("a", 5)))
    assert [t.label for t in l.transitions()] == ["z(5)"]


def test_par_termination_propagates():
    # (a || b) . c must execute c after both a and b
    l = lts_of(Seq(Par(Act("a"), Act("b")), Act("c")))
    labels = [t.label for t in l.transitions()]
    assert labels.count("c") == 1
    # c enabled only in the state after both a and b
    deadlocks = l.deadlock_states()
    assert len(deadlocks) == 1


def test_comm_conflicting_rejected():
    with pytest.raises(SpecificationError, match="conflicting"):
        Comm(("s", "r", "c1"), ("r", "s", "c2"))


def test_comm_pairs_convention():
    comm = Comm.pairs("sendback", "refresh")
    assert comm.result("s_sendback", "r_sendback") == "c_sendback"
    assert comm.result("s_refresh", "r_refresh") == "c_refresh"
    assert comm.result("s_sendback", "r_refresh") is None


def test_comm_same_name():
    comm = Comm(("sync", "sync", "both"))
    l = lts_of(Encap(["sync"], Par(Act("sync"), Act("sync"), comm)))
    assert [t.label for t in l.transitions()] == ["both"]


def test_tau_prefix():
    l = lts_of(Seq(Tau(), Act("a")))
    assert [t.label for t in l.transitions()] == ["tau", "a"]


def test_terminated_constant():
    sys = SpecSystem(EMPTY, Act("a"))
    (label, nxt), = sys.successors(sys.initial_state())
    assert label == "a"
    assert nxt == TERMINATED
    assert sys.is_terminated(nxt)
    assert sys.successors(nxt) == []


def test_expansion_law_small():
    # a || b  ~  a.b + b.a (no communication)
    a, b = Act("a"), Act("b")
    assert bisimilar(Par(a, b), Alt(Seq(a, b), Seq(b, a)))
