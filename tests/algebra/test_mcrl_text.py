"""Tests for the textual specification format."""

import pytest

from repro.algebra.mcrl_text import parse_mcrl
from repro.algebra.examples import one_place_buffer
from repro.errors import SpecificationError
from repro.lts.explore import explore
from repro.lts.reduction import bisimilar

BUFFER = """
% the canonical one-place buffer
sort D = 0 | 1
proc B = sum(d: D, in(d) . out(d) . B)
init B
"""


def test_buffer_roundtrip():
    module = parse_mcrl(BUFFER)
    lts = explore(module.system())
    assert bisimilar(lts, explore(one_place_buffer()), kind="strong")


def test_comment_and_sorts():
    module = parse_mcrl(BUFFER)
    assert module.sorts["D"].values == (0, 1)


def test_symbolic_sort_values():
    text = """
sort Color = red | green
proc P = sum(c: Color, show(c) . P)
init P
"""
    lts = explore(parse_mcrl(text).system())
    assert sorted(lts.labels) == ["show(green)", "show(red)"]


def test_two_buffers_with_comm():
    text = """
sort D = 0 | 1
proc Left = sum(d: D, in(d) . s_link(d) . Left)
proc Right = sum(d: D, r_link(d) . out(d) . Right)
comm s_link | r_link = c_link
init hide({c_link}, encap({s_link, r_link}, Left || Right))
"""
    module = parse_mcrl(text)
    lts = explore(module.system())
    from repro.algebra.examples import two_place_buffer

    assert bisimilar(lts, explore(two_place_buffer()), kind="strong")


def test_conditional_and_builtin_functions():
    text = """
sort Bit = 0 | 1
proc P(b: Bit) = (is_zero(b) . P(flip(b))) <| eq(b, 0) |> (is_one(b) . P(flip(b)))
init P(0)
"""
    lts = explore(parse_mcrl(text).system())
    assert sorted(lts.labels) == ["is_one(1)", "is_zero(0)"]
    assert lts.n_states == 2


def test_eqeq_sugar():
    text = """
sort Bit = 0 | 1
proc P(b: Bit) = zero . P(flip(b)) <| b == 0 |> one . P(flip(b))
init P(0)
"""
    lts = explore(parse_mcrl(text).system())
    assert set(lts.labels) == {"zero", "one"}


def test_custom_functions():
    text = """
sort N = 0 | 1 | 2
func double
proc P(n: N) = tick(double(n)) . P(inc(n)) <| ne(n, 2) |> done
init P(0)
"""
    module = parse_mcrl(text, functions={"double": lambda n: 2 * n})
    lts = explore(module.system())
    assert "tick(2)" in lts.labels
    assert "done" in lts.labels


def test_undeclared_function_rejected():
    with pytest.raises(SpecificationError, match="not supplied"):
        parse_mcrl("func mystery\nproc P = a\ninit P")


def test_unknown_function_in_expr_rejected():
    text = """
sort D = 0 | 1
proc P = a(zap(1)) . P
init P
"""
    with pytest.raises(SpecificationError, match="unknown function"):
        parse_mcrl(text)


def test_missing_init_rejected():
    with pytest.raises(SpecificationError, match="missing init"):
        parse_mcrl("proc P = a . P")


def test_duplicate_init_rejected():
    with pytest.raises(SpecificationError, match="duplicate init"):
        parse_mcrl("proc P = a . P\ninit P\ninit P")


def test_unknown_sort_rejected():
    with pytest.raises(SpecificationError, match="unknown sort"):
        parse_mcrl("proc P = sum(d: Nope, a(d) . P)\ninit P")


def test_validation_happens():
    # call arity errors surface through Spec validation
    text = """
proc P(x: D) = a(x) . P(x)
init P
"""
    with pytest.raises(SpecificationError):
        parse_mcrl(text)


def test_parse_error_carries_line():
    with pytest.raises(SpecificationError, match="line 3"):
        parse_mcrl("proc P = a . P\ninit P\n???")


def test_tau_and_delta():
    text = """
proc P = tau . delta + a . P
init P
"""
    lts = explore(parse_mcrl(text).system())
    assert set(lts.labels) == {"tau", "a"}


def test_abp_from_text_file():
    """The ABP, written as a textual specification, still verifies."""
    text = """
sort D = 0 | 1
sort Bit = 0 | 1

proc Send(b: Bit) = sum(d: D, in(d) . Sending(d, b))
proc Sending(d: D, b: Bit) =
    s_frame(d, b) . ( r_ack(b) . Send(flip(b))
                    + r_ack(flip(b)) . Sending(d, b)
                    + r_ack_err . Sending(d, b) )
proc Recv(b: Bit) =
      sum(d: D, r_frame(d, b) . out(d) . s_ack(b) . Recv(flip(b))
              + r_frame(d, flip(b)) . s_ack(flip(b)) . Recv(b))
    + r_frame_err . s_ack(flip(b)) . Recv(b)
proc K = sum(d: D, sum(b: Bit, k_in(d, b) . (k_out(d, b) . K + k_err . K)))
proc L = sum(b: Bit, l_in(b) . (l_out(b) . L + l_err . L))

comm s_frame | k_in = c_fin
comm k_out | r_frame = c_fout
comm k_err | r_frame_err = c_ferr
comm s_ack | l_in = c_ain
comm l_out | r_ack = c_aout
comm l_err | r_ack_err = c_aerr

init hide({c_fin, c_fout, c_ferr, c_ain, c_aout, c_aerr},
     encap({s_frame, k_in, k_out, r_frame, k_err, r_frame_err,
            s_ack, l_in, l_out, r_ack, l_err, r_ack_err},
            Send(0) || K || L || Recv(0)))
"""
    module = parse_mcrl(text)
    lts = explore(module.system())
    assert bisimilar(lts, explore(one_place_buffer()), kind="branching")
