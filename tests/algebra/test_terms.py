"""Tests for term and expression construction."""

import pytest

from repro.errors import SpecificationError
from repro.algebra.terms import (
    Act,
    Alt,
    Call,
    Cond,
    Const,
    Delta,
    DVar,
    FiniteSort,
    Fn,
    Seq,
    Sum,
    Tau,
)


def test_const_and_var_eval():
    assert Const(7).eval({}) == 7
    assert DVar("x").eval({"x": 3}) == 3
    with pytest.raises(SpecificationError, match="unbound"):
        DVar("x").eval({})


def test_fn_eval_and_coercion():
    f = Fn("add", lambda a, b: a + b, DVar("x"), 1)
    assert f.eval({"x": 2}) == 3
    assert f.free() == {"x"}
    assert str(f) == "add(x, 1)"


def test_act_coerces_args():
    a = Act("send", 1, DVar("d"))
    assert isinstance(a.args[0], Const)
    assert a.free() == {"d"}
    assert str(a) == "send(1, d)"
    assert str(Act("ping")) == "ping"


def test_tau_restrictions():
    assert Tau().name == "tau"
    with pytest.raises(SpecificationError):
        Act("tau", 1)
    with pytest.raises(SpecificationError):
        Act("delta")


def test_finite_sort_nonempty():
    with pytest.raises(SpecificationError):
        FiniteSort("E", ())
    assert FiniteSort("B", (True, False)).values == (True, False)


def test_free_variables_through_operators():
    t = Seq(Act("a", DVar("x")), Alt(Act("b", DVar("y")), Delta()))
    assert t.free() == {"x", "y"}
    s = Sum("x", FiniteSort("D", (0, 1)), Act("a", DVar("x"), DVar("z")))
    assert s.free() == {"z"}


def test_cond_defaults_to_delta():
    c = Cond(Act("a"), True)
    assert isinstance(c.els, Delta)
    assert c.free() == frozenset()


def test_cond_free_includes_condition():
    c = Cond(Act("a"), DVar("b"), Act("c"))
    assert c.free() == {"b"}


def test_str_renderings():
    assert str(Delta()) == "delta"
    assert "+" in str(Alt(Act("a"), Act("b")))
    assert "sum(" in str(Sum("d", FiniteSort("D", (0,)), Act("a", DVar("d"))))
    assert "<|" in str(Cond(Act("a"), True, Act("b")))
    assert str(Call("P", 1)) == "P(1)"
    assert str(Call("P")) == "P"
