"""Tests for the classic algebra examples (buffers, ABP)."""

import pytest

from repro.algebra.examples import (
    alternating_bit_protocol,
    one_place_buffer,
    two_place_buffer,
)
from repro.lts.deadlock import find_deadlocks
from repro.lts.explore import explore
from repro.lts.reduction import bisimilar, minimize_branching
from repro.mucalc.checker import holds
from repro.mucalc.parser import parse_formula


@pytest.fixture(scope="module")
def abp_lts():
    return explore(alternating_bit_protocol())


def test_one_place_buffer_shape():
    l = explore(one_place_buffer())
    assert l.n_states == 3
    assert sorted(l.labels) == ["in(0)", "in(1)", "out(0)", "out(1)"]


def test_two_place_buffer_can_hold_two():
    l = explore(two_place_buffer())
    f = parse_formula("<in(0).tau.in(1)> T")
    assert holds(l, f)
    # but not three
    f3 = parse_formula("<in(0).tau.in(1).in(0)> T")
    assert not holds(l, f3)


def test_buffers_not_bisimilar():
    b1 = explore(one_place_buffer())
    b2 = explore(two_place_buffer())
    assert not bisimilar(b1, b2, kind="branching")


def test_abp_deadlock_free(abp_lts):
    assert find_deadlocks(abp_lts).deadlock_free


def test_abp_is_a_one_place_buffer(abp_lts):
    """The classical ABP correctness theorem, via branching bisimulation."""
    b1 = explore(one_place_buffer())
    assert bisimilar(abp_lts, b1, kind="branching")
    assert not bisimilar(abp_lts, b1, kind="strong")


def test_abp_reduces_to_three_states(abp_lts):
    reduced = minimize_branching(abp_lts)
    assert reduced.n_states == 3
    assert reduced.n_transitions == 4


def test_abp_no_message_invention(abp_lts):
    # an out(d) can only follow an in(d) with the same datum
    for d in (0, 1):
        other = 1 - d
        f = parse_formula(
            f"[(not in({d}))*.out({d})] F"
        )
        assert holds(abp_lts, f), f"out({d}) before any in({d})"
        del other


def test_abp_delivery_remains_possible(abp_lts):
    # lossy channels may retry forever, but delivery stays reachable
    f = parse_formula("[T*.in(1).(not out(1))*] <T*.out(1)> T")
    assert holds(abp_lts, f)


def test_abp_exact_inevitability_fails_without_fairness(abp_lts):
    # the channels can lose every frame: exact inevitability is false —
    # exactly why branching (not strong) equivalence is the right notion
    f = parse_formula("[T*.in(1)] mu X. (<T>T /\\ [not out(1)] X)")
    assert not holds(abp_lts, f)


def test_larger_value_domain():
    l = explore(alternating_bit_protocol(values=(0, 1, 2)))
    b1 = explore(one_place_buffer(values=(0, 1, 2)))
    assert bisimilar(l, b1, kind="branching")


def test_abp_divergence_sensitivity(abp_lts):
    """Divergence-sensitive branching bisimulation rejects the ABP =
    buffer equation: the lossy channels can babble (tau-diverge)
    forever. The divergence-blind verdict is the fairness assumption
    made explicit."""
    b1 = explore(one_place_buffer())
    assert bisimilar(abp_lts, b1, kind="branching")
    assert not bisimilar(abp_lts, b1, kind="branching-div")


def test_divergence_sensitive_reflexive(abp_lts):
    assert bisimilar(abp_lts, abp_lts, kind="branching-div")


def test_divergence_sensitive_on_tau_free_systems():
    b1 = explore(one_place_buffer())
    b2 = explore(two_place_buffer())
    # tau-free (b1) and tau-converging (b2) systems: -div agrees with blind
    assert bisimilar(b2, b2, kind="branching-div")
    assert not bisimilar(b1, b2, kind="branching-div")


def test_unknown_bisimulation_kind_rejected(abp_lts):
    import pytest as _pytest

    with _pytest.raises(ValueError, match="unknown"):
        bisimilar(abp_lts, abp_lts, kind="telepathic")
