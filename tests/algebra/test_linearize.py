"""Tests for linearization and the LPE expansion theorem."""

import pytest

from repro.algebra import (
    Act,
    Alt,
    Call,
    Comm,
    Cond,
    Delta,
    DVar,
    FiniteSort,
    Fn,
    ProcessDef,
    Seq,
    Spec,
    SpecSystem,
    Sum,
)
from repro.algebra.examples import alternating_bit_protocol, one_place_buffer
from repro.algebra.linearize import (
    NEXT_TERM,
    encapsulate,
    hide_actions,
    linearize,
    parallel_expand,
)
from repro.errors import SpecificationError
from repro.lts.explore import explore
from repro.lts.reduction import bisimilar

D = FiniteSort("D", (0, 1))


def spec_of(*defs) -> Spec:
    return Spec(defs=list(defs))


def assert_equivalent(spec: Spec, init: Call) -> None:
    """Linearised semantics must be strongly bisimilar to the SOS one."""
    lpe = linearize(spec, init)
    direct = explore(SpecSystem(spec, init))
    via_lpe = explore(lpe)
    assert bisimilar(via_lpe, direct, kind="strong"), lpe.describe()


def test_buffer():
    spec = spec_of(
        ProcessDef("B", (), Sum("d", D, Seq(Act("in", DVar("d")),
                                            Seq(Act("out", DVar("d")), Call("B")))))
    )
    lpe = linearize(spec, Call("B"))
    assert lpe.n_positions() == 2
    assert len(lpe.summands) == 2
    assert lpe.action_names() == {"in", "out"}
    assert_equivalent(spec, Call("B"))


def test_parameterised_recursion():
    inc = Fn("inc", lambda x: (x + 1) % 3, DVar("n"))
    spec = spec_of(
        ProcessDef("C", ("n",), Seq(Act("tick", DVar("n")), Call("C", inc)))
    )
    assert_equivalent(spec, Call("C", 0))


def test_choice_and_conditions():
    eq0 = Fn("eq0", lambda x: x == 0, DVar("n"))
    spec = spec_of(
        ProcessDef(
            "P", ("n",),
            Cond(Seq(Act("zero"), Call("P", 1)),
                 eq0,
                 Alt(Seq(Act("one"), Call("P", 0)), Act("stop"))),
        )
    )
    assert_equivalent(spec, Call("P", 0))
    lpe = linearize(spec, Call("P", 0))
    # the conditional produced complementary path conditions
    assert any(s.conds for s in lpe.summands)
    # 'stop' terminates
    stops = [s for s in lpe.summands if s.action == "stop"]
    assert stops and stops[0].next_kind == NEXT_TERM


def test_seq_rotation():
    # ((a.b).c).P — nested left Seq must rotate
    spec = spec_of(
        ProcessDef("P", (), Seq(Seq(Seq(Act("a"), Act("b")), Act("c")), Call("P")))
    )
    assert_equivalent(spec, Call("P"))


def test_inlining_substitution_avoids_capture():
    # P's sum variable d flows into Q via an actionless call; Q's own
    # sum over d must be renamed during inlining or the argument would
    # be captured
    spec = spec_of(
        ProcessDef(
            "Q", ("x",),
            Sum("d", D, Seq(Act("b", DVar("d"), DVar("x")),
                            Call("Q", DVar("x")))),
        ),
        ProcessDef("P", (), Sum("d", D, Call("Q", DVar("d")))),
    )
    assert_equivalent(spec, Call("P"))
    lpe = linearize(spec, Call("P"))
    # labels must pair every (d', x) combination, so b(0,1) is reachable
    lts = explore(lpe)
    assert "b(0,1)" in lts.labels


def test_actionless_call_inlined():
    spec = spec_of(
        ProcessDef("P", (), Alt(Call("Q"), Seq(Act("p"), Call("P")))),
        ProcessDef("Q", (), Seq(Act("q"), Call("Q"))),
    )
    assert_equivalent(spec, Call("P"))


def test_non_tail_call_rejected():
    spec = spec_of(
        ProcessDef("P", (), Seq(Call("Q"), Act("after"))),
        ProcessDef("Q", (), Act("q")),
    )
    with pytest.raises(SpecificationError, match="non-tail"):
        linearize(spec, Call("P"))


def test_init_must_be_closed_call():
    spec = spec_of(ProcessDef("P", (), Act("a")))
    with pytest.raises(SpecificationError):
        linearize(spec, Act("a"))  # type: ignore[arg-type]
    with pytest.raises(SpecificationError):
        linearize(spec, Call("P", DVar("x")))


def test_describe_output():
    spec = spec_of(
        ProcessDef("B", (), Sum("d", D, Seq(Act("in", DVar("d")),
                                            Seq(Act("out", DVar("d")), Call("B")))))
    )
    text = linearize(spec, Call("B")).describe()
    assert "sum(d:D)" in text
    assert "in(d)" in text


def test_parallel_expansion_simple():
    spec = spec_of(
        ProcessDef("S", (), Seq(Act("s", 1), Call("S"))),
        ProcessDef("R", (), Seq(Act("r", 1), Call("R"))),
    )
    comm = Comm(("s", "r", "c"))
    prod = parallel_expand(
        linearize(spec, Call("S")), linearize(spec, Call("R")), comm
    )
    lts = explore(prod)
    assert "c(1)" in lts.labels
    closed = encapsulate(prod, ["s", "r"])
    lts2 = explore(closed)
    assert set(lts2.labels) == {"c(1)"}


def test_hiding_on_product():
    spec = spec_of(
        ProcessDef("S", (), Seq(Act("s", 1), Call("S"))),
        ProcessDef("R", (), Seq(Act("r", 1), Call("R"))),
    )
    comm = Comm(("s", "r", "c"))
    prod = hide_actions(
        encapsulate(
            parallel_expand(
                linearize(spec, Call("S")), linearize(spec, Call("R")), comm
            ),
            ["s", "r"],
        ),
        ["c"],
    )
    lts = explore(prod)
    assert lts.labels == ["tau"]


def test_full_abp_pipeline_via_lpes():
    """The complete muCRL pipeline: linearise ABP components, apply the
    expansion theorem, encapsulate, hide — and get exactly the direct
    SOS semantics (strong bisimilarity) and the one-place buffer
    (branching bisimilarity)."""
    sys_direct = alternating_bit_protocol()
    spec = sys_direct.spec
    comm = Comm(
        ("s_frame", "k_in", "c_frame_in"),
        ("k_out", "r_frame", "c_frame_out"),
        ("k_err", "r_frame_err", "c_frame_err"),
        ("s_ack", "l_in", "c_ack_in"),
        ("l_out", "r_ack", "c_ack_out"),
        ("l_err", "r_ack_err", "c_ack_err"),
    )
    send = linearize(spec, Call("Send", 0))
    recv = linearize(spec, Call("Recv", 0))
    chan_k = linearize(spec, Call("K"))
    chan_l = linearize(spec, Call("L"))
    prod = parallel_expand(
        parallel_expand(parallel_expand(send, chan_k, comm), chan_l, comm),
        recv,
        comm,
    )
    blocked = [
        "s_frame", "k_in", "k_out", "r_frame", "k_err", "r_frame_err",
        "s_ack", "l_in", "l_out", "r_ack", "l_err", "r_ack_err",
    ]
    internal = [
        "c_frame_in", "c_frame_out", "c_frame_err",
        "c_ack_in", "c_ack_out", "c_ack_err",
    ]
    prod = hide_actions(encapsulate(prod, blocked), internal)
    lts = explore(prod)
    assert bisimilar(lts, explore(sys_direct), kind="strong")
    assert bisimilar(lts, explore(one_place_buffer()), kind="branching")
