"""Smoke tests: every example script runs and prints its headline."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_mucrl_fragments():
    out = run_example("mucrl_fragments.py")
    assert "fault/flush mutual exclusion: True" in out
    assert "des (" in out  # .aut rendering


def test_jmm_conformance():
    out = run_example("jmm_conformance.py")
    assert "IMPLEMENTS the JMM" in out


@pytest.mark.slow
def test_quickstart():
    out = run_example("quickstart.py")
    assert out.count("HOLDS") >= 5
    assert "VIOLATED" in out  # the rediscovered bugs


@pytest.mark.slow
def test_error1_hunt():
    out = run_example("error1_deadlock_hunt.py")
    assert "narrated shortest error trace" in out
    assert "stale_remote_wait" in out or "never arrive" in out


@pytest.mark.slow
def test_error2_home_loss():
    out = run_example("error2_home_loss.py")
    assert "the home is gone" in out


@pytest.mark.slow
def test_table8_one_round():
    out = run_example("table8.py", "--rounds", "1")
    assert "Table 8 reproduction" in out
    assert out.count("yes") >= 3


def test_text_spec():
    out = run_example("text_spec.py")
    assert "branching-bisimilar to a one-place buffer: True" in out
    assert "deadlock free" in out


def test_lpe_pipeline():
    out = run_example("lpe_pipeline.py")
    assert "strongly bisimilar to the direct SOS semantics: True" in out
    assert "branching-bisimilar to a one-place buffer: True" in out
    assert "divergence-sensitive equivalent to the buffer: False" in out


@pytest.mark.slow
def test_trace_replay():
    out = run_example("trace_replay.py")
    assert "flight recorder report" in out
    assert "requirement checks:" in out
    assert "phase breakdown (replayed from the trace):" in out
    assert "ring mode kept the last 8" in out
