"""ProgressReporter: rate limiting, TTY detection, plain-line fallback."""

from __future__ import annotations

import io

from repro.obs.progress import NULL_PROGRESS, ProgressReporter


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class FakeTTY(io.StringIO):
    def isatty(self):
        return True


def test_non_tty_stream_gets_plain_lines():
    out = io.StringIO()  # StringIO.isatty() is False
    clock = FakeClock()
    pr = ProgressReporter(stream=out, interval=0.5, _clock=clock)
    for _ in range(3):
        clock.t += 1.0
        pr.maybe(states=1000, depth=2)
    pr.done()
    text = out.getvalue()
    assert "\r" not in text and "\x1b" not in text
    assert text.count("[repro] states 1,000 | depth 2\n") == 3


def test_tty_stream_rewrites_in_place():
    out = FakeTTY()
    clock = FakeClock()
    pr = ProgressReporter(stream=out, interval=0.5, _clock=clock)
    for _ in range(2):
        clock.t += 1.0
        pr.maybe(states=5)
    pr.done()
    text = out.getvalue()
    assert text.startswith("\r[repro] ")
    assert "\x1b[K" in text
    assert text.count("\n") == 1  # only done() terminates the line


def test_rate_limit_and_done_idempotent():
    out = FakeTTY()
    clock = FakeClock()
    pr = ProgressReporter(stream=out, interval=10.0, _clock=clock)
    clock.t = 11.0
    pr.maybe(states=1)
    pr.maybe(states=2)  # inside the interval: dropped
    assert out.getvalue().count("[repro]") == 1
    pr.done()
    pr.done()  # second done is a no-op
    assert out.getvalue().count("\n") == 1


def test_non_tty_done_without_output_is_silent():
    out = io.StringIO()
    pr = ProgressReporter(stream=out, interval=10.0, _clock=FakeClock())
    pr.done()
    assert out.getvalue() == ""


def test_stream_without_isatty_defaults_to_plain():
    class Bare:
        def __init__(self):
            self.chunks = []

        def write(self, s):
            self.chunks.append(s)

        def flush(self):
            pass

    out = Bare()
    clock = FakeClock()
    pr = ProgressReporter(stream=out, interval=0.0, _clock=clock)
    clock.t = 1.0
    pr.maybe(states=1)
    assert "".join(out.chunks).endswith("\n")


def test_null_progress_is_inert():
    assert NULL_PROGRESS.enabled is False
    NULL_PROGRESS.maybe(states=1)
    NULL_PROGRESS.done()
