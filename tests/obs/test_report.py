"""Trace rendering: phase breakdown math and the timeline report."""

from __future__ import annotations

from repro import obs
from repro.lts.engine import explore_fast
from repro.obs.report import phase_breakdown, render_report, report_from_file


def test_phase_breakdown_from_wave_events():
    events = [
        {"t": 0.0, "ev": "sweep_start", "backend": "engine"},
        {"t": 0.1, "ev": "wave", "succ_s": 0.04, "dedup_s": 0.02},
        {"t": 0.2, "ev": "wave", "succ_s": 0.03, "dedup_s": 0.01},
        {"t": 0.3, "ev": "sweep_end", "seconds": 0.2},
    ]
    phases = phase_breakdown(events)
    assert phases["successors_s"] == 0.07
    assert phases["dedup_s"] == 0.03
    assert phases["transport_s"] == 0.0
    assert phases["other_s"] == 0.1
    assert phases["total_s"] == 0.2


def test_phase_breakdown_from_distributed_end():
    events = [
        {"ev": "sweep_end", "seconds": 1.0, "worker_succ_s": 0.3,
         "worker_expand_s": 0.5, "coord_put_s": 0.1, "coord_handle_s": 0.1},
    ]
    phases = phase_breakdown(events)
    assert phases["successors_s"] == 0.3
    assert phases["dedup_s"] == 0.2  # expand minus succ
    assert phases["transport_s"] == 0.2
    assert phases["other_s"] == 0.3
    assert phases["total_s"] == 1.0


def test_phase_breakdown_empty():
    phases = phase_breakdown([])
    assert phases["total_s"] == 0.0
    assert phases["other_s"] == 0.0


def test_render_report_on_recorded_sweep(chain_system):
    tracer = obs.Tracer(ring=10_000)
    with obs.Instrumentation(tracer=tracer) as inst:
        explore_fast(chain_system, obs=inst)
    text = render_report(tracer.events())
    assert "flight recorder report" in text
    assert "sweep 1: engine" in text
    assert "depth waves:" in text
    assert "phase breakdown:" in text
    assert "gc_suspend" in text


def test_render_report_recovery_and_timeline():
    events = [
        {"t": 0.0, "ev": "sweep_start", "backend": "distributed-process",
         "n_workers": 2, "packed": False},
        {"t": 0.01, "ev": "fault_plan", "kind": "kill", "worker": 0,
         "arg": 2},
        {"t": 0.05, "ev": "ack", "worker": 1, "visited": 40,
         "expand_s": 0.01},
        {"t": 0.10, "ev": "worker_death", "worker": 0, "inflight": 2,
         "pending": 1, "alive": 1, "visited": 12},
        {"t": 0.11, "ev": "redispatch", "worker": 0, "batches": 2},
        {"t": 0.30, "ev": "sweep_end", "outcome": "ok", "states": 52,
         "transitions": 80, "seconds": 0.3, "states_per_second": 173.0,
         "worker_deaths": 1, "redispatched_batches": 2, "recovered": True},
    ]
    text = render_report(events)
    assert "workers=2" in text
    assert "worker_death" in text
    assert "redispatch" in text
    assert "recovery: worker_deaths=1 redispatched_batches=2 recovered=yes" in text
    # the per-worker ack table
    assert "states/busy-s" in text


def test_render_report_wave_elision():
    waves = [
        {"t": i * 0.001, "ev": "wave", "depth": i, "states": i,
         "frontier": 1, "wave_s": 0.001}
        for i in range(1, 101)
    ]
    text = render_report(
        [{"t": 0.0, "ev": "sweep_start", "backend": "engine"}] + waves
    )
    assert "waves elided" in text


def test_render_report_checks_and_fixpoints():
    events = [
        {"t": 0.1, "ev": "fixpoint", "var": "X", "op": "mu",
         "mode": "kleene", "iterations": 4, "states": 10, "seconds": 0.01},
        {"t": 0.2, "ev": "check", "requirement": "1 (deadlock freeness)",
         "holds": True, "states": 288, "seconds": 0.05},
        {"t": 0.3, "ev": "product_end", "found": False,
         "product_states": 77, "seconds": 0.02},
    ]
    text = render_report(events)
    assert "fixpoints: 1 solved (1 kleene; 4 Kleene iterations)" in text
    assert "requirement checks:" in text
    assert "HOLDS" in text
    assert text.count("on-the-fly product: 77 states") == 1


def test_report_from_file_round_trip(tmp_path, chain_system):
    path = tmp_path / "sweep.jsonl"
    with obs.Instrumentation(tracer=obs.Tracer(path)) as inst:
        explore_fast(chain_system, obs=inst)
    text = report_from_file(path)
    assert "sweep 1: engine" in text


def test_report_on_empty_trace(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    text = report_from_file(path)
    assert "0 sweep(s), 0 events" in text


def test_report_on_truncated_trace(tmp_path):
    """A trace torn mid-line: strict reading raises, lenient renders."""
    import json

    path = tmp_path / "torn.jsonl"
    path.write_text(
        '{"t": 0.0, "ev": "sweep_start", "backend": "engine"}\n'
        '{"t": 0.1, "ev": "sweep_end", "outcome": "ok", "states": 3'
    )
    import pytest

    with pytest.raises(json.JSONDecodeError):
        report_from_file(path)
    text = report_from_file(path, lenient=True)
    assert "sweep 1: engine" in text  # open sweep, end line was torn


def test_report_on_interleaved_multi_sweep_trace():
    """Two sweeps back to back render as two numbered sections."""
    events = [
        {"t": 0.0, "ev": "sweep_start", "backend": "engine"},
        {"t": 0.1, "ev": "wave", "depth": 1, "states": 2, "wave_s": 0.1},
        {"t": 0.2, "ev": "sweep_end", "outcome": "ok", "states": 2,
         "transitions": 1, "seconds": 0.2},
        {"t": 0.3, "ev": "sweep_start", "backend": "serial"},
        {"t": 0.4, "ev": "sweep_end", "outcome": "limit", "states": 9,
         "transitions": 9, "seconds": 0.1},
    ]
    text = render_report(events)
    assert "2 sweep(s)" in text
    assert "sweep 1: engine — ok" in text
    assert "sweep 2: serial — limit" in text


def test_render_lanes_and_batch_latency():
    """Lane-tagged merged events render per-worker utilization and the
    cross-worker dispatch-to-ack latency distribution."""
    events = [
        {"t": 0.0, "ev": "sweep_start", "backend": "distributed-process",
         "n_workers": 2, "lane": "coordinator"},
        {"t": 0.001, "ev": "worker_start", "worker": 0, "clock_offset": 0.0,
         "lane": "worker0"},
        {"t": 0.001, "ev": "worker_start", "worker": 1, "clock_offset": 0.0,
         "lane": "worker1"},
        {"t": 0.01, "ev": "dispatch", "worker": 0, "seq": 1,
         "lane": "coordinator"},
        {"t": 0.02, "ev": "ack", "worker": 0, "seq": 1, "states": 5,
         "visited": 5, "expand_s": 0.004, "lane": "worker0"},
        {"t": 0.03, "ev": "ack", "worker": 0, "seq": 1, "states": 5,
         "visited": 5, "expand_s": 0.004, "lane": "coordinator"},
        {"t": 0.05, "ev": "sweep_end", "outcome": "ok", "states": 5,
         "transitions": 4, "seconds": 0.05, "max_rss_bytes": 1048576,
         "mem_pressure_events": 0, "lane": "coordinator"},
    ]
    text = render_report(events)
    assert "3 stream(s): coordinator, worker0, worker1" in text
    assert "worker lanes:" in text
    assert "worker0" in text and "worker1" in text
    assert "util" in text and "idle s" in text
    # the 0.01 -> 0.03 dispatch->ack window: 20ms
    assert "dispatch->ack latency: n=1 min 20.0 ms" in text
    assert "memory: max RSS 1.0 MiB" in text


def test_lane_prefix_in_timeline_and_ack_dedup():
    """Merged acks appear on both lanes; the table counts one of them."""
    from repro.obs.report import _render_sweep  # noqa: F401 - smoke import

    events = [
        {"t": 0.0, "ev": "sweep_start", "backend": "distributed-process",
         "n_workers": 1, "lane": "coordinator"},
        {"t": 0.01, "ev": "ack", "worker": 0, "seq": 1, "visited": 7,
         "expand_s": 0.002, "lane": "worker0"},
        {"t": 0.02, "ev": "ack", "worker": 0, "seq": 1, "visited": 7,
         "expand_s": 0.002, "lane": "coordinator"},
        {"t": 0.03, "ev": "sweep_end", "outcome": "ok", "states": 7,
         "transitions": 6, "seconds": 0.03, "lane": "coordinator"},
    ]
    text = render_report(events)
    # one ack batch in the per-worker table, not two
    line = next(ln for ln in text.splitlines() if ln.strip().startswith("0 "))
    assert line.split()[1] == "1"
