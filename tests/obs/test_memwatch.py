"""MemWatch: RSS sampling, watermarks, pressure events, null discipline."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.memwatch import NULL_MEMWATCH, MemWatch, NullMemWatch, rss_bytes
from repro.obs.tracer import Tracer


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def _watch(rss_values, clock=None, **kw):
    """A MemWatch fed a scripted RSS sequence (last value repeats)."""
    seq = list(rss_values)

    def fake_rss():
        return seq.pop(0) if len(seq) > 1 else seq[0]

    return MemWatch(_clock=clock or FakeClock(), _rss=fake_rss, **kw)


def test_rss_bytes_reads_something():
    rss = rss_bytes()
    assert rss is not None and rss > 1024 * 1024  # a running CPython


def test_watermark_tracks_maximum():
    clock = FakeClock()
    mw = _watch([100, 300, 200], clock=clock)
    for _ in range(3):
        clock.t += 1.0
        mw.sample()
    assert mw.max_rss_bytes == 300
    assert [b for _t, b in mw.series] == [100, 300, 200]


def test_sampling_is_rate_limited():
    clock = FakeClock()
    reads = [0]

    def fake_rss():
        reads[0] += 1
        return 100

    mw = MemWatch(interval=1.0, _clock=clock, _rss=fake_rss)
    mw.sample()
    mw.sample()  # within the interval: cached, no second read
    assert reads[0] == 1
    mw.sample(force=True)  # force bypasses the limit
    assert reads[0] == 2
    clock.t += 2.0
    mw.sample()
    assert reads[0] == 3


def test_series_stays_bounded_by_halving():
    clock = FakeClock()
    mw = _watch(range(10_000), clock=clock, series_max=8, interval=0.0)
    for _ in range(1000):
        clock.t += 1.0
        mw.sample()
    assert len(mw.series) < 8
    ts = [t for t, _b in mw.series]
    assert ts == sorted(ts)  # chronological after halving


def test_pressure_event_is_edge_triggered_and_rearms():
    clock = FakeClock()
    tracer = Tracer(ring=100)
    seq = [50, 150, 160, 150, 80, 150]  # over, hover, over again

    def fake_rss():
        return seq.pop(0) if len(seq) > 1 else seq[0]

    mw = MemWatch(
        tracer=tracer, threshold_bytes=100, interval=0.0,
        rearm_ratio=0.9, _clock=clock, _rss=fake_rss,
    )
    for _ in range(6):
        clock.t += 1.0
        mw.sample()
    # one event per excursion: 150/160/150 is a single excursion
    assert mw.pressure_events == 2
    events = [e for e in tracer.events() if e["ev"] == "mem_pressure"]
    assert len(events) == 2
    assert events[0]["rss_bytes"] == 150
    assert events[0]["threshold_bytes"] == 100


def test_note_feeds_structs_and_metrics():
    reg = MetricsRegistry()
    mw = _watch([100], metrics=reg)
    mw.note("visited_index", 4096)
    mw.note("visited_index", 8192)  # latest wins
    mw.sample(force=True)
    assert mw.structs == {"visited_index": 8192}
    snap = reg.snapshot()
    assert snap["repro_mem_struct_bytes{struct=visited_index}"] == 8192
    assert snap["repro_mem_rss_bytes"] == 100
    assert snap["repro_mem_rss_watermark_bytes"] == 100


def test_pressure_event_names_the_structs():
    tracer = Tracer(ring=10)
    mw = _watch([500], tracer=tracer, threshold_bytes=100, interval=0.0)
    mw.note("frontier", 123)
    mw.sample(force=True)
    ev = [e for e in tracer.events() if e["ev"] == "mem_pressure"][0]
    assert ev["structs"] == {"frontier": 123}


def test_summary_shape():
    clock = FakeClock()
    mw = _watch([100, 200], clock=clock, threshold_bytes=150, interval=0.0)
    mw.note("x", 7)
    for _ in range(2):
        clock.t += 1.0
        mw.sample()
    s = mw.summary()
    assert s["max_rss_bytes"] == 200
    assert s["samples"] == len(s["watermarks"]) == 2
    assert s["watermarks"][0][1] == 100
    assert s["structs"] == {"x": 7}
    assert s["pressure_events"] == 1


def test_unreadable_rss_degrades_to_none():
    mw = MemWatch(_rss=lambda: None)
    assert mw.sample(force=True) is None
    assert mw.max_rss_bytes == 0
    assert mw.summary()["watermarks"] == []


def test_close_takes_a_final_sample():
    mw = _watch([321])
    mw.close()
    assert mw.max_rss_bytes == 321


def test_validation():
    with pytest.raises(ValueError, match="threshold_bytes"):
        MemWatch(threshold_bytes=0)
    with pytest.raises(ValueError, match="series_max"):
        MemWatch(series_max=1)


def test_null_memwatch_is_inert():
    assert NULL_MEMWATCH.enabled is False
    assert isinstance(NULL_MEMWATCH, NullMemWatch)
    assert NULL_MEMWATCH.sample(force=True) is None
    NULL_MEMWATCH.note("x", 1)
    assert NULL_MEMWATCH.summary()["max_rss_bytes"] == 0
    NULL_MEMWATCH.close()  # no-op, no error
