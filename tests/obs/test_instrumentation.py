"""End-to-end instrumentation: sweeps, fixpoints, checks, stats gaps.

The contract under test: instrumented runs emit the documented event
stream AND explore exactly the same system as un-instrumented runs;
every exit path (normal, limit error) reports complete timing.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ExplorationLimitError
from repro.jackal.params import CONFIG_1, ProtocolVariant
from repro.jackal.requirements import build_model, check_requirement_1
from repro.lts.engine import explore_fast
from repro.lts.explore import ExplorationStats, explore
from repro.mucalc.checker import holds
from repro.mucalc.onthefly import check_reachable
from repro.mucalc.parser import parse_formula


def _bundle():
    registry = obs.MetricsRegistry()
    tracer = obs.Tracer(ring=100_000)
    return obs.Instrumentation(metrics=registry, tracer=tracer)


def _events(inst, ev=None):
    out = inst.tracer.events()
    return [e for e in out if ev is None or e["ev"] == ev]


@pytest.fixture
def model():
    return build_model(CONFIG_1, ProtocolVariant.fixed(), probes=False)


def test_serial_sweep_events(chain_system):
    inst = _bundle()
    explore(chain_system, obs=inst)
    starts = _events(inst, "sweep_start")
    ends = _events(inst, "sweep_end")
    waves = _events(inst, "wave")
    assert len(starts) == len(ends) == 1
    assert starts[0]["backend"] == "serial"
    assert ends[0]["outcome"] == "ok"
    assert ends[0]["states"] == 4
    assert ends[0]["transitions"] == 4
    assert ends[0]["seconds"] > 0
    assert waves, "each BFS depth emits a wave event"
    assert waves[-1]["states"] == 4
    # wave phase split is self-consistent
    for w in waves:
        assert w["succ_s"] >= 0 and w["dedup_s"] >= 0
        assert w["succ_s"] + w["dedup_s"] <= w["wave_s"] + 1e-6


def test_engine_sweep_events_and_gc_window(chain_system):
    inst = _bundle()
    explore_fast(chain_system, obs=inst)
    assert _events(inst, "sweep_start")[0]["backend"] == "engine"
    assert _events(inst, "gc_suspend")
    resume = _events(inst, "gc_resume")
    assert resume and resume[0]["suspended_s"] >= 0
    assert _events(inst, "sweep_end")[0]["outcome"] == "ok"


def test_instrumented_run_explores_the_same_lts(model):
    plain = explore_fast(model)
    inst = _bundle()
    traced = explore_fast(model, obs=inst)
    assert traced.n_states == plain.n_states
    assert traced.n_transitions == plain.n_transitions
    end = _events(inst, "sweep_end")[0]
    assert end["states"] == plain.n_states
    assert end["transitions"] == plain.n_transitions


def test_engine_memo_hits_are_counted(model):
    memo: dict = {}
    inst = _bundle()
    explore_fast(model, memo=memo, obs=inst)
    assert _events(inst, "sweep_end")[0]["memo_hits"] == 0
    inst2 = _bundle()
    explore_fast(model, memo=memo, obs=inst2)
    end = _events(inst2, "sweep_end")[0]
    assert end["memo_hits"] > 0
    snap = inst2.metrics.snapshot()
    assert snap["repro_memo_hits_total"] == end["memo_hits"]


def test_metrics_snapshot_after_engine_sweep(model):
    inst = _bundle()
    lts = explore_fast(model, obs=inst)
    snap = inst.metrics.snapshot()
    assert snap["repro_sweeps_total{backend=engine,outcome=ok}"] == 1
    assert snap["repro_sweep_states_total"] == lts.n_states
    assert snap["repro_sweep_transitions_total"] == lts.n_transitions
    assert snap["repro_sweep_seconds{backend=engine}"] > 0
    # every transition probes the visited index once; discoveries miss
    assert (
        snap["repro_visited_probe_hits_total"]
        == lts.n_transitions - lts.n_states
    )


@pytest.mark.parametrize("explorer", [explore, explore_fast])
def test_limit_error_carries_complete_stats(model, explorer):
    with pytest.raises(ExplorationLimitError) as exc:
        explorer(model, max_states=50)
    st = exc.value.stats
    assert st is not None
    assert st.states >= 50
    assert st.seconds > 0
    assert st.states_per_second() > 0


@pytest.mark.parametrize("explorer", [explore, explore_fast])
def test_limit_event_emitted(model, explorer):
    inst = _bundle()
    with pytest.raises(ExplorationLimitError):
        explorer(model, max_states=50, obs=inst)
    end = _events(inst, "sweep_end")[0]
    assert end["outcome"] == "limit"
    assert end["states"] >= 50
    assert end["seconds"] > 0


def test_passed_stats_object_still_filled(model):
    st = ExplorationStats()
    explore_fast(model, stats=st)
    assert st.states > 0 and st.seconds > 0


def test_fixpoint_events_from_checker(small_lts):
    inst = _bundle()
    with obs.activate(inst):
        assert holds(small_lts, parse_formula("mu X. (<d>T \\/ <T>X)"))
    fps = _events(inst, "fixpoint")
    assert fps, "mu-calculus fixpoints emit events"
    assert fps[0]["op"] == "mu"
    assert fps[0]["states"] == small_lts.n_states
    snap = inst.metrics.snapshot()
    assert sum(
        v for k, v in snap.items() if k.startswith("repro_fixpoints_total")
    ) == len(fps)


def test_onthefly_product_events(chain_system):
    inst = _bundle()
    with obs.activate(inst):
        found, witness = check_reachable(
            chain_system, parse_formula("<T*.c> T").reg
        )
    assert found and witness is not None
    ends = _events(inst, "product_end")
    assert len(ends) == 1
    assert ends[0]["found"] is True
    assert ends[0]["product_states"] > 0
    snap = inst.metrics.snapshot()
    assert snap["repro_product_searches_total{outcome=witness}"] == 1


def test_requirement_check_event():
    inst = _bundle()
    with obs.activate(inst):
        rep = check_requirement_1(CONFIG_1)
    checks = _events(inst, "check")
    assert len(checks) == 1
    assert checks[0]["requirement"] == rep.requirement
    assert checks[0]["holds"] is True
    assert checks[0]["states"] == rep.lts_states
    assert checks[0]["seconds"] > 0
    snap = inst.metrics.snapshot()
    assert snap["repro_checks_total{verdict=holds}"] == 1


def test_ambient_activation_reaches_engine(chain_system):
    inst = _bundle()
    with obs.activate(inst):
        explore_fast(chain_system)
    assert _events(inst, "sweep_end")
    assert obs.current() is obs.NULL  # restored afterwards
