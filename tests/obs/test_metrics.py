"""Metrics registry: instruments, labels, exposition, null discipline."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
)


def test_counter_get_or_create_and_inc():
    reg = MetricsRegistry()
    c = reg.counter("sweeps")
    c.inc()
    c.inc(4)
    assert reg.counter("sweeps") is c
    assert c.snapshot() == 5


def test_labels_are_distinct_series():
    reg = MetricsRegistry()
    reg.counter("batches", worker=0).inc(2)
    reg.counter("batches", worker=1).inc(3)
    snap = reg.snapshot()
    assert snap["batches{worker=0}"] == 2
    assert snap["batches{worker=1}"] == 3


def test_label_order_does_not_matter():
    reg = MetricsRegistry()
    a = reg.counter("x", b=1, a=2)
    b = reg.counter("x", a=2, b=1)
    assert a is b


def test_gauge_set_inc_dec():
    g = MetricsRegistry().gauge("frontier")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.snapshot() == 12


def test_histogram_buckets_and_summary():
    h = MetricsRegistry().histogram("lat", bounds=(0.1, 1.0))
    for v in (0.05, 0.5, 0.5, 2.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(3.05)
    assert snap["min"] == 0.05
    assert snap["max"] == 2.0
    assert snap["buckets"] == {"0.1": 1, "1.0": 2, "+Inf": 1}


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(ValueError, match="already registered as counter"):
        reg.gauge("m")


def test_render_json_round_trips():
    reg = MetricsRegistry()
    reg.counter("states").inc(7)
    reg.gauge("workers", backend="process").set(4)
    parsed = json.loads(reg.render_json())
    assert parsed["states"] == 7
    assert parsed["workers{backend=process}"] == 4


def test_render_prometheus_text():
    reg = MetricsRegistry()
    reg.counter("states").inc(7)
    reg.counter("batches", worker=0).inc(2)
    h = reg.histogram("lat", bounds=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    text = reg.render_prometheus()
    assert "# TYPE states counter" in text
    assert "states 7" in text
    assert 'batches{worker="0"} 2' in text
    # buckets are cumulative, Prometheus-style, with a +Inf bucket
    assert 'lat_bucket{le="0.1"} 1' in text
    assert 'lat_bucket{le="1.0"} 2' in text
    assert 'lat_bucket{le="+Inf"} 2' in text
    assert "lat_sum 0.55" in text
    assert "lat_count 2" in text
    assert text.endswith("\n")


def test_escape_label_value():
    assert escape_label_value("plain") == "plain"
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"


def test_render_prometheus_escapes_label_values():
    """Hostile label values survive exposition; a scraper parses them back.

    The Prometheus text format's own escaping rules: backslash, double
    quote and newline must be escaped inside quoted label values, or a
    single path-like or multi-line value corrupts the whole exposition.
    """
    reg = MetricsRegistry()
    reg.counter("files", path='C:\\tmp\\"x"\nnext').inc()
    text = reg.render_prometheus()
    line = next(ln for ln in text.splitlines() if ln.startswith("files{"))
    # one physical line: the newline in the value was escaped away
    assert line == 'files{path="C:\\\\tmp\\\\\\"x\\"\\nnext"} 1'
    # round-trip: un-escaping the quoted value restores the original
    quoted = line[line.index('="') + 2: line.rindex('"')]
    restored = (
        quoted.replace("\\\\", "\x00")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\x00", "\\")
    )
    assert restored == 'C:\\tmp\\"x"\nnext'


def test_null_registry_is_inert_and_shared():
    assert NULL_REGISTRY.enabled is False
    c = NULL_REGISTRY.counter("anything", label=1)
    g = NULL_REGISTRY.gauge("other")
    h = NULL_REGISTRY.histogram("third")
    assert c is g is h  # one shared no-op instrument
    c.inc()
    g.set(5)
    h.observe(0.1)
    assert NULL_REGISTRY.snapshot() == {}


def test_instrument_kinds():
    reg = MetricsRegistry()
    assert isinstance(reg.counter("a"), Counter)
    assert isinstance(reg.gauge("b"), Gauge)
    assert isinstance(reg.histogram("c"), Histogram)
