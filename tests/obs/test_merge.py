"""Stream merging: lane naming, clock handshake, causal ordering."""

from __future__ import annotations

import json

import pytest

from repro.obs.merge import (
    COORDINATOR_STREAM,
    lane_of,
    lanes,
    load_stream,
    merge_streams,
    merge_traces,
    trace_files,
    worker_stream_name,
)


def _write(path, events):
    path.write_text("".join(json.dumps(e) + "\n" for e in events))


def _dir(tmp_path, coordinator, workers):
    d = tmp_path / "td"
    d.mkdir()
    _write(d / COORDINATOR_STREAM, coordinator)
    for wid, events in workers.items():
        _write(d / worker_stream_name(wid), events)
    return d


def test_stream_naming():
    assert worker_stream_name(3) == "trace.worker3.jsonl"
    assert lane_of("td/trace.worker12.jsonl") == "worker12"
    assert lane_of("td/" + COORDINATOR_STREAM) == "coordinator"
    # a plain --trace output file lands on the coordinator lane
    assert lane_of("/tmp/sweep.jsonl") == "coordinator"


def test_trace_files_orders_coordinator_first(tmp_path):
    d = _dir(
        tmp_path, [{"t": 0.0, "ev": "sweep_start"}],
        {10: [], 2: []},
    )
    (d / "notes.txt").write_text("ignored")
    files = trace_files(d)
    assert [lane_of(f) for f in files] == ["coordinator", "worker2", "worker10"]


def test_load_stream_applies_clock_offset(tmp_path):
    p = tmp_path / worker_stream_name(0)
    _write(p, [
        {"t": 0.001, "ev": "worker_start", "worker": 0, "clock_offset": 1.5},
        {"t": 0.010, "ev": "ack", "worker": 0, "seq": 1},
    ])
    lane, events = load_stream(p)
    assert lane == "worker0"
    assert events[0]["t"] == pytest.approx(1.501)
    assert events[0]["t0"] == pytest.approx(0.001)
    assert events[1]["t"] == pytest.approx(1.510)
    assert all(e["lane"] == "worker0" for e in events)


def test_merge_orders_causally_across_lanes(tmp_path):
    # coordinator dispatches at 1.0; the worker's local clock started
    # 0.9s later, so its local ack at t=0.2 is really at t=1.1
    d = _dir(
        tmp_path,
        [{"t": 0.0, "ev": "sweep_start", "backend": "distributed-process"},
         {"t": 1.0, "ev": "dispatch", "worker": 0, "seq": 1}],
        {0: [{"t": 0.0, "ev": "worker_start", "worker": 0,
              "clock_offset": 0.9},
             {"t": 0.2, "ev": "ack", "worker": 0, "seq": 1}]},
    )
    merged = merge_traces([d])
    evs = [(e["ev"], e["lane"]) for e in merged]
    assert evs == [
        ("sweep_start", "coordinator"),
        ("worker_start", "worker0"),
        ("dispatch", "coordinator"),
        ("ack", "worker0"),
    ]
    assert lanes(merged) == ["coordinator", "worker0"]


def test_coordinator_wins_timestamp_ties():
    streams = {
        "worker1": [{"t": 1.0, "ev": "ack", "lane": "worker1"}],
        "coordinator": [{"t": 1.0, "ev": "dispatch", "lane": "coordinator"}],
        "worker0": [{"t": 1.0, "ev": "ack", "lane": "worker0"}],
    }
    merged = merge_streams(streams)
    assert [e["lane"] for e in merged] == ["coordinator", "worker0", "worker1"]


def test_single_plain_file_has_no_lane_tags(tmp_path):
    p = tmp_path / "sweep.jsonl"
    _write(p, [{"t": 0.0, "ev": "sweep_start"}, {"t": 0.1, "ev": "sweep_end"}])
    merged = merge_traces([p])
    assert all("lane" not in e and "t0" not in e for e in merged)


def test_merge_is_lenient_about_torn_tails(tmp_path):
    d = _dir(
        tmp_path,
        [{"t": 0.0, "ev": "sweep_start"}],
        {0: [{"t": 0.0, "ev": "worker_start", "worker": 0,
              "clock_offset": 0.0}]},
    )
    # a SIGKILLed worker ends mid-line: the torn tail is dropped
    with open(d / worker_stream_name(0), "a") as fh:
        fh.write('{"t": 0.5, "ev": "ack", "wor')
    merged = merge_traces([d])
    assert [e["ev"] for e in merged] == ["sweep_start", "worker_start"]


def test_merge_mixes_files_and_directories(tmp_path):
    d = _dir(tmp_path, [{"t": 0.0, "ev": "sweep_start"}], {})
    extra = tmp_path / worker_stream_name(1)
    _write(extra, [{"t": 0.1, "ev": "worker_start", "worker": 1,
                    "clock_offset": 0.0}])
    merged = merge_traces([d, extra])
    assert lanes(merged) == ["coordinator", "worker1"]


def test_merge_raises_on_empty_directory(tmp_path):
    d = tmp_path / "empty"
    d.mkdir()
    with pytest.raises(FileNotFoundError):
        merge_traces([d])
