"""End-to-end flight recording of a distributed sweep under fault injection.

The ISSUE acceptance scenario: a process-backend sweep with a
``kill:0@N`` plan must leave a trace containing the fault plan, the
worker death, the batch re-dispatch, and a sweep_end that reports the
recovery — and the recorded totals must match the fault-free counts.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.lts.distributed import distributed_explore
from repro.lts.explore import explore
from repro.lts.faults import FaultPlan


class Diamond:
    """A diamond lattice of given width — branches recombine."""

    def __init__(self, width=5):
        self.width = width

    def initial_state(self):
        return (0, 0)

    def successors(self, s):
        level, pos = s
        if level >= self.width:
            return []
        return [("l", (level + 1, pos)), ("r", (level + 1, pos + 1))]


def _bundle():
    return obs.Instrumentation(
        metrics=obs.MetricsRegistry(), tracer=obs.Tracer(ring=100_000)
    )


def _events(inst, ev):
    return [e for e in inst.tracer.events() if e["ev"] == ev]


def test_inline_sweep_trace():
    inst = _bundle()
    _lts, stats = distributed_explore(
        Diamond(8), n_workers=2, backend="inline", obs=inst
    )
    start = _events(inst, "sweep_start")[0]
    assert start["backend"] == "distributed-inline"
    assert start["n_workers"] == 2
    end = _events(inst, "sweep_end")[0]
    assert end["outcome"] == "ok"
    assert end["states"] == stats.states
    assert end["seconds"] > 0
    assert _events(inst, "wave")


@pytest.mark.slow
def test_kill_recovery_recorded_end_to_end():
    sys_ = Diamond(24)
    exact = explore(sys_)
    inst = _bundle()
    _lts, stats = distributed_explore(
        sys_, n_workers=2, backend="process",
        faults=FaultPlan.parse("kill:0@2"),
        batch_size=8, poll_interval=0.05, obs=inst,
    )
    # recovery really happened and the totals are exact
    assert stats.worker_deaths == 1
    assert stats.states == exact.n_states

    plan = _events(inst, "fault_plan")
    assert any(p["kind"] == "kill" and p["worker"] == 0 for p in plan)
    deaths = _events(inst, "worker_death")
    assert len(deaths) == 1 and deaths[0]["worker"] == 0
    redispatches = _events(inst, "redispatch")
    assert redispatches and redispatches[0]["batches"] >= 1
    assert sum(r["batches"] for r in redispatches) == stats.redispatched_batches

    end = _events(inst, "sweep_end")[0]
    assert end["outcome"] == "ok"
    assert end["worker_deaths"] == 1
    assert end["recovered"] is True
    assert end["states"] == exact.n_states

    # dispatches and acks were recorded; the dead worker acked fewer
    assert _events(inst, "dispatch")
    assert _events(inst, "ack")

    snap = inst.metrics.snapshot()
    assert snap["repro_dist_worker_deaths_total"] == 1
    assert snap["repro_dist_redispatched_batches_total"] == stats.redispatched_batches
    assert snap["repro_dist_recovered"] == 1
    assert snap["repro_dist_workers"] == 2

    # worker/coordinator phase timings were reported by the workers
    assert stats.worker_expand_s > 0
    assert stats.worker_expand_s >= stats.worker_succ_s


@pytest.mark.slow
def test_per_worker_streams_and_merged_report(tmp_path):
    """The tentpole acceptance path: a process sweep with a trace dir
    leaves one stream per worker plus the coordinator's, and the merged
    report renders every worker's lane."""
    from repro.obs.merge import (
        COORDINATOR_STREAM,
        lanes,
        merge_traces,
        worker_stream_name,
    )
    from repro.obs.report import report_from_paths

    td = tmp_path / "td"
    td.mkdir()
    inst = obs.Instrumentation(
        metrics=obs.MetricsRegistry(),
        tracer=obs.Tracer(td / COORDINATOR_STREAM),
        memwatch=obs.MemWatch(),
        trace_dir=str(td),
    )
    with inst:
        _lts, stats = distributed_explore(
            Diamond(16), n_workers=2, backend="process", batch_size=8,
            obs=inst,
        )
    for name in (COORDINATOR_STREAM, worker_stream_name(0),
                 worker_stream_name(1)):
        assert (td / name).exists(), name

    merged = merge_traces([td])
    assert lanes(merged) == ["coordinator", "worker0", "worker1"]
    starts = [e for e in merged if e["ev"] == "worker_start"]
    assert {e["worker"] for e in starts} == {0, 1}
    assert all("clock_offset" in e for e in starts)
    # worker-lane acks carry the (worker, seq) correlation id
    wacks = [e for e in merged if e["ev"] == "ack"
             and e["lane"].startswith("worker")]
    assert wacks and all("seq" in e for e in wacks)

    text = report_from_paths([str(td)])
    assert "worker lanes:" in text
    assert "worker0" in text and "worker1" in text
    assert "dispatch->ack latency:" in text
    # memory telemetry rode along on the coordinator's sweep_end
    end = [e for e in merged if e["ev"] == "sweep_end"][-1]
    assert end["max_rss_bytes"] > 0
    assert stats.states == explore(Diamond(16)).n_states


@pytest.mark.slow
def test_fault_free_process_trace_has_timings():
    inst = _bundle()
    _lts, stats = distributed_explore(
        Diamond(16), n_workers=2, backend="process", batch_size=8,
        obs=inst,
    )
    end = _events(inst, "sweep_end")[0]
    assert end["outcome"] == "ok"
    assert end["worker_deaths"] == 0
    assert end["seconds"] > 0
    # uninstrumented runs skip worker timing; instrumented ones report it
    assert stats.worker_expand_s > 0
