"""Tracer: JSONL round-trip, ring bounding, monotonic timestamps."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracer import NULL_TRACER, Tracer, read_trace


def test_file_mode_round_trip(tmp_path):
    path = tmp_path / "t.jsonl"
    with Tracer(path) as tr:
        tr.emit("sweep_start", backend="engine")
        tr.emit("wave", depth=1, states=3)
        tr.emit("sweep_end", outcome="ok")
    events = read_trace(path)
    assert [e["ev"] for e in events] == ["sweep_start", "wave", "sweep_end"]
    assert events[0]["backend"] == "engine"
    assert events[1] == {"t": events[1]["t"], "ev": "wave",
                         "depth": 1, "states": 3}


def test_timestamps_are_nondecreasing(tmp_path):
    path = tmp_path / "t.jsonl"
    with Tracer(path) as tr:
        for i in range(50):
            tr.emit("tick", i=i)
    ts = [e["t"] for e in read_trace(path)]
    assert ts == sorted(ts)
    assert ts[0] >= 0.0


def test_ring_mode_keeps_only_the_tail():
    tr = Tracer(ring=3)
    for i in range(10):
        tr.emit("tick", i=i)
    kept = tr.events()
    assert [e["i"] for e in kept] == [7, 8, 9]


def test_ring_plus_path_writes_tail_at_close(tmp_path):
    path = tmp_path / "tail.jsonl"
    tr = Tracer(path, ring=2)
    for i in range(5):
        tr.emit("tick", i=i)
    assert not path.exists() or path.read_text() == ""
    tr.close()
    assert [e["i"] for e in read_trace(path)] == [3, 4]


def test_ring_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(ring=0)


def test_dump_in_memory(tmp_path):
    tr = Tracer(ring=10)
    tr.emit("a")
    tr.emit("b")
    out = tmp_path / "d.jsonl"
    tr.dump(out)
    assert [e["ev"] for e in read_trace(out)] == ["a", "b"]


def test_read_trace_skips_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"t": 0.1, "ev": "a"}\n\n{"t": 0.2, "ev": "b"}\n')
    assert [e["ev"] for e in read_trace(path)] == ["a", "b"]


def test_read_trace_reports_bad_line_number(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"t": 0.1, "ev": "a"}\nnot json\n')
    with pytest.raises(json.JSONDecodeError, match="trace line 2"):
        read_trace(path)


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    NULL_TRACER.emit("anything", x=1)
    assert NULL_TRACER.events() == []
    NULL_TRACER.close()  # no-op, no error


def test_read_trace_lenient_drops_torn_tail(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"t": 0.1, "ev": "a"}\n{"t": 0.2, "ev": "b')
    assert [e["ev"] for e in read_trace(path, lenient=True)] == ["a"]


def test_file_mode_survives_sigkill(tmp_path):
    """Line buffering means a killed process loses at most one line.

    The crash-safety contract of the per-worker streams: SIGKILL the
    writer mid-stream (no close, no atexit, no flush) and every event
    emitted before the kill must already be on disk.
    """
    import os
    import signal
    import subprocess
    import sys

    import repro

    path = tmp_path / "crash.jsonl"
    prog = (
        "import os, signal\n"
        "from repro.obs.tracer import Tracer\n"
        f"tr = Tracer({str(path)!r})\n"
        "for i in range(100):\n"
        "    tr.emit('tick', i=i)\n"
        "os.kill(os.getpid(), signal.SIGKILL)\n"
    )
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    proc = subprocess.run(
        [sys.executable, "-c", prog],
        env={**os.environ, "PYTHONPATH": src},
    )
    assert proc.returncode == -signal.SIGKILL
    events = read_trace(path, lenient=True)
    assert [e["i"] for e in events] == list(range(100))
