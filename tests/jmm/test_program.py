"""Tests for litmus program construction."""

import pytest

from repro.errors import ModelError
from repro.jmm.program import (
    Program,
    ThreadProgram,
    assign,
    compute,
    lock,
    make_program,
    unlock,
    use,
)


def test_statement_constructors():
    s = assign("x", 1)
    assert s.kind == "assign" and s.value == 1
    s2 = assign("x", lambda r: r + 1, "r1")
    assert s2.fn is not None and s2.srcs == ("r1",)
    assert use("x", "r1").kind == "use"
    assert lock().kind == "lock"
    assert unlock().kind == "unlock"


def test_constant_assign_rejects_sources():
    with pytest.raises(ModelError):
        assign("x", 1, "r1")


def test_statement_str():
    assert str(assign("x", 1)) == "x := 1"
    assert str(use("x", "r1")) == "r1 := x"
    assert str(lock()) == "lock"

    def inc(a):
        return a + 1

    assert str(compute("r2", inc, "r1")) == "r2 := inc(r1)"
    assert str(assign("x", inc, "r1")) == "x := inc(r1)"


def test_make_program_autodetects_registers():
    p = make_program(
        threads=[[use("x", "r1")], [use("x", "r2"), use("x", "r1")]],
        shared={"x": 0},
    )
    assert p.registers == ("r1", "r2")
    assert p.n_threads == 2
    assert p.shared_names() == ("x",)


def test_unknown_variable_rejected():
    with pytest.raises(ModelError, match="unknown shared variable"):
        make_program(threads=[[assign("y", 1)]], shared={"x": 0})


def test_unbalanced_locks_rejected():
    with pytest.raises(ModelError, match="unbalanced"):
        make_program(threads=[[lock()]], shared={"x": 0})
    with pytest.raises(ModelError, match="unlock without lock"):
        make_program(threads=[[unlock(), lock()]], shared={"x": 0})


def test_thread_program_len():
    assert len(ThreadProgram((lock(), unlock()))) == 2


def test_explicit_registers():
    p = make_program(
        threads=[[use("x", "r1")]], shared={"x": 0}, registers=["r1", "rz"]
    )
    assert p.registers == ("r1", "rz")
