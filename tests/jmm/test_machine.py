"""Tests for the abstract JMM machine."""

from repro.jmm.machine import JMMMachine, allowed_outcomes
from repro.jmm.program import assign, compute, lock, make_program, unlock, use


def single_reader():
    return make_program(
        threads=[[use("x", "r1")]],
        shared={"x": 7},
    )


def test_use_requires_load():
    prog = single_reader()
    m = JMMMachine(prog)
    s0 = m.initial_state()
    labels = {l for l, _ in m.successors(s0)}
    # the bare use is not enabled yet; a read of main memory is
    assert all(not l.startswith("use") for l in labels)
    assert any(l.startswith("read") for l in labels)


def test_single_reader_sees_initial_value():
    assert allowed_outcomes(single_reader()) == {(7,)}


def test_assign_then_use_is_local():
    prog = make_program(
        threads=[[assign("x", 1), use("x", "r1")]],
        shared={"x": 0},
    )
    # working copy is defined by the assign; only 1 can be used
    assert allowed_outcomes(prog) == {(1,)}


def test_two_threads_stale_reads_allowed():
    prog = make_program(
        threads=[[assign("x", 1)], [use("x", "r1")]],
        shared={"x": 0},
    )
    assert allowed_outcomes(prog) == {(0,), (1,)}


def test_store_write_ordering_per_variable():
    # a thread's own later read can still see the old main-memory value
    # only until its write lands; after lock-flush it must see the new one
    prog = make_program(
        threads=[[assign("x", 1), lock(), unlock(), use("x", "r1")]],
        shared={"x": 0},
    )
    assert allowed_outcomes(prog) == {(1,)}


def test_lock_provides_mutual_exclusion():
    bump = lambda r: r + 1  # noqa: E731
    prog = make_program(
        threads=[
            [lock(), use("x", "r1"), assign("x", bump, "r1"), unlock()],
            [lock(), use("x", "r2"), assign("x", bump, "r2"), unlock()],
        ],
        shared={"x": 0},
    )
    outs = allowed_outcomes(prog)
    # increments cannot be lost under full locking
    assert outs == {(0, 1), (1, 0)}


def test_unlocked_increments_can_be_lost():
    bump = lambda r: r + 1  # noqa: E731
    prog = make_program(
        threads=[
            [use("x", "r1"), assign("x", bump, "r1")],
            [use("x", "r2"), assign("x", bump, "r2")],
        ],
        shared={"x": 0},
    )
    outs = allowed_outcomes(prog)
    assert (0, 0) in outs  # both read 0, one increment lost


def test_compute_statement():
    double = lambda r: 2 * r  # noqa: E731
    prog = make_program(
        threads=[[use("x", "r1"), compute("r2", double, "r1")]],
        shared={"x": 3},
    )
    assert allowed_outcomes(prog) == {(3, 6)}


def test_is_final_and_outcome():
    prog = single_reader()
    m = JMMMachine(prog)
    s = m.initial_state()
    assert not m.is_final(s)
    # drive to completion: read, load, use
    for prefix in ("read", "load", "use"):
        (s,) = [d for l, d in m.successors(s) if l.startswith(prefix)][:1]
    assert m.is_final(s)
    assert m.outcome(s) == (7,)


def test_lock_empties_working_memory():
    # after lock, a use must re-load: it cannot see a pre-lock load
    prog = make_program(
        threads=[
            [use("x", "r1"), lock(), use("x", "r2"), unlock()],
            [assign("x", 1), lock(), unlock()],
        ],
        shared={"x": 0},
    )
    outs = allowed_outcomes(prog)
    # r1 stale + r2 fresh is possible; but if the writer's unlock
    # happened before the reader's lock, r2 must be 1 — both (0,0) and
    # (0,1) and (1,1) show up, never r2 older than r1's view after sync
    assert (0, 1) in outs
    assert (0, 0) in outs


def test_future_use_pruning_preserves_outcomes():
    # compare against a machine without pruning (monkeypatched masks)
    prog = make_program(
        threads=[[assign("x", 1)], [use("y", "r1")]],
        shared={"x": 0, "y": 5},
    )
    m = JMMMachine(prog)
    assert allowed_outcomes(prog) == {(5,)}
    # thread 0 never uses anything: its masks are all zero
    assert all(mask == 0 for mask in m.future_uses[0])
