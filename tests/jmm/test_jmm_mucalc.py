"""Model checking the JMM machine itself.

The JMM machine is a transition system like any other, so the
mu-calculus checker can verify the chapter-17 ordering constraints
*as temporal properties of the machine* — a cross-toolchain integration
the paper's setup (memory model as transition rules + model checker)
invites.
"""

import pytest

from repro.jmm.machine import JMMMachine
from repro.jmm.program import assign, lock, make_program, unlock, use
from repro.lts.explore import explore
from repro.mucalc.checker import holds
from repro.mucalc.patterns import exclusion, never
from repro.mucalc.syntax import (
    ActLit,
    Box,
    Ff,
    NotAct,
    OrAct,
    RAct,
    RSeq,
    RStar,
)


@pytest.fixture(scope="module")
def mp_lts():
    prog = make_program(
        threads=[
            [assign("x", 1), lock(), unlock()],
            [use("x", "r1")],
        ],
        shared={"x": 0},
    )
    return explore(JMMMachine(prog))


def _prefix(p: str):
    return ActLit(p, prefix=True)


def test_use_requires_prior_load_or_assign(mp_lts):
    # thread 1 never assigns x, so its first use must follow a load:
    # [ (not load(t1,x))* . use(t1,...) ] F
    f = Box(
        RSeq(
            RStar(RAct(NotAct(_prefix("load(t1")))),
            RAct(_prefix("use(t1")),
        ),
        Ff(),
    )
    assert holds(mp_lts, f)


def test_store_requires_prior_assign(mp_lts):
    f = Box(
        RSeq(
            RStar(RAct(NotAct(_prefix("assign(t0")))),
            RAct(_prefix("store(t0")),
        ),
        Ff(),
    )
    assert holds(mp_lts, f)


def test_write_requires_prior_store(mp_lts):
    f = Box(
        RSeq(
            RStar(RAct(NotAct(_prefix("store(t0")))),
            RAct(_prefix("write(t0")),
        ),
        Ff(),
    )
    assert holds(mp_lts, f)


def test_load_requires_prior_read(mp_lts):
    f = Box(
        RSeq(
            RStar(RAct(NotAct(_prefix("read(t1")))),
            RAct(_prefix("load(t1")),
        ),
        Ff(),
    )
    assert holds(mp_lts, f)


def test_unlock_never_with_dirty_data(mp_lts):
    # between assign(t0,...) and the matching write(t0,...), no
    # unlock(t0) may occur (the flush-before-unlock rule)
    f = exclusion(_prefix("assign(t0"), _prefix("write(t0"), _prefix("unlock(t0"))
    assert holds(mp_lts, f)


def test_lock_mutual_exclusion(mp_lts):
    # no second lock before the first unlock (single global lock)
    locks = OrAct(_prefix("lock(t0"), _prefix("lock(t1"))
    unlocks = OrAct(_prefix("unlock(t0"), _prefix("unlock(t1"))
    f = exclusion(locks, unlocks, locks)
    assert holds(mp_lts, f)


def test_no_spurious_actions(mp_lts):
    # thread 1 has no lock statements: it never locks
    assert holds(mp_lts, never(_prefix("lock(t1")))
    # nobody ever stores x for thread 1 (it never assigns)
    assert holds(mp_lts, never(_prefix("store(t1")))


def test_read_not_after_own_pending_write(mp_lts):
    # between store(t0,x) and write(t0,x), no read(t0,x): the pairing
    # rule implemented in the machine
    f = exclusion(_prefix("store(t0"), _prefix("write(t0"), _prefix("read(t0"))
    assert holds(mp_lts, f)
