"""Tests for the value-level DSM runtime simulator."""

import pytest

from repro.errors import ModelError
from repro.jmm.dsm import DSMMachine, dsm_outcomes
from repro.jmm.program import assign, lock, make_program, unlock, use


def test_at_home_thread_reads_directly():
    prog = make_program(threads=[[use("x", "r1")]], shared={"x": 9})
    m = DSMMachine(prog, placement=(0,), home=0)
    s = m.initial_state()
    (label, s1), = m.successors(s)
    assert label.startswith("use")
    assert m.is_final(s1)
    assert m.outcome(s1) == (9,)


def test_remote_thread_fetches_first():
    prog = make_program(threads=[[use("x", "r1")]], shared={"x": 9})
    m = DSMMachine(prog, placement=(1,), home=0)
    s = m.initial_state()
    (label, s1), = m.successors(s)
    assert label.startswith("fetch")
    (label2, s2), = m.successors(s1)
    assert label2.startswith("use")
    assert m.outcome(s2) == (9,)


def test_remote_write_creates_twin():
    prog = make_program(threads=[[assign("x", 1)]], shared={"x": 0})
    m = DSMMachine(prog, placement=(1,), home=0)
    s = m.initial_state()
    (_, s1), = m.successors(s)  # fetch
    (_, s2), = m.successors(s1)  # assign
    _pcs, _regs, homedata, caches, twins, dirty, _lock = s2
    assert caches[1][0] == (1,)
    assert twins[1][0] == (0,)  # pristine snapshot
    assert dirty[1] == 1
    assert homedata[0] == (0,)  # home untouched until flush


def test_flush_applies_diff_and_invalidates():
    prog = make_program(
        threads=[[assign("x", 1), lock(), unlock()]], shared={"x": 0}
    )
    m = DSMMachine(prog, placement=(1,), home=0)
    outs = dsm_outcomes(prog, placement=(1,), home=0)
    assert outs == {()}
    # walk manually to check the flush
    s = m.initial_state()
    (_, s), = m.successors(s)  # fetch
    (_, s), = m.successors(s)  # assign
    (label, s), = m.successors(s)  # flush before lock
    assert label.startswith("flush")
    _pcs, _regs, homedata, caches, twins, dirty, _lock = s
    assert homedata[0] == (1,)
    assert caches[1][0] is None  # self-invalidation
    assert twins[1][0] is None
    assert dirty[1] == 0


def test_multiple_writer_merge():
    # x and y share a region; writers on different processors must both
    # survive the diff-merge
    prog = make_program(
        threads=[
            [assign("x", 1), lock(), unlock()],
            [assign("y", 2), lock(), unlock()],
        ],
        shared={"x": 0, "y": 0},
    )
    m = DSMMachine(prog, placement=(1, 2), region_map={"x": 0, "y": 0}, home=0)
    # drive all interleavings; at every final state the home holds both
    stack = [m.initial_state()]
    seen = {stack[0]}
    finals = []
    while stack:
        s = stack.pop()
        succ = m.successors(s)
        if m.is_final(s) and not succ:
            finals.append(s)
        for _l, d in succ:
            if d not in seen:
                seen.add(d)
                stack.append(d)
    assert finals
    for s in finals:
        homedata = s[2]
        assert homedata[0] == (1, 2)


def test_same_cell_race_last_flush_wins():
    prog = make_program(
        threads=[
            [assign("x", 1), lock(), unlock()],
            [assign("x", 2), lock(), unlock()],
            [lock(), use("x", "r1"), unlock()],
        ],
        shared={"x": 0},
    )
    outs = dsm_outcomes(prog, placement=(1, 2, 0))
    vals = {o[0] for o in outs}
    assert {1, 2} <= vals


def test_stale_read_until_sync():
    prog = make_program(
        threads=[
            [assign("x", 1), lock(), unlock()],
            [use("x", "r1"), lock(), unlock(), use("x", "r2")],
        ],
        shared={"x": 0},
    )
    outs = dsm_outcomes(prog, placement=(1, 2))
    assert (0, 0) in outs  # fully stale
    assert (0, 1) in outs  # fresh after sync
    # r1 fresh but r2 stale is impossible: sync invalidates and refetches
    assert (1, 0) not in outs


def test_threads_share_processor_cache():
    prog = make_program(
        threads=[
            [assign("x", 1)],
            [use("x", "r1")],
        ],
        shared={"x": 0},
    )
    # same processor: t1 can see t0's unflushed write through the shared copy
    outs = dsm_outcomes(prog, placement=(1, 1), home=0)
    assert (1,) in outs


def test_placement_validation():
    prog = make_program(threads=[[use("x", "r1")]], shared={"x": 0})
    with pytest.raises(ModelError):
        DSMMachine(prog, placement=(0, 1))
    with pytest.raises(ModelError):
        DSMMachine(prog, placement=(0,), home=7)
