"""Conformance of the DSM runtime against the JMM, per litmus test."""

import pytest

from repro.jmm.litmus import LITMUS_TESTS, run_conformance
from repro.jmm.machine import allowed_outcomes

TESTS = LITMUS_TESTS()


@pytest.mark.parametrize("test", TESTS, ids=lambda t: t.name)
def test_dsm_conforms_to_jmm(test):
    res = run_conformance(test)
    assert res.conforms, res.summary()


@pytest.mark.parametrize("test", TESTS, ids=lambda t: t.name)
def test_anchor_outcomes(test):
    jmm = allowed_outcomes(test.program)
    missing = test.must_allow - jmm
    assert not missing, f"JMM should allow {missing}"
    forbidden = test.must_forbid & jmm
    assert not forbidden, f"JMM should forbid {forbidden}"


def test_store_buffering_relaxed_outcome():
    (sb,) = [t for t in TESTS if t.name == "store_buffering"]
    res = run_conformance(sb)
    assert (0, 0) in res.jmm_outcomes
    assert (0, 0) in res.dsm_outcomes  # the DSM is weaker than SC too


def test_sync_forbids_stale_message_passing():
    (mp,) = [t for t in TESTS if t.name == "message_passing_sync"]
    res = run_conformance(mp)
    assert (1, 0) not in res.jmm_outcomes
    assert (1, 0) not in res.dsm_outcomes


def test_dekker_sync_outcomes_exact():
    (dk,) = [t for t in TESTS if t.name == "dekker_sync"]
    res = run_conformance(dk)
    assert res.jmm_outcomes == {(1, 0), (0, 1)}
    assert res.dsm_outcomes == {(1, 0), (0, 1)}


def test_false_sharing_merges():
    (fs,) = [t for t in TESTS if t.name == "false_sharing"]
    res = run_conformance(fs)
    assert (1, 1) in res.dsm_outcomes


def test_summary_format():
    res = run_conformance(TESTS[0])
    assert "conforms" in res.summary()
    assert res.extra == set()


@pytest.mark.parametrize("placement", [(0, 1), (1, 0), (0, 0), (1, 2)])
def test_sb_conformance_across_placements(placement):
    """Conformance must hold wherever the threads are placed — at the
    home, remote, or co-located on one processor."""
    from repro.jmm.dsm import dsm_outcomes
    from repro.jmm.litmus import store_buffering

    test = store_buffering()
    jmm = allowed_outcomes(test.program)
    dsm = dsm_outcomes(test.program, placement=placement)
    assert dsm <= jmm, placement


@pytest.mark.parametrize("home", [0, 1, 2])
def test_mp_conformance_across_homes(home):
    from repro.jmm.dsm import dsm_outcomes
    from repro.jmm.litmus import message_passing

    test = message_passing()
    jmm = allowed_outcomes(test.program)
    dsm = dsm_outcomes(test.program, placement=(1, 2), home=home)
    assert dsm <= jmm, home


def test_colocated_threads_see_each_other_early():
    """Two threads on one processor share the cached copy: the writer's
    unflushed store is visible to its neighbour — and that is JMM-legal
    (an eager store/write/read/load chain)."""
    from repro.jmm.dsm import dsm_outcomes
    from repro.jmm.program import assign, make_program, use

    prog = make_program(
        threads=[[assign("x", 1)], [use("x", "r1")]],
        shared={"x": 0},
    )
    dsm = dsm_outcomes(prog, placement=(1, 1), home=0)
    jmm = allowed_outcomes(prog)
    assert (1,) in dsm
    assert dsm <= jmm
