"""Tests for the programmatic experiment runners."""

import dataclasses

import pytest

from repro.analysis.experiments import (
    run_error1,
    run_error2,
    run_full_study,
    run_table8,
)
from repro.jackal.params import CONFIG_1, Config, ProtocolVariant


def test_run_table8_small():
    rows = run_table8(rounds=1, configs={"1": CONFIG_1})
    assert len(rows) == 1
    row = rows[0]
    assert row.all_hold
    assert set(row.requirements) == {"1", "2", "3.1", "3.2", "4"}
    assert row.states > 100
    d = row.as_dict()
    assert d["config"] == "1" and d["all_hold"] is True


def test_run_table8_skips_mu_calc_on_three_processors():
    cfg3 = Config(threads_per_processor=(1, 1, 1), rounds=1)
    rows = run_table8(rounds=1, configs={"3": cfg3})
    assert set(rows[0].requirements) == {"1", "2"}


def test_run_error1():
    rep = run_error1()
    assert rep.reproduced
    assert rep.trace is not None
    assert "reproduced" in rep.summary()


def test_run_error2():
    rep = run_error2()
    assert rep.reproduced
    assert not rep.buggy_report.holds
    assert rep.fixed_report.holds


def test_run_full_study():
    study = run_full_study(rounds=1)
    assert all(r.all_hold for r in study["table8"])
    assert study["error1"].reproduced
    assert study["error2"].reproduced


def test_error1_not_reproduced_without_migration():
    cfg = dataclasses.replace(CONFIG_1, rounds=None)
    # with migration off, even the buggy code path cannot deadlock:
    # the runner reports non-reproduction rather than crashing
    from repro.analysis.experiments import ErrorReproduction
    from repro.jackal.requirements import check_requirement_1

    v = ProtocolVariant(False, True, False)
    buggy = check_requirement_1(cfg, v)
    fixed = check_requirement_1(cfg, ProtocolVariant.no_migration())
    rep = ErrorReproduction("E1/no-mig", buggy, fixed, buggy.trace)
    assert not rep.reproduced
    assert "NOT reproduced" in rep.summary()
