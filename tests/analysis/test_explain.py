"""Tests for trace explanation."""

import dataclasses

from repro.analysis.explain import explain_label, explain_trace, narrate_trace
from repro.jackal.actions import Labels
from repro.jackal.model import JackalModel
from repro.jackal.params import CONFIG_1, ProtocolVariant
from repro.jackal.requirements import check_requirement_1
from repro.lts.trace import Trace


def test_every_model_label_has_a_template():
    # explore a configuration and require every label to be explained
    # (i.e. not merely echoed back)
    from repro.lts.explore import explore

    model = JackalModel(CONFIG_1, ProtocolVariant.fixed())
    lts = explore(model)
    for label in lts.labels:
        assert explain_label(label) != label, label


def test_specific_wordings():
    assert "starts a write" in explain_label("write(t0)")
    assert "server lock" in explain_label("lock_server(t1,p0)")
    assert "Data Request" in explain_label("send_datareq(t0,p0,p1)")
    assert "migrates" in explain_label("send_dataret_mig(p0,p1)")
    assert "Error 1" in explain_label("stale_remote_wait(t0)")
    assert "Sponmigrate" in explain_label("recv_sponmigrate(p1)")
    assert "VIOLATED" in explain_label("assertion_violation(foo)")


def test_unknown_label_passthrough():
    assert explain_label("frobnicate(q9)") == "frobnicate(q9)"


def test_explain_trace_accepts_both_types():
    t = Trace(("write(t0)", "writeover(t0)"))
    out1 = explain_trace(t)
    out2 = explain_trace(["write(t0)", "writeover(t0)"])
    assert out1 == out2
    assert len(out1) == 2


def test_narrate_error1_trace():
    cfg = dataclasses.replace(CONFIG_1, rounds=2, with_probes=False)
    rep = check_requirement_1(cfg, ProtocolVariant.error1())
    assert not rep.holds
    model = JackalModel(cfg, ProtocolVariant.error1())
    story = narrate_trace(model, rep.trace)
    assert "initial:" in story
    assert "home-ptrs" in story
    assert "never arrive" in story  # the Error-1 explanation fires
    # one explanation line + one context line per step
    assert story.count("\n") >= 2 * len(rep.trace)


def test_labels_class_matches_templates():
    # ensure builders and patterns stay in sync
    assert "thread t3" in explain_label(Labels.write(3))
    assert "p2" in explain_label(Labels.lock_homequeue(2))
