"""Tests for ASCII report tables."""

from repro.analysis.reporting import Table, format_table


def test_basic_table():
    out = format_table(
        [{"config": "C1", "states": 1234}, {"config": "C2", "states": 56}],
        ["config", "states"],
    )
    lines = out.splitlines()
    assert lines[0].startswith("+-")
    assert "| config" in lines[1]
    assert "1,234" in out
    assert out.count("+-") >= 3


def test_title():
    out = format_table([{"a": 1}], title="Table 8")
    assert out.splitlines()[0] == "Table 8"


def test_column_autodetection_order():
    out = format_table([{"b": 1}, {"a": 2, "b": 3}])
    header = out.splitlines()[1]
    assert header.index("b") < header.index("a")


def test_value_formatting():
    out = format_table(
        [{"ok": True, "no": False, "f": 1.23456, "s": "x"}],
        ["ok", "no", "f", "s"],
    )
    assert "yes" in out and "no" in out
    assert "1.235" in out


def test_numeric_right_alignment():
    out = format_table(
        [{"n": 1}, {"n": 1000000}],
        ["n"],
    )
    rows = [l for l in out.splitlines() if l.startswith("|")][1:]
    assert rows[0].endswith("        1 |")


def test_missing_cells():
    out = format_table([{"a": 1}, {"b": 2}], ["a", "b"])
    assert out  # renders without error


def test_table_builder():
    t = Table("demo", ["x", "y"])
    t.add(x=1, y=2)
    t.add(x=3, y=4)
    r = t.render()
    assert "demo" in r
    assert "3" in r
    assert str(t) == r
