"""Tests for the scriptable simulator."""

import pytest

from repro.analysis.simulator import Simulator
from repro.errors import TraceError
from repro.jackal.model import JackalModel
from repro.jackal.params import CONFIG_1, ProtocolVariant


@pytest.fixture
def sim(chain_system):
    return Simulator(chain_system)


def test_initial(sim):
    assert sim.state == 0
    assert sim.depth() == 0
    assert sorted(sim.enabled_labels()) == ["a", "b"]


def test_step_by_label(sim):
    assert sim.step("a") == "a"
    assert sim.state == 1
    assert sim.depth() == 1


def test_step_by_index(sim):
    sim.step(0)
    assert sim.state in (1, 3)


def test_step_by_prefix():
    m = JackalModel(CONFIG_1, ProtocolVariant.fixed())
    s = Simulator(m)
    taken = s.step("write(t0")
    assert taken == "write(t0)"


def test_bad_choices(sim):
    with pytest.raises(TraceError, match="out of range"):
        sim.step(9)
    with pytest.raises(TraceError, match="not enabled"):
        sim.step("zz")


def test_ambiguous_prefix():
    m = JackalModel(CONFIG_1, ProtocolVariant.fixed())
    s = Simulator(m)
    with pytest.raises(TraceError, match="ambiguous"):
        s.step("write")  # write(t0) and write(t1)


def test_terminal_state(sim):
    sim.step("b")  # to state 3, terminal
    with pytest.raises(TraceError, match="terminal"):
        sim.step(0)


def test_undo_and_reset(sim):
    sim.run(["a", "b", "c"])
    assert sim.depth() == 3
    sim.undo()
    assert sim.depth() == 2 and sim.state == 2
    sim.undo(2)
    assert sim.depth() == 0 and sim.state == 0
    with pytest.raises(TraceError):
        sim.undo()
    sim.run(["a"])
    sim.reset()
    assert sim.depth() == 0


def test_history(sim):
    sim.run(["a", "b"])
    h = sim.history()
    assert h.labels == ("a", "b")
    assert h.states == (0, 1, 2)


def test_describe_plain(sim):
    assert sim.describe() == "0"


def test_describe_decodes_protocol_state():
    m = JackalModel(CONFIG_1, ProtocolVariant.fixed())
    s = Simulator(m)
    d = s.describe()
    assert isinstance(d, dict) and "threads" in d


def test_random_walk_deterministic(chain_system):
    a = Simulator(chain_system).random_walk(10, seed=3)
    b = Simulator(chain_system).random_walk(10, seed=3)
    assert a.labels == b.labels


def test_random_walk_stops_at_terminal(chain_system):
    t = Simulator(chain_system).random_walk(100, seed=1)
    assert len(t) <= 100
