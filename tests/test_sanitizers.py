"""Run the configured sanitizers over ``src`` when they are installed.

CI installs ruff and mypy through the ``lint`` extra; local environments
without them skip these tests instead of failing. This keeps the
pyproject configuration honest — a rule violation or a config typo
fails here before it fails in CI.
"""

import pathlib
import shutil
import subprocess

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def _run(tool: str, *args: str) -> subprocess.CompletedProcess:
    if shutil.which(tool) is None:
        pytest.skip(f"{tool} is not installed (pip install -e .[lint])")
    return subprocess.run(
        [tool, *args],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_ruff_clean():
    proc = _run("ruff", "check", "src")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_mypy_clean():
    proc = _run("mypy")
    assert proc.returncode == 0, proc.stdout + proc.stderr
