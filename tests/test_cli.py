"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_check_fixed_holds(capsys):
    code = main(["check", "--config", "1", "--variant", "fixed"])
    out = capsys.readouterr().out
    assert code == 0
    assert "HOLDS" in out
    assert "VIOLATED" not in out


def test_check_single_requirement(capsys):
    code = main(["check", "--config", "1", "--requirement", "1"])
    assert code == 0
    assert "deadlock" in capsys.readouterr().out


def test_check_error1_fails_with_trace(capsys):
    code = main([
        "check", "--config", "1", "--variant", "error1", "--cyclic",
        "--requirement", "1", "--show-trace",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "VIOLATED" in out
    assert "stale_remote_wait" in out


def test_check_error2(capsys):
    code = main([
        "check", "--config", "2", "--variant", "error2",
        "--requirement", "3.2",
    ])
    assert code == 1


def test_explore_writes_aut(tmp_path, capsys):
    path = tmp_path / "c1.aut"
    code = main(["explore", "--config", "1", "--aut", str(path)])
    assert code == 0
    text = path.read_text()
    assert text.startswith("des (0,")
    from repro.lts.aut import read_aut

    lts = read_aut(path)
    assert lts.n_states > 100


def test_table8_small(capsys):
    code = main(["table8", "--rounds", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Table 8" in out
    assert out.count("yes") == 3


def test_narrate_error1(capsys):
    code = main([
        "narrate", "--config", "1", "--variant", "error1", "--cyclic",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "never arrive" in out  # the Error-1 narration


def test_narrate_nothing_to_tell(capsys):
    code = main(["narrate", "--config", "1", "--variant", "fixed"])
    out = capsys.readouterr().out
    assert code == 0
    assert "nothing to narrate" in out


def test_narrate_explicit_requirement_is_checked_directly(capsys):
    # used to narrate a requirement-1 trace whenever one existed, even
    # when --requirement 3.2 was asked for; now 3.2 is checked directly
    code = main([
        "narrate", "--config", "1", "--variant", "error1", "--cyclic",
        "--requirement", "3.2",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "requirement 3.2" in out
    assert "nothing to narrate" in out
    assert "never arrive" not in out  # no requirement-1 deadlock narration


def test_narrate_requirement_32_counterexample(capsys):
    code = main([
        "narrate", "--config", "2", "--variant", "error2",
        "--requirement", "3.2",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "requirement 3.2" in out
    assert "VIOLATED" in out


def test_litmus(capsys):
    code = main(["litmus"])
    out = capsys.readouterr().out
    assert code == 0
    assert "conforms" in out


def test_formula_check(capsys):
    code = main(["formula", "--config", "1", "[T*.c_home] F"])
    out = capsys.readouterr().out
    assert code == 0
    assert "True" in out


def test_formula_violated(capsys):
    code = main([
        "formula", "--config", "1", "--variant", "error1", "--cyclic",
        "<T*.stale_remote_wait(t0)> T",
    ])
    assert code == 0  # the buggy path is reachable -> formula True


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_formula_no_probes(capsys):
    code = main([
        "formula", "--config", "1", "--no-probes",
        "[T*.write(t0)] mu X. (<T>T /\\ [not writeover(t0)] X)",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "True" in out


# -- repro bench fault injection --------------------------------------------


@pytest.mark.slow
def test_bench_inject_fault_recovers(capsys):
    code = main([
        "bench", "--config", "1", "--rounds", "1", "--workers", "2",
        "--backends", "distributed", "--batch-size", "32",
        "--inject-fault", "kill:0@2",
    ])
    out = capsys.readouterr().out
    # the cross-check passed: the crashed sweep reproduced the serial
    # counts exactly, and the recovery is reported
    assert code == 0
    assert "worker_deaths=1" in out
    assert "recovered=True" in out


def test_bench_inject_fault_without_distributed_backend_exits_2(capsys):
    # a fault plan that would never be exercised must be an error, not
    # a silently fault-free benchmark
    code = main([
        "bench", "--config", "1", "--rounds", "1",
        "--backends", "serial,engine", "--inject-fault", "kill:0@1",
    ])
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error:")
    assert "distributed" in err


def test_bench_bad_fault_spec_exits_2(capsys):
    code = main([
        "bench", "--config", "1", "--rounds", "1",
        "--backends", "distributed", "--inject-fault", "fry:0@1",
    ])
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error:")
    assert "fault spec" in err


# -- repro lint ------------------------------------------------------------


def test_lint_clean_repo_exits_zero(capsys):
    code = main(["lint"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 error(s)" in out


def test_lint_error1_mutation_exits_nonzero(capsys):
    code = main(["lint", "--variant", "error1"])
    out = capsys.readouterr().out
    assert code == 1
    assert "JKL005" in out
    assert "stale_remote_wait" in out


def test_lint_json_report(tmp_path, capsys):
    import json

    path = tmp_path / "lint.json"
    code = main(["lint", "--variant", "buggy", "--json", "--out", str(path)])
    assert code == 1
    data = json.loads(path.read_text())
    assert data["exit_code"] == 1
    assert [f["rule"] for f in data["findings"]] == ["JKL005"]
    assert data["findings"][0]["severity"] == "error"


def test_lint_suppress(capsys):
    code = main(["lint", "--variant", "error1", "--suppress", "JKL005"])
    assert code == 0


def test_lint_rules_catalogue(capsys):
    code = main(["lint", "--rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule in ("JKL001", "JKL005", "JKL101", "JKL201"):
        assert rule in out


def test_lint_extra_formula_vacuous(capsys):
    code = main(["lint", "--formula", 'ghost=[T*."write(t9)"] F'])
    out = capsys.readouterr().out
    assert code == 1
    assert "JKL201" in out
    assert "ghost" in out


def test_lint_is_fast_and_explores_nothing(monkeypatch):
    import importlib
    import time

    def boom(*_a, **_k):  # pragma: no cover - failure path
        raise AssertionError("repro lint must not explore")

    monkeypatch.setattr(
        importlib.import_module("repro.lts.engine"), "explore_fast", boom
    )
    start = time.perf_counter()
    assert main(["lint", "--config", "3"]) == 0
    assert time.perf_counter() - start < 5.0


def test_lint_json_carries_schema_version_and_fingerprint(tmp_path):
    import json

    path = tmp_path / "lint.json"
    assert main(["lint", "--json", "--out", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data["schema_version"] >= 2
    assert len(data["fingerprint"]) == 64


# -- repro lint --certify / --reduce ----------------------------------------


def test_lint_certify_writes_certificate(tmp_path, capsys):
    import json

    cert_path = tmp_path / "CERT.json"
    code = main(["lint", "--certify", "--cert-out", str(cert_path)])
    assert code == 0
    from repro.staticcheck.certificates import CERT_SCHEMA_VERSION

    data = json.loads(cert_path.read_text())
    assert data["schema_version"] == CERT_SCHEMA_VERSION
    assert data["group"]
    assert data["signature"]
    assert str(cert_path) in capsys.readouterr().out


def test_lint_certify_failure_exits_one_without_certificate(
    tmp_path, monkeypatch
):
    """The exit-code contract: certification failure is exit 1 with a
    machine-readable JKL30x reason in the JSON report, and no
    certificate file is written."""
    import json

    from repro import cli as cli_mod
    from repro.staticcheck.findings import Finding, Severity

    def refused(_config, _variant, **_kw):
        return None, [
            Finding("JKL301", Severity.ERROR, "model/group",
                    "no nontrivial admissible permutation")
        ]

    import repro.staticcheck.symmetry as symmetry_mod

    monkeypatch.setattr(symmetry_mod, "certify", refused)
    cert_path = tmp_path / "CERT.json"
    out_path = tmp_path / "lint.json"
    code = cli_mod.main([
        "lint", "--certify", "--json",
        "--cert-out", str(cert_path), "--out", str(out_path),
    ])
    assert code == 1
    assert not cert_path.exists()
    data = json.loads(out_path.read_text())
    assert data["exit_code"] == 1
    assert [f["rule"] for f in data["findings"]] == ["JKL301"]


def test_check_reduce_roundtrip(tmp_path, capsys):
    cert_path = tmp_path / "CERT.json"
    assert main(["lint", "--certify", "--cert-out", str(cert_path)]) == 0
    capsys.readouterr()
    code = main(["check", "--reduce", str(cert_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "HOLDS" in out and "VIOLATED" not in out


def test_check_reduce_refuses_stale_certificate(tmp_path, capsys):
    cert_path = tmp_path / "CERT.json"
    # certified for config 1, then used on config 2: JKL303, exit 2
    assert main(["lint", "--certify", "--cert-out", str(cert_path)]) == 0
    capsys.readouterr()
    code = main(["check", "--config", "2", "--reduce", str(cert_path)])
    err = capsys.readouterr().err
    assert code == 2
    assert "refusing to reduce" in err
    assert "JKL303" in err


def test_check_reduce_unreadable_certificate_exit_2(tmp_path, capsys):
    bad = tmp_path / "nope.json"
    code = main(["check", "--reduce", str(bad)])
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error:")


def test_explore_reduce_shrinks_the_lts(tmp_path, capsys):
    cert_path = tmp_path / "CERT.json"
    assert main(["lint", "--certify", "--cert-out", str(cert_path)]) == 0
    capsys.readouterr()
    assert main(["explore"]) == 0
    unreduced = capsys.readouterr().out
    assert "288" in unreduced
    # the certified formulas section licenses the full symmetry
    # quotient for the plain LTS too (per-thread formulas are decided
    # on its group-unfolding), and the slice trims the rstate fields ...
    assert main(["explore", "--reduce", str(cert_path)]) == 0
    assert "154" in capsys.readouterr().out
    # ... and the probe LTS (the requirement-3 view) lands on the same
    # sliced quotient
    assert main(["explore", "--probes", "--reduce", str(cert_path)]) == 0
    assert "154" in capsys.readouterr().out


# -- error handling: ReproError -> message on stderr, exit code 2 -----------


def test_bad_model_parameters_exit_2(capsys):
    code = main(["check", "--config", "1", "--rounds", "0"])
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error:")
    assert "rounds" in err
    assert "Traceback" not in err


def test_malformed_formula_exit_2(capsys):
    code = main(["formula", "--config", "1", "[T*.c_home F"])
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error:")


def test_lint_malformed_extra_formula_exit_2(capsys):
    code = main(["lint", "--formula", "broken=[T* F"])
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error:")


# -- flight recorder (--trace / --metrics-out / repro report) ---------------


def test_explore_trace_and_metrics(tmp_path, capsys):
    import json

    from repro.obs.tracer import read_trace

    trace = tmp_path / "sweep.jsonl"
    metrics = tmp_path / "m.json"
    code = main([
        "explore", "--config", "1",
        "--trace", str(trace), "--metrics-out", str(metrics),
    ])
    assert code == 0
    events = read_trace(trace)
    kinds = [e["ev"] for e in events]
    assert "sweep_start" in kinds and "sweep_end" in kinds and "wave" in kinds
    snap = json.loads(metrics.read_text())
    assert snap["repro_sweep_states_total"] > 0
    err = capsys.readouterr().err
    assert f"written: {trace}" in err
    assert f"written: {metrics}" in err


def test_metrics_out_prometheus_suffix(tmp_path):
    metrics = tmp_path / "m.prom"
    code = main(["explore", "--config", "1", "--metrics-out", str(metrics)])
    assert code == 0
    text = metrics.read_text()
    assert "# TYPE repro_sweeps_total counter" in text
    assert 'repro_sweeps_total{backend="engine",outcome="ok"} 1' in text


def test_trace_ring_bounds_the_file(tmp_path):
    from repro.obs.tracer import read_trace

    trace = tmp_path / "tail.jsonl"
    code = main([
        "explore", "--config", "1",
        "--trace", str(trace), "--trace-ring", "5",
    ])
    assert code == 0
    assert len(read_trace(trace)) == 5


def test_check_trace_records_requirement_events(tmp_path):
    from repro.obs.tracer import read_trace

    trace = tmp_path / "check.jsonl"
    code = main([
        "check", "--config", "1", "--requirement", "1",
        "--trace", str(trace),
    ])
    assert code == 0
    checks = [e for e in read_trace(trace) if e["ev"] == "check"]
    assert len(checks) == 1
    assert checks[0]["holds"] is True


def test_report_renders_trace(tmp_path, capsys):
    trace = tmp_path / "sweep.jsonl"
    assert main(["explore", "--config", "1", "--trace", str(trace)]) == 0
    capsys.readouterr()
    code = main(["report", str(trace)])
    out = capsys.readouterr().out
    assert code == 0
    assert "flight recorder report" in out
    assert "sweep 1: engine" in out
    assert "phase breakdown:" in out


def test_report_missing_file_exits_2(tmp_path, capsys):
    code = main(["report", str(tmp_path / "absent.jsonl")])
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error:")


def test_report_malformed_trace_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"t": 0.1, "ev": "a"}\nnot json\n')
    code = main(["report", str(bad)])
    err = capsys.readouterr().err
    assert code == 2
    assert "malformed" in err


def test_bench_report_embeds_phases_and_metrics(tmp_path):
    import json

    out = tmp_path / "B.json"
    code = main([
        "bench", "--config", "1", "--rounds", "1",
        "--backends", "serial,engine", "--out", str(out),
    ])
    assert code == 0
    report = json.loads(out.read_text())
    phases = report["phases"]
    assert set(phases) == {
        "successors_s", "dedup_s", "transport_s", "other_s", "total_s"
    }
    assert phases["total_s"] > 0
    assert report["metrics"]["repro_sweep_states_total"] == \
        report["system"]["states"]


# -- flight recorder v2 (--trace-dir / merged report / memory gate) ----------


def test_explore_distributed_trace_dir_and_merged_report(tmp_path, capsys):
    """The acceptance scenario: a distributed sweep with --trace-dir
    leaves one stream per process and `repro report <dir>` renders the
    merged timeline with every worker's lane."""
    td = tmp_path / "td"
    code = main([
        "explore", "--config", "1", "--distributed", "--workers", "2",
        "--transport", "shm", "--trace-dir", str(td),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "workers" in captured.out
    assert f"written: {td}" in captured.err
    names = sorted(p.name for p in td.iterdir())
    assert names == [
        "trace.coordinator.jsonl", "trace.worker0.jsonl",
        "trace.worker1.jsonl",
    ]

    code = main(["report", str(td)])
    out = capsys.readouterr().out
    assert code == 0
    assert "3 stream(s): coordinator, worker0, worker1" in out
    assert "worker lanes:" in out
    assert "dispatch->ack latency:" in out
    assert "memory: max RSS" in out


def test_trace_and_trace_dir_are_mutually_exclusive(tmp_path, capsys):
    code = main([
        "explore", "--config", "1",
        "--trace", str(tmp_path / "t.jsonl"),
        "--trace-dir", str(tmp_path / "td"),
    ])
    err = capsys.readouterr().err
    assert code == 2
    assert "mutually exclusive" in err


def test_report_merges_multiple_files(tmp_path, capsys):
    import json

    coord = tmp_path / "trace.coordinator.jsonl"
    coord.write_text(json.dumps(
        {"t": 0.0, "ev": "sweep_start", "backend": "distributed-process",
         "n_workers": 1}) + "\n")
    worker = tmp_path / "trace.worker0.jsonl"
    worker.write_text(json.dumps(
        {"t": 0.0, "ev": "worker_start", "worker": 0,
         "clock_offset": 0.1}) + "\n")
    code = main(["report", str(coord), str(worker)])
    out = capsys.readouterr().out
    assert code == 0
    assert "2 stream(s): coordinator, worker0" in out


def test_report_lenient_renders_torn_trace(tmp_path, capsys):
    torn = tmp_path / "torn.jsonl"
    torn.write_text(
        '{"t": 0.0, "ev": "sweep_start", "backend": "engine"}\n'
        '{"t": 0.1, "ev": "sweep_end", "outc'
    )
    assert main(["report", str(torn)]) == 2  # strict by default
    capsys.readouterr()
    code = main(["report", "--lenient", str(torn)])
    out = capsys.readouterr().out
    assert code == 0
    assert "sweep 1: engine" in out


def test_report_empty_trace_renders(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    code = main(["report", str(empty)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 sweep(s), 0 events" in out


def test_mem_pressure_events_recorded(tmp_path):
    from repro.obs.tracer import read_trace

    trace = tmp_path / "t.jsonl"
    code = main([
        "explore", "--config", "1", "--trace", str(trace),
        "--mem-pressure-mb", "1",  # any CPython is over 1 MiB RSS
    ])
    assert code == 0
    events = read_trace(trace)
    assert any(e["ev"] == "mem_pressure" for e in events)
    end = [e for e in events if e["ev"] == "sweep_end"][-1]
    assert end["mem_pressure_events"] >= 1
    assert end["max_rss_bytes"] > 0


def test_bench_max_rss_gate_cli(tmp_path, capsys):
    import json

    out = tmp_path / "B.json"
    code = main([
        "bench", "--config", "1", "--rounds", "1",
        "--backends", "serial,engine", "--out", str(out),
        "--max-rss-mb", "1",  # deliberately impossible cap
    ])
    err = capsys.readouterr().err
    assert code == 1
    assert "RSS watermark" in err and "--max-rss-mb" in err
    report = json.loads(out.read_text())
    for name in ("serial", "engine"):
        assert report["backends"][name]["max_rss_bytes"] > 0
        assert report["backends"][name]["mem"]["watermarks"]
