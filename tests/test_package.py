"""Package surface tests: imports, __all__, version."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.algebra",
    "repro.lts",
    "repro.mucalc",
    "repro.jackal",
    "repro.jmm",
    "repro.analysis",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_imports(name):
    mod = importlib.import_module(name)
    assert mod is not None


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_entries_resolve(name):
    mod = importlib.import_module(name)
    for entry in getattr(mod, "__all__", []):
        assert hasattr(mod, entry), f"{name}.{entry} missing"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_error_hierarchy():
    import repro
    from repro.errors import (
        AutFormatError,
        ExplorationLimitError,
        FormulaSemanticsError,
        FormulaSyntaxError,
        ModelError,
        ReproError,
        SpecificationError,
        TraceError,
    )

    for exc in (
        SpecificationError,
        ExplorationLimitError,
        FormulaSyntaxError,
        FormulaSemanticsError,
        ModelError,
        TraceError,
        AutFormatError,
    ):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)
    assert repro.ReproError is ReproError


def test_docstrings_on_public_api():
    """Every public item exported by a subpackage carries a docstring."""
    for name in SUBPACKAGES:
        mod = importlib.import_module(name)
        assert mod.__doc__, f"{name} lacks a module docstring"
        for entry in getattr(mod, "__all__", []):
            obj = getattr(mod, entry)
            if callable(obj) or isinstance(obj, type):
                assert getattr(obj, "__doc__", None), (
                    f"{name}.{entry} lacks a docstring"
                )


def test_cli_module_importable():
    from repro.cli import main

    assert callable(main)
