"""Tests for lasso/livelock detection."""

import dataclasses

import pytest

from repro.jackal import CONFIG_2, JackalModel, ProtocolVariant
from repro.lts.cycles import Lasso, find_lasso_avoiding
from repro.lts.explore import explore
from repro.lts.lts import LTS
from repro.lts.trace import Trace


def looped() -> LTS:
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "spin", 2)
    l.add_transition(2, "spin", 1)
    l.add_transition(1, "done", 3)
    return l


def test_finds_simple_lasso():
    lasso = find_lasso_avoiding(looped(), ["done"])
    assert lasso is not None
    assert lasso.prefix.labels == ("a",)
    assert set(lasso.cycle.labels) == {"spin"}
    assert len(lasso) == 3


def test_progress_on_cycle_means_no_lasso():
    lasso = find_lasso_avoiding(looped(), ["spin"])
    assert lasso is None


def test_predicate_form():
    lasso = find_lasso_avoiding(looped(), lambda l: l.startswith("done"))
    assert lasso is not None


def test_self_loop_detected():
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "idle", 1)
    lasso = find_lasso_avoiding(l, ["a"])
    assert lasso.cycle.labels == ("idle",)


def test_ignored_self_loops():
    l = LTS(0)
    l.add_transition(0, "probe", 0)
    l.add_transition(0, "a", 1)
    assert find_lasso_avoiding(l, ["a"], ignore_self_loops_of=["probe"]) is None


def test_acyclic_graph():
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "b", 2)
    assert find_lasso_avoiding(l, []) is None


def test_lasso_format():
    lasso = Lasso(Trace(("a",)), Trace(("x", "y")))
    txt = lasso.format()
    assert "-- cycle --" in txt
    assert "x" in txt


def test_error2_flush_storm_is_a_lasso():
    """The lost home makes flushes bounce forever: a concrete lasso."""
    cfg = dataclasses.replace(CONFIG_2, rounds=1, with_probes=False)
    lts = explore(JackalModel(cfg, ProtocolVariant.error2()))
    progress = [
        l for l in lts.labels
        if l.startswith(("writeover", "flushover"))
    ]
    lasso = find_lasso_avoiding(lts, progress)
    assert lasso is not None
    # the cycle is message forwarding between the two processors
    assert all(
        lab.startswith(("forward_", "lock_homequeue")) for lab in lasso.cycle.labels
    ), lasso.cycle.labels


def test_fixed_protocol_has_no_unproductive_cycle():
    cfg = dataclasses.replace(CONFIG_2, rounds=1, with_probes=False)
    lts = explore(JackalModel(cfg, ProtocolVariant.fixed()))
    progress = [
        l for l in lts.labels
        if l.startswith(("writeover", "flushover"))
    ]
    assert find_lasso_avoiding(lts, progress) is None
