"""Tests for bitstate (supertrace) exploration."""

from repro.lts.bitstate import bitstate_explore
from repro.lts.explore import explore
from tests.conftest import ChainSystem


class Counter:
    """A linear system of n states."""

    def __init__(self, n):
        self.n = n

    def initial_state(self):
        return 0

    def successors(self, s):
        return [("inc", s + 1)] if s + 1 < self.n else []


def test_bitstate_exact_when_table_large():
    res = bitstate_explore(Counter(500), table_bytes=1 << 16)
    assert res.visited == 500
    assert res.transitions == 499
    assert res.deadlocks == 1
    assert 0 < res.fill_ratio < 0.01
    assert res.hash_functions == 3


def test_bitstate_matches_exact_exploration(chain_system):
    exact = explore(chain_system)
    res = bitstate_explore(chain_system)
    assert res.visited == exact.n_states
    assert res.transitions == exact.n_transitions


def test_bitstate_max_states_cap():
    res = bitstate_explore(Counter(1000), max_states=50)
    assert res.visited == 50


def test_bitstate_tiny_table_may_underreport():
    # 4 bytes = 32 bits for 500 states: collisions must prune heavily
    res = bitstate_explore(Counter(500), table_bytes=4, hash_functions=2)
    assert res.visited < 500
    assert res.fill_ratio > 0.1  # a 32-bit table saturates immediately


def test_bitstate_on_state_callback(chain_system):
    seen = []
    bitstate_explore(chain_system, on_state=seen.append)
    assert len(seen) == 4


def test_bitstate_counts_deadlocks(chain_system):
    res = bitstate_explore(chain_system)
    assert res.deadlocks == 1
