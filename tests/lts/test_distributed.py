"""Tests for partitioned (distributed) state-space generation."""

import pytest

from repro.errors import ExplorationLimitError
from repro.lts.distributed import distributed_explore
from repro.lts.explore import explore
from repro.lts.reduction import minimize_strong


class Diamond:
    """A diamond lattice of given width — branches recombine."""

    def __init__(self, width=5):
        self.width = width

    def initial_state(self):
        return (0, 0)

    def successors(self, s):
        level, pos = s
        if level >= self.width:
            return []
        return [("l", (level + 1, pos)), ("r", (level + 1, pos + 1))]


def test_inline_counts_match_serial():
    sys = Diamond(6)
    exact = explore(sys)
    _lts, stats = distributed_explore(sys, n_workers=3, backend="inline")
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.deadlocks == len(exact.deadlock_states())
    assert sum(stats.per_worker_states) == stats.states
    assert stats.levels >= 6


def test_inline_collect_builds_equivalent_lts():
    sys = Diamond(5)
    exact = explore(sys)
    lts, _stats = distributed_explore(
        sys, n_workers=4, backend="inline", collect=True
    )
    # BFS renumbering may differ; compare modulo strong bisimulation
    assert lts.n_states == exact.n_states
    assert lts.n_transitions == exact.n_transitions
    assert minimize_strong(lts) == minimize_strong(exact)


def test_single_worker_inline(chain_system):
    lts, stats = distributed_explore(
        chain_system, n_workers=1, backend="inline", collect=True
    )
    assert stats.states == 4
    assert stats.imbalance() == 1.0


def test_inline_max_states():
    with pytest.raises(ExplorationLimitError):
        distributed_explore(
            Diamond(60), n_workers=2, backend="inline", max_states=100
        )


def test_bad_arguments(chain_system):
    with pytest.raises(ValueError):
        distributed_explore(chain_system, n_workers=0)
    with pytest.raises(ValueError):
        distributed_explore(chain_system, backend="carrier-pigeon")


@pytest.mark.slow
def test_process_backend_matches_serial():
    sys = Diamond(7)
    exact = explore(sys)
    lts, stats = distributed_explore(
        sys, n_workers=2, backend="process", collect=True
    )
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert lts.n_states == exact.n_states


def test_imbalance_metric():
    from repro.lts.distributed import DistributedStats

    s = DistributedStats(states=100, per_worker_states=[50, 50])
    assert s.imbalance() == 1.0
    s2 = DistributedStats(states=100, per_worker_states=[75, 25])
    assert s2.imbalance() == 1.5
    assert DistributedStats().imbalance() == 1.0
