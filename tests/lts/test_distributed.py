"""Tests for partitioned (distributed) state-space generation."""

import pytest

from repro.errors import ExplorationLimitError
from repro.lts.distributed import distributed_explore
from repro.lts.explore import explore
from repro.lts.reduction import minimize_strong


class Diamond:
    """A diamond lattice of given width — branches recombine."""

    def __init__(self, width=5):
        self.width = width

    def initial_state(self):
        return (0, 0)

    def successors(self, s):
        level, pos = s
        if level >= self.width:
            return []
        return [("l", (level + 1, pos)), ("r", (level + 1, pos + 1))]


def test_inline_counts_match_serial():
    sys = Diamond(6)
    exact = explore(sys)
    _lts, stats = distributed_explore(sys, n_workers=3, backend="inline")
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.deadlocks == len(exact.deadlock_states())
    assert sum(stats.per_worker_states) == stats.states
    assert stats.levels >= 6


def test_inline_collect_builds_equivalent_lts():
    sys = Diamond(5)
    exact = explore(sys)
    lts, _stats = distributed_explore(
        sys, n_workers=4, backend="inline", collect=True
    )
    # BFS renumbering may differ; compare modulo strong bisimulation
    assert lts.n_states == exact.n_states
    assert lts.n_transitions == exact.n_transitions
    assert minimize_strong(lts) == minimize_strong(exact)


def test_single_worker_inline(chain_system):
    lts, stats = distributed_explore(
        chain_system, n_workers=1, backend="inline", collect=True
    )
    assert stats.states == 4
    assert stats.imbalance() == 1.0


def test_inline_max_states():
    with pytest.raises(ExplorationLimitError):
        distributed_explore(
            Diamond(60), n_workers=2, backend="inline", max_states=100
        )


def test_inline_limit_fills_stats_and_attaches():
    with pytest.raises(ExplorationLimitError) as ei:
        distributed_explore(
            Diamond(60), n_workers=2, backend="inline", max_states=100
        )
    stats = ei.value.stats
    assert stats is not None
    assert stats.states > 100
    assert stats.seconds > 0.0
    assert stats.levels > 0
    assert sum(stats.per_worker_states) == stats.states


@pytest.mark.slow
def test_process_limit_fills_stats_and_attaches():
    with pytest.raises(ExplorationLimitError) as ei:
        distributed_explore(
            Diamond(60), n_workers=2, backend="process", max_states=100,
            batch_size=8,
        )
    stats = ei.value.stats
    assert stats is not None
    assert stats.states > 100
    assert stats.seconds > 0.0


class GeneratorDiamond(Diamond):
    """Diamond whose ``successors`` is a generator, not a sequence.

    The :class:`~repro.lts.explore.TransitionSystem` protocol only
    promises an Iterable; ``_expand_batch`` used to call ``len()`` on
    the result and silently dropped every transition of such systems.
    """

    def successors(self, s):
        yield from Diamond.successors(self, s)


def test_generator_successors_inline_backend():
    sys_ = GeneratorDiamond(6)
    exact = explore(sys_)
    _lts, stats = distributed_explore(sys_, n_workers=3, backend="inline")
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.deadlocks == len(exact.deadlock_states())


@pytest.mark.slow
def test_generator_successors_process_backend():
    sys_ = GeneratorDiamond(6)
    exact = explore(sys_)
    _lts, stats = distributed_explore(sys_, n_workers=2, backend="process")
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions


def test_bad_arguments(chain_system):
    with pytest.raises(ValueError):
        distributed_explore(chain_system, n_workers=0)
    with pytest.raises(ValueError):
        distributed_explore(chain_system, backend="carrier-pigeon")


@pytest.mark.slow
def test_process_backend_matches_serial():
    sys = Diamond(7)
    exact = explore(sys)
    lts, stats = distributed_explore(
        sys, n_workers=2, backend="process", collect=True
    )
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert lts.n_states == exact.n_states


def test_imbalance_metric():
    from repro.lts.distributed import DistributedStats

    s = DistributedStats(states=100, per_worker_states=[50, 50])
    assert s.imbalance() == 1.0
    s2 = DistributedStats(states=100, per_worker_states=[75, 25])
    assert s2.imbalance() == 1.5
    assert DistributedStats().imbalance() == 1.0


def test_imbalance_excludes_workers_that_never_held_states():
    """Regression: a worker that crashed before holding any states must
    not dilute the mean — [100, 0, 50] is a 1.33 skew over the two
    holders, not 2.0 over three partitions."""
    from repro.lts.distributed import DistributedStats

    s = DistributedStats(
        states=150, per_worker_states=[100, 0, 50], worker_deaths=1
    )
    assert s.imbalance() == pytest.approx(100 / 75)
    # all-dead edge case: no holders, no skew to report
    assert DistributedStats(per_worker_states=[0, 0]).imbalance() == 1.0


def _partition_imbalance(keys, n, owner_of):
    counts = [0] * n
    for k in keys:
        counts[owner_of(k, n)] += 1
    return max(counts) / (sum(counts) / n)


def test_owner_mixing_improves_imbalance():
    """The splitmix64-mixed owner beats raw ``hash(state) % n``.

    Packed codec keys are the worst case for the raw scheme: every
    ordinary key carries a tag bit (always-odd integers), so
    ``hash(k) % 2**m`` abandons whole partitions. The mixed owner must
    spread the same keys almost evenly.
    """
    from repro.jackal import Config, JackalModel
    from repro.lts.distributed import _owner
    from repro.lts.explore import breadth_first_states

    model = JackalModel(
        Config(threads_per_processor=(1, 1), rounds=1, with_probes=False)
    )
    codec = model.codec()
    keys = [codec.encode(s) for s in breadth_first_states(model)]

    def raw_owner(k, n):
        return hash(k) % n

    for n in (2, 4):
        raw = _partition_imbalance(keys, n, raw_owner)
        mixed = _partition_imbalance(keys, n, _owner)
        assert mixed < raw  # the mixer strictly improves the partition
        assert mixed < 1.25
        assert raw > 1.5  # raw hashing really is pathological here


@pytest.mark.parametrize(
    "tpp,rounds",
    [((1, 1), 1), ((2,), 1), ((1, 1), 2)],
)
def test_inline_backend_matches_serial_on_jackal(tpp, rounds):
    from repro.jackal import Config, JackalModel

    model = JackalModel(
        Config(threads_per_processor=tpp, rounds=rounds, with_probes=False)
    )
    exact = explore(model)
    _lts, stats = distributed_explore(model, n_workers=3, backend="inline")
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.deadlocks == len(exact.deadlock_states())


@pytest.mark.slow
@pytest.mark.parametrize("packed", [True, False])
def test_process_backend_matches_serial_on_jackal(packed):
    from repro.jackal import Config, JackalModel

    model = JackalModel(
        Config(threads_per_processor=(1, 1), rounds=1, with_probes=False)
    )
    exact = explore(model)
    _lts, stats = distributed_explore(
        model, n_workers=2, backend="process", packed=packed
    )
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.deadlocks == len(exact.deadlock_states())
    assert sum(stats.per_worker_batches) == stats.batches > 0


def test_packed_requires_codec(chain_system):
    with pytest.raises(ValueError):
        distributed_explore(chain_system, backend="inline", packed=True)


def test_packed_auto_detection(chain_system):
    from repro.jackal import Config, JackalModel

    # systems without a codec fall back to tuple shipping silently
    _lts, stats = distributed_explore(
        chain_system, n_workers=2, backend="inline"
    )
    assert stats.states == 4
    # Jackal models pick up their codec automatically
    model = JackalModel(
        Config(threads_per_processor=(2,), rounds=1, with_probes=False)
    )
    lts, _stats = distributed_explore(
        model, n_workers=2, backend="inline", collect=True
    )
    exact = explore(model)
    assert lts.n_states == exact.n_states
    assert minimize_strong(lts) == minimize_strong(exact)
