"""Tests for bisimulation reductions."""

from hypothesis import given

from repro.lts.lts import LTS, TAU
from repro.lts.reduction import (
    branching_bisimulation_classes,
    compress_tau_cycles,
    minimize_branching,
    minimize_strong,
    strong_bisimulation_classes,
)
from tests.conftest import random_lts


def two_copies_of_chain() -> LTS:
    """Two identical a.b chains from a choice state — collapsible."""
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(0, "a", 2)
    l.add_transition(1, "b", 3)
    l.add_transition(2, "b", 4)
    return l


def test_strong_merges_identical_branches():
    m = minimize_strong(two_copies_of_chain())
    assert m.n_states == 3  # {0}, {1,2}, {3,4}
    assert m.n_transitions == 2


def test_strong_distinguishes_labels():
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(0, "b", 2)
    m = minimize_strong(l)
    assert m.n_states == 2  # 1 and 2 merge (both terminal), 0 stays
    assert m.n_transitions == 2


def test_strong_classes_respect_moves():
    l = two_copies_of_chain()
    cls = strong_bisimulation_classes(l)
    assert cls[1] == cls[2]
    assert cls[3] == cls[4]
    assert cls[0] != cls[1]


def test_strong_preserves_initial():
    l = two_copies_of_chain()
    m = minimize_strong(l)
    assert m.initial == 0 or ("a", 1) in [
        (lab, d) for lab, d in m.successors(m.initial)
    ] or m.out_degree(m.initial) == 1


def test_branching_collapses_inert_tau(tau_lts):
    m = minimize_branching(tau_lts)
    assert m.n_states == 2
    assert m.n_transitions == 1
    assert m.labels == ["a"]


def test_branching_keeps_observable_tau():
    # 0 -tau-> 1 where 1 loses the 'b' option: tau is NOT inert
    l = LTS(0)
    l.add_transition(0, TAU, 1)
    l.add_transition(0, "b", 2)
    l.add_transition(1, "a", 2)
    m = minimize_branching(l)
    assert m.n_states == 3  # the tau must remain observable


def test_compress_tau_cycles():
    l = LTS(0)
    l.add_transition(0, TAU, 1)
    l.add_transition(1, TAU, 0)
    l.add_transition(1, "a", 2)
    c, comp = compress_tau_cycles(l)
    assert comp[0] == comp[1]
    assert c.n_states == 2
    assert c.label_counts().get(TAU, 0) == 0


def test_compress_preserves_non_tau_structure():
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "b", 0)
    c, _comp = compress_tau_cycles(l)
    assert c == l


def test_branching_on_tau_cycle_with_exit():
    l = LTS(0)
    l.add_transition(0, TAU, 1)
    l.add_transition(1, TAU, 0)
    l.add_transition(0, "a", 2)
    l.add_transition(1, "a", 2)
    m = minimize_branching(l)
    assert m.n_states == 2
    assert m.n_transitions == 1


@given(random_lts())
def test_strong_minimization_idempotent(l):
    m1 = minimize_strong(l.restricted_to_reachable())
    m2 = minimize_strong(m1)
    assert m1.n_states == m2.n_states
    assert m1.n_transitions == m2.n_transitions


@given(random_lts())
def test_strong_never_grows(l):
    r = l.restricted_to_reachable()
    m = minimize_strong(r)
    assert m.n_states <= r.n_states
    assert m.n_transitions <= r.n_transitions


@given(random_lts())
def test_branching_not_larger_than_strong(l):
    r = l.restricted_to_reachable()
    assert minimize_branching(r).n_states <= minimize_strong(r).n_states


@given(random_lts())
def test_strong_preserves_enabled_labels_at_initial(l):
    r = l.restricted_to_reachable()
    m = minimize_strong(r)
    assert m.enabled_labels(m.initial) == r.enabled_labels(r.initial)


@given(random_lts())
def test_classes_form_partition(l):
    cls = strong_bisimulation_classes(l)
    assert len(cls) == l.n_states
    if cls:
        assert set(cls) == set(range(max(cls) + 1))


@given(random_lts())
def test_branching_classes_refinement_of_tau_free_strong(l):
    # On tau-free LTSs branching and strong coincide
    if TAU in l.labels:
        return
    strong = strong_bisimulation_classes(l)
    branching = branching_bisimulation_classes(l)
    pairs_s = {(i, j) for i in range(l.n_states) for j in range(l.n_states)
               if strong[i] == strong[j]}
    pairs_b = {(i, j) for i in range(l.n_states) for j in range(l.n_states)
               if branching[i] == branching[j]}
    assert pairs_s == pairs_b
