"""Tests for traces and replay."""

import pytest

from repro.errors import TraceError
from repro.lts.trace import Trace, replay


def test_trace_basics():
    t = Trace(("a", "b", "a"))
    assert len(t) == 3
    assert list(t) == ["a", "b", "a"]
    assert t.count("a") == 2


def test_trace_state_annotation_mismatch():
    with pytest.raises(TraceError):
        Trace(("a",), (0,))


def test_trace_final_state():
    t = Trace(("a",), (0, 1))
    assert t.final_state == 1
    with pytest.raises(TraceError):
        Trace(("a",)).final_state


def test_filtered_and_prefix():
    t = Trace(("a", "b", "c", "b"), (0, 1, 2, 3, 4))
    assert t.filtered(lambda l: l != "b").labels == ("a", "c")
    p = t.prefix(2)
    assert p.labels == ("a", "b")
    assert p.states == (0, 1, 2)


def test_format():
    t = Trace(("x", "y"))
    assert t.format() == "1. x\n2. y"
    assert t.format(numbered=False) == "x\ny"


def test_replay(chain_system):
    t = replay(chain_system, ["a", "b", "c", "a"])
    assert t.states == (0, 1, 2, 0, 1)


def test_replay_not_enabled(chain_system):
    with pytest.raises(TraceError, match="not enabled"):
        replay(chain_system, ["b", "b"])


def test_replay_ambiguous():
    class Amb:
        def initial_state(self):
            return 0

        def successors(self, s):
            return [("a", 1), ("a", 2)] if s == 0 else []

    with pytest.raises(TraceError, match="ambiguous"):
        replay(Amb(), ["a"])


def test_replay_duplicate_same_target_ok():
    class Dup:
        def initial_state(self):
            return 0

        def successors(self, s):
            return [("a", 1), ("a", 1)] if s == 0 else []

    t = replay(Dup(), ["a"])
    assert t.final_state == 1


# -- edge paths ------------------------------------------------------------


def test_empty_trace():
    t = Trace(())
    assert len(t) == 0
    assert list(t) == []
    assert t.format() == ""
    assert t.prefix(3).labels == ()
    with pytest.raises(TraceError):
        t.final_state


def test_empty_trace_with_initial_state_annotation():
    t = Trace((), (42,))
    assert t.final_state == 42


def test_replay_empty_sequence(chain_system):
    t = replay(chain_system, [])
    assert t.labels == ()
    assert t.states == (0,)
    assert t.final_state == 0


def test_replay_into_violation_sink():
    class ViolationSystem:
        def initial_state(self):
            return 0

        def successors(self, s):
            return {
                0: [("write(t0)", 1)],
                1: [("assertion_violation(x)", 2)],
                2: [],
            }[s]

    t = replay(
        ViolationSystem(), ["write(t0)", "assertion_violation(x)"]
    )
    assert t.final_state == 2
    assert t.count("assertion_violation(x)") == 1
    # the sink is terminal: any further label errors out
    with pytest.raises(TraceError, match="not enabled"):
        replay(
            ViolationSystem(),
            ["write(t0)", "assertion_violation(x)", "write(t0)"],
        )


def test_prefix_keeps_state_alignment():
    t = Trace(("a", "b"), (0, 1, 2))
    p = t.prefix(1)
    assert p.labels == ("a",)
    assert p.states == (0, 1)
    assert p.final_state == 1
