"""Tests for explicit-state generation."""

import pytest

from repro.errors import ExplorationLimitError
from repro.lts.explore import ExplorationStats, breadth_first_states, explore


class Grid:
    """A w x h grid walked right/down; (w-1, h-1) is terminal."""

    def __init__(self, w=4, h=3):
        self.w, self.h = w, h

    def initial_state(self):
        return (0, 0)

    def successors(self, s):
        x, y = s
        out = []
        if x + 1 < self.w:
            out.append(("right", (x + 1, y)))
        if y + 1 < self.h:
            out.append(("down", (x, y + 1)))
        return out


def test_explore_counts():
    l = explore(Grid(4, 3))
    assert l.n_states == 12
    assert l.n_transitions == 3 * 3 + 4 * 2  # rights + downs


def test_explore_bfs_numbering(chain_system):
    l = explore(chain_system)
    # BFS: 0 discovered first, then 1 and 3, then 2
    assert l.initial == 0
    assert l.n_states == 4
    assert ("a", 1) in l.successors(0)


def test_keep_states(chain_system):
    l = explore(chain_system, keep_states=True)
    assert l.state_meta[0] == 0
    assert set(l.state_meta.values()) == {0, 1, 2, 3}


def test_max_states_limit():
    with pytest.raises(ExplorationLimitError) as ei:
        explore(Grid(50, 50), max_states=10)
    assert ei.value.partial is not None
    assert ei.value.partial.n_states >= 10


def test_max_states_limit_fills_stats():
    # regression: the limit path used to leave stats.max_frontier at 0
    st = ExplorationStats()
    with pytest.raises(ExplorationLimitError):
        explore(Grid(50, 50), max_states=10, stats=st)
    assert st.states > 10
    assert st.max_frontier > 0
    assert st.transitions > 0
    assert st.seconds > 0


def test_max_depth_underapproximation():
    l = explore(Grid(10, 10), max_depth=2)
    # depth 0,1,2 of the grid: 1 + 2 + 3 states
    assert l.n_states == 6


def test_stats():
    st = ExplorationStats()
    explore(Grid(4, 3), stats=st)
    assert st.states == 12
    assert st.transitions == 17
    assert st.level_sizes[0] == 1
    assert sum(st.level_sizes) == 12
    assert st.depth >= 5
    assert st.states_per_second() >= 0


def test_on_level_callback():
    seen = []
    explore(Grid(3, 3), on_level=lambda d, n: seen.append((d, n)))
    assert seen[0][0] == 1
    assert seen[-1][1] == 9


def test_breadth_first_states_order(chain_system):
    states = list(breadth_first_states(chain_system))
    assert states[0] == 0
    assert set(states) == {0, 1, 2, 3}


def test_breadth_first_states_limit():
    with pytest.raises(ExplorationLimitError):
        list(breadth_first_states(Grid(50, 50), max_states=5))


def test_breadth_first_states_limit_attaches_partial():
    with pytest.raises(ExplorationLimitError) as ei:
        list(breadth_first_states(Grid(50, 50), max_states=5))
    # the discovered-so-far set rides on the exception, like the
    # partial LTS does for explore(); the limit trips one state over
    assert ei.value.partial is not None
    assert len(ei.value.partial) == 6
    assert (0, 0) in ei.value.partial


def test_explore_deterministic(chain_system):
    a = explore(chain_system)
    b = explore(chain_system)
    assert a == b
