"""Tests for the Aldebaran .aut format."""

import io

import pytest
from hypothesis import given

from repro.errors import AutFormatError
from repro.lts.aut import read_aut, write_aut
from repro.lts.lts import LTS, TAU
from tests.conftest import random_lts


def test_roundtrip(small_lts):
    text = write_aut(small_lts)
    back = read_aut(io.StringIO(text))
    assert back == small_lts


def test_header_format(small_lts):
    text = write_aut(small_lts)
    assert text.splitlines()[0] == "des (0, 4, 4)"


def test_tau_written_as_i():
    l = LTS(0)
    l.add_transition(0, TAU, 1)
    text = write_aut(l)
    assert "(0, i, 1)" in text
    assert read_aut(io.StringIO(text)).labels == [TAU]


def test_quoted_labels_roundtrip():
    l = LTS(0)
    l.add_transition(0, 'say "hi", friend', 1)
    back = read_aut(io.StringIO(write_aut(l)))
    assert back.labels == ['say "hi", friend']


def test_parenthesised_labels_roundtrip():
    l = LTS(0)
    l.add_transition(0, "write(t0)", 1)
    text = write_aut(l)
    assert "(0, write(t0), 1)" in text
    assert read_aut(io.StringIO(text)) == l


def test_write_to_path(tmp_path, small_lts):
    p = tmp_path / "x.aut"
    write_aut(small_lts, p)
    assert read_aut(p) == small_lts


def test_read_from_text_with_newlines(small_lts):
    text = write_aut(small_lts)
    assert read_aut(text) == small_lts


def test_empty_input_rejected():
    with pytest.raises(AutFormatError):
        read_aut(io.StringIO(""))


def test_bad_header_rejected():
    with pytest.raises(AutFormatError, match="header"):
        read_aut(io.StringIO("hello world"))


def test_transition_count_mismatch():
    with pytest.raises(AutFormatError, match="promises"):
        read_aut(io.StringIO("des (0, 2, 2)\n(0, a, 1)\n"))


def test_state_out_of_range():
    with pytest.raises(AutFormatError, match="out of range"):
        read_aut(io.StringIO("des (0, 1, 2)\n(0, a, 7)\n"))


def test_unterminated_quote():
    with pytest.raises(AutFormatError, match="quote"):
        read_aut(io.StringIO('des (0, 1, 2)\n(0, "oops, 1)\n'))


def test_blank_lines_skipped(small_lts):
    text = write_aut(small_lts).replace("\n", "\n\n")
    assert read_aut(io.StringIO(text)) == small_lts


@given(random_lts())
def test_roundtrip_random(l):
    assert read_aut(io.StringIO(write_aut(l))) == l
