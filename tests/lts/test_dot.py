"""Tests for DOT export."""

import io

import pytest

from repro.lts.dot import write_dot
from repro.lts.lts import LTS, TAU


def test_basic_structure(small_lts):
    text = write_dot(small_lts)
    assert text.startswith("digraph lts {")
    assert "init -> s0;" in text
    assert 's0 -> s1 [label="a"];' in text
    assert text.rstrip().endswith("}")


def test_terminal_states_doubled(small_lts):
    text = write_dot(small_lts)
    assert "doublecircle" in text  # state 3 is terminal


def test_tau_styled():
    l = LTS(0)
    l.add_transition(0, TAU, 1)
    text = write_dot(l)
    assert "style=dashed" in text


def test_highlight_and_labels(small_lts):
    text = write_dot(
        small_lts,
        highlight={3},
        state_label=lambda s: f"q{s}",
    )
    assert 'label="q3"' in text
    assert "fillcolor" in text


def test_quoting():
    l = LTS(0)
    l.add_transition(0, 'say "hi"', 1)
    text = write_dot(l)
    assert '\\"hi\\"' in text


def test_write_to_file(tmp_path, small_lts):
    p = tmp_path / "g.dot"
    write_dot(small_lts, p)
    assert p.read_text().startswith("digraph")
    buf = io.StringIO()
    write_dot(small_lts, buf)
    assert buf.getvalue().startswith("digraph")


def test_size_guard():
    l = LTS(0)
    l.ensure_states(10)
    with pytest.raises(ValueError, match="guard"):
        write_dot(l, max_states=5)
