"""Tests for crash detection, batch re-dispatch, and fault injection.

The acceptance bar for the fault-tolerant coordinator: a sweep that
loses workers mid-run must report state/transition totals identical to
the fault-free serial sweep, and a coordinator facing dead workers must
return or raise within the poll interval instead of hanging. Wall-clock
guards are asserted directly (no pytest-timeout dependency).
"""

import time

import pytest

from repro.errors import ExplorationLimitError, ReproError, WorkerFailureError
from repro.lts.distributed import distributed_explore
from repro.lts.explore import explore
from repro.lts.faults import FaultPlan, WorkerFault
from repro.lts.reduction import minimize_strong


class Diamond:
    """A diamond lattice of given width — branches recombine."""

    def __init__(self, width=5):
        self.width = width

    def initial_state(self):
        return (0, 0)

    def successors(self, s):
        level, pos = s
        if level >= self.width:
            return []
        return [("l", (level + 1, pos)), ("r", (level + 1, pos + 1))]


# -- FaultPlan parsing ------------------------------------------------------


def test_fault_plan_parse():
    plan = FaultPlan.parse("kill:0@2, delay:1@0.05,raise:2@3")
    assert plan.kill == {0: 2}
    assert plan.delay == {1: 0.05}
    assert plan.raise_in == {2: 3}
    assert plan.for_worker(0) == WorkerFault(kill_after=2)
    assert plan.for_worker(1) == WorkerFault(delay=0.05)
    assert plan.for_worker(2) == WorkerFault(raise_at=3)
    assert plan.for_worker(3) is None


@pytest.mark.parametrize(
    "bad",
    [
        "kill", "kill:x@2", "fry:0@1", "kill:0", "delay:1@fast",
        "kill:-1@2",
        # negative/non-finite arguments must be parse errors, not
        # in-worker failures (time.sleep(-1) would fake a crash)
        "delay:0@-1", "delay:0@nan", "delay:0@inf",
        "kill:0@-2", "raise:1@-1",
    ],
)
def test_fault_plan_parse_rejects_garbage(bad):
    with pytest.raises(ReproError):
        FaultPlan.parse(bad)


def test_faults_require_process_backend():
    with pytest.raises(ValueError):
        distributed_explore(
            Diamond(4), backend="inline", faults=FaultPlan.parse("kill:0@0")
        )


def test_bad_poll_and_batch_arguments():
    with pytest.raises(ValueError):
        distributed_explore(Diamond(4), backend="inline", poll_interval=0.0)
    with pytest.raises(ValueError):
        distributed_explore(Diamond(4), backend="inline", batch_size=0)


# -- the compact acknowledged-key ledger ------------------------------------


def test_ack_ledger_packs_ints_and_rewidens():
    from repro.lts.distributed import _AckLedger

    led = _AckLedger()
    led.add([1, 255])                       # fits in one byte
    led.add([2**72 + 1, 7])                 # forces a re-widening
    led.add([0, 255, 2**31])
    assert led.to_set() == {1, 255, 2**72 + 1, 7, 0, 2**31}
    led.clear()
    assert led.to_set() == set()


def test_ack_ledger_seeded_width_avoids_midsweep_rewiden():
    """Regression: the ledger used to start at width 1, so the first
    real packed key triggered an O(buffer) pure-Python ``_rewiden``
    mid-sweep. Seeded with the codec's byte width, ordinary keys append
    at the seeded width from the first batch on."""
    from repro.lts.distributed import _AckLedger

    led = _AckLedger(width=4)
    led.add([1, 2**31 - 1])                 # both fit the seeded width
    assert led._width == 4                  # no narrowing, no widening
    assert len(led._buf) == 8
    assert led.to_set() == {1, 2**31 - 1}
    # a larger key still widens in place, exactly once
    led.add([2**40])
    assert led._width == 6
    assert led.to_set() == {1, 2**31 - 1, 2**40}
    with pytest.raises(ValueError):
        _AckLedger(width=0)


def test_ack_ledger_add_bytes_matches_codec_wire_format():
    from repro.lts.distributed import _AckLedger
    from repro.lts.shmring import pack_keys

    led = _AckLedger(width=4)
    led.add_bytes(pack_keys([5, 1 << 24], 4), 4)  # straight append
    assert led.to_set() == {5, 1 << 24}
    led.add_bytes(pack_keys([1 << 40], 6), 6)     # wider block rewidens
    assert led._width == 6
    assert led.to_set() == {5, 1 << 24, 1 << 40}
    led.add_bytes(pack_keys([7], 2), 2)           # narrower re-packs
    assert led.to_set() == {5, 1 << 24, 1 << 40, 7}


def test_ack_ledger_falls_back_to_sets_for_tuples():
    from repro.lts.distributed import _AckLedger

    led = _AckLedger()
    led.add([3, 9])                         # packed...
    led.add([(0, 1), (2, 3)])               # ...then tuple states arrive
    led.add([(0, 1), 11])
    assert led.to_set() == {3, 9, (0, 1), (2, 3), 11}


def test_ack_ledger_handles_negative_ints_via_set_mode():
    from repro.lts.distributed import _AckLedger

    led = _AckLedger()
    led.add([5, -3, 8])                     # negatives force set mode
    assert led.to_set() == {5, -3, 8}


# -- crash recovery ---------------------------------------------------------


@pytest.mark.slow
def test_kill_one_worker_recovers_exact_counts():
    sys_ = Diamond(24)
    exact = explore(sys_)
    _lts, stats = distributed_explore(
        sys_, n_workers=2, backend="process",
        faults=FaultPlan.parse("kill:0@2"),
        batch_size=8, poll_interval=0.05,
    )
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.deadlocks == len(exact.deadlock_states())
    assert stats.worker_deaths == 1
    assert stats.redispatched_batches >= 1
    assert stats.recovered
    # the dead worker keeps its reconstructed visited-set size, and the
    # per-worker totals still add up to the exact state count
    assert sum(stats.per_worker_states) == stats.states


@pytest.mark.slow
def test_two_kills_at_different_times_recover_exact_counts():
    """Two deaths at different points of the sweep, >= 4 workers.

    Regression for the re-route instability bug: with a modulo-style
    live-list assignment, a key owned by the first dead worker could be
    re-routed to survivor A, counted, and then — after the second death
    re-shuffled the assignment — re-routed to survivor B and counted
    again. Rendezvous hashing keeps the assignment stable, so the
    totals must stay exact across successive crashes.
    """
    sys_ = Diamond(26)
    exact = explore(sys_)
    _lts, stats = distributed_explore(
        sys_, n_workers=4, backend="process",
        faults=FaultPlan.parse("kill:0@1,kill:1@6"),
        batch_size=4, poll_interval=0.05,
    )
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.deadlocks == len(exact.deadlock_states())
    assert stats.worker_deaths == 2
    assert stats.recovered
    assert sum(stats.per_worker_states) == stats.states


@pytest.mark.slow
def test_kill_with_collect_builds_equivalent_lts():
    sys_ = Diamond(12)
    exact = explore(sys_)
    lts, stats = distributed_explore(
        sys_, n_workers=3, backend="process", collect=True,
        faults=FaultPlan.parse("kill:1@1"),
        batch_size=4, poll_interval=0.05,
    )
    assert stats.worker_deaths == 1
    assert lts.n_states == exact.n_states
    assert lts.n_transitions == exact.n_transitions
    assert minimize_strong(lts) == minimize_strong(exact)


@pytest.mark.slow
def test_raise_in_successors_recovers():
    sys_ = Diamond(20)
    exact = explore(sys_)
    _lts, stats = distributed_explore(
        sys_, n_workers=2, backend="process",
        faults=FaultPlan.parse("raise:1@1"),
        batch_size=8, poll_interval=0.05,
    )
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.worker_deaths == 1
    assert stats.recovered


@pytest.mark.slow
def test_delay_injection_exercises_poll_without_deaths():
    sys_ = Diamond(10)
    exact = explore(sys_)
    _lts, stats = distributed_explore(
        sys_, n_workers=2, backend="process",
        faults=FaultPlan.parse("delay:0@0.03"),
        batch_size=16, poll_interval=0.01,
    )
    assert stats.states == exact.n_states
    assert stats.worker_deaths == 0
    assert not stats.recovered


@pytest.mark.slow
def test_kill_recovery_on_jackal_model_packed_keys():
    from repro.jackal import Config, JackalModel

    model = JackalModel(
        Config(threads_per_processor=(1, 1), rounds=1, with_probes=False)
    )
    exact = explore(model)
    _lts, stats = distributed_explore(
        model, n_workers=2, backend="process",
        faults=FaultPlan.parse("kill:1@2"),
        batch_size=64, poll_interval=0.05,
    )
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.deadlocks == len(exact.deadlock_states())
    assert stats.worker_deaths == 1
    assert stats.recovered


# -- liveness: bounded detection, no hangs ----------------------------------


@pytest.mark.slow
def test_all_workers_dead_raises_within_bounded_time():
    t0 = time.monotonic()
    with pytest.raises(WorkerFailureError) as ei:
        distributed_explore(
            Diamond(30), n_workers=2, backend="process",
            faults=FaultPlan.parse("kill:0@0,kill:1@0"),
            batch_size=8, poll_interval=0.05,
        )
    # two deaths, each detected within one poll interval plus process
    # startup — far under the guard; the seed code hung forever here
    assert time.monotonic() - t0 < 10.0
    stats = ei.value.stats
    assert stats is not None
    assert stats.worker_deaths == 2
    assert not stats.recovered
    assert stats.seconds > 0.0


@pytest.mark.slow
def test_fault_tolerant_false_fails_fast_instead_of_recovering():
    """Opting out of the recovery ledger turns a crash into a clean,
    bounded-time failure (never a hang, never a silent overcount)."""
    t0 = time.monotonic()
    with pytest.raises(WorkerFailureError) as ei:
        distributed_explore(
            Diamond(30), n_workers=2, backend="process",
            faults=FaultPlan.parse("kill:0@1"),
            batch_size=8, poll_interval=0.05, fault_tolerant=False,
        )
    assert time.monotonic() - t0 < 10.0
    stats = ei.value.stats
    assert stats is not None
    assert stats.worker_deaths == 1
    assert not stats.recovered
    assert stats.seconds > 0.0


@pytest.mark.slow
def test_fault_tolerant_false_fault_free_sweep_is_exact():
    sys_ = Diamond(12)
    exact = explore(sys_)
    _lts, stats = distributed_explore(
        sys_, n_workers=2, backend="process", fault_tolerant=False,
        batch_size=8,
    )
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.worker_deaths == 0


@pytest.mark.slow
def test_limit_raises_cleanly_with_dead_worker():
    t0 = time.monotonic()
    with pytest.raises(ExplorationLimitError) as ei:
        distributed_explore(
            Diamond(80), n_workers=2, backend="process",
            faults=FaultPlan.parse("kill:0@1"), max_states=150,
            batch_size=8, poll_interval=0.05,
        )
    assert time.monotonic() - t0 < 20.0
    stats = ei.value.stats
    assert stats is not None
    assert stats.states > 150
    assert stats.seconds > 0.0
    assert stats.worker_deaths == 1
