"""Tests for the fast exploration engine.

The engine promises *exact* equivalence with the reference explorer —
same BFS numbering, same LTS, same stats, same limit semantics — so
most tests here are differential: run both, compare everything.
"""

import pytest

from repro.errors import ExplorationLimitError
from repro.jackal import Config, JackalModel, ProtocolVariant
from repro.lts.engine import explore_fast
from repro.lts.explore import ExplorationStats, explore


class Grid:
    """A w x h grid walked right/down; (w-1, h-1) is terminal."""

    def __init__(self, w=4, h=3):
        self.w, self.h = w, h

    def initial_state(self):
        return (0, 0)

    def successors(self, s):
        x, y = s
        out = []
        if x + 1 < self.w:
            out.append(("right", (x + 1, y)))
        if y + 1 < self.h:
            out.append(("down", (x, y + 1)))
        return out


def _assert_identical(system, **kwargs):
    st_ref, st_fast = ExplorationStats(), ExplorationStats()
    ref = explore(system, stats=st_ref, **kwargs)
    fast = explore_fast(system, stats=st_fast, **kwargs)
    # not merely bisimilar: numbering and transition order must agree
    assert fast.n_states == ref.n_states
    assert fast.n_transitions == ref.n_transitions
    assert list(fast.transitions()) == list(ref.transitions())
    assert fast == ref
    assert st_fast.states == st_ref.states
    assert st_fast.transitions == st_ref.transitions
    assert st_fast.max_frontier == st_ref.max_frontier
    assert st_fast.depth == st_ref.depth
    assert st_fast.level_sizes == st_ref.level_sizes
    return ref, fast


def test_matches_reference_on_grid():
    _assert_identical(Grid(6, 5))


def test_matches_reference_on_chain(chain_system):
    _assert_identical(chain_system)


@pytest.mark.parametrize(
    "tpp,variant",
    [
        ((1, 1), ProtocolVariant.fixed()),
        ((2,), ProtocolVariant.fixed()),
        ((1, 1), ProtocolVariant.error1()),
    ],
)
def test_matches_reference_on_jackal(tpp, variant):
    cfg = Config(threads_per_processor=tpp, rounds=1, with_probes=False)
    _assert_identical(JackalModel(cfg, variant))


def test_matches_reference_with_probes():
    cfg = Config(threads_per_processor=(1, 1), rounds=1, with_probes=True)
    _assert_identical(JackalModel(cfg, ProtocolVariant.fixed()))


def test_keep_states(chain_system):
    ref = explore(chain_system, keep_states=True)
    fast = explore_fast(chain_system, keep_states=True)
    assert fast.state_meta == ref.state_meta


def test_max_depth():
    _assert_identical(Grid(10, 10), max_depth=3)


def test_on_level_callback():
    ref_levels, fast_levels = [], []
    explore(Grid(5, 5), on_level=lambda d, n: ref_levels.append((d, n)))
    explore_fast(Grid(5, 5), on_level=lambda d, n: fast_levels.append((d, n)))
    assert fast_levels == ref_levels


def test_limit_semantics_match_reference():
    st_ref, st_fast = ExplorationStats(), ExplorationStats()
    with pytest.raises(ExplorationLimitError) as ref_exc:
        explore(Grid(50, 50), max_states=10, stats=st_ref)
    with pytest.raises(ExplorationLimitError) as fast_exc:
        explore_fast(Grid(50, 50), max_states=10, stats=st_fast)
    assert fast_exc.value.partial == ref_exc.value.partial
    assert st_fast.states == st_ref.states
    assert st_fast.transitions == st_ref.transitions
    assert st_fast.max_frontier == st_ref.max_frontier > 0


def test_memo_reuse_is_sound():
    sys_ = Grid(6, 6)
    memo = {}
    first = explore_fast(sys_, memo=memo)
    assert memo  # populated on the first pass
    second = explore_fast(sys_, memo=memo)
    assert second == first == explore(sys_)


def test_packed_visited_set_matches():
    cfg = Config(threads_per_processor=(1, 1), rounds=1, with_probes=False)
    model = JackalModel(cfg)
    plain = explore_fast(model)
    packed = explore_fast(model, packed=True)
    assert packed == plain
    assert list(packed.transitions()) == list(plain.transitions())


def test_packed_needs_codec():
    with pytest.raises(ValueError):
        explore_fast(Grid(3, 3), packed=True)


def test_uses_fast_successor_path():
    cfg = Config(threads_per_processor=(1, 1), rounds=1, with_probes=False)
    model = JackalModel(cfg)
    calls = {"fast": 0}
    orig = model.successors_fast

    def counting(state):
        calls["fast"] += 1
        return orig(state)

    model.successors_fast = counting
    explore_fast(model)
    assert calls["fast"] > 0
