"""Tests for the well-mixed hashing helpers, chiefly ``live_owner``.

The crash-recovery re-route relies on a property that plain
``hash % len(live)`` does not have: the survivor chosen for a key must
not change when the membership shrinks *again* (otherwise a key
re-expanded by survivor A after one crash is re-expanded a second time
by survivor B after a later crash, silently overcounting states).
``live_owner`` is rendezvous hashing, which has exactly that stability.
"""

import random

from repro.lts.statehash import live_owner, mix64


def test_live_owner_draws_from_live_list():
    live = [0, 3, 5]
    for k in range(200):
        assert live_owner(k, live) in live


def test_live_owner_deterministic():
    live = [1, 2, 4, 7]
    for k in range(50):
        assert live_owner(k, live) == live_owner(k, list(live))


def test_live_owner_stable_under_unrelated_removal():
    """Removing a worker that does not own a key never re-routes it.

    This is the membership-stability property the coordinator's exact
    recovery rests on; the old modulo scheme fails it for most keys.
    """
    live = [0, 1, 2, 3]
    for k in range(500):
        owner = live_owner(k, live)
        for gone in live:
            if gone == owner:
                continue
            shrunk = [w for w in live if w != gone]
            assert live_owner(k, shrunk) == owner


def test_live_owner_stable_across_successive_shrinks():
    """The review scenario: two deaths at different times.

    A key owned by the first dead worker is re-routed to some survivor
    A; after a second (different) death, the same key must still route
    to A while A lives.
    """
    rng = random.Random(7)
    for _ in range(200):
        key = rng.getrandbits(40)
        live = [0, 1, 2, 3, 4, 5]
        previous = None
        while len(live) > 1:
            owner = live_owner(key, live)
            if previous is not None and previous in live:
                assert owner == previous
            previous = owner
            # kill some worker other than the current owner when we can
            victims = [w for w in live if w != owner] or live
            live.remove(rng.choice(victims))


def test_live_owner_spreads_evenly():
    live = [2, 4, 5]  # an arbitrary surviving subset
    counts = dict.fromkeys(live, 0)
    n = 6000
    for k in range(n):
        counts[live_owner((k, k + 1), live)] += 1
    for c in counts.values():
        assert abs(c - n / len(live)) < 0.15 * n / len(live)


def test_mix64_bijective_sample():
    seen = {mix64(x) for x in range(4096)}
    assert len(seen) == 4096
