"""Certificate-gated reduction: refusal, soundness, and the factor.

Soundness is checked the only way that matters — verdict equality
between reduced and unreduced requirement sweeps on configurations 1
and 2, on the fixed protocol *and* on both seeded bugs (Error 1's
deadlock, Error 2's home loss / liveness failure). The acceptance
floor (visited states drop at least 2x) is asserted where the sweep is
big enough for symmetry to bite: configuration 2 as shipped, and
configuration 1 at two write rounds.
"""

from dataclasses import replace

import pytest

from repro.errors import ReproError
from repro.jackal.model import JackalModel
from repro.jackal.params import CONFIG_1, CONFIG_2, ProtocolVariant
from repro.jackal.requirements import check_all_requirements
from repro.lts.bench import bench_explore
from repro.lts.certreduce import ReducedSystem
from repro.lts.distributed import distributed_explore
from repro.lts.engine import explore_fast
from repro.lts.explore import explore
from repro.staticcheck.symmetry import certify

FIXED = ProtocolVariant.fixed()


def _cert(config, variant=FIXED):
    cert, findings = certify(config, variant)
    assert cert is not None, findings
    return cert


def _model(config, variant=FIXED, probes=False):
    return JackalModel(replace(config, with_probes=probes), variant)


# -- refusal -----------------------------------------------------------------


def test_refuses_certificate_for_other_spec():
    cert = _cert(CONFIG_1)
    with pytest.raises(ReproError, match="JKL303"):
        ReducedSystem(_model(CONFIG_2), cert)


def test_refuses_tampered_certificate():
    cert = _cert(CONFIG_1)
    cert.group = cert.group + [{"pid_map": [1, 0], "tid_map": [1, 0]}]
    with pytest.raises(ReproError, match="JKL304"):
        ReducedSystem(_model(CONFIG_1), cert)


@pytest.mark.parametrize("section", ["formulas", "slices"])
def test_refuses_drifted_v3_section_even_resigned(section):
    # re-signing after editing a formula-directed section defeats
    # JKL304; the section re-derivation (JKL404) must still refuse
    cert = _cert(CONFIG_1)
    setattr(cert, section, {"schema": 99, "doctored": True})
    cert.sign()
    with pytest.raises(ReproError, match="JKL404"):
        ReducedSystem(_model(CONFIG_1), cert)


def test_refuses_systems_without_config():
    class Bare:
        def initial_state(self):
            return 0

        def successors(self, _s):
            return []

    with pytest.raises(ReproError, match="JKL305"):
        ReducedSystem(Bare(), _cert(CONFIG_1))


def test_explore_fast_certificate_kwarg_refuses_too():
    with pytest.raises(ReproError, match="refusing to reduce"):
        explore_fast(_model(CONFIG_2), certificate=_cert(CONFIG_1))


# -- the reduction is real ---------------------------------------------------


def test_backends_agree_on_the_reduced_system():
    cert = _cert(CONFIG_1)
    model = _model(CONFIG_1)
    serial = explore(model, certificate=cert)
    fast = explore_fast(model, certificate=cert)
    packed = explore_fast(
        ReducedSystem(model, cert), packed=True
    )
    _lts, dist = distributed_explore(model, n_workers=2, certificate=cert)
    counts = (serial.n_states, serial.n_transitions)
    assert (fast.n_states, fast.n_transitions) == counts
    assert (packed.n_states, packed.n_transitions) == counts
    assert (dist.states, dist.transitions) == counts
    # and it actually shrank the sweep
    unreduced = explore_fast(model)
    assert serial.n_states < unreduced.n_states


def test_reduction_counters_count():
    cert = _cert(CONFIG_1)
    red = ReducedSystem(_model(CONFIG_1), cert)
    explore_fast(red)
    assert red.canonical_hits > 0
    assert red.ample_prunes > 0
    assert red.slice_hits > 0


def test_certified_slice_shrinks_beyond_canonical_only():
    # the cone-of-influence slice must buy states the symmetry quotient
    # and ample pruning do not already merge (the rstate bookkeeping
    # diverges across interleavings that canonicalization cannot align)
    cert = _cert(CONFIG_1)
    model = _model(CONFIG_1)
    sliced = explore_fast(ReducedSystem(model, cert))
    unsliced = explore_fast(
        ReducedSystem(model, cert, slice_fields=())
    )
    assert sliced.n_states < unsliced.n_states


@pytest.mark.parametrize(
    "config",
    [CONFIG_2, replace(CONFIG_1, rounds=2)],
    ids=["config2", "config1-rounds2"],
)
def test_visited_states_drop_at_least_2x(config):
    cert = _cert(config)
    model = _model(config)
    reduced = explore_fast(model, certificate=cert)
    unreduced = explore_fast(model)
    assert unreduced.n_states >= 2 * reduced.n_states


# -- soundness: verdict equality, fixed and both paper bugs ------------------


@pytest.mark.parametrize(
    "config,variant",
    [
        (CONFIG_1, ProtocolVariant.fixed()),
        (CONFIG_1, ProtocolVariant.error1()),
        (CONFIG_1, ProtocolVariant.error2()),
        (CONFIG_2, ProtocolVariant.fixed()),
        (CONFIG_2, ProtocolVariant.error1()),
        (CONFIG_2, ProtocolVariant.error2()),
    ],
    ids=[
        "c1-fixed", "c1-error1", "c1-error2",
        "c2-fixed", "c2-error1", "c2-error2",
    ],
)
def test_verdicts_match_unreduced_sweep(config, variant):
    cert = _cert(config, variant)
    plain = check_all_requirements(config, variant)
    reduced = check_all_requirements(config, variant, certificate=cert)
    assert {k: r.holds for k, r in plain.items()} == {
        k: r.holds for k, r in reduced.items()
    }


def test_requirement_4_runs_the_full_quotient():
    # the certified formulas section must license the full symmetry
    # quotient for the plain sweep — not the historical ample-only
    # fallback — and the quotiented sweep must be strictly smaller
    cert = _cert(CONFIG_1)
    reduced = check_all_requirements(CONFIG_1, FIXED, certificate=cert)
    assert "full quotient" in reduced["4"].requirement
    assert reduced["4"].holds
    ample_only = explore_fast(
        ReducedSystem(_model(CONFIG_1), cert, canonical=False)
    )
    assert reduced["4"].lts_states < ample_only.n_states


# -- bench surfaces the factor -----------------------------------------------


def test_bench_reports_reduction_factor():
    cert = _cert(CONFIG_2)
    report = bench_explore(
        _model(CONFIG_2),
        backends=("serial", "engine"),
        certificate=cert,
    )
    red = report["reduction"]
    assert red["states"] == report["system"]["states"]
    assert red["unreduced_states"] > red["states"]
    assert red["factor"] >= 2.0
    assert red["canonical_hits"] > 0
    assert red["ample_prunes"] > 0


def test_bench_reports_slice_gain_over_canonical_only():
    # acceptance: on at least one configuration the slice must beat the
    # canonical+ample reduction alone, and the bench must surface it
    cert = _cert(CONFIG_1)
    report = bench_explore(
        _model(CONFIG_1),
        backends=("serial",),
        certificate=cert,
    )
    red = report["reduction"]
    assert red["slice_hits"] > 0
    assert red["states"] < red["states_canonical_only"]
    assert red["factor"] > red["factor_canonical_only"]


# -- pickling (what the distributed workers rely on) -------------------------


def test_reduced_system_pickles_without_revalidation(monkeypatch):
    import pickle

    cert = _cert(CONFIG_1)
    red = ReducedSystem(_model(CONFIG_1), cert)

    def boom(*_a, **_k):  # pragma: no cover - failure path
        raise AssertionError("workers must not re-validate")

    import repro.staticcheck.certificates as certmod

    monkeypatch.setattr(certmod, "validate", boom)
    clone = pickle.loads(pickle.dumps(red))
    assert clone.canonical and clone.ample
    state = clone.initial_state()
    assert list(clone.successors(state)) == list(red.successors(state))
