"""Tests for binary LTS storage."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import AutFormatError
from repro.lts.npzio import load_npz, save_npz
from tests.conftest import random_lts


def test_roundtrip(tmp_path, small_lts):
    p = tmp_path / "l.npz"
    save_npz(small_lts, p)
    back = load_npz(p)
    assert back == small_lts
    assert back.labels == small_lts.labels


def test_roundtrip_empty(tmp_path):
    from repro.lts.lts import LTS

    l = LTS(0)
    l.ensure_states(3)
    p = tmp_path / "e.npz"
    save_npz(l, p)
    back = load_npz(p)
    assert back.n_states == 3
    assert back.n_transitions == 0


def test_version_check(tmp_path, small_lts):
    p = tmp_path / "v.npz"
    save_npz(small_lts, p)
    data = dict(np.load(p, allow_pickle=True))
    data["version"] = np.int64(99)
    np.savez_compressed(p, **data)
    with pytest.raises(AutFormatError, match="version"):
        load_npz(p)


def test_protocol_lts_roundtrip(tmp_path):
    from repro.jackal import CONFIG_1, JackalModel, ProtocolVariant
    from repro.lts.explore import explore
    from repro.mucalc.checker import holds
    from repro.mucalc.parser import parse_formula

    lts = explore(JackalModel(CONFIG_1, ProtocolVariant.fixed()))
    p = tmp_path / "c1.npz"
    save_npz(lts, p)
    back = load_npz(p)
    assert back == lts
    f = parse_formula("[T*.c_home] F")
    assert holds(back, f) == holds(lts, f)


@given(random_lts())
@settings(max_examples=25, deadline=None)
def test_roundtrip_random(tmp_path_factory, l):
    p = tmp_path_factory.mktemp("npz") / "r.npz"
    save_npz(l, p)
    assert load_npz(p) == l
