"""Tests for the shared-memory ring transport.

Three layers: the SPSC ring primitive and the key packing helpers
(:mod:`repro.lts.shmring`), the adaptive quantum controller, and the
full shm-transport sweep — which must explore exactly the same LTS as
the queue transport and the serial reference, with and without injected
worker faults, because a transport that changes counts is not a
transport but a bug.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jackal import Config, JackalModel
from repro.lts.distributed import _coalesce, _take_chunk, distributed_explore
from repro.lts.explore import explore
from repro.lts.faults import FaultPlan
from repro.lts.reduction import minimize_strong
from repro.lts.shmring import (
    AdaptiveBatch,
    RingBuffer,
    pack_keys,
    unpack_keys,
)
from repro.lts.statehash import key_owner


class Diamond:
    """A diamond lattice of given width — branches recombine."""

    def __init__(self, width=5):
        self.width = width

    def initial_state(self):
        return (0, 0)

    def successors(self, s):
        level, pos = s
        if level >= self.width:
            return []
        return [("l", (level + 1, pos)), ("r", (level + 1, pos + 1))]


def _jackal(tpp):
    return JackalModel(
        Config(threads_per_processor=tpp, rounds=1, with_probes=False)
    )


# -- RingBuffer -------------------------------------------------------------


def test_ring_roundtrip_and_counters():
    ring = RingBuffer.create(256)
    try:
        assert ring.try_write(3, b"abc")
        assert ring.try_write(4, b"defg")
        assert ring.counters()[2] == 2  # wr_recs
        depth, payload, cur = ring.peek(ring.rd_bytes)
        assert (depth, payload) == (3, b"abc")
        depth, payload, cur2 = ring.peek(cur)
        assert (depth, payload) == (4, b"defg")
        assert ring.peek(cur2) is None
        ring.commit(cur2 - ring.rd_bytes, 2)
        assert ring.rd_bytes == ring.wr_bytes
        assert ring.rd_recs == 2
    finally:
        ring.close()
        ring.unlink()


def test_ring_wraps_without_corruption():
    ring = RingBuffer.create(64)
    try:
        # payloads sized so records straddle the wrap point repeatedly
        for i in range(200):
            payload = bytes([i % 251]) * (7 + i % 11)
            assert ring.try_write(i % 9, payload)
            rec = ring.peek(ring.rd_bytes)
            assert rec is not None
            depth, got, cur = rec
            assert depth == i % 9
            assert got == payload
            ring.commit(cur - ring.rd_bytes, 1)
        assert ring.rd_recs == 200
    finally:
        ring.close()
        ring.unlink()


def test_ring_rejects_when_full_and_oversized():
    ring = RingBuffer.create(64)
    try:
        # never too big for an empty ring, but fills up un-consumed
        wrote = 0
        while ring.try_write(0, b"x" * 10):
            wrote += 1
        assert wrote >= 2
        assert not ring.try_write(0, b"x" * 10)
        # a payload that cannot fit even in an empty ring is rejected
        assert not ring.try_write(0, b"y" * 100)
        # consuming frees space again
        depth, payload, cur = ring.peek(ring.rd_bytes)
        ring.commit(cur - ring.rd_bytes, 1)
        assert ring.try_write(1, b"z" * 10)
    finally:
        ring.close()
        ring.unlink()


def test_ring_drain_unconsumed_recovers_pending_records():
    ring = RingBuffer.create(256)
    try:
        for i in range(3):
            assert ring.try_write(i, bytes([i]) * 4)
        # consume (peek + commit) only the first record
        _depth, _payload, cur = ring.peek(ring.rd_bytes)
        ring.commit(cur - ring.rd_bytes, 1)
        drained = ring.drain_unconsumed()
        assert drained == [(1, b"\x01" * 4), (2, b"\x02" * 4)]
        # the drain marks everything consumed
        assert ring.rd_bytes == ring.wr_bytes
        assert ring.drain_unconsumed() == []
    finally:
        ring.close()
        ring.unlink()


def test_ring_capacity_validation():
    with pytest.raises(ValueError):
        RingBuffer.create(8)


def test_pack_unpack_keys_roundtrip():
    keys = [0, 1, 255, 256, 2**31, 2**64 - 1]
    blob = pack_keys(keys, 9)
    assert len(blob) == 9 * len(keys)
    assert unpack_keys(blob, 9) == keys


# -- AdaptiveBatch ----------------------------------------------------------


def test_adaptive_batch_validation():
    with pytest.raises(ValueError):
        AdaptiveBatch(lo=0)
    with pytest.raises(ValueError):
        AdaptiveBatch(lo=10, hi=5)
    with pytest.raises(ValueError):
        AdaptiveBatch(target_s=0.0)
    with pytest.raises(ValueError):
        AdaptiveBatch(alpha=0.0)


def test_adaptive_batch_converges_under_constant_rate():
    ab = AdaptiveBatch(initial=256, lo=32, hi=8192, target_s=0.01)
    # constant 50k keys/s: the EMA converges to rate * target = 500
    for _ in range(40):
        size = ab.update(500, 0.01)
    assert size == 500
    # degenerate observations leave the estimate untouched
    assert ab.update(0, 0.01) == 500
    assert ab.update(500, 0.0) == 500


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10**6),
            st.floats(
                min_value=0.0, max_value=10.0,
                allow_nan=False, allow_infinity=False,
            ),
        ),
        max_size=50,
    )
)
def test_adaptive_batch_stays_within_bounds(observations):
    ab = AdaptiveBatch(initial=256, lo=32, hi=8192, target_s=0.004)
    for n_keys, seconds in observations:
        size = ab.update(n_keys, seconds)
        assert 32 <= size <= 8192
        assert ab.size == size


# -- owner routing ----------------------------------------------------------


def test_worker_inlined_owner_mix_matches_key_owner():
    # the shm worker inlines the splitmix64 finaliser of key_owner();
    # the two must agree for every key or partitions would depend on
    # the code path that routed the state
    m64 = (1 << 64) - 1
    for n_workers in (1, 2, 3, 7):
        for key in list(range(64)) + [2**31 - 1, 2**64 - 1, 2**199 + 17]:
            h = hash(key) & m64
            h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & m64
            h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & m64
            inlined = ((h ^ (h >> 31))) % n_workers
            assert inlined == key_owner(key, n_workers)


# -- dispatch-queue helpers (regression: O(n) list ops) ---------------------


def test_coalesce_merges_and_take_chunk_splits():
    from collections import deque

    q: deque = deque()
    _coalesce(q, 0, [1, 2], batch_size=4)
    _coalesce(q, 0, [3], batch_size=4)          # merges into the tail
    assert list(q) == [(0, [1, 2, 3])]
    _coalesce(q, 1, [4], batch_size=4)          # new depth: new entry
    _coalesce(q, 1, [5, 6, 7, 8], batch_size=4)
    _coalesce(q, 1, [9], batch_size=4)          # tail full: new entry
    assert len(q) == 3
    depth, chunk = _take_chunk(q, 2)
    assert depth == 0 and chunk == [2, 3]       # oversize head splits
    depth, chunk = _take_chunk(q, 2)
    assert depth == 0 and chunk == [1]
    seen = []
    while q:
        depth, chunk = _take_chunk(q, 100)
        seen.append((depth, chunk))
    assert seen == [(1, [4, 5, 6, 7, 8]), (1, [9])]


def test_dispatch_queue_is_not_quadratic_on_wide_frontiers():
    # regression for the old list-based pending queue: `queue[-1][1] +
    # bucket` rebuilt the tail per merge and `queue.pop(0)` copied the
    # remainder per dispatch — O(n^2) over a wide frontier. The deque +
    # in-place-extend version drains 200k items in linear time; the old
    # shape took multiple seconds on this workload.
    import time
    from collections import deque

    q: deque = deque()
    t0 = time.perf_counter()
    for i in range(2000):
        _coalesce(q, 0, list(range(100)), batch_size=256)
    drained = 0
    while q:
        _depth, chunk = _take_chunk(q, 256)
        drained += len(chunk)
    elapsed = time.perf_counter() - t0
    assert drained == 200_000
    assert elapsed < 1.0, f"dispatch drain took {elapsed:.2f}s"


# -- backend equivalence: shm vs queue vs serial ----------------------------


@pytest.mark.slow
@pytest.mark.parametrize("transport", ["queue", "shm"])
def test_transport_matches_serial_on_jackal_config1(transport):
    model = _jackal((1, 1))
    exact = explore(model)
    _lts, stats = distributed_explore(
        model, n_workers=2, backend="process", transport=transport,
        batch_size=64,
    )
    assert stats.transport == transport
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.deadlocks == len(exact.deadlock_states())
    assert sum(stats.per_worker_states) == stats.states


@pytest.mark.slow
def test_transports_match_serial_on_jackal_config2():
    model = _jackal((2, 1))
    exact = explore(model)
    for transport in ("queue", "shm"):
        _lts, stats = distributed_explore(
            model, n_workers=2, backend="process", transport=transport,
        )
        assert (stats.states, stats.transitions, stats.deadlocks) == (
            exact.n_states,
            exact.n_transitions,
            len(exact.deadlock_states()),
        )


@pytest.mark.slow
def test_shm_single_worker_matches_serial():
    # the machine-sized pool on a single-CPU host: one pipelined worker
    model = _jackal((1, 1))
    exact = explore(model)
    _lts, stats = distributed_explore(
        model, n_workers=1, backend="process", transport="shm",
    )
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.deadlocks == len(exact.deadlock_states())


@pytest.mark.slow
def test_shm_collect_builds_equivalent_lts():
    model = _jackal((1, 1))
    exact = explore(model)
    lts, _stats = distributed_explore(
        model, n_workers=2, backend="process", transport="shm",
        collect=True, batch_size=64,
    )
    assert lts.n_states == exact.n_states
    assert lts.n_transitions == exact.n_transitions
    # BFS renumbering may differ; compare modulo strong bisimulation
    assert minimize_strong(lts) == minimize_strong(exact)


@pytest.mark.slow
def test_shm_spawn_time_reported_separately():
    model = _jackal((1, 1))
    _lts, stats = distributed_explore(
        model, n_workers=2, backend="process", transport="shm",
    )
    assert stats.spawn_s > 0.0
    assert stats.spawn_s < stats.seconds


def test_transport_validation():
    with pytest.raises(ValueError):
        distributed_explore(Diamond(3), transport="carrier-pigeon")
    # shm ships packed codec keys: a codec-less system must be refused
    with pytest.raises(ValueError):
        distributed_explore(Diamond(3), transport="shm")
    # ... and auto falls back to the queue transport for it
    _lts, stats = distributed_explore(
        Diamond(3), n_workers=2, backend="inline"
    )
    assert stats.states == explore(Diamond(3)).n_states


# -- fault injection over the shm transport ---------------------------------


@pytest.mark.slow
def test_shm_kill_recovers_exact_counts():
    model = _jackal((1, 1))
    exact = explore(model)
    _lts, stats = distributed_explore(
        model, n_workers=2, backend="process", transport="shm",
        faults=FaultPlan.parse("kill:1@2"),
        batch_size=32, poll_interval=0.05,
    )
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.deadlocks == len(exact.deadlock_states())
    assert stats.worker_deaths == 1
    assert stats.recovered


@pytest.mark.slow
def test_shm_raise_recovers_exact_counts():
    model = _jackal((1, 1))
    exact = explore(model)
    _lts, stats = distributed_explore(
        model, n_workers=2, backend="process", transport="shm",
        faults=FaultPlan.parse("raise:0@2"),
        batch_size=32, poll_interval=0.05,
    )
    assert stats.states == exact.n_states
    assert stats.transitions == exact.n_transitions
    assert stats.worker_deaths == 1
    assert stats.recovered


@pytest.mark.slow
def test_shm_delay_injection_no_deaths():
    model = _jackal((1, 1))
    exact = explore(model)
    _lts, stats = distributed_explore(
        model, n_workers=2, backend="process", transport="shm",
        faults=FaultPlan.parse("delay:0@0.02"),
        batch_size=64, poll_interval=0.05,
    )
    assert stats.states == exact.n_states
    assert stats.worker_deaths == 0
    assert not stats.recovered
