"""Unit tests for the LTS container."""

import pytest
from hypothesis import given

from repro.lts.lts import LTS, TAU, Transition
from tests.conftest import random_lts


def test_empty_lts():
    l = LTS(0)
    assert l.n_states == 0
    assert l.n_transitions == 0
    assert l.labels == []


def test_add_transition_grows_states():
    l = LTS(0)
    l.add_transition(0, "a", 5)
    assert l.n_states == 6
    assert l.n_transitions == 1


def test_labels_are_interned():
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "a", 0)
    l.add_transition(0, "b", 1)
    assert l.labels == ["a", "b"]
    assert l.label_id("a") == 0
    assert l.has_label("a") and not l.has_label("z")


def test_successors_and_predecessors(small_lts):
    assert sorted(small_lts.successors(1)) == [("b", 2), ("d", 3)]
    assert small_lts.predecessors(1) == [("a", 0)]
    assert small_lts.out_degree(3) == 0
    assert small_lts.enabled_labels(0) == {"a"}


def test_transitions_iteration(small_lts):
    ts = list(small_lts.transitions())
    assert ts[0] == Transition(0, "a", 1)
    assert len(ts) == 4


def test_deadlock_states(small_lts):
    assert small_lts.deadlock_states() == [3]


def test_deadlock_states_ignore_labels():
    l = LTS(0)
    l.add_transition(0, "probe", 0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "probe", 1)
    assert l.deadlock_states() == []
    assert l.deadlock_states(ignore_labels=["probe"]) == [1]


def test_label_counts(small_lts):
    counts = small_lts.label_counts()
    assert counts == {"a": 1, "b": 1, "c": 1, "d": 1}


def test_relabelled(small_lts):
    r = small_lts.relabelled({"a": "x"})
    assert r.has_label("x") and not r.has_label("a")
    assert r.n_transitions == small_lts.n_transitions


def test_hidden(small_lts):
    h = small_lts.hidden(["a", "b"])
    assert h.label_counts()[TAU] == 2


def test_restricted_to_reachable():
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(5, "b", 6)  # unreachable island
    r = l.restricted_to_reachable()
    assert r.n_states == 2
    assert r.n_transitions == 1


def test_restricted_keeps_meta():
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.ensure_states(4)
    l.state_meta[1] = "one"
    l.state_meta[3] = "unreachable"
    r = l.restricted_to_reachable()
    assert r.state_meta == {1: "one"}


def test_structural_equality(small_lts):
    other = LTS(0)
    for t in small_lts.transitions():
        other.add_transition(t.src, t.label, t.dst)
    assert other == small_lts
    other.add_transition(3, "e", 0)
    assert other != small_lts


def test_equality_other_type(small_lts):
    assert small_lts != 42


@given(random_lts())
def test_reachable_restriction_is_idempotent(l):
    once = l.restricted_to_reachable()
    twice = once.restricted_to_reachable()
    assert once == twice


@given(random_lts())
def test_transition_arrays_consistent(l):
    src, lbl, dst = l.transition_arrays()
    assert len(src) == len(lbl) == len(dst) == l.n_transitions
    for s, i, d in zip(src, lbl, dst):
        assert 0 <= s < l.n_states
        assert 0 <= d < l.n_states
        assert 0 <= i < len(l.labels)


@given(random_lts())
def test_successor_predecessor_duality(l):
    fwd = {(s, lab, d) for s in range(l.n_states) for lab, d in l.successors(s)}
    bwd = {(s, lab, d) for d in range(l.n_states) for lab, s in l.predecessors(d)}
    assert fwd == bwd
