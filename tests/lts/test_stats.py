"""Tests for LTS statistics."""

from repro.lts.lts import LTS, TAU
from repro.lts.stats import degree_histogram, lts_summary


def test_summary(small_lts):
    s = lts_summary(small_lts)
    assert s.states == 4
    assert s.transitions == 4
    assert s.labels == 4
    assert s.tau_transitions == 0
    assert s.terminal_states == 1
    assert s.avg_out_degree == 1.0
    assert s.max_out_degree == 2


def test_summary_tau():
    l = LTS(0)
    l.add_transition(0, TAU, 1)
    l.add_transition(1, "a", 0)
    s = lts_summary(l)
    assert s.tau_transitions == 1
    assert s.terminal_states == 0


def test_summary_empty():
    s = lts_summary(LTS(0))
    assert s.states == 0
    assert s.avg_out_degree == 0.0
    assert s.max_out_degree == 0


def test_as_row(small_lts):
    row = lts_summary(small_lts).as_row()
    assert row["states"] == 4
    assert row["avg_deg"] == 1.0


def test_degree_histogram(small_lts):
    h = degree_histogram(small_lts)
    assert h == {0: 1, 1: 2, 2: 1}
    assert list(h) == sorted(h)
