"""Tests for deadlock detection and shortest traces."""

from repro.lts.deadlock import find_deadlocks, shortest_trace_to
from repro.lts.explore import explore
from repro.lts.lts import LTS


def test_no_deadlock_in_cycle():
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "b", 0)
    rep = find_deadlocks(l)
    assert rep.deadlock_free
    assert rep.summary().startswith("deadlock free")


def test_simple_deadlock(small_lts):
    rep = find_deadlocks(small_lts)
    assert not rep.deadlock_free
    assert rep.deadlocks == [3]
    assert rep.shortest_trace.labels == ("a", "d")
    assert "2 transitions" in rep.summary()


def test_probe_labels_do_not_mask():
    l = LTS(0)
    l.add_transition(0, "a", 1)
    l.add_transition(1, "probe", 1)
    rep = find_deadlocks(l, ignore_labels=["probe"])
    assert rep.deadlocks == [1]


def test_valid_end_predicate(chain_system):
    l = explore(chain_system, keep_states=True)
    # state 3 is terminal; accept it as proper termination
    rep = find_deadlocks(l, is_valid_end=lambda meta: meta == 3)
    assert rep.deadlock_free
    assert len(rep.terminal_ok) == 1


def test_valid_end_without_meta_is_conservative(small_lts):
    # no metadata stored: terminal states count as deadlocks
    rep = find_deadlocks(small_lts, is_valid_end=lambda meta: True)
    assert not rep.deadlock_free


def test_shortest_trace_to():
    l = LTS(0)
    l.add_transition(0, "long1", 1)
    l.add_transition(1, "long2", 2)
    l.add_transition(0, "short", 2)
    t = shortest_trace_to(l, [2])
    assert t.labels == ("short",)


def test_shortest_trace_to_initial(small_lts):
    assert shortest_trace_to(small_lts, [0]).labels == ()


def test_shortest_trace_unreachable():
    l = LTS(0)
    l.ensure_states(3)
    l.add_transition(0, "a", 1)
    assert shortest_trace_to(l, [2]) is None
    assert shortest_trace_to(l, []) is None


def test_shortest_trace_is_shortest(small_lts):
    # to state 3: a.d is the only path, length 2
    assert len(shortest_trace_to(small_lts, [3])) == 2


# -- edge paths: empty LTS, deadlock at state 0, violation sinks ------------


def test_empty_lts_deadlocks_at_state_zero():
    """An LTS with only its initial state is one big deadlock."""
    l = LTS(0)
    l.ensure_states(1)
    rep = find_deadlocks(l)
    assert not rep.deadlock_free
    assert rep.deadlocks == [0]
    # the error trace is the empty trace: we are already stuck
    assert rep.shortest_trace is not None
    assert len(rep.shortest_trace) == 0


def test_empty_lts_with_valid_end_meta_is_proper_termination():
    l = LTS(0)
    l.ensure_states(1)
    l.state_meta[0] = {"done": True}
    rep = find_deadlocks(l, is_valid_end=lambda meta: meta["done"])
    assert rep.deadlock_free
    assert rep.terminal_ok == [0]


def test_zero_state_lts_reports_nothing():
    """A degenerate LTS with no states at all has no deadlocks."""
    l = LTS(0)
    rep = find_deadlocks(l)
    assert rep.deadlock_free
    assert rep.deadlocks == []


def test_shortest_trace_to_empty_targets_is_none(small_lts):
    assert shortest_trace_to(small_lts, []) is None


def test_shortest_trace_into_violation_sink():
    """Requirement-2 style: trace ends at the assertion-violation sink."""
    l = LTS(0)
    l.add_transition(0, "write(t0)", 1)
    l.add_transition(1, "assertion_violation(unexpected_data_return)", 2)
    l.add_transition(1, "writeover(t0)", 0)
    sinks = [
        s
        for s in range(l.n_states)
        if any(
            lab.startswith("assertion_violation")
            for lab, _ in l.successors(s)
        )
    ]
    trace = shortest_trace_to(l, sinks)
    assert trace is not None
    assert list(trace) == ["write(t0)"]
    rep = find_deadlocks(l)
    assert rep.deadlocks == [2]
    assert list(rep.shortest_trace) == [
        "write(t0)",
        "assertion_violation(unexpected_data_return)",
    ]
