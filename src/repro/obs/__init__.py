"""Flight recorder: structured tracing, metrics, and live progress.

The observability layer of the package. Three cooperating pieces:

* :mod:`repro.obs.metrics` — a get-or-create registry of counters,
  gauges and histograms with JSON and Prometheus text exposition;
* :mod:`repro.obs.tracer` — structured JSONL event traces with
  monotonic timestamps and a bounded ring-buffer mode;
* :mod:`repro.obs.progress` — a rate-limited live status line on
  stderr (states/s, frontier size, workers alive);
* :mod:`repro.obs.memwatch` — RSS sampling at heartbeat points, with
  high-watermarks, per-structure byte accounting and edge-triggered
  ``mem_pressure`` events;
* :mod:`repro.obs.merge` — merging per-process trace streams (one per
  distributed worker, clock-aligned via the spawn handshake) into one
  causal timeline.

They travel together as an :class:`Instrumentation` bundle. The
ambient default (:data:`NULL`) is fully disabled and costs one
attribute lookup at the instrumentation points, so the exploration
engines run un-instrumented at full speed unless a recorder is
activated — typically by the CLI's ``--trace`` / ``--metrics-out`` /
``--progress`` flags, or programmatically::

    from repro import obs

    inst = obs.Instrumentation(
        metrics=obs.MetricsRegistry(),
        tracer=obs.Tracer("sweep.jsonl"),
    )
    with obs.activate(inst):
        explore_fast(model)
    print(inst.metrics.render_prometheus())

``repro report sweep.jsonl`` then renders the trace as a timeline with
depth waves and the per-phase timing breakdown
(:func:`render_report`). The event schema and metric names are
documented in ``docs/observability.md``.
"""

from repro.obs.core import NULL, Instrumentation, activate, current
from repro.obs.memwatch import NULL_MEMWATCH, MemWatch, NullMemWatch, rss_bytes
from repro.obs.merge import lanes, merge_traces, worker_stream_name
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    escape_label_value,
)
from repro.obs.progress import NULL_PROGRESS, NullProgress, ProgressReporter
from repro.obs.report import (
    phase_breakdown,
    render_report,
    report_from_file,
    report_from_paths,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, read_trace

__all__ = [
    "NULL",
    "NULL_MEMWATCH",
    "NULL_PROGRESS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MemWatch",
    "MetricsRegistry",
    "NullMemWatch",
    "NullProgress",
    "NullRegistry",
    "NullTracer",
    "ProgressReporter",
    "Tracer",
    "activate",
    "current",
    "escape_label_value",
    "lanes",
    "merge_traces",
    "phase_breakdown",
    "read_trace",
    "render_report",
    "report_from_file",
    "report_from_paths",
    "rss_bytes",
    "worker_stream_name",
]
