"""Metrics registry: counters, gauges, histograms.

The flight recorder's aggregate side. Instruments are get-or-created by
name (plus optional Prometheus-style labels) from a
:class:`MetricsRegistry`; a sweep increments counters as it goes and
the registry renders the final values as JSON or Prometheus text
exposition.

Overhead discipline: the whole package defaults to the shared
:data:`NULL_REGISTRY`, whose instruments are inert singletons — a
disabled counter increment is one attribute lookup plus a no-op call,
and hot loops are expected to hoist even that out by checking
``registry.enabled`` (or :attr:`Instrumentation.enabled
<repro.obs.core.Instrumentation.enabled>`) once per wave rather than
once per state.
"""

from __future__ import annotations

import json
import math

#: default histogram bucket upper bounds (seconds-flavoured, but any
#: unit works — buckets are cumulative, Prometheus style)
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def snapshot(self):
        return self.value


class Gauge:
    """A value that goes up and down (queue depth, workers alive)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def snapshot(self):
        return self.value


class Histogram:
    """A distribution summarised by cumulative buckets + count/sum/min/max."""

    __slots__ = ("name", "labels", "bounds", "buckets", "count", "sum",
                 "min", "max")
    kind = "histogram"

    def __init__(self, name: str, labels: tuple = (), bounds=DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)  # +inf bucket last
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.sum / self.count if self.count else None,
            "buckets": {
                str(b): n for b, n in zip(self.bounds, self.buckets)
            } | {"+Inf": self.buckets[-1]},
        }


class _NullInstrument:
    """Shared inert instrument: every mutation is a no-op."""

    __slots__ = ()

    def inc(self, n=1):
        pass

    def dec(self, n=1):
        pass

    def set(self, v):
        pass

    def observe(self, v):
        pass


_NULL_INSTRUMENT = _NullInstrument()


def _labels_key(labels: dict | None) -> tuple:
    return tuple(sorted(labels.items())) if labels else ()


def escape_label_value(v) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote and newline are the three characters the
    spec requires escaped inside quoted label values; anything else
    passes through. Without this, a label value like a Windows path or
    a multi-line spec fingerprint corrupts the whole exposition.
    """
    return (
        str(v)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


class MetricsRegistry:
    """Named instruments, get-or-created on first use.

    ``counter("x", worker=0)`` and ``counter("x", worker=1)`` are two
    time series of the same metric family, rendered Prometheus-style as
    ``x{worker="0"}`` / ``x{worker="1"}``.
    """

    enabled = True

    def __init__(self):
        self._instruments: dict[tuple, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, labels: dict | None, **kw):
        key = (name, _labels_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = self._instruments[key] = cls(name, key[1], **kw)
        elif not isinstance(inst, cls):
            raise ValueError(
                f"metric {name!r} already registered as {inst.kind}"
            )
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS, **labels) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    # -- exposition ---------------------------------------------------------

    def instruments(self):
        """All instruments in registration order."""
        return list(self._instruments.values())

    def snapshot(self) -> dict:
        """Plain-dict view: ``name`` or ``name{a=1,b=2}`` -> value."""
        out: dict = {}
        for inst in self._instruments.values():
            if inst.labels:
                rendered = ",".join(f"{k}={v}" for k, v in inst.labels)
                key = f"{inst.name}{{{rendered}}}"
            else:
                key = inst.name
            out[key] = inst.snapshot()
        return out

    def render_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition (one ``# TYPE`` line per family)."""
        lines: list[str] = []
        typed: set[str] = set()
        for inst in self._instruments.values():
            if inst.name not in typed:
                typed.add(inst.name)
                lines.append(f"# TYPE {inst.name} {inst.kind}")
            suffix = ""
            if inst.labels:
                rendered = ",".join(
                    f'{k}="{escape_label_value(v)}"' for k, v in inst.labels
                )
                suffix = f"{{{rendered}}}"
            if isinstance(inst, Histogram):
                cum = 0
                for bound, n in zip(inst.bounds, inst.buckets):
                    cum += n
                    sep = "," if inst.labels else ""
                    inner = (suffix[1:-1] + sep) if inst.labels else ""
                    lines.append(
                        f'{inst.name}_bucket{{{inner}le="{bound}"}} {cum}'
                    )
                cum += inst.buckets[-1]
                inner = (suffix[1:-1] + ",") if inst.labels else ""
                lines.append(f'{inst.name}_bucket{{{inner}le="+Inf"}} {cum}')
                lines.append(f"{inst.name}_sum{suffix} {inst.sum}")
                lines.append(f"{inst.name}_count{suffix} {inst.count}")
            else:
                lines.append(f"{inst.name}{suffix} {inst.value}")
        return "\n".join(lines) + ("\n" if lines else "")


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is the shared no-op.

    The module-level default, so un-instrumented runs pay one attribute
    lookup (``registry.enabled``) and nothing else.
    """

    enabled = False

    def __init__(self):
        super().__init__()

    def counter(self, name: str, **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS, **labels):
        return _NULL_INSTRUMENT


#: the shared disabled registry (see :class:`NullRegistry`)
NULL_REGISTRY = NullRegistry()
