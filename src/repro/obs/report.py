"""Render a flight-recorder trace into a human-readable timeline.

The consumer side of :mod:`repro.obs.tracer`: ``repro report
trace.jsonl`` loads the JSONL events back and prints, per sweep, the
depth waves, the per-phase timing breakdown (successor generation vs
dedup vs transport), the distributed worker timeline (dispatches,
deaths, re-dispatches, fault injections), and the mu-calculus fixpoint
and requirement-check summaries.

:func:`phase_breakdown` is also used directly by the bench harness to
embed the same breakdown into ``BENCH_explore.json``.
"""

from __future__ import annotations

from repro.obs.tracer import read_trace

#: maximum depth-wave rows rendered before eliding the middle
_MAX_WAVE_ROWS = 40


def phase_breakdown(events: list[dict]) -> dict:
    """Aggregate per-phase seconds over every sweep in ``events``.

    Serial/engine sweeps contribute through their ``wave`` events
    (``succ_s`` / ``dedup_s``); distributed sweeps through the
    worker/coordinator totals on ``sweep_end``. ``other_s`` is the
    unattributed remainder of the sweeps' wall time.
    """
    succ = dedup = transport = total = 0.0
    for e in events:
        ev = e.get("ev")
        if ev == "wave":
            succ += e.get("succ_s", 0.0)
            dedup += e.get("dedup_s", 0.0)
        elif ev == "sweep_end":
            total += e.get("seconds", 0.0)
            ws = e.get("worker_succ_s", 0.0)
            succ += ws
            dedup += max(e.get("worker_expand_s", 0.0) - ws, 0.0)
            # queue transport: coordinator routing; shm transport:
            # ring writes/reads (workers) + the control-plane handling
            transport += (
                e.get("coord_put_s", 0.0)
                + e.get("coord_handle_s", 0.0)
                + e.get("ring_put_s", 0.0)
                + e.get("ring_get_s", 0.0)
            )
    return {
        "successors_s": round(succ, 6),
        "dedup_s": round(dedup, 6),
        "transport_s": round(transport, 6),
        "other_s": round(max(total - succ - dedup - transport, 0.0), 6),
        "total_s": round(total, 6),
    }


def _pct(part: float, total: float) -> str:
    return f"{100.0 * part / total:.1f}%" if total > 0 else "-"


def _fmt_phase_line(phases: dict) -> str:
    total = phases["total_s"]
    parts = [
        f"successors {_pct(phases['successors_s'], total)} "
        f"({phases['successors_s']:.3f} s)",
        f"dedup {_pct(phases['dedup_s'], total)} "
        f"({phases['dedup_s']:.3f} s)",
        f"transport {_pct(phases['transport_s'], total)} "
        f"({phases['transport_s']:.3f} s)",
        f"other {_pct(phases['other_s'], total)}",
    ]
    return "phase breakdown: " + " | ".join(parts)


def _split_sweeps(events: list[dict]):
    """``(sweep_event_lists, leftovers)`` — sweeps delimited by
    sweep_start/sweep_end, everything outside any sweep in leftovers."""
    sweeps: list[list[dict]] = []
    leftovers: list[dict] = []
    cur: list[dict] | None = None
    for e in events:
        ev = e.get("ev")
        if ev == "sweep_start":
            if cur is not None:
                sweeps.append(cur)  # unterminated (crashed) sweep
            cur = [e]
        elif cur is not None:
            cur.append(e)
            if ev == "sweep_end":
                sweeps.append(cur)
                cur = None
        else:
            leftovers.append(e)
    if cur is not None:
        sweeps.append(cur)
    return sweeps, leftovers


def _wave_table(waves: list[dict]) -> list[str]:
    timed = any("succ_s" in w for w in waves)
    header = f"  {'depth':>7} {'states':>10} {'frontier':>10} {'wave ms':>9}"
    if timed:
        header += f" {'succ ms':>9} {'dedup ms':>9}"
    lines = [header]

    def row(w):
        line = (
            f"  {w.get('depth', '?'):>7} {w.get('states', 0):>10,} "
            f"{w.get('frontier', 0):>10,} "
            f"{1000 * w.get('wave_s', 0.0):>9.1f}"
        )
        if timed:
            line += (
                f" {1000 * w.get('succ_s', 0.0):>9.1f}"
                f" {1000 * w.get('dedup_s', 0.0):>9.1f}"
            )
        return line

    if len(waves) <= _MAX_WAVE_ROWS:
        lines.extend(row(w) for w in waves)
    else:
        head = _MAX_WAVE_ROWS // 2
        lines.extend(row(w) for w in waves[:head])
        lines.append(f"  ... {len(waves) - 2 * head} waves elided ...")
        lines.extend(row(w) for w in waves[-head:])
    return lines


_TIMELINE_EVENTS = (
    "fault_plan", "worker_death", "redispatch", "gc_suspend", "gc_resume",
    "limit", "coord_sample",
)


def _render_sweep(i: int, events: list[dict]) -> list[str]:
    start = events[0] if events[0].get("ev") == "sweep_start" else {}
    end = next(
        (e for e in events if e.get("ev") == "sweep_end"), None
    )
    backend = start.get("backend", "?")
    extras = []
    if start.get("packed") is not None:
        extras.append(f"packed={'yes' if start['packed'] else 'no'}")
    if start.get("n_workers"):
        extras.append(f"workers={start['n_workers']}")
    head = f"sweep {i}: {backend}"
    if extras:
        head += f" ({', '.join(extras)})"
    head += f" — {end.get('outcome', 'unterminated') if end else 'unterminated'}"
    lines = [head]

    if end:
        lines.append(
            f"  states {end.get('states', 0):,}  "
            f"transitions {end.get('transitions', 0):,}  "
            f"seconds {end.get('seconds', 0.0):.3f}  "
            f"states/s {end.get('states_per_second', 0.0):,.0f}"
            + (f"  depth {end['depth']}" if "depth" in end else "")
            + (
                f"  max frontier {end['max_frontier']:,}"
                if "max_frontier" in end
                else ""
            )
        )
        red = end.get("reduction")
        if red:
            lines.append(
                "  reduction: "
                f"canonical_hits={red.get('canonical_hits', 0):,} "
                f"ample_prunes={red.get('ample_prunes', 0):,} "
                f"slice_hits={red.get('slice_hits', 0):,}"
            )
        if end.get("worker_deaths"):
            lines.append(
                f"  recovery: worker_deaths={end['worker_deaths']} "
                f"redispatched_batches={end.get('redispatched_batches', 0)} "
                f"recovered={'yes' if end.get('recovered') else 'no'}"
            )

    waves = [e for e in events if e.get("ev") == "wave"]
    if waves:
        lines.append("  depth waves:")
        lines.extend("  " + ln for ln in _wave_table(waves))

    acks: dict[int, dict] = {}
    for e in events:
        if e.get("ev") == "ack":
            w = e.get("worker", -1)
            agg = acks.setdefault(
                w, {"batches": 0, "states": 0, "expand_s": 0.0}
            )
            agg["batches"] += 1
            agg["states"] = e.get("visited", agg["states"])
            agg["expand_s"] += e.get("expand_s", 0.0)
    if acks:
        lines.append(
            f"  {'worker':>8} {'batches':>9} {'states':>10} "
            f"{'busy s':>8} {'states/busy-s':>14}"
        )
        for w in sorted(acks):
            agg = acks[w]
            busy = agg["expand_s"]
            lines.append(
                f"  {w:>8} {agg['batches']:>9,} {agg['states']:>10,} "
                f"{busy:>8.3f} "
                f"{agg['states'] / busy if busy > 0 else 0.0:>14,.0f}"
            )

    timeline = [
        e for e in events if e.get("ev") in _TIMELINE_EVENTS
    ]
    if timeline:
        lines.append("  events:")
        for e in timeline:
            detail = " ".join(
                f"{k}={v}" for k, v in e.items() if k not in ("t", "ev")
            )
            lines.append(f"    {e.get('t', 0.0):>9.3f} s  {e['ev']}  {detail}")

    phases = phase_breakdown(events)
    if phases["total_s"] > 0:
        lines.append("  " + _fmt_phase_line(phases))
    return lines


def render_report(events: list[dict]) -> str:
    """The full human-readable report for a trace (see module docstring)."""
    sweeps, _leftovers = _split_sweeps(events)
    span = events[-1].get("t", 0.0) if events else 0.0
    lines = [
        f"flight recorder report — {len(sweeps)} sweep(s), "
        f"{len(events)} events, {span:.3f} s of recording"
    ]
    for i, sweep in enumerate(sweeps, 1):
        lines.append("")
        lines.extend(_render_sweep(i, sweep))

    fixpoints = [e for e in events if e.get("ev") == "fixpoint"]
    if fixpoints:
        by_mode: dict[str, int] = {}
        iters = 0
        for e in fixpoints:
            by_mode[e.get("mode", "?")] = by_mode.get(e.get("mode", "?"), 0) + 1
            iters += e.get("iterations", 0)
        modes = ", ".join(f"{n} {m}" for m, n in sorted(by_mode.items()))
        lines.append("")
        lines.append(
            f"fixpoints: {len(fixpoints)} solved ({modes}; "
            f"{iters} Kleene iterations)"
        )

    products = [e for e in events if e.get("ev") == "product_end"]
    if products:
        lines.append("")
        for e in products:
            lines.append(
                f"on-the-fly product: {e.get('product_states', 0):,} states, "
                f"{'witness found' if e.get('found') else 'no witness'} "
                f"({e.get('seconds', 0.0):.3f} s)"
            )

    checks = [e for e in events if e.get("ev") == "check"]
    if checks:
        lines.append("")
        lines.append("requirement checks:")
        for e in checks:
            lines.append(
                f"  {e.get('requirement', '?'):<34} "
                f"{'HOLDS' if e.get('holds') else 'VIOLATED':<9} "
                f"{e.get('states', 0):>10,} states  "
                f"{e.get('seconds', 0.0):>7.3f} s"
            )

    total_phases = phase_breakdown(events)
    if len(sweeps) > 1 and total_phases["total_s"] > 0:
        lines.append("")
        lines.append("overall " + _fmt_phase_line(total_phases))
    return "\n".join(lines)


def report_from_file(path) -> str:
    """Load ``path`` (JSONL trace) and render it."""
    return render_report(read_trace(path))
