"""Render a flight-recorder trace into a human-readable timeline.

The consumer side of :mod:`repro.obs.tracer`: ``repro report
trace.jsonl`` loads the JSONL events back and prints, per sweep, the
depth waves, the per-phase timing breakdown (successor generation vs
dedup vs transport), the distributed worker timeline (dispatches,
deaths, re-dispatches, fault injections), and the mu-calculus fixpoint
and requirement-check summaries.

``repro report`` also accepts a ``--trace-dir`` directory (or several
files): the per-process streams are merged into one causal timeline
(:mod:`repro.obs.merge`) and each sweep additionally renders
**per-worker lanes** — one row per worker stream with its quantum
count, busy/idle split and utilization — plus the **dispatch-to-ack
batch latency** distribution across the control plane, the two numbers
multi-worker scaling work on real hardware is diagnosed with.

:func:`phase_breakdown` is also used directly by the bench harness to
embed the same breakdown into ``BENCH_explore.json``.
"""

from __future__ import annotations

from repro.obs.tracer import read_trace

#: maximum depth-wave rows rendered before eliding the middle
_MAX_WAVE_ROWS = 40


def phase_breakdown(events: list[dict]) -> dict:
    """Aggregate per-phase seconds over every sweep in ``events``.

    Serial/engine sweeps contribute through their ``wave`` events
    (``succ_s`` / ``dedup_s``); distributed sweeps through the
    worker/coordinator totals on ``sweep_end``. ``other_s`` is the
    unattributed remainder of the sweeps' wall time.
    """
    succ = dedup = transport = total = 0.0
    for e in events:
        ev = e.get("ev")
        if ev == "wave":
            succ += e.get("succ_s", 0.0)
            dedup += e.get("dedup_s", 0.0)
        elif ev == "sweep_end":
            total += e.get("seconds", 0.0)
            ws = e.get("worker_succ_s", 0.0)
            succ += ws
            dedup += max(e.get("worker_expand_s", 0.0) - ws, 0.0)
            # queue transport: coordinator routing; shm transport:
            # ring writes/reads (workers) + the control-plane handling
            transport += (
                e.get("coord_put_s", 0.0)
                + e.get("coord_handle_s", 0.0)
                + e.get("ring_put_s", 0.0)
                + e.get("ring_get_s", 0.0)
            )
    return {
        "successors_s": round(succ, 6),
        "dedup_s": round(dedup, 6),
        "transport_s": round(transport, 6),
        "other_s": round(max(total - succ - dedup - transport, 0.0), 6),
        "total_s": round(total, 6),
    }


def _pct(part: float, total: float) -> str:
    return f"{100.0 * part / total:.1f}%" if total > 0 else "-"


def _fmt_phase_line(phases: dict) -> str:
    total = phases["total_s"]
    parts = [
        f"successors {_pct(phases['successors_s'], total)} "
        f"({phases['successors_s']:.3f} s)",
        f"dedup {_pct(phases['dedup_s'], total)} "
        f"({phases['dedup_s']:.3f} s)",
        f"transport {_pct(phases['transport_s'], total)} "
        f"({phases['transport_s']:.3f} s)",
        f"other {_pct(phases['other_s'], total)}",
    ]
    return "phase breakdown: " + " | ".join(parts)


def _split_sweeps(events: list[dict]):
    """``(sweep_event_lists, leftovers)`` — sweeps delimited by
    sweep_start/sweep_end, everything outside any sweep in leftovers."""
    sweeps: list[list[dict]] = []
    leftovers: list[dict] = []
    cur: list[dict] | None = None
    for e in events:
        ev = e.get("ev")
        if ev == "sweep_start":
            if cur is not None:
                sweeps.append(cur)  # unterminated (crashed) sweep
            cur = [e]
        elif cur is not None:
            cur.append(e)
            if ev == "sweep_end":
                sweeps.append(cur)
                cur = None
        else:
            leftovers.append(e)
    if cur is not None:
        sweeps.append(cur)
    return sweeps, leftovers


def _wave_table(waves: list[dict]) -> list[str]:
    timed = any("succ_s" in w for w in waves)
    header = f"  {'depth':>7} {'states':>10} {'frontier':>10} {'wave ms':>9}"
    if timed:
        header += f" {'succ ms':>9} {'dedup ms':>9}"
    lines = [header]

    def row(w):
        line = (
            f"  {w.get('depth', '?'):>7} {w.get('states', 0):>10,} "
            f"{w.get('frontier', 0):>10,} "
            f"{1000 * w.get('wave_s', 0.0):>9.1f}"
        )
        if timed:
            line += (
                f" {1000 * w.get('succ_s', 0.0):>9.1f}"
                f" {1000 * w.get('dedup_s', 0.0):>9.1f}"
            )
        return line

    if len(waves) <= _MAX_WAVE_ROWS:
        lines.extend(row(w) for w in waves)
    else:
        head = _MAX_WAVE_ROWS // 2
        lines.extend(row(w) for w in waves[:head])
        lines.append(f"  ... {len(waves) - 2 * head} waves elided ...")
        lines.extend(row(w) for w in waves[-head:])
    return lines


_TIMELINE_EVENTS = (
    "fault_plan", "worker_death", "redispatch", "gc_suspend", "gc_resume",
    "limit", "coord_sample", "mem_pressure", "worker_start",
)

#: events whose (worker, seq) stamp opens a batch's latency window
_BATCH_OPEN_EVENTS = ("dispatch", "ring_get")


def _has_lanes(events: list[dict]) -> bool:
    return any("lane" in e for e in events)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    return f"{n:.1f} GiB"  # pragma: no cover - loop always returns


def _batch_latencies(events: list[dict]) -> list[float]:
    """Dispatch-to-ack seconds per correlated ``(worker, seq)`` batch.

    A batch opens at the coordinator's ``dispatch`` (queue transport)
    or the worker's ``ring_get`` quantum pickup (shm transport) and
    closes at the coordinator-side ``ack`` carrying the same
    correlation id — the full work-plus-control round trip.
    """
    opened: dict[tuple, float] = {}
    out: list[float] = []
    for e in events:
        key = (e.get("worker"), e.get("seq"))
        if key[0] is None or key[1] is None:
            continue
        ev = e.get("ev")
        if ev in _BATCH_OPEN_EVENTS:
            opened.setdefault(key, e.get("t", 0.0))
        elif ev == "ack" and e.get("lane", "coordinator") == "coordinator":
            t0 = opened.pop(key, None)
            if t0 is not None:
                out.append(max(e.get("t", 0.0) - t0, 0.0))
    return out


def _lane_rows(events: list[dict]) -> dict[str, dict]:
    """Per-worker-lane activity aggregates of one sweep."""
    rows: dict[str, dict] = {}
    for e in events:
        lane = e.get("lane")
        if lane is None or not lane.startswith("worker"):
            continue
        row = rows.setdefault(
            lane,
            {"events": 0, "quanta": 0, "states": 0, "busy_s": 0.0,
             "first_t": e.get("t", 0.0), "last_t": e.get("t", 0.0)},
        )
        row["events"] += 1
        row["last_t"] = e.get("t", row["last_t"])
        ev = e.get("ev")
        if ev == "ack":
            row["quanta"] += 1
            row["states"] = e.get("visited", row["states"])
            row["busy_s"] += (
                e.get("expand_s", 0.0)
                + e.get("ring_put_s", 0.0) + e.get("ring_get_s", 0.0)
            )
        elif ev in ("ring_put", "ring_get"):
            row["busy_s"] += e.get("seconds", 0.0)
    return rows


def _render_lanes(events: list[dict]) -> list[str]:
    """The per-worker lane table + latency line of one merged sweep."""
    rows = _lane_rows(events)
    if not rows:
        return []
    ts = [e.get("t", 0.0) for e in events]
    span = max(ts) - min(ts) if ts else 0.0
    end = next((e for e in events if e.get("ev") == "sweep_end"), None)
    if end is not None and end.get("seconds", 0.0) > 0:
        span = end["seconds"]
    lines = ["  worker lanes:"]
    lines.append(
        f"  {'lane':>10} {'events':>8} {'quanta':>8} {'states':>10} "
        f"{'busy s':>8} {'idle s':>8} {'util':>6}"
    )

    def _wid(lane):
        try:
            return int(lane.replace("worker", ""))
        except ValueError:  # pragma: no cover - lane names are generated
            return -1

    for lane in sorted(rows, key=_wid):
        row = rows[lane]
        busy = row["busy_s"]
        idle = max(span - busy, 0.0)
        util = 100.0 * busy / span if span > 0 else 0.0
        lines.append(
            f"  {lane:>10} {row['events']:>8,} {row['quanta']:>8,} "
            f"{row['states']:>10,} {busy:>8.3f} {idle:>8.3f} "
            f"{util:>5.1f}%"
        )
    lat = _batch_latencies(events)
    if lat:
        lat.sort()
        p95 = lat[min(int(0.95 * len(lat)), len(lat) - 1)]
        lines.append(
            f"  dispatch->ack latency: n={len(lat)} "
            f"min {1000 * lat[0]:.1f} ms  "
            f"mean {1000 * sum(lat) / len(lat):.1f} ms  "
            f"p95 {1000 * p95:.1f} ms  max {1000 * lat[-1]:.1f} ms"
        )
    return lines


def _render_sweep(i: int, events: list[dict]) -> list[str]:
    start = events[0] if events[0].get("ev") == "sweep_start" else {}
    end = next(
        (e for e in events if e.get("ev") == "sweep_end"), None
    )
    backend = start.get("backend", "?")
    extras = []
    if start.get("packed") is not None:
        extras.append(f"packed={'yes' if start['packed'] else 'no'}")
    if start.get("n_workers"):
        extras.append(f"workers={start['n_workers']}")
    head = f"sweep {i}: {backend}"
    if extras:
        head += f" ({', '.join(extras)})"
    head += f" — {end.get('outcome', 'unterminated') if end else 'unterminated'}"
    lines = [head]

    if end:
        lines.append(
            f"  states {end.get('states', 0):,}  "
            f"transitions {end.get('transitions', 0):,}  "
            f"seconds {end.get('seconds', 0.0):.3f}  "
            f"states/s {end.get('states_per_second', 0.0):,.0f}"
            + (f"  depth {end['depth']}" if "depth" in end else "")
            + (
                f"  max frontier {end['max_frontier']:,}"
                if "max_frontier" in end
                else ""
            )
        )
        red = end.get("reduction")
        if red:
            lines.append(
                "  reduction: "
                f"canonical_hits={red.get('canonical_hits', 0):,} "
                f"ample_prunes={red.get('ample_prunes', 0):,} "
                f"slice_hits={red.get('slice_hits', 0):,}"
            )
        if end.get("worker_deaths"):
            lines.append(
                f"  recovery: worker_deaths={end['worker_deaths']} "
                f"redispatched_batches={end.get('redispatched_batches', 0)} "
                f"recovered={'yes' if end.get('recovered') else 'no'}"
            )
        if end.get("max_rss_bytes"):
            mem = f"  memory: max RSS {_fmt_bytes(end['max_rss_bytes'])}"
            if end.get("mem_pressure_events"):
                mem += (
                    f"  pressure events {end['mem_pressure_events']}"
                )
            lines.append(mem)

    waves = [e for e in events if e.get("ev") == "wave"]
    if waves:
        lines.append("  depth waves:")
        lines.extend("  " + ln for ln in _wave_table(waves))

    lanes_present = _has_lanes(events)
    acks: dict[int, dict] = {}
    for e in events:
        if e.get("ev") == "ack":
            # in merged traces each ack exists on the coordinator lane
            # and on its worker's lane — count the coordinator copy only
            if lanes_present and e.get("lane") != "coordinator":
                continue
            w = e.get("worker", -1)
            agg = acks.setdefault(
                w, {"batches": 0, "states": 0, "expand_s": 0.0}
            )
            agg["batches"] += 1
            agg["states"] = e.get("visited", agg["states"])
            agg["expand_s"] += e.get("expand_s", 0.0)
    if acks:
        lines.append(
            f"  {'worker':>8} {'batches':>9} {'states':>10} "
            f"{'busy s':>8} {'states/busy-s':>14}"
        )
        for w in sorted(acks):
            agg = acks[w]
            busy = agg["expand_s"]
            lines.append(
                f"  {w:>8} {agg['batches']:>9,} {agg['states']:>10,} "
                f"{busy:>8.3f} "
                f"{agg['states'] / busy if busy > 0 else 0.0:>14,.0f}"
            )

    if lanes_present:
        lines.extend(_render_lanes(events))

    timeline = [
        e for e in events if e.get("ev") in _TIMELINE_EVENTS
    ]
    if timeline:
        lines.append("  events:")
        for e in timeline:
            detail = " ".join(
                f"{k}={v}"
                for k, v in e.items()
                if k not in ("t", "ev", "lane", "t0")
            )
            lane = f"[{e['lane']}] " if "lane" in e else ""
            lines.append(
                f"    {e.get('t', 0.0):>9.3f} s  {lane}{e['ev']}  {detail}"
            )

    phases = phase_breakdown(events)
    if phases["total_s"] > 0:
        lines.append("  " + _fmt_phase_line(phases))
    return lines


def render_report(events: list[dict]) -> str:
    """The full human-readable report for a trace (see module docstring)."""
    sweeps, _leftovers = _split_sweeps(events)
    span = events[-1].get("t", 0.0) if events else 0.0
    head = (
        f"flight recorder report — {len(sweeps)} sweep(s), "
        f"{len(events)} events, {span:.3f} s of recording"
    )
    if _has_lanes(events):
        names = sorted(
            {e["lane"] for e in events if "lane" in e},
            key=lambda s: (0, -1) if s == "coordinator"
            else (1, int(s.replace("worker", "") or -1)),
        )
        head += f", {len(names)} stream(s): {', '.join(names)}"
    lines = [head]
    for i, sweep in enumerate(sweeps, 1):
        lines.append("")
        lines.extend(_render_sweep(i, sweep))

    fixpoints = [e for e in events if e.get("ev") == "fixpoint"]
    if fixpoints:
        by_mode: dict[str, int] = {}
        iters = 0
        for e in fixpoints:
            by_mode[e.get("mode", "?")] = by_mode.get(e.get("mode", "?"), 0) + 1
            iters += e.get("iterations", 0)
        modes = ", ".join(f"{n} {m}" for m, n in sorted(by_mode.items()))
        lines.append("")
        lines.append(
            f"fixpoints: {len(fixpoints)} solved ({modes}; "
            f"{iters} Kleene iterations)"
        )

    products = [e for e in events if e.get("ev") == "product_end"]
    if products:
        lines.append("")
        for e in products:
            lines.append(
                f"on-the-fly product: {e.get('product_states', 0):,} states, "
                f"{'witness found' if e.get('found') else 'no witness'} "
                f"({e.get('seconds', 0.0):.3f} s)"
            )

    checks = [e for e in events if e.get("ev") == "check"]
    if checks:
        lines.append("")
        lines.append("requirement checks:")
        for e in checks:
            lines.append(
                f"  {e.get('requirement', '?'):<34} "
                f"{'HOLDS' if e.get('holds') else 'VIOLATED':<9} "
                f"{e.get('states', 0):>10,} states  "
                f"{e.get('seconds', 0.0):>7.3f} s"
            )

    total_phases = phase_breakdown(events)
    if len(sweeps) > 1 and total_phases["total_s"] > 0:
        lines.append("")
        lines.append("overall " + _fmt_phase_line(total_phases))
    return "\n".join(lines)


def report_from_file(path, *, lenient: bool = False) -> str:
    """Load ``path`` (one JSONL trace) and render it.

    Strict by default — a malformed line raises, which the CLI turns
    into a clean ``error:`` exit rather than a silent partial report.
    ``lenient=True`` instead skips unparseable lines (the crash-artifact
    mode: a stream whose writer was killed mid-line still renders
    everything before the torn tail).
    """
    return render_report(read_trace(path, lenient=lenient))


def report_from_paths(paths) -> str:
    """Render trace files and/or trace directories as one merged report.

    Directories expand to their per-process streams (see
    :func:`repro.obs.merge.merge_traces`); a single plain file renders
    exactly like :func:`report_from_file`.
    """
    from repro.obs.merge import merge_traces

    return render_report(merge_traces(list(paths)))
