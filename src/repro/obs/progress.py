"""Periodic live progress line on stderr.

Long sweeps are silent by default; with progress enabled the backends
call :meth:`ProgressReporter.maybe` at natural heartbeat points (once
per BFS wave, once per coordinator poll) and at most every ``interval``
seconds one ``\\r``-rewritten status line lands on stderr::

    [repro] 182,340 states | 45,210 st/s | frontier 12,041 | depth 17 | workers 4/4

The reporter rate-limits itself, so callers never need their own
timers; :meth:`done` finishes the line with a newline so subsequent
output starts clean.

The ``\\r`` + ``\\x1b[K`` rewrite trick only makes sense on a real
terminal. When the stream is not a TTY (CI logs, ``2>file``), the
reporter falls back to plain newline-terminated lines so the log stays
readable instead of accumulating control sequences on one endless line.
"""

from __future__ import annotations

import sys
import time


def _fmt(v) -> str:
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, int):
        return f"{v:,}"
    if isinstance(v, float):
        return f"{v:,.0f}"
    return str(v)


class ProgressReporter:
    """Rate-limited single-line status output (see module docstring)."""

    enabled = True

    def __init__(self, stream=None, interval: float = 0.5, _clock=None):
        self._stream = stream if stream is not None else sys.stderr
        self._interval = interval
        self._clock = _clock or time.monotonic
        self._last = 0.0
        self._dirty = False
        try:
            self._ansi = bool(self._stream.isatty())
        except (AttributeError, ValueError):
            self._ansi = False

    def maybe(self, **fields) -> None:
        """Render a status line if ``interval`` has elapsed.

        Field values are formatted with thousands separators; the
        conventional keys are ``states``, ``sps`` (states/second),
        ``frontier``, ``depth``, and ``workers`` (e.g. ``"3/4"``), but
        any key renders.
        """
        now = self._clock()
        if now - self._last < self._interval:
            return
        self._last = now
        parts = " | ".join(
            f"{k} {_fmt(v)}" for k, v in fields.items() if v is not None
        )
        if self._ansi:
            self._stream.write(f"\r[repro] {parts}\x1b[K")
            self._dirty = True
        else:
            self._stream.write(f"[repro] {parts}\n")
        self._stream.flush()

    def done(self) -> None:
        """Terminate the status line (no-op if nothing was printed)."""
        if self._dirty:
            self._stream.write("\n")
            self._stream.flush()
            self._dirty = False


class NullProgress:
    """The disabled reporter."""

    enabled = False

    def maybe(self, **fields) -> None:
        pass

    def done(self) -> None:
        pass


#: the shared disabled reporter
NULL_PROGRESS = NullProgress()
