"""Memory-pressure telemetry: RSS sampling, watermarks, byte accounting.

The paper hit the state-space wall as an out-of-memory event — config
3's LTS was "too large for full mu-calculus checking" on the CWI
cluster — and ROADMAP item 3 (the out-of-core tier) needs to know
*when* memory pressure starts so a spill threshold can be wired to it.
This module is that signal source: a :class:`MemWatch` samples the
process's resident set size at the flight recorder's existing
heartbeat points (once per BFS wave, once per coordinator poll, once
per worker quantum — never per state), tracks the high-watermark,
accepts byte-size reports from the big structures (visited index,
frontier, codec memo dicts, shm rings), and emits ``mem_pressure``
tracer events when a configurable threshold is crossed.

RSS is read from ``/proc/self/statm`` (two integer parses, no
dependencies); where ``/proc`` is unavailable it falls back to
``resource.getrusage`` — whose ``ru_maxrss`` is a *peak*, not a
current value, which is still exactly what the watermark needs — and
degrades to ``None`` (sampling disabled) when neither source exists.

Overhead discipline matches the rest of the package: the shared
:data:`NULL_MEMWATCH` is inert (every call a no-op), sampling is
rate-limited by its own clock, and the watermark series is kept at a
bounded length by halving its resolution whenever it fills — a crash
at any point leaves a readable, bounded series behind.
"""

from __future__ import annotations

import os
import time

#: default minimum seconds between two RSS reads (heartbeats arrive
#: much faster than RSS moves; /proc reads are cheap but not free)
DEFAULT_INTERVAL_S = 0.05

#: default watermark-series capacity; when full, resolution halves
DEFAULT_SERIES_MAX = 256

_PAGE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> int | None:
    """Current resident set size in bytes, or ``None`` if unreadable.

    ``/proc/self/statm`` field 1 is resident pages; the
    ``resource.getrusage`` fallback reports the peak RSS (KiB on
    Linux), which over-approximates the current value but keeps the
    watermark exact.
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - no /proc and no getrusage
        return None


class MemWatch:
    """An enabled memory watcher (see module docstring).

    Parameters
    ----------
    tracer / metrics:
        The sinks samples land in (``mem_pressure`` events; the
        ``repro_mem_*`` gauges). Either may be ``None``.
    threshold_bytes:
        RSS level at which a ``mem_pressure`` event fires. The event is
        edge-triggered: one per excursion above the threshold, re-armed
        once RSS falls back below ``rearm_ratio`` of it — a sweep
        hovering at the limit logs one event, not one per heartbeat.
    interval:
        Minimum seconds between two actual RSS reads; calls arriving
        faster return the cached value.
    """

    enabled = True

    def __init__(
        self,
        tracer=None,
        metrics=None,
        threshold_bytes: int | None = None,
        interval: float = DEFAULT_INTERVAL_S,
        series_max: int = DEFAULT_SERIES_MAX,
        rearm_ratio: float = 0.9,
        _clock=None,
        _rss=rss_bytes,
    ):
        if threshold_bytes is not None and threshold_bytes <= 0:
            raise ValueError("threshold_bytes must be positive")
        if series_max < 2:
            raise ValueError("series_max must be >= 2")
        self._tracer = tracer
        self._metrics = metrics
        self._threshold = threshold_bytes
        self._interval = interval
        self._series_max = series_max
        self._rearm = rearm_ratio
        self._clock = _clock or time.monotonic
        self._rss = _rss
        self._t0 = self._clock()
        self._last = -float("inf")
        self._last_rss: int | None = None
        self._over = False
        #: highest RSS observed (bytes); 0 until the first sample lands
        self.max_rss_bytes = 0
        #: bounded ``(seconds_since_start, rss_bytes)`` watermark series
        self.series: list[tuple[float, int]] = []
        #: seconds between retained series points (doubles as it fills)
        self._stride = 0.0
        #: latest byte-size report per structure name (see :meth:`note`)
        self.structs: dict[str, int] = {}
        self.pressure_events = 0

    def sample(self, force: bool = False) -> int | None:
        """Read RSS (rate-limited), update watermark/gauges/threshold.

        Returns the (possibly cached) RSS in bytes, or ``None`` when
        the platform offers no reading. ``force=True`` bypasses the
        rate limit — used for the first and last sample of a sweep so
        short sweeps still record a watermark.
        """
        now = self._clock()
        if not force and now - self._last < self._interval:
            return self._last_rss
        self._last = now
        rss = self._rss()
        self._last_rss = rss
        if rss is None:
            return None
        t = round(now - self._t0, 6)
        if rss > self.max_rss_bytes:
            self.max_rss_bytes = rss
        if not self.series or t - self.series[-1][0] >= self._stride:
            self.series.append((t, rss))
            if len(self.series) >= self._series_max:
                # halve resolution in place: the series stays bounded
                # and chronologically complete however long the sweep
                self.series = self.series[::2]
                self._stride = max(self._stride * 2.0, self._interval * 2.0)
        if self._metrics is not None:
            self._metrics.gauge("repro_mem_rss_bytes").set(rss)
            self._metrics.gauge("repro_mem_rss_watermark_bytes").set(
                self.max_rss_bytes
            )
        if self._threshold is not None:
            if rss >= self._threshold and not self._over:
                self._over = True
                self.pressure_events += 1
                if self._metrics is not None:
                    self._metrics.counter("repro_mem_pressure_total").inc()
                if self._tracer is not None:
                    self._tracer.emit(
                        "mem_pressure", rss_bytes=rss,
                        threshold_bytes=self._threshold,
                        structs=dict(self.structs),
                    )
            elif self._over and rss < self._threshold * self._rearm:
                self._over = False
        return rss

    def note(self, struct: str, n_bytes: int) -> None:
        """Record the current byte size of a named big structure.

        Callers report what only they can know — the visited index,
        the frontier, a codec memo, the shm ring matrix — so
        ``mem_pressure`` events can say *where* the bytes live. Each
        structure is one gauge time series
        (``repro_mem_struct_bytes{struct=...}``).
        """
        self.structs[struct] = int(n_bytes)
        if self._metrics is not None:
            self._metrics.gauge(
                "repro_mem_struct_bytes", struct=struct
            ).set(int(n_bytes))

    def summary(self) -> dict:
        """The report block embedded into ``BENCH_explore.json``."""
        return {
            "max_rss_bytes": self.max_rss_bytes,
            "samples": len(self.series),
            "watermarks": [[t, b] for t, b in self.series],
            "structs": dict(self.structs),
            "pressure_events": self.pressure_events,
        }

    def close(self) -> None:
        """Take one final forced sample (the sweep's closing watermark)."""
        self.sample(force=True)


class NullMemWatch:
    """The disabled watcher: every method is a no-op."""

    enabled = False
    max_rss_bytes = 0
    series: list[tuple[float, int]] = []
    structs: dict[str, int] = {}
    pressure_events = 0

    def sample(self, force: bool = False) -> None:
        return None

    def note(self, struct: str, n_bytes: int) -> None:
        pass

    def summary(self) -> dict:
        return {
            "max_rss_bytes": 0, "samples": 0, "watermarks": [],
            "structs": {}, "pressure_events": 0,
        }

    def close(self) -> None:
        pass


#: the shared disabled watcher
NULL_MEMWATCH = NullMemWatch()
