"""Merge per-process trace streams into one causal timeline.

The distributed flight recorder writes one JSONL stream per process
into a ``--trace-dir``: ``trace.coordinator.jsonl`` for the control
plane and ``trace.worker<N>.jsonl`` for each worker's data plane. The
streams share no file handle (concurrent writers would tear lines),
but they do share a *timebase*: at spawn each worker performs a clock
handshake — its first event, ``worker_start``, carries
``clock_offset``, the worker tracer's ``perf_counter`` epoch minus the
coordinator's (both read the same system-wide monotonic clock on
Linux; the offset is the fork-to-first-event latency, recorded rather
than assumed zero). Adding a stream's offset to its local ``t`` values
maps every event onto the coordinator's clock, which makes the merged
order causal: a ``dispatch`` at the coordinator precedes the worker's
``ack`` for the same ``(worker, seq)``, a ``ring_put`` precedes the
consuming ``ring_get``.

:func:`merge_traces` does exactly that — load (leniently: crashed
workers end mid-line), shift, tag each event with its ``lane``, and
merge-sort. The result feeds :func:`repro.obs.report.render_report`,
which renders per-worker lanes, busy/idle utilization and
dispatch-to-ack latency when lanes are present.
"""

from __future__ import annotations

import os
import re

from repro.obs.tracer import read_trace

#: stream file names: trace.coordinator.jsonl / trace.worker<N>.jsonl
COORDINATOR_STREAM = "trace.coordinator.jsonl"
_WORKER_RE = re.compile(r"worker(\d+)")


def worker_stream_name(wid: int) -> str:
    """File name of worker ``wid``'s trace stream inside a trace dir."""
    return f"trace.worker{wid}.jsonl"


def lane_of(path) -> str:
    """The lane name a stream file contributes to.

    ``trace.worker3.jsonl`` -> ``worker3``; the coordinator stream (or
    any unrecognised single file, e.g. a plain ``--trace`` output) ->
    ``coordinator``.
    """
    stem = os.path.basename(str(path))
    m = _WORKER_RE.search(stem)
    if m is not None:
        return f"worker{int(m.group(1))}"
    return "coordinator"


def _lane_sort_key(lane: str):
    m = _WORKER_RE.fullmatch(lane)
    return (1, int(m.group(1))) if m else (0, -1)


def trace_files(trace_dir) -> list[str]:
    """The stream files of a trace directory, coordinator first."""
    try:
        names = sorted(os.listdir(trace_dir))
    except NotADirectoryError:
        return [str(trace_dir)]
    paths = [
        os.path.join(str(trace_dir), n)
        for n in names
        if n.endswith(".jsonl")
    ]
    return sorted(paths, key=lambda p: _lane_sort_key(lane_of(p)))


def load_stream(path) -> tuple[str, list[dict]]:
    """``(lane, events)`` of one stream file, clock-shifted and tagged.

    Reading is lenient (a crashed writer's torn tail is dropped, not
    fatal). The stream's ``clock_offset`` — from its first
    ``worker_start`` event — is added to every ``t``, so returned
    timestamps are in the coordinator's timebase; events keep a ``t0``
    field with the original local timestamp.
    """
    lane = lane_of(path)
    events = read_trace(path, lenient=True)
    offset = 0.0
    for e in events:
        if e.get("ev") == "worker_start":
            offset = float(e.get("clock_offset", 0.0))
            break
    out = []
    for e in events:
        e = dict(e)
        e["lane"] = lane
        if "t" in e:
            e["t0"] = e["t"]
            e["t"] = round(e["t"] + offset, 6)
        out.append(e)
    return lane, out


def merge_streams(streams: dict[str, list[dict]]) -> list[dict]:
    """Merge lane-tagged, clock-aligned streams into one sorted timeline.

    The sort is stable on ``(t, lane-order)`` with the coordinator
    ordered first at equal timestamps, so seeding events precede the
    worker activity they caused even at clock resolution.
    """
    merged: list[dict] = []
    for lane in sorted(streams, key=_lane_sort_key):
        merged.extend(streams[lane])
    merged.sort(
        key=lambda e: (e.get("t", 0.0), _lane_sort_key(e.get("lane", "")))
    )
    return merged


def merge_traces(paths) -> list[dict]:
    """Merge trace files and/or directories into one causal timeline.

    ``paths`` may mix JSONL files and trace directories (directories
    expand to their ``*.jsonl`` streams). A single plain file merges to
    itself — ``repro report`` calls this unconditionally.
    """
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            files.extend(trace_files(p))
        else:
            files.append(str(p))
    if not files:
        raise FileNotFoundError(
            f"no .jsonl trace streams found in {', '.join(map(str, paths))}"
        )
    streams: dict[str, list[dict]] = {}
    for f in files:
        lane, events = load_stream(f)
        streams.setdefault(lane, []).extend(events)
    if len(streams) == 1 and "coordinator" in streams:
        # single-stream traces render exactly as before: no lane tags
        events = streams["coordinator"]
        for e in events:
            e.pop("lane", None)
            e.pop("t0", None)
        events.sort(key=lambda e: e.get("t", 0.0))
        return events
    return merge_streams(streams)


def lanes(events: list[dict]) -> list[str]:
    """The distinct lanes present, coordinator first, workers by id."""
    seen = {e["lane"] for e in events if "lane" in e}
    return sorted(seen, key=_lane_sort_key)
