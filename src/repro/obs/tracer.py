"""Structured JSONL event traces.

The flight recorder's chronological side: every lifecycle event of an
exploration or check — sweep start/end, BFS depth waves, distributed
batch dispatch/ack, worker deaths, fixpoint iterations — is one JSON
object per line with a monotonic timestamp::

    {"t": 0.000132, "ev": "sweep_start", "backend": "engine", ...}

``t`` is seconds since the tracer was created (``time.perf_counter``
based, so it never goes backwards and is immune to wall-clock jumps);
``ev`` names the event type; all other keys are event-specific and
documented in ``docs/observability.md``.

Two storage modes:

* **file mode** (``path=...``): events are written to a JSONL file as
  they happen — the black box recovered after a wedged run. The file
  handle is **line buffered**: every emitted event reaches the OS
  before :meth:`emit` returns, so a process killed mid-sweep (even
  SIGKILL) loses at most the event being formatted, never a buffered
  tail;
* **ring mode** (``ring=N``): only the last ``N`` events are kept in a
  bounded in-memory deque, for sweeps too large to trace in full; the
  retained tail can still be dumped with :meth:`Tracer.dump`.

Both can be combined (``path=... , ring=N``): the file then receives
only the retained tail at :meth:`close` instead of a live stream.
"""

from __future__ import annotations

import json
import time
from collections import deque


class Tracer:
    """An enabled trace sink (see module docstring for the modes)."""

    enabled = True

    def __init__(self, path=None, ring: int | None = None, _clock=None):
        if ring is not None and ring < 1:
            raise ValueError("ring must be >= 1")
        self._clock = _clock or time.perf_counter
        self._t0 = self._clock()
        self._path = str(path) if path is not None else None
        self._ring = ring
        self._events: deque = deque(maxlen=ring)
        self._fh = None
        if self._path is not None and ring is None:
            # line buffering: each event line is flushed to the OS as
            # it is written, so a crashed run's trace never loses a
            # buffered tail (the whole point of a flight recorder)
            self._fh = open(self._path, "w", buffering=1)

    @property
    def epoch(self) -> float:
        """The clock reading all ``t`` values are relative to.

        On Linux ``time.perf_counter`` is a system-wide monotonic
        clock, so epochs from different processes on one machine are
        directly comparable — the basis of the distributed flight
        recorder's clock handshake (a worker's ``clock_offset`` is its
        own epoch minus the coordinator's).
        """
        return self._t0

    def emit(self, ev: str, **fields) -> None:
        """Record one event (timestamped now)."""
        rec = {"t": round(self._clock() - self._t0, 6), "ev": ev}
        rec.update(fields)
        if self._fh is not None:
            self._fh.write(json.dumps(rec) + "\n")
        else:
            self._events.append(rec)

    def events(self) -> list[dict]:
        """The in-memory events (ring tail, or everything in memory mode)."""
        return list(self._events)

    def dump(self, path) -> None:
        """Write the retained events to ``path`` as JSONL."""
        with open(path, "w") as fh:
            for rec in self._events:
                fh.write(json.dumps(rec) + "\n")

    def close(self) -> None:
        """Flush and close the file sink (ring mode writes its tail now)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        elif self._path is not None:
            self.dump(self._path)

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTracer:
    """The disabled tracer: :meth:`emit` is a no-op."""

    enabled = False
    epoch = 0.0

    def emit(self, ev: str, **fields) -> None:
        pass

    def events(self) -> list[dict]:
        return []

    def close(self) -> None:
        pass


#: the shared disabled tracer
NULL_TRACER = NullTracer()


def read_trace(path, *, lenient: bool = False) -> list[dict]:
    """Load a JSONL trace file back into a list of event dicts.

    Blank lines are skipped, so traces survive manual editing; a
    malformed line raises ``json.JSONDecodeError`` with the line number
    attached for context. With ``lenient=True`` malformed lines — the
    truncated tail of a crashed writer, or torn interleavings from two
    processes sharing one file — are skipped instead, and any events
    that parsed are returned; ``repro report`` reads traces this way
    because a black box recovered after a crash is expected to end
    mid-line.
    """
    events: list[dict] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                if lenient:
                    continue
                raise json.JSONDecodeError(
                    f"{exc.msg} (trace line {lineno})", exc.doc, exc.pos
                ) from None
            if isinstance(rec, dict):
                events.append(rec)
            elif not lenient:
                raise json.JSONDecodeError(
                    f"trace line {lineno} is not a JSON object", line, 0
                )
    return events
