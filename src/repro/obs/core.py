"""The instrumentation bundle and the ambient default.

All instrumented code in this package takes (or looks up) one
:class:`Instrumentation` — a metrics registry, a tracer, and a progress
reporter travelling together. The module-level default is
:data:`NULL` (everything disabled), so library calls cost one
attribute lookup when nobody is recording; the CLI activates a real
bundle around each command with :func:`activate`, which also reaches
code that is not worth threading a parameter through (the mu-calculus
evaluator's fixpoint loops, the requirement checks).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.memwatch import NULL_MEMWATCH, MemWatch
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.progress import NULL_PROGRESS, ProgressReporter
from repro.obs.tracer import NULL_TRACER, Tracer


class Instrumentation:
    """A metrics registry + tracer + progress + memory watcher, or no-ops.

    ``enabled`` is true when any component is live — the single flag
    hot loops branch on (per wave, not per state). ``trace_dir``, when
    set, is the directory distributed sweeps write per-worker trace
    streams into (``trace.worker<N>.jsonl`` next to the coordinator's
    stream; see :mod:`repro.obs.merge`).
    """

    __slots__ = ("metrics", "tracer", "progress", "memwatch", "enabled",
                 "trace_dir")

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        progress: ProgressReporter | None = None,
        memwatch: MemWatch | None = None,
        trace_dir: str | None = None,
    ):
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.progress = progress if progress is not None else NULL_PROGRESS
        self.memwatch = memwatch if memwatch is not None else NULL_MEMWATCH
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        self.enabled = bool(
            self.metrics.enabled or self.tracer.enabled
            or self.progress.enabled or self.memwatch.enabled
        )

    def close(self) -> None:
        """Finish the progress line and flush/close the trace sink."""
        self.progress.done()
        self.memwatch.close()
        self.tracer.close()

    def __enter__(self) -> "Instrumentation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: the all-disabled bundle (the ambient default)
NULL = Instrumentation()

_current: Instrumentation = NULL


def current() -> Instrumentation:
    """The ambient instrumentation (``NULL`` unless activated)."""
    return _current


@contextmanager
def activate(inst: Instrumentation):
    """Make ``inst`` the ambient instrumentation within the block."""
    global _current
    saved = _current
    _current = inst
    try:
        yield inst
    finally:
        _current = saved
