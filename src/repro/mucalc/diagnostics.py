"""Witness and counterexample extraction.

The paper's analysts spent "a lot of time" interpreting error traces, so
diagnostics are first-class here. For the two most common verdict
shapes:

* ``<R> f`` fails/holds — :func:`witness_diamond` returns a shortest
  path matching ``R`` that ends in an ``f``-state (the witness);
* ``[R] f`` fails — :func:`counterexample_box` returns a shortest path
  matching ``R`` that ends in a state violating ``f``.

Both compile the regular formula to a Thompson NFA over action
predicates and run a breadth-first search on the product of the LTS with
the NFA, so the returned traces are genuinely shortest.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.lts.lts import LTS
from repro.lts.trace import Trace
from repro.mucalc.checker import check
from repro.mucalc.syntax import (
    ActionPredicate,
    Formula,
    RAct,
    RAlt,
    Regular,
    RSeq,
    RStar,
)


@dataclass
class _NFA:
    """Thompson NFA: states 0..n-1, `start`, `accept`, labelled and
    epsilon edges."""

    n: int = 0
    start: int = 0
    accept: int = 0
    edges: list[tuple[int, ActionPredicate, int]] = field(default_factory=list)
    eps: list[tuple[int, int]] = field(default_factory=list)

    def new_state(self) -> int:
        s = self.n
        self.n += 1
        return s


def _build(nfa: _NFA, reg: Regular) -> tuple[int, int]:
    """Thompson construction; returns (entry, exit) states."""
    if isinstance(reg, RAct):
        a, b = nfa.new_state(), nfa.new_state()
        nfa.edges.append((a, reg.pred, b))
        return a, b
    if isinstance(reg, RSeq):
        a1, b1 = _build(nfa, reg.left)
        a2, b2 = _build(nfa, reg.right)
        nfa.eps.append((b1, a2))
        return a1, b2
    if isinstance(reg, RAlt):
        a, b = nfa.new_state(), nfa.new_state()
        a1, b1 = _build(nfa, reg.left)
        a2, b2 = _build(nfa, reg.right)
        nfa.eps.extend([(a, a1), (a, a2), (b1, b), (b2, b)])
        return a, b
    if isinstance(reg, RStar):
        a, b = nfa.new_state(), nfa.new_state()
        a1, b1 = _build(nfa, reg.inner)
        nfa.eps.extend([(a, a1), (b1, b), (a, b), (b1, a1)])
        return a, b
    raise TypeError(f"not a regular formula: {reg!r}")


def compile_nfa(reg: Regular) -> _NFA:
    """Compile a regular formula to an epsilon-NFA."""
    nfa = _NFA()
    entry, exit_ = _build(nfa, reg)
    nfa.start, nfa.accept = entry, exit_
    return nfa


def _product_search(
    lts: LTS, reg: Regular, goal: np.ndarray
) -> Trace | None:
    """Shortest LTS path matching ``reg`` ending in a ``goal`` state."""
    nfa = compile_nfa(reg)
    eps_adj: dict[int, list[int]] = {}
    for a, b in nfa.eps:
        eps_adj.setdefault(a, []).append(b)

    def closure(states: frozenset[int]) -> frozenset[int]:
        out = set(states)
        stack = list(states)
        while stack:
            s = stack.pop()
            for t in eps_adj.get(s, []):
                if t not in out:
                    out.add(t)
                    stack.append(t)
        return frozenset(out)

    by_src: dict[int, list[tuple[ActionPredicate, int]]] = {}
    for a, p, b in nfa.edges:
        by_src.setdefault(a, []).append((p, b))

    start = closure(frozenset([nfa.start]))
    init = (lts.initial, start)
    if nfa.accept in start and goal[lts.initial]:
        return Trace(())
    parent: dict[tuple, tuple] = {init: (None, "")}
    queue = deque([init])
    while queue:
        node = queue.popleft()
        state, nfa_states = node
        for label, dst in lts.successors(state):
            moved = {
                b
                for a in nfa_states
                for (p, b) in by_src.get(a, [])
                if p.matches(label)
            }
            if not moved:
                continue
            nxt_nfa = closure(frozenset(moved))
            nxt = (dst, nxt_nfa)
            if nxt in parent:
                continue
            parent[nxt] = (node, label)
            if nfa.accept in nxt_nfa and goal[dst]:
                labels: list[str] = []
                cur = nxt
                while parent[cur][0] is not None:
                    prev, lab = parent[cur]
                    labels.append(lab)
                    cur = prev
                labels.reverse()
                return Trace(tuple(labels))
            queue.append(nxt)
    return None


def witness_diamond(lts: LTS, reg: Regular, inner: Formula) -> Trace | None:
    """Shortest witness for ``<reg> inner`` from the initial state.

    Returns ``None`` when the formula does not hold initially (no
    witness exists).
    """
    goal = check(lts, inner)
    return _product_search(lts, reg, goal)


def counterexample_box(lts: LTS, reg: Regular, inner: Formula) -> Trace | None:
    """Shortest counterexample for ``[reg] inner`` from the initial state.

    Returns a path matching ``reg`` that ends in a state violating
    ``inner``, or ``None`` when the box formula holds initially.
    """
    goal = ~check(lts, inner)
    return _product_search(lts, reg, goal)
