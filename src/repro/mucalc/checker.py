"""Evaluation of regular alternation-free mu-calculus formulas on LTSs.

The checker works in three stages:

1. **regular expansion** — modalities over regular formulas are compiled
   to plain single-step modalities plus fixpoints, using the standard
   identities ``[R1.R2]f = [R1][R2]f``, ``[R1|R2]f = [R1]f /\\ [R2]f``,
   ``[R*]f = nu X. (f /\\ [R]X)`` and their diamond duals;
2. **static checks** — the result must be closed and alternation free;
3. **evaluation** — bottom-up over numpy boolean vectors indexed by
   state. Fixpoints whose variable occurs exactly once, directly under a
   single-step modality, are solved by linear-time worklist algorithms
   (reverse reachability for diamonds, the counting algorithm for
   boxes); everything else falls back to Kleene iteration.

The worklist fast paths matter: the paper's Requirement 3/4 formulas on
multi-million-state LTSs would need thousands of full-vector Kleene
rounds otherwise.
"""

from __future__ import annotations

import itertools
import time
from collections import deque

import numpy as np

from repro.errors import FormulaSemanticsError
from repro.lts.lts import LTS
from repro.obs.core import current as _current_obs
from repro.mucalc.syntax import (
    ActionPredicate,
    And,
    Box,
    Diamond,
    Ff,
    Formula,
    Mu,
    Not,
    Nu,
    Or,
    RAct,
    RAlt,
    Regular,
    RSeq,
    RStar,
    Tt,
    Var,
    assert_alternation_free,
    free_variables,
)

# ---------------------------------------------------------------------------
# stage 1: regular expansion
# ---------------------------------------------------------------------------

_fresh_counter = itertools.count()


def _fresh_var() -> str:
    return f"_R{next(_fresh_counter)}"


def expand_regular(f: Formula) -> Formula:
    """Rewrite all regular modalities into plain modalities + fixpoints."""
    if isinstance(f, (Tt, Ff, Var)):
        return f
    if isinstance(f, And):
        return And(expand_regular(f.left), expand_regular(f.right))
    if isinstance(f, Or):
        return Or(expand_regular(f.left), expand_regular(f.right))
    if isinstance(f, Not):
        return Not(expand_regular(f.inner))
    if isinstance(f, Mu):
        return Mu(f.var, expand_regular(f.body))
    if isinstance(f, Nu):
        return Nu(f.var, expand_regular(f.body))
    if isinstance(f, Diamond):
        return _expand_modal(f.reg, expand_regular(f.inner), diamond=True)
    if isinstance(f, Box):
        return _expand_modal(f.reg, expand_regular(f.inner), diamond=False)
    raise TypeError(f"not a formula: {f!r}")


def _expand_modal(reg: Regular, inner: Formula, *, diamond: bool) -> Formula:
    if isinstance(reg, RAct):
        return Diamond(reg, inner) if diamond else Box(reg, inner)
    if isinstance(reg, RSeq):
        return _expand_modal(
            reg.left, _expand_modal(reg.right, inner, diamond=diamond), diamond=diamond
        )
    if isinstance(reg, RAlt):
        left = _expand_modal(reg.left, inner, diamond=diamond)
        right = _expand_modal(reg.right, inner, diamond=diamond)
        return Or(left, right) if diamond else And(left, right)
    if isinstance(reg, RStar):
        x = _fresh_var()
        step = _expand_modal(reg.inner, Var(x), diamond=diamond)
        if diamond:
            return Mu(x, Or(inner, step))
        return Nu(x, And(inner, step))
    raise TypeError(f"not a regular formula: {reg!r}")


# ---------------------------------------------------------------------------
# stage 3: evaluation context
# ---------------------------------------------------------------------------


class _Context:
    """Per-LTS evaluation caches."""

    def __init__(self, lts: LTS):
        self.lts = lts
        self.n = lts.n_states
        src, lbl, dst = lts.transition_arrays()
        self.src = np.asarray(src, dtype=np.int64)
        self.lbl = np.asarray(lbl, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        self.labels = lts.labels
        self._pred_masks: dict[ActionPredicate, np.ndarray] = {}
        self._csr_cache: dict[ActionPredicate, tuple] = {}
        self._memo: dict[Formula, np.ndarray] = {}

    def label_mask(self, pred: ActionPredicate) -> np.ndarray:
        """Boolean mask over label ids matched by ``pred``."""
        mask = self._pred_masks.get(pred)
        if mask is None:
            mask = np.fromiter(
                (pred.matches(lab) for lab in self.labels),
                dtype=bool,
                count=len(self.labels),
            )
            self._pred_masks[pred] = mask
        return mask

    def edges(self, pred: ActionPredicate) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) arrays of transitions whose label matches ``pred``."""
        mask = self.label_mask(pred)
        if len(mask) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        sel = mask[self.lbl]
        return self.src[sel], self.dst[sel]

    def reverse_csr(self, pred: ActionPredicate):
        """CSR-by-destination view of the pred-matching edge set.

        Returns ``(order_src, offsets, out_count)`` where
        ``order_src[offsets[t]:offsets[t+1]]`` are the sources of
        pred-edges into ``t`` and ``out_count[s]`` is the number of
        pred-edges leaving ``s``.
        """
        cached = self._csr_cache.get(pred)
        if cached is not None:
            return cached
        esrc, edst = self.edges(pred)
        order = np.argsort(edst, kind="stable")
        sorted_dst = edst[order]
        order_src = esrc[order]
        offsets = np.searchsorted(sorted_dst, np.arange(self.n + 1))
        out_count = np.bincount(esrc, minlength=self.n).astype(np.int64)
        cached = (order_src, offsets, out_count)
        self._csr_cache[pred] = cached
        return cached


def _diamond_step(ctx: _Context, pred: ActionPredicate, vec: np.ndarray) -> np.ndarray:
    """States with some pred-successor inside ``vec``."""
    esrc, edst = ctx.edges(pred)
    out = np.zeros(ctx.n, dtype=bool)
    if len(esrc):
        hits = esrc[vec[edst]]
        out[hits] = True
    return out


def _box_step(ctx: _Context, pred: ActionPredicate, vec: np.ndarray) -> np.ndarray:
    """States all of whose pred-successors are inside ``vec``."""
    esrc, edst = ctx.edges(pred)
    out = np.ones(ctx.n, dtype=bool)
    if len(esrc):
        viol = esrc[~vec[edst]]
        out[viol] = False
    return out


# -- fixpoint fast paths ----------------------------------------------------


def _find_single_modal_occurrence(var: str, body: Formula):
    """Locate the unique ``<p>X`` / ``[p]X`` occurrence of ``var``.

    Returns ``(node, kind)`` with ``kind`` in {"diamond", "box"} when the
    variable occurs exactly once in ``body``, directly under a
    single-step modality, and that modality sits under And/Or nodes
    only. Returns ``None`` otherwise (the caller then uses Kleene
    iteration).
    """
    found: list[tuple[Formula, str]] = []
    ok = True

    def walk(g: Formula) -> None:
        nonlocal ok
        if not ok:
            return
        if isinstance(g, Var):
            if g.name == var:
                ok = False  # bare occurrence not under a modality
            return
        if isinstance(g, (Diamond, Box)) and isinstance(g.inner, Var):
            if g.inner.name == var:
                found.append((g, "diamond" if isinstance(g, Diamond) else "box"))
                return
        if isinstance(g, (Mu, Nu)):
            if var in free_variables(g):
                ok = False  # nested fixpoint depends on var: no fast path
            return
        if isinstance(g, (Diamond, Box, Not)):
            if var in free_variables(g):
                ok = False
            return
        for c in g.children():
            walk(c)

    walk(body)
    if ok and len(found) == 1:
        return found[0]
    return None


def _solve_mu_diamond(ctx, pred, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Least X with ``X = a \\/ (b /\\ <pred>X)`` — reverse reachability."""
    order_src, offsets, _ = ctx.reverse_csr(pred)
    x = a.copy()
    queue = deque(np.flatnonzero(x).tolist())
    while queue:
        t = queue.popleft()
        for s in order_src[offsets[t] : offsets[t + 1]]:
            if not x[s] and b[s]:
                x[s] = True
                queue.append(int(s))
    return x


def _solve_mu_box(ctx, pred, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Least X with ``X = a \\/ (b /\\ [pred]X)`` — counting algorithm."""
    order_src, offsets, out_count = ctx.reverse_csr(pred)
    cnt = out_count.copy()
    x = a | (b & (cnt == 0))
    queue = deque(np.flatnonzero(x).tolist())
    while queue:
        t = queue.popleft()
        for s in order_src[offsets[t] : offsets[t + 1]]:
            cnt[s] -= 1
            if not x[s] and b[s] and cnt[s] == 0:
                x[s] = True
                queue.append(int(s))
    return x


# -- the evaluator -----------------------------------------------------------


class _Evaluator:
    def __init__(self, ctx: _Context, obs=None):
        self.ctx = ctx
        self.obs = obs if obs is not None else _current_obs()
        self.hole: Formula | None = None
        self.hole_value: np.ndarray | None = None

    def eval(self, f: Formula, env: dict[str, np.ndarray]) -> np.ndarray:
        ctx = self.ctx
        if f is self.hole:
            return self.hole_value  # type: ignore[return-value]
        closed = not free_variables(f)
        if closed and self.hole is None:
            memo = ctx._memo.get(f)
            if memo is not None:
                return memo
        result = self._eval(f, env)
        if closed and self.hole is None:
            ctx._memo[f] = result
        return result

    def _eval(self, f: Formula, env) -> np.ndarray:
        ctx = self.ctx
        n = ctx.n
        if isinstance(f, Tt):
            return np.ones(n, dtype=bool)
        if isinstance(f, Ff):
            return np.zeros(n, dtype=bool)
        if isinstance(f, Var):
            try:
                return env[f.name]
            except KeyError:
                raise FormulaSemanticsError(f"unbound variable {f.name}") from None
        if isinstance(f, And):
            return self.eval(f.left, env) & self.eval(f.right, env)
        if isinstance(f, Or):
            return self.eval(f.left, env) | self.eval(f.right, env)
        if isinstance(f, Not):
            return ~self.eval(f.inner, env)
        if isinstance(f, Diamond):
            if not isinstance(f.reg, RAct):
                raise FormulaSemanticsError(
                    "regular modality not expanded; call expand_regular first"
                )
            return _diamond_step(ctx, f.reg.pred, self.eval(f.inner, env))
        if isinstance(f, Box):
            if not isinstance(f.reg, RAct):
                raise FormulaSemanticsError(
                    "regular modality not expanded; call expand_regular first"
                )
            return _box_step(ctx, f.reg.pred, self.eval(f.inner, env))
        if isinstance(f, (Mu, Nu)):
            return self._fixpoint(f, env)
        raise TypeError(f"not a formula: {f!r}")

    def _eval_with_hole(self, body, hole, value, env) -> np.ndarray:
        saved = (self.hole, self.hole_value)
        self.hole, self.hole_value = hole, value
        try:
            return self.eval(body, env)
        finally:
            self.hole, self.hole_value = saved

    def _fixpoint(self, f: Mu | Nu, env) -> np.ndarray:
        ctx = self.ctx
        n = ctx.n
        is_mu = isinstance(f, Mu)
        recording = self.obs.enabled
        t0 = time.perf_counter() if recording else 0.0

        def _observe(mode: str, iterations: int = 0) -> None:
            self.obs.tracer.emit(
                "fixpoint", var=f.var, op="mu" if is_mu else "nu",
                mode=mode, iterations=iterations, states=n,
                seconds=round(time.perf_counter() - t0, 6),
            )
            self.obs.metrics.counter(
                "repro_fixpoints_total", mode=mode
            ).inc()
            if iterations:
                self.obs.metrics.counter(
                    "repro_kleene_iterations_total"
                ).inc(iterations)

        occ = _find_single_modal_occurrence(f.var, f.body)
        if occ is not None:
            node, kind = occ
            pred = node.reg.pred  # type: ignore[union-attr]
            # pointwise the body is a \/ (b /\ D) where D is the modal value
            zeros = np.zeros(n, dtype=bool)
            ones = np.ones(n, dtype=bool)
            a = self._eval_with_hole(f.body, node, zeros, env)
            b = self._eval_with_hole(f.body, node, ones, env)
            if is_mu and kind == "diamond":
                out = _solve_mu_diamond(ctx, pred, a, b)
            elif is_mu and kind == "box":
                out = _solve_mu_box(ctx, pred, a, b)
            elif not is_mu and kind == "box":
                # nu X. a \/ (b /\ [p]X)  =  ~ mu Y. ~a /\ (~b \/ <p>Y)
                #                        =  ~ mu Y. a' \/ (b' /\ <p>Y)
                # with a' = ~a /\ ~b, b' = ~a
                out = ~_solve_mu_diamond(ctx, pred, ~a & ~b, ~a)
            else:
                # nu X. a \/ (b /\ <p>X) = ~ mu Y. a' \/ (b' /\ [p]Y)
                out = ~_solve_mu_box(ctx, pred, ~a & ~b, ~a)
            if recording:
                _observe(f"worklist-{kind}")
            return out
        # Kleene iteration fallback
        x = np.zeros(n, dtype=bool) if is_mu else np.ones(n, dtype=bool)
        env2 = dict(env)
        for rounds in range(1, n + 3):
            env2[f.var] = x
            nxt = self.eval(f.body, env2)
            if np.array_equal(nxt, x):
                if recording:
                    _observe("kleene", iterations=rounds)
                return x
            x = nxt
        raise FormulaSemanticsError(
            f"fixpoint {f.var} did not converge within {n + 2} iterations "
            "(non-monotone body?)"
        )


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def check(lts: LTS, formula: Formula) -> np.ndarray:
    """Evaluate ``formula`` on ``lts``.

    Returns a boolean vector ``v`` with ``v[s]`` true iff state ``s``
    satisfies the formula. The formula may use regular modalities; it
    must be closed and alternation free.
    """
    f = expand_regular(formula)
    assert_alternation_free(f)
    ctx = _Context(lts)
    return _Evaluator(ctx).eval(f, {})


def holds(lts: LTS, formula: Formula) -> bool:
    """Whether the initial state of ``lts`` satisfies ``formula``."""
    return bool(check(lts, formula)[lts.initial])


def satisfying_states(lts: LTS, formula: Formula) -> list[int]:
    """All states satisfying ``formula``."""
    return np.flatnonzero(check(lts, formula)).tolist()


def check_many(lts: LTS, formulas) -> list[bool]:
    """Whether the initial state satisfies each formula.

    Shares one evaluation context (label masks, reverse adjacency,
    closed-subformula memo) across all formulas — noticeably faster
    than repeated :func:`holds` calls for requirement batteries like
    the paper's, which reuse ``T*`` reachability machinery in every
    formula.
    """
    ctx = _Context(lts)
    out: list[bool] = []
    for formula in formulas:
        f = expand_regular(formula)
        assert_alternation_free(f)
        vec = _Evaluator(ctx).eval(f, {})
        out.append(bool(vec[lts.initial]))
    return out
