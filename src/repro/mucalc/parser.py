"""Concrete syntax for mu-calculus formulas, following the paper.

Examples from the paper, accepted verbatim (modulo ASCII spelling of the
logical connectives)::

    [T*.c_home] F
    <T*> (<c_copy>T /\\ <lock_empty>T /\\ <homequeue_empty>T
          /\\ <remotequeue_empty>T)
    [T*.write(t0)] mu X. (<T>T /\\ [not write_over(t0)] X)

Grammar (EBNF)::

    formula  = orform ;
    orform   = andform { "\\/" andform } ;
    andform  = prefix { "/\\" prefix } ;
    prefix   = ("mu"|"nu") IDENT "." prefix
             | "[" regular "]" prefix
             | "<" regular ">" prefix
             | "~" prefix
             | atom ;
    atom     = "T" | "F" | IDENT | "(" formula ")" ;

    regular  = alt ;
    alt      = seq { "|" seq } ;
    seq      = star { "." star } ;
    star     = base { "*" } ;
    base     = actpred | "(" regular ")" ;
    actpred  = "T" | ("not"|"~") base | label ;
    label    = STRING | IDENT [ "(" [ args ] ")" ] ;

Labels may be quoted (``"c_home"``) or bare (``c_home``); a bare label
may carry an argument list which is folded into the label text
(``write(t0)`` matches the transition label ``write(t0)``). An argument
of ``*`` requests prefix matching: ``write(*)`` matches ``write(t0)``,
``write(t1)``, ... Inside a regular formula, ``T`` is the paper's
any-action wildcard; in a state formula position, ``T`` is truth.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import FormulaSyntaxError
from repro.mucalc.syntax import (
    ActLit,
    And,
    AnyAct,
    Box,
    Diamond,
    Ff,
    Formula,
    Mu,
    Not,
    NotAct,
    Nu,
    Or,
    RAct,
    RAlt,
    Regular,
    RSeq,
    RStar,
    Tt,
    Var,
)

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<and>/\\)
  | (?P<or>\\/)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>\d+)
  | (?P<sym>[\[\]<>().*|~,])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"mu", "nu", "not", "T", "F"}


@dataclass(frozen=True)
class _Tok:
    kind: str  # "and", "or", "string", "ident", "sym", "eof"
    text: str
    pos: int


def _tokenize(text: str) -> list[_Tok]:
    toks: list[_Tok] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m:
            raise FormulaSyntaxError(
                f"unexpected character {text[pos]!r}", position=pos
            )
        kind = m.lastgroup or ""
        if kind != "ws":
            toks.append(_Tok(kind, m.group(), pos))
        pos = m.end()
    toks.append(_Tok("eof", "", len(text)))
    return toks


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.toks = _tokenize(text)
        self.i = 0

    # -- token plumbing --------------------------------------------------

    @property
    def cur(self) -> _Tok:
        return self.toks[self.i]

    def advance(self) -> _Tok:
        t = self.cur
        self.i += 1
        return t

    def expect(self, kind: str, text: str | None = None) -> _Tok:
        t = self.cur
        if t.kind != kind or (text is not None and t.text != text):
            want = text if text is not None else kind
            raise FormulaSyntaxError(
                f"expected {want!r}, found {t.text or 'end of input'!r}",
                position=t.pos,
            )
        return self.advance()

    def at_sym(self, s: str) -> bool:
        return self.cur.kind == "sym" and self.cur.text == s

    def eat_sym(self, s: str) -> bool:
        if self.at_sym(s):
            self.advance()
            return True
        return False

    # -- state formulas ---------------------------------------------------

    def formula(self) -> Formula:
        left = self.andform()
        while self.cur.kind == "or":
            self.advance()
            left = Or(left, self.andform())
        return left

    def andform(self) -> Formula:
        left = self.prefix()
        while self.cur.kind == "and":
            self.advance()
            left = And(left, self.prefix())
        return left

    def prefix(self) -> Formula:
        t = self.cur
        if t.kind == "ident" and t.text in ("mu", "nu"):
            self.advance()
            var = self.expect("ident").text
            if var in _KEYWORDS:
                raise FormulaSyntaxError(
                    f"{var!r} cannot be a fixpoint variable", position=t.pos
                )
            self.expect("sym", ".")
            body = self.prefix()
            return Mu(var, body) if t.text == "mu" else Nu(var, body)
        if self.eat_sym("["):
            reg = self.regular()
            self.expect("sym", "]")
            return Box(reg, self.prefix())
        if self.eat_sym("<"):
            reg = self.regular()
            self.expect("sym", ">")
            return Diamond(reg, self.prefix())
        if self.eat_sym("~"):
            return Not(self.prefix())
        return self.atom()

    def atom(self) -> Formula:
        t = self.cur
        if self.eat_sym("("):
            f = self.formula()
            self.expect("sym", ")")
            return f
        if t.kind == "ident":
            self.advance()
            if t.text == "T":
                return Tt()
            if t.text == "F":
                return Ff()
            if t.text in ("mu", "nu", "not"):
                raise FormulaSyntaxError(
                    f"keyword {t.text!r} not a formula", position=t.pos
                )
            return Var(t.text)
        raise FormulaSyntaxError(
            f"expected a formula, found {t.text or 'end of input'!r}",
            position=t.pos,
        )

    # -- regular formulas --------------------------------------------------

    def regular(self) -> Regular:
        left = self.reg_seq()
        while self.eat_sym("|"):
            left = RAlt(left, self.reg_seq())
        return left

    def reg_seq(self) -> Regular:
        left = self.reg_star()
        while self.eat_sym("."):
            left = RSeq(left, self.reg_star())
        return left

    def reg_star(self) -> Regular:
        base = self.reg_base()
        while self.eat_sym("*"):
            base = RStar(base)
        return base

    def reg_base(self) -> Regular:
        t = self.cur
        if self.eat_sym("("):
            r = self.regular()
            self.expect("sym", ")")
            return r
        if self.eat_sym("~"):
            return self._negated(self.reg_base(), t.pos)
        if t.kind == "ident" and t.text == "not":
            self.advance()
            return self._negated(self.reg_base(), t.pos)
        if t.kind == "ident" and t.text == "T":
            self.advance()
            return RAct(AnyAct())
        if t.kind == "string":
            self.advance()
            raw = t.text[1:-1].replace('\\"', '"')
            if raw.endswith("*"):
                return RAct(ActLit(raw[:-1], prefix=True))
            return RAct(ActLit(raw))
        if t.kind == "ident":
            self.advance()
            label = t.text
            if self.at_sym("("):
                label += self._arg_suffix()
                if label.endswith("(*)"):
                    return RAct(ActLit(label[:-2], prefix=True))
            return RAct(ActLit(label))
        raise FormulaSyntaxError(
            f"expected an action predicate, found {t.text or 'end of input'!r}",
            position=t.pos,
        )

    def _negated(self, base: Regular, pos: int) -> Regular:
        pred = self._as_predicate(base)
        if pred is None:
            raise FormulaSyntaxError(
                "negation applies to action predicates (including unions "
                "of predicates), not to regular expressions",
                position=pos,
            )
        return RAct(NotAct(pred))

    def _as_predicate(self, reg: Regular):
        """Fold a union of single-step predicates into one predicate."""
        if isinstance(reg, RAct):
            return reg.pred
        if isinstance(reg, RAlt):
            left = self._as_predicate(reg.left)
            right = self._as_predicate(reg.right)
            if left is not None and right is not None:
                from repro.mucalc.syntax import OrAct

                return OrAct(left, right)
        return None

    def _arg_suffix(self) -> str:
        """Consume '(' args ')' and return the exact text, e.g. '(t0,r1)'."""
        self.expect("sym", "(")
        parts: list[str] = ["("]
        first = True
        while not self.at_sym(")"):
            if not first:
                self.expect("sym", ",")
                parts.append(",")
            t = self.cur
            if t.kind in ("ident", "number") or (
                t.kind == "sym" and t.text == "*"
            ):
                parts.append(t.text)
                self.advance()
            else:
                raise FormulaSyntaxError(
                    f"bad action argument {t.text!r}", position=t.pos
                )
            first = False
        self.expect("sym", ")")
        parts.append(")")
        return "".join(parts)


def parse_formula(text: str) -> Formula:
    """Parse ``text`` into a state formula AST.

    Raises :class:`~repro.errors.FormulaSyntaxError` with a character
    position on malformed input.
    """
    p = _Parser(text)
    f = p.formula()
    if p.cur.kind != "eof":
        raise FormulaSyntaxError(
            f"trailing input starting at {p.cur.text!r}", position=p.cur.pos
        )
    return f
