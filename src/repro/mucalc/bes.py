"""Boolean equation systems (BES).

The classical route from alternation-free mu-calculus model checking to
linear-time solving goes through a BES: one boolean variable per
(subformula, state) pair, grouped into blocks of uniform fixpoint sign,
solved innermost-first with a worklist. CADP's Evaluator is built on
exactly this translation; we provide it both as an educational artifact
and as an independent oracle against which the direct vectorised checker
(:mod:`repro.mucalc.checker`) is cross-validated in the test suite.

Only negation-free formulas are translatable (negation over closed
subformulas can be eliminated beforehand by dualisation; the paper's
formulas are negation-free once action complements are pushed into
action predicates).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import FormulaSemanticsError
from repro.lts.lts import LTS
from repro.mucalc.checker import expand_regular
from repro.mucalc.syntax import (
    And,
    Box,
    Diamond,
    Ff,
    Formula,
    Mu,
    Not,
    Nu,
    Or,
    RAct,
    Tt,
    Var,
    assert_alternation_free,
)

#: equation operators
OP_AND = "and"
OP_OR = "or"
OP_TRUE = "true"
OP_FALSE = "false"
OP_ID = "id"


@dataclass
class Block:
    """A block of equations of one fixpoint sign.

    ``eqs[v] = (op, operands)`` where operands are global variable ids.
    """

    sign: str  # "mu" or "nu"
    eqs: dict[int, tuple[str, tuple[int, ...]]] = field(default_factory=dict)


@dataclass
class BES:
    """An alternation-free boolean equation system.

    ``blocks`` are stored outermost-first; solving proceeds
    innermost-first (reverse order). ``root`` is the variable whose
    value answers the model-checking question for the initial state;
    ``root_of_state[s]`` answers it for state ``s``.
    """

    blocks: list[Block] = field(default_factory=list)
    root: int = 0
    root_of_state: list[int] = field(default_factory=list)
    n_vars: int = 0

    def owner(self, var: int) -> Block:
        """The block defining ``var``."""
        for b in self.blocks:
            if var in b.eqs:
                return b
        raise KeyError(var)


def formula_to_bes(lts: LTS, formula: Formula) -> BES:
    """Translate ``formula`` over ``lts`` into an alternation-free BES."""
    f = expand_regular(formula)
    assert_alternation_free(f)

    n = lts.n_states
    bes = BES()
    # per-node variable base: var id = base[node] + state
    base: dict[int, int] = {}
    node_of_fixvar: dict[str, Formula] = {}

    def alloc(node: Formula) -> int:
        key = id(node)
        if key not in base:
            base[key] = bes.n_vars
            bes.n_vars += n
        return base[key]

    # pre-compute label-filtered adjacency once per predicate
    succ_cache: dict = {}

    def successors(pred, s: int) -> list[int]:
        lst = succ_cache.get(pred)
        if lst is None:
            lst = [[] for _ in range(n)]
            for t in lts.transitions():
                if pred.matches(t.label):
                    lst[t.src].append(t.dst)
            succ_cache[pred] = lst
        return lst[s]

    def translate(node: Formula, block: Block) -> int:
        """Emit equations for ``node``; returns its variable base."""
        b = alloc(node)
        if isinstance(node, Tt):
            for s in range(n):
                block.eqs[b + s] = (OP_TRUE, ())
        elif isinstance(node, Ff):
            for s in range(n):
                block.eqs[b + s] = (OP_FALSE, ())
        elif isinstance(node, Var):
            target = node_of_fixvar.get(node.name)
            if target is None:
                raise FormulaSemanticsError(f"unbound variable {node.name}")
            tb = alloc(target)
            for s in range(n):
                block.eqs[b + s] = (OP_ID, (tb + s,))
        elif isinstance(node, And):
            lb = translate(node.left, block)
            rb = translate(node.right, block)
            for s in range(n):
                block.eqs[b + s] = (OP_AND, (lb + s, rb + s))
        elif isinstance(node, Or):
            lb = translate(node.left, block)
            rb = translate(node.right, block)
            for s in range(n):
                block.eqs[b + s] = (OP_OR, (lb + s, rb + s))
        elif isinstance(node, Not):
            raise FormulaSemanticsError(
                "negation is not BES-translatable; dualise the formula first"
            )
        elif isinstance(node, (Diamond, Box)):
            if not isinstance(node.reg, RAct):
                raise FormulaSemanticsError("regular modality not expanded")
            ib = translate(node.inner, block)
            op = OP_OR if isinstance(node, Diamond) else OP_AND
            for s in range(n):
                ops = tuple(ib + d for d in successors(node.reg.pred, s))
                block.eqs[b + s] = (op, ops)
        elif isinstance(node, (Mu, Nu)):
            sign = "mu" if isinstance(node, Mu) else "nu"
            if sign == block.sign and block.eqs:
                inner_block = block
            else:
                inner_block = Block(sign)
                bes.blocks.append(inner_block)
            saved = node_of_fixvar.get(node.var)
            node_of_fixvar[node.var] = node
            # the fixpoint node's variables alias its body's
            bb = translate(node.body, inner_block)
            for s in range(n):
                inner_block.eqs[b + s] = (OP_ID, (bb + s,))
            if saved is None:
                del node_of_fixvar[node.var]
            else:
                node_of_fixvar[node.var] = saved
        else:
            raise TypeError(f"not a formula: {node!r}")
        return b

    top = Block("mu")
    bes.blocks.insert(0, top)
    root_base = translate(f, top)
    bes.root = root_base + lts.initial
    bes.root_of_state = [root_base + s for s in range(n)]
    bes.blocks = [blk for blk in bes.blocks if blk.eqs]
    return bes


def solve_bes(bes: BES) -> list[bool]:
    """Solve ``bes``; returns the value of every variable.

    Blocks are solved innermost-first (reverse storage order). Within a
    block, variables start at the sign's default (``mu`` -> false,
    ``nu`` -> true) and a worklist propagates one-directional flips —
    linear in the number of equation dependencies, as in the classical
    algorithm.
    """
    values = [False] * bes.n_vars
    defined: set[int] = set()

    # reverse dependency index per block, built lazily
    for block in reversed(bes.blocks):
        default = block.sign == "nu"
        for v in block.eqs:
            values[v] = default
        rdeps: dict[int, list[int]] = {}
        for v, (_op, ops) in block.eqs.items():
            for o in ops:
                if o in block.eqs:
                    rdeps.setdefault(o, []).append(v)

        def evaluate(v: int) -> bool:
            op, ops = block.eqs[v]
            if op == OP_TRUE:
                return True
            if op == OP_FALSE:
                return False
            if op == OP_ID:
                return values[ops[0]]
            if op == OP_AND:
                return all(values[o] for o in ops)
            if op == OP_OR:
                return any(values[o] for o in ops)
            raise AssertionError(op)

        queue = deque(block.eqs.keys())
        queued = set(queue)
        while queue:
            v = queue.popleft()
            queued.discard(v)
            new = evaluate(v)
            if new != values[v]:
                # monotone: mu flips false->true only, nu true->false only
                values[v] = new
                for w in rdeps.get(v, ()):
                    if w not in queued:
                        queue.append(w)
                        queued.add(w)
        defined.update(block.eqs)
    return values


def bes_holds(lts: LTS, formula: Formula) -> bool:
    """Check ``formula`` at the initial state via the BES backend."""
    bes = formula_to_bes(lts, formula)
    return solve_bes(bes)[bes.root]
