"""Abstract syntax of the regular alternation-free mu-calculus.

Three layers, as in the logic used by the paper:

* **action predicates** — match individual transition labels
  (:class:`AnyAct` is the paper's ``T``; :class:`ActLit` a quoted label;
  boolean combinations via :class:`NotAct`, :class:`OrAct`,
  :class:`AndAct`);
* **regular formulas** — regular expressions over action predicates
  (:class:`RAct`, concatenation :class:`RSeq`, union :class:`RAlt`,
  iteration :class:`RStar`), used inside modalities: ``[T*.a] F``;
* **state formulas** — booleans, variables, ``/\\`` ``\\/``, the modal
  operators :class:`Diamond` and :class:`Box` over regular formulas, and
  the fixpoints :class:`Mu` / :class:`Nu`.

All nodes are immutable (frozen dataclasses) and hashable so the checker
can memoise closed subformulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import FormulaSemanticsError

# ---------------------------------------------------------------------------
# action predicates
# ---------------------------------------------------------------------------


class ActionPredicate:
    """Base class for label matchers."""

    def matches(self, label: str) -> bool:
        """Whether ``label`` satisfies this predicate."""
        raise NotImplementedError


@dataclass(frozen=True)
class AnyAct(ActionPredicate):
    """Matches every label — the paper's ``T`` inside modalities."""

    def matches(self, label: str) -> bool:
        return True

    def __str__(self) -> str:
        return "T"


@dataclass(frozen=True)
class ActLit(ActionPredicate):
    """Matches one concrete label exactly.

    With ``prefix=True`` it matches any label *starting with* the given
    text, convenient for parameterised actions: ``ActLit("write(",
    prefix=True)`` matches ``write(t0)``, ``write(t1)``, ...
    """

    label: str
    prefix: bool = False

    def matches(self, label: str) -> bool:
        if self.prefix:
            return label.startswith(self.label)
        return label == self.label

    def __str__(self) -> str:
        star = "*" if self.prefix else ""
        return f'"{self.label}{star}"'


@dataclass(frozen=True)
class NotAct(ActionPredicate):
    """Complement of a predicate — the paper writes ``not a``."""

    inner: ActionPredicate

    def matches(self, label: str) -> bool:
        return not self.inner.matches(label)

    def __str__(self) -> str:
        return f"not {self.inner}"


@dataclass(frozen=True)
class OrAct(ActionPredicate):
    """Union of two predicates."""

    left: ActionPredicate
    right: ActionPredicate

    def matches(self, label: str) -> bool:
        return self.left.matches(label) or self.right.matches(label)

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class AndAct(ActionPredicate):
    """Intersection of two predicates."""

    left: ActionPredicate
    right: ActionPredicate

    def matches(self, label: str) -> bool:
        return self.left.matches(label) and self.right.matches(label)

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


# ---------------------------------------------------------------------------
# regular formulas
# ---------------------------------------------------------------------------


class Regular:
    """Base class for regular formulas over action predicates."""


@dataclass(frozen=True)
class RAct(Regular):
    """A single step matching an action predicate."""

    pred: ActionPredicate

    def __str__(self) -> str:
        return str(self.pred)


@dataclass(frozen=True)
class RSeq(Regular):
    """Concatenation ``left . right``."""

    left: Regular
    right: Regular

    def __str__(self) -> str:
        return f"{self.left}.{self.right}"


@dataclass(frozen=True)
class RAlt(Regular):
    """Union ``left | right``."""

    left: Regular
    right: Regular

    def __str__(self) -> str:
        return f"({self.left}|{self.right})"


@dataclass(frozen=True)
class RStar(Regular):
    """Kleene iteration ``inner*``."""

    inner: Regular

    def __str__(self) -> str:
        return f"{self.inner}*"


# ---------------------------------------------------------------------------
# state formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class for state formulas."""

    def children(self) -> tuple["Formula", ...]:
        """Direct state-formula subterms."""
        return ()


@dataclass(frozen=True)
class Tt(Formula):
    """Truth — every state satisfies it."""

    def __str__(self) -> str:
        return "T"


@dataclass(frozen=True)
class Ff(Formula):
    """Falsity — no state satisfies it."""

    def __str__(self) -> str:
        return "F"


@dataclass(frozen=True)
class Var(Formula):
    """A fixpoint variable occurrence."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class And(Formula):
    """Conjunction."""

    left: Formula
    right: Formula

    def children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} /\\ {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction."""

    left: Formula
    right: Formula

    def children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} \\/ {self.right})"


@dataclass(frozen=True)
class Not(Formula):
    """Negation.

    Only allowed over subformulas without free fixpoint variables
    (checked by :func:`assert_alternation_free`), which keeps every
    fixpoint body monotone.
    """

    inner: Formula

    def children(self):
        return (self.inner,)

    def __str__(self) -> str:
        return f"~{self.inner}"


@dataclass(frozen=True)
class Diamond(Formula):
    """``<R> f`` — some R-matching path leads to an f-state."""

    reg: Regular
    inner: Formula

    def children(self):
        return (self.inner,)

    def __str__(self) -> str:
        return f"<{self.reg}>{self.inner}"


@dataclass(frozen=True)
class Box(Formula):
    """``[R] f`` — every R-matching path leads to an f-state."""

    reg: Regular
    inner: Formula

    def children(self):
        return (self.inner,)

    def __str__(self) -> str:
        return f"[{self.reg}]{self.inner}"


@dataclass(frozen=True)
class Mu(Formula):
    """Least fixpoint ``mu X. f``."""

    var: str
    body: Formula

    def children(self):
        return (self.body,)

    def __str__(self) -> str:
        return f"mu {self.var}.{self.body}"


@dataclass(frozen=True)
class Nu(Formula):
    """Greatest fixpoint ``nu X. f``."""

    var: str
    body: Formula

    def children(self):
        return (self.body,)

    def __str__(self) -> str:
        return f"nu {self.var}.{self.body}"


# ---------------------------------------------------------------------------
# static analysis
# ---------------------------------------------------------------------------


def subformulas(f: Formula) -> Iterator[Formula]:
    """Yield ``f`` and all state subformulas, depth first."""
    yield f
    for c in f.children():
        yield from subformulas(c)


def free_variables(f: Formula) -> frozenset[str]:
    """The fixpoint variables occurring free in ``f``."""
    if isinstance(f, Var):
        return frozenset([f.name])
    if isinstance(f, (Mu, Nu)):
        return free_variables(f.body) - {f.var}
    out: frozenset[str] = frozenset()
    for c in f.children():
        out |= free_variables(c)
    return out


def assert_alternation_free(f: Formula) -> None:
    """Validate that ``f`` is well formed and alternation free.

    Raises :class:`~repro.errors.FormulaSemanticsError` when:

    * a variable occurs free at top level;
    * a variable occurs under a negation (non-monotone);
    * a ``mu`` body contains a free variable bound by an enclosing
      ``nu`` or vice versa (true alternation, outside the fragment this
      checker — like the paper's Evaluator 3.x — supports).
    """
    if free_variables(f):
        raise FormulaSemanticsError(
            f"unbound fixpoint variable(s): {sorted(free_variables(f))}"
        )

    def walk(g: Formula, bound: dict[str, str], under_not: bool) -> None:
        if isinstance(g, Var):
            if under_not:
                raise FormulaSemanticsError(
                    f"variable {g.name} occurs under a negation"
                )
            return
        if isinstance(g, Not):
            if free_variables(g.inner):
                raise FormulaSemanticsError(
                    "negation over an open subformula "
                    f"(free: {sorted(free_variables(g.inner))})"
                )
            # the negated subformula is closed, hence a constant set with
            # respect to every enclosing fixpoint: its *internal* bound
            # variables are unaffected by the negation, so the walk
            # restarts fresh inside
            walk(g.inner, {}, False)
            return
        if isinstance(g, (Mu, Nu)):
            sign = "mu" if isinstance(g, Mu) else "nu"
            # alternation: the body of this fixpoint mentions (free) a
            # variable bound by an enclosing fixpoint of the other sign
            for v in free_variables(g.body) - {g.var}:
                if bound.get(v) is not None and bound[v] != sign:
                    raise FormulaSemanticsError(
                        f"alternating fixpoints: {sign} {g.var} uses "
                        f"{bound[v]}-bound variable {v}"
                    )
            walk(g.body, {**bound, g.var: sign}, under_not)
            return
        for c in g.children():
            walk(c, bound, under_not)

    walk(f, {}, False)
