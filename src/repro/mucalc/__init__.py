"""Regular alternation-free mu-calculus model checking.

This subpackage reproduces the role of CADP's *Evaluator* in the paper:
formulas of the regular alternation-free mu-calculus (Mateescu &
Sighireanu) are checked over explicit LTSs. The paper's requirement
formulas, e.g.::

    [T*."c_home"] F
    <T*> (<"c_copy">T /\\ <"lock_empty">T /\\ <"homequeue_empty">T
          /\\ <"remotequeue_empty">T)
    [T*."write(t0)"] mu X. (<T>T /\\ [not "writeover(t0)"] X)

parse and check verbatim (see :mod:`repro.mucalc.parser` for the
concrete grammar, which follows the paper's notation).
"""

from repro.mucalc.syntax import (
    Formula,
    Tt,
    Ff,
    Var,
    And,
    Or,
    Not,
    Diamond,
    Box,
    Mu,
    Nu,
    ActionPredicate,
    AnyAct,
    ActLit,
    NotAct,
    OrAct,
    AndAct,
    Regular,
    RAct,
    RSeq,
    RAlt,
    RStar,
    free_variables,
    assert_alternation_free,
)
from repro.mucalc.parser import parse_formula
from repro.mucalc.checker import check, check_many, holds, satisfying_states
from repro.mucalc.diagnostics import witness_diamond, counterexample_box
from repro.mucalc.onthefly import check_never, check_reachable, find_path
from repro.mucalc.bes import formula_to_bes, solve_bes, BES

__all__ = [
    "Formula",
    "Tt",
    "Ff",
    "Var",
    "And",
    "Or",
    "Not",
    "Diamond",
    "Box",
    "Mu",
    "Nu",
    "ActionPredicate",
    "AnyAct",
    "ActLit",
    "NotAct",
    "OrAct",
    "AndAct",
    "Regular",
    "RAct",
    "RSeq",
    "RAlt",
    "RStar",
    "free_variables",
    "assert_alternation_free",
    "parse_formula",
    "check",
    "check_many",
    "holds",
    "satisfying_states",
    "witness_diamond",
    "counterexample_box",
    "check_never",
    "check_reachable",
    "find_path",
    "formula_to_bes",
    "solve_bes",
    "BES",
]
