"""Reusable formula patterns.

The paper's four requirements instantiate classic property schemas;
this module names them so protocol-specific code (and downstream users)
can build correct formulas without hand-assembling fixpoints:

* :func:`never` — safety: no path matching a regular prefix;
* :func:`eventually_reachable` — possibility;
* :func:`inevitably` — the paper's Requirement-4 schema;
* :func:`fair_inevitably` — its fair reformulation for cyclic systems;
* :func:`exclusion` — "between A and B, never C" (the lock-discipline
  schema used for the Table-6 lock manager);
* :func:`responds` — every A is eventually followed by B (bounded
  systems) in its exact form.
"""

from __future__ import annotations

from repro.mucalc.syntax import (
    ActionPredicate,
    ActLit,
    And,
    AnyAct,
    Box,
    Diamond,
    Ff,
    Formula,
    Mu,
    NotAct,
    RAct,
    Regular,
    RSeq,
    RStar,
    Tt,
    Var,
)


def _pred(p: str | ActionPredicate) -> ActionPredicate:
    if isinstance(p, ActionPredicate):
        return p
    return ActLit(p)


def _t_star() -> Regular:
    return RStar(RAct(AnyAct()))


def never(p: str | ActionPredicate) -> Formula:
    """``[T*.p] F`` — action ``p`` never happens (Requirement 3.1's
    shape with ``p = c_home``)."""
    return Box(RSeq(_t_star(), RAct(_pred(p))), Ff())


def eventually_reachable(p: str | ActionPredicate) -> Formula:
    """``<T*.p> T`` — some run performs ``p``."""
    return Diamond(RSeq(_t_star(), RAct(_pred(p))), Tt())


def inevitably(p: str | ActionPredicate, var: str = "X") -> Formula:
    """``mu X. (<T>T /\\ [not p] X)`` — every run performs ``p``
    (the inner formula of the paper's Requirement 4)."""
    return Mu(
        var,
        And(
            Diamond(RAct(AnyAct()), Tt()),
            Box(RAct(NotAct(_pred(p))), Var(var)),
        ),
    )


def responds(
    trigger: str | ActionPredicate, response: str | ActionPredicate
) -> Formula:
    """``[T*.trigger] mu X. (<T>T /\\ [not response] X)`` — after every
    ``trigger``, ``response`` is inevitable (Requirement 4 verbatim)."""
    return Box(RSeq(_t_star(), RAct(_pred(trigger))), inevitably(response))


def fair_responds(
    trigger: str | ActionPredicate, response: str | ActionPredicate
) -> Formula:
    """The fair variant: while ``response`` has not yet happened after a
    ``trigger``, it remains reachable."""
    not_resp = RAct(NotAct(_pred(response)))
    pending = RSeq(RSeq(_t_star(), RAct(_pred(trigger))), RStar(not_resp))
    can = Diamond(RSeq(RStar(not_resp), RAct(_pred(response))), Tt())
    return Box(pending, can)


def exclusion(
    enter: str | ActionPredicate,
    leave: str | ActionPredicate,
    forbidden: str | ActionPredicate,
) -> Formula:
    """``[T*.enter.(not leave)*.forbidden] F`` — between ``enter`` and
    the next ``leave``, ``forbidden`` cannot occur. The mutual-exclusion
    schema for the protocol locks."""
    return Box(
        RSeq(
            RSeq(
                RSeq(_t_star(), RAct(_pred(enter))),
                RStar(RAct(NotAct(_pred(leave)))),
            ),
            RAct(_pred(forbidden)),
        ),
        Ff(),
    )


def always_possible(p: str | ActionPredicate) -> Formula:
    """``[T*] <T*.p> T`` — from every reachable state, ``p`` remains
    reachable (deadlock-freedom relative to ``p``)."""
    return Box(_t_star(), eventually_reachable(p))
