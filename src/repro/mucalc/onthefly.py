"""On-the-fly checking: verdicts without materialising the LTS.

CADP's Evaluator is an *on-the-fly* model checker — it explores the
product of the system with the property and stops at the first
verdict, never needing the full transition list in memory. This module
provides that mode for the property shapes that dominate the paper's
requirements:

* :func:`find_path` — shortest system path matching a regular formula
  (and optionally ending in a goal state), by BFS over the product of
  the *transition system* with the property's Thompson NFA;
* :func:`check_never` — the paper's ``[T*.a] F`` safety shape: returns
  a verdict plus the witness trace on violation, terminating as soon
  as one is found (the win: a violated property is often found after a
  tiny fraction of the state space);
* :func:`check_reachable` — the dual ``<T*.a> T`` possibility shape.

Memory: only visited product states are stored (a set), not the
transitions — roughly half the footprint of :func:`repro.lts.explore`
followed by a check, and far less when the verdict comes early.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Hashable

from repro.errors import ExplorationLimitError
from repro.lts.trace import Trace
from repro.mucalc.diagnostics import compile_nfa
from repro.mucalc.syntax import Regular
from repro.obs.core import current as _current_obs

#: product states between progress heartbeats on instrumented runs
_PROGRESS_EVERY = 4096


def find_path(
    system,
    regular: Regular,
    *,
    state_goal: Callable[[Hashable], bool] | None = None,
    max_states: int | None = None,
) -> Trace | None:
    """Shortest path from the initial state matching ``regular``.

    ``state_goal`` additionally constrains the final state. Returns
    ``None`` when no such path exists (the whole product is explored in
    that case). Raises :class:`~repro.errors.ExplorationLimitError`
    when ``max_states`` product states are exceeded.
    """
    obs = _current_obs()
    recording = obs.enabled
    t0 = time.perf_counter() if recording else 0.0
    if recording:
        obs.tracer.emit("product_start", regular=str(regular),
                        max_states=max_states)

    def _finish(found: bool, n_product: int) -> None:
        if not recording:
            return
        seconds = time.perf_counter() - t0
        obs.tracer.emit(
            "product_end", found=found, product_states=n_product,
            seconds=round(seconds, 6),
        )
        obs.metrics.counter("repro_product_states_total").inc(n_product)
        obs.metrics.counter(
            "repro_product_searches_total",
            outcome="witness" if found else "exhausted",
        ).inc()

    nfa = compile_nfa(regular)
    eps_adj: dict[int, list[int]] = {}
    for a, b in nfa.eps:
        eps_adj.setdefault(a, []).append(b)
    by_src: dict[int, list] = {}
    for a, p, b in nfa.edges:
        by_src.setdefault(a, []).append((p, b))

    def closure(states: frozenset[int]) -> frozenset[int]:
        out = set(states)
        stack = list(states)
        while stack:
            s = stack.pop()
            for t in eps_adj.get(s, []):
                if t not in out:
                    out.add(t)
                    stack.append(t)
        return frozenset(out)

    def accepting(node) -> bool:
        state, nfa_states = node
        if nfa.accept not in nfa_states:
            return False
        return state_goal is None or state_goal(state)

    start = closure(frozenset([nfa.start]))
    init = (system.initial_state(), start)
    if accepting(init):
        _finish(True, 1)
        return Trace(())
    parent: dict = {init: (None, "")}
    queue = deque([init])
    while queue:
        node = queue.popleft()
        state, nfa_states = node
        for label, dst in system.successors(state):
            moved = {
                b
                for a in nfa_states
                for (p, b) in by_src.get(a, [])
                if p.matches(label)
            }
            if not moved:
                continue
            nxt = (dst, closure(frozenset(moved)))
            if nxt in parent:
                continue
            parent[nxt] = (node, label)
            if max_states is not None and len(parent) > max_states:
                _finish(False, len(parent))
                raise ExplorationLimitError(
                    f"on-the-fly product exceeded {max_states} states"
                )
            if recording and len(parent) % _PROGRESS_EVERY == 0:
                elapsed = time.perf_counter() - t0
                obs.progress.maybe(
                    product_states=len(parent),
                    sps=len(parent) / elapsed if elapsed > 0 else 0.0,
                    frontier=len(queue),
                )
            if accepting(nxt):
                labels = []
                cur = nxt
                while parent[cur][0] is not None:
                    prev, lab = parent[cur]
                    labels.append(lab)
                    cur = prev
                labels.reverse()
                _finish(True, len(parent))
                return Trace(tuple(labels))
            queue.append(nxt)
    _finish(False, len(parent))
    return None


def check_never(
    system,
    regular: Regular,
    *,
    max_states: int | None = None,
) -> tuple[bool, Trace | None]:
    """The safety shape ``[R] F``: no path matching ``R`` exists.

    Returns ``(holds, witness)``: on violation the witness is the
    shortest offending path and the search stopped right there — the
    on-the-fly advantage for bug hunting.
    """
    witness = find_path(system, regular, max_states=max_states)
    return witness is None, witness


def check_reachable(
    system,
    regular: Regular,
    *,
    max_states: int | None = None,
) -> tuple[bool, Trace | None]:
    """The possibility shape ``<R> T``: some path matches ``R``."""
    witness = find_path(system, regular, max_states=max_states)
    return witness is not None, witness
