"""Analysis aids: trace explanation, simulation, reporting.

The paper's authors report that interpreting error traces — "typically
more than 300 transitions" — took a lot of time, and explicitly wish
for "a simulation tool that helps to automatically execute and
interpret such long traces". This subpackage is that tool for the
reproduction:

* :mod:`repro.analysis.explain` — renders protocol traces as English
  narration with per-step protocol context;
* :mod:`repro.analysis.simulator` — a scriptable stepper over any
  transition system (enabled actions, choose, undo, inspect);
* :mod:`repro.analysis.reporting` — ASCII tables for the experiment
  harness (Table 8 and friends).
"""

from repro.analysis.explain import explain_label, explain_trace, narrate_trace
from repro.analysis.simulator import Simulator
from repro.analysis.reporting import format_table, Table

__all__ = [
    "explain_label",
    "explain_trace",
    "narrate_trace",
    "Simulator",
    "format_table",
    "Table",
]
