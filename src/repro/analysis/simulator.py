"""A scriptable stepper over any transition system.

The paper (Section 6) calls for "a simulation tool that helps to
automatically execute and interpret long traces". :class:`Simulator`
walks any :class:`~repro.lts.explore.TransitionSystem`: list the
enabled actions, take one (by index, exact label, or prefix), undo,
replay a whole trace, and inspect the current state.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.errors import TraceError
from repro.lts.trace import Trace


class Simulator:
    """Interactive/scripted execution of a transition system.

    Examples
    --------
    >>> from repro.jackal import JackalModel, CONFIG_1
    >>> sim = Simulator(JackalModel(CONFIG_1))
    >>> sorted(lab for lab, _ in sim.enabled())[:1]
    ['homequeue_empty']
    >>> sim.step("write(t0)")  # doctest: +ELLIPSIS
    'write(t0)'
    >>> sim.undo()
    >>> len(sim.history())
    0
    """

    def __init__(self, system):
        self.system = system
        self._states: list[Hashable] = [system.initial_state()]
        self._labels: list[str] = []

    # -- inspection -----------------------------------------------------------

    @property
    def state(self) -> Hashable:
        """Current state."""
        return self._states[-1]

    def enabled(self) -> list[tuple[str, Hashable]]:
        """Enabled ``(label, next state)`` pairs, stable order."""
        return list(self.system.successors(self.state))

    def enabled_labels(self) -> list[str]:
        """Enabled labels (with duplicates, in successor order)."""
        return [lab for lab, _ in self.enabled()]

    def history(self) -> Trace:
        """The trace taken so far (state-annotated)."""
        return Trace(tuple(self._labels), tuple(self._states))

    def depth(self) -> int:
        """Number of steps taken."""
        return len(self._labels)

    def describe(self) -> dict | str:
        """Decoded current state when the system supports it."""
        decode = getattr(self.system, "decode_state", None)
        return decode(self.state) if decode else repr(self.state)

    # -- stepping ----------------------------------------------------------------

    def step(self, choice: int | str) -> str:
        """Take a transition.

        ``choice`` is an index into :meth:`enabled`, an exact label, or
        a unique label prefix. Returns the label taken.
        """
        moves = self.enabled()
        if not moves:
            raise TraceError("no enabled transitions (terminal state)")
        if isinstance(choice, int):
            if not 0 <= choice < len(moves):
                raise TraceError(
                    f"choice {choice} out of range 0..{len(moves) - 1}"
                )
            label, nxt = moves[choice]
        else:
            exact = [(lab, s) for lab, s in moves if lab == choice]
            if not exact:
                exact = [(lab, s) for lab, s in moves if lab.startswith(choice)]
            if not exact:
                raise TraceError(
                    f"label {choice!r} not enabled; enabled: "
                    f"{sorted({lab for lab, _ in moves})}"
                )
            firsts = {s for _l, s in exact}
            if len(firsts) > 1 and len({lab for lab, _ in exact}) > 1:
                raise TraceError(
                    f"prefix {choice!r} ambiguous: {sorted({lab for lab, _ in exact})}"
                )
            label, nxt = exact[0]
        self._states.append(nxt)
        self._labels.append(label)
        return label

    def undo(self, n: int = 1) -> None:
        """Undo the last ``n`` steps."""
        if n > len(self._labels):
            raise TraceError(f"cannot undo {n} steps, only {len(self._labels)} taken")
        del self._states[len(self._states) - n :]
        del self._labels[len(self._labels) - n :]

    def reset(self) -> None:
        """Back to the initial state."""
        self._states = self._states[:1]
        self._labels = []

    def run(self, labels: Sequence[str]) -> Trace:
        """Replay a whole label sequence from the current state."""
        for lab in labels:
            self.step(lab)
        return self.history()

    def random_walk(self, steps: int, *, seed: int = 0) -> Trace:
        """Take ``steps`` uniformly random steps (stops at terminal
        states). Deterministic for a given seed."""
        import random

        rng = random.Random(seed)
        for _ in range(steps):
            moves = self.enabled()
            if not moves:
                break
            label, _ = moves[rng.randrange(len(moves))]
            self.step(label)
        return self.history()
