"""Programmatic experiment runners.

One function per experiment of DESIGN.md's index, each returning a
structured result object. The examples and the CLI are thin wrappers
over these; downstream users can call them directly to re-run the
paper's study under modified parameters.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.jackal.params import CONFIG_1, CONFIG_2, CONFIG_3, Config, ProtocolVariant
from repro.jackal.requirements import (
    RequirementReport,
    check_all_requirements,
    check_requirement_1,
    check_requirement_3_2,
)
from repro.lts.trace import Trace


@dataclass
class Table8Row:
    """One row of the Table-8 reproduction."""

    config: str
    states: int
    transitions: int
    requirements: dict[str, RequirementReport]
    seconds: float

    @property
    def all_hold(self) -> bool:
        return all(r.holds for r in self.requirements.values())

    def as_dict(self) -> dict[str, object]:
        return {
            "config": self.config,
            "states": self.states,
            "transitions": self.transitions,
            "req_checked": ", ".join(sorted(self.requirements)),
            "all_hold": self.all_hold,
            "seconds": round(self.seconds, 2),
        }


def run_table8(
    *,
    rounds: int | None = 2,
    variant: ProtocolVariant = ProtocolVariant.fixed(),
    max_states: int | None = None,
    configs: dict[str, Config] | None = None,
) -> list[Table8Row]:
    """Regenerate Table 8 (experiment T8).

    Configuration 3 is checked for requirements 1-2 only, as in the
    paper.
    """
    if configs is None:
        configs = {"1": CONFIG_1, "2": CONFIG_2, "3": CONFIG_3}
    rows = []
    for name, cfg in configs.items():
        skip = ("3.1", "3.2", "4") if cfg.n_processors > 2 else ()
        c = dataclasses.replace(cfg, rounds=rounds)
        t0 = time.perf_counter()
        res = check_all_requirements(c, variant, skip=skip, max_states=max_states)
        rows.append(
            Table8Row(
                config=name,
                states=max(r.lts_states for r in res.values()),
                transitions=max(r.lts_transitions for r in res.values()),
                requirements=res,
                seconds=time.perf_counter() - t0,
            )
        )
    return rows


@dataclass
class ErrorReproduction:
    """Outcome of reproducing one of the two historical errors."""

    error: str
    buggy_report: RequirementReport
    fixed_report: RequirementReport
    trace: Trace | None = field(default=None)

    @property
    def reproduced(self) -> bool:
        """Bug present in the buggy variant and absent in the fixed one."""
        return (not self.buggy_report.holds) and self.fixed_report.holds

    def summary(self) -> str:
        status = "reproduced" if self.reproduced else "NOT reproduced"
        length = len(self.trace) if self.trace else 0
        return f"{self.error}: {status} (trace: {length} transitions)"


def run_error1(
    *, config: Config | None = None, max_states: int | None = None
) -> ErrorReproduction:
    """Reproduce Error 1 (experiment E1): the migration/fault-lock
    deadlock, on the paper's configuration 1 with cyclic threads."""
    cfg = config or dataclasses.replace(CONFIG_1, rounds=None)
    buggy = check_requirement_1(
        cfg, ProtocolVariant.error1(), max_states=max_states
    )
    fixed = check_requirement_1(
        cfg, ProtocolVariant.fixed(), max_states=max_states
    )
    return ErrorReproduction(
        error="Error 1 (deadlock, §5.4.1)",
        buggy_report=buggy,
        fixed_report=fixed,
        trace=buggy.trace,
    )


def run_error2(
    *, config: Config = CONFIG_2, max_states: int | None = None
) -> ErrorReproduction:
    """Reproduce Error 2 (experiment E2): the lost home, via property
    3.2 on the paper's configuration 2."""
    buggy = check_requirement_3_2(
        config, ProtocolVariant.error2(), max_states=max_states
    )
    fixed = check_requirement_3_2(
        config, ProtocolVariant.fixed(), max_states=max_states
    )
    return ErrorReproduction(
        error="Error 2 (lost home, §5.4.3)",
        buggy_report=buggy,
        fixed_report=fixed,
        trace=buggy.trace,
    )


def run_full_study(
    *, rounds: int | None = 1, max_states: int | None = None
) -> dict[str, object]:
    """The whole paper in one call: Table 8 plus both error hunts.

    Returns ``{"table8": [...], "error1": ..., "error2": ...}``; the
    study "passes" when all Table-8 requirements hold on the fixed
    protocol and both errors are reproduced.
    """
    return {
        "table8": run_table8(rounds=rounds, max_states=max_states),
        "error1": run_error1(max_states=max_states),
        "error2": run_error2(max_states=max_states),
    }
