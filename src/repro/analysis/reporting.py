"""ASCII tables for experiment reports (Table 8 and friends)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


def format_table(
    rows: Iterable[dict[str, object]],
    columns: list[str] | None = None,
    *,
    title: str | None = None,
) -> str:
    """Render dict rows as a boxed ASCII table.

    Column order follows ``columns`` when given, otherwise first-seen
    key order. Numbers are right-aligned and thousands-separated.
    """
    rows = list(rows)
    if columns is None:
        columns = []
        for r in rows:
            for k in r:
                if k not in columns:
                    columns.append(k)

    def fmt(v) -> str:
        if isinstance(v, bool):
            return "yes" if v else "no"
        if isinstance(v, int):
            return f"{v:,}"
        if isinstance(v, float):
            return f"{v:,.3f}"
        return str(v)

    cells = [[fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) if cells else len(c)
        for i, c in enumerate(columns)
    ]
    numeric = [
        all(
            isinstance(r.get(c), (int, float)) and not isinstance(r.get(c), bool)
            for r in rows
            if c in r
        )
        for c in columns
    ]

    def line(row: list[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(list(columns)))
    out.append(sep)
    for row in cells:
        out.append(line(row))
    out.append(sep)
    return "\n".join(out)


@dataclass
class Table:
    """Incrementally built report table."""

    title: str
    columns: list[str]
    rows: list[dict[str, object]] = field(default_factory=list)

    def add(self, **kwargs) -> None:
        """Append a row."""
        self.rows.append(kwargs)

    def render(self) -> str:
        """The boxed ASCII rendering."""
        return format_table(self.rows, self.columns, title=self.title)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
