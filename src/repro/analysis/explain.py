"""English narration of protocol traces.

Every label emitted by :class:`~repro.jackal.model.JackalModel` has a
template here; :func:`explain_trace` renders a counterexample as a
numbered story, and :func:`narrate_trace` interleaves it with the
evolving home/WriterList context obtained by replaying the trace — the
"automatic execution and interpretation of long traces" the paper asks
for in its conclusions.
"""

from __future__ import annotations

import re

from repro.lts.trace import Trace, replay

_PATTERNS: list[tuple[re.Pattern, str]] = [
    (re.compile(r"^write\(t(\d+)\)$"), "thread t{0} starts a write (access check)"),
    (re.compile(r"^writeover\(t(\d+)\)$"), "thread t{0} completes its write"),
    (re.compile(r"^flush\(t(\d+)\)$"),
     "thread t{0} reaches a synchronisation point and starts flushing"),
    (re.compile(r"^flushover\(t(\d+)\)$"), "thread t{0} completes its flush"),
    (re.compile(r"^lock_server\(t(\d+),p(\d+)\)$"),
     "processor p{1} grants its server lock to thread t{0}"),
    (re.compile(r"^lock_fault\(t(\d+),p(\d+)\)$"),
     "processor p{1} grants its fault lock to thread t{0}"),
    (re.compile(r"^lock_flush\(t(\d+),p(\d+)\)$"),
     "processor p{1} grants its flush lock to thread t{0}"),
    (re.compile(r"^restart_write\(t(\d+)\)$"),
     "thread t{0} held the server lock but the home migrated away; "
     "it releases the lock and retries as a remote write"),
    (re.compile(r"^fault_to_server\(t(\d+)\)$"),
     "thread t{0} held the fault lock but is now at home (Error-1 fix): "
     "it releases the fault lock and requests the server lock"),
    (re.compile(r"^stale_remote_wait\(t(\d+)\)$"),
     "thread t{0} holds the fault lock, but its processor became the home "
     "meanwhile; the access check finds a valid copy, no Data Request is "
     "sent, and t{0} waits for a reply that will never arrive (Error 1!)"),
    (re.compile(r"^send_datareq\(t(\d+),p(\d+),p(\d+)\)$"),
     "thread t{0} on p{1} sends a Data Request to the home p{2}"),
    (re.compile(r"^send_dataret\(p(\d+),p(\d+)\)$"),
     "home p{0} returns an up-to-date copy to p{1} (Data Return)"),
    (re.compile(r"^send_dataret_mig\(p(\d+),p(\d+)\)$"),
     "home p{0} returns a copy to p{1} and migrates the home to it "
     "(automatic home node migration, case 1)"),
    (re.compile(r"^send_flush\(t(\d+),p(\d+),p(\d+)\)$"),
     "thread t{0} on p{1} sends a Flush message to the home p{2}"),
    (re.compile(r"^forward_req\(p(\d+),p(\d+)\)$"),
     "p{0} is no longer the home: it forwards the Data Request to p{1}"),
    (re.compile(r"^forward_flush\(p(\d+),p(\d+)\)$"),
     "p{0} is no longer the home: it forwards the Flush to p{1}"),
    (re.compile(r"^signal\(t(\d+),p(\d+)\)$"),
     "the remote queue handler of p{1} delivers the Data Return and "
     "wakes thread t{0}"),
    (re.compile(r"^recv_sponmigrate\(p(\d+)\)$"),
     "p{0} processes a Region Sponmigrate message and becomes the home"),
    (re.compile(r"^flush_recv\(p(\d+)\)$"),
     "home p{0} processes a Flush message (WriterList updated)"),
    (re.compile(r"^flush_recv_migrate\(p(\d+),p(\d+)\)$"),
     "home p{0} processes a Flush; only p{1} still writes, so the home "
     "migrates to p{1} (case 2) via a Region Sponmigrate message"),
    (re.compile(r"^flush_home\(t(\d+),p(\d+)\)$"),
     "thread t{0} flushes at home p{1} (local WriterList update)"),
    (re.compile(r"^flush_home_migrate\(t(\d+),p(\d+),p(\d+)\)$"),
     "thread t{0} flushes at home p{1}; only p{2} still writes, so the "
     "home migrates to p{2} (case 2)"),
    (re.compile(r"^lock_homequeue\(p(\d+)\)$"),
     "the home queue handler of p{0} acquires the homequeue lock"),
    (re.compile(r"^lock_remotequeue\(p(\d+)\)$"),
     "the remote queue handler of p{0} acquires the remotequeue lock"),
    (re.compile(r"^assertion_violation\((.+)\)$"),
     "PROTOCOL ASSERTION VIOLATED: {0}"),
    (re.compile(r"^c_home$"), "probe: two processors both claim the home"),
    (re.compile(r"^c_copy$"), "probe: two processors both hold non-home copies"),
    (re.compile(r"^lock_empty$"), "probe: no protocol lock is held"),
    (re.compile(r"^homequeue_empty$"), "probe: all home queues are empty"),
    (re.compile(r"^remotequeue_empty$"), "probe: all remote queues are empty"),
]


def explain_label(label: str) -> str:
    """One-sentence explanation of a protocol action label."""
    for pat, template in _PATTERNS:
        m = pat.match(label)
        if m:
            return template.format(*m.groups())
    return label  # unknown labels pass through unchanged


def explain_trace(trace: Trace | list[str]) -> list[str]:
    """Explain every step of a trace."""
    labels = trace.labels if isinstance(trace, Trace) else trace
    return [explain_label(lab) for lab in labels]


def _context(model, state) -> str:
    """Compact protocol context: homes, writers, queue occupancy."""
    d = model.decode_state(state)
    if d.get("violation"):
        return "!! assertion-violation state"
    homes = ",".join(
        f"r{r}@p{d['copies'][p][r]['home']}"
        for p in range(1)  # homes agree per copy; show p0's view plus diffs
        for r in range(model.n_regions)
    )
    views = []
    for r in range(model.n_regions):
        ptrs = [d["copies"][p][r]["home"] for p in range(model.n_proc)]
        writers = d["copies"][ptrs[0]][r]["writers"] if 0 <= ptrs[0] < model.n_proc else []
        views.append(f"r{r}: home-ptrs={ptrs} writers={writers}")
    q = sum(1 for m in d["homequeue"] + d["remotequeue"] if m)
    del homes
    return "; ".join(views) + f"; msgs-in-flight={q}"


def narrate_trace(model, trace: Trace | list[str]) -> str:
    """Replay ``trace`` on ``model`` and interleave explanation with
    protocol context after each step."""
    labels = list(trace.labels if isinstance(trace, Trace) else trace)
    replayed = replay(model, labels)
    lines = [f"initial: {_context(model, replayed.states[0])}"]
    width = len(str(len(labels)))
    for i, label in enumerate(labels):
        lines.append(f"{i + 1:>{width}}. {explain_label(label)}")
        lines.append(f"{'':>{width}}  -> {_context(model, replayed.states[i + 1])}")
    return "\n".join(lines)
