"""Executable state machine of the Jackal cache coherence protocol.

This module is the reproduction of the paper's 1800-line muCRL
specification: the parallel composition of threads, per-processor region
copies, home/remote message queues (capacity one), and protocol lock
managers, with automatic home node migration. It implements the
:class:`~repro.lts.explore.TransitionSystem` protocol, so all the
generation, reduction and model checking machinery applies directly.

State layout (all nested tuples of small ints, chosen for cheap hashing
during explicit-state exploration)::

    state = (threads, copies, hq, rq, hqa, rqa, locks, migs)

    threads[tid]   = (phase, reg, aho, writes_done, rounds_left, dirty)
    copies[p][r]   = (home, rstate, writer_mask, localthreads)
    hq[p] / rq[p]  = 0 or a message tuple
    hqa[p]/rqa[p]  = 0 (handler idle) or the message the handler took
                     out of its queue (it then holds the queue lock)
    locks[p]       = (srv_holder, srv_wait, flt_holder, flt_wait,
                      fls_holder, fls_wait)
    migs[p][r]     = 0 or (writer_mask, rstate): a Region Sponmigrate
                     in flight to processor p for region r. Migrations
                     travel in this dedicated control slot rather than
                     the home queue: at most one migration per region
                     can ever be in flight (only the home starts one,
                     and it stops being the home by doing so), so the
                     slot never blocks — which is what makes the
                     store-and-forward deadlock of blocking in-queue
                     migrations impossible (see docs/protocol.md).

Lock holders are ``tid + 1`` (0 = free); waiter sets are thread
bitmasks. Messages::

    (Msg.REQ,   tid, src, r)                       -> home queue
    (Msg.RET,   tid, sender, mig, wl, rstate, r)   -> remote queue
    (Msg.FLUSH, tid, src, r)                       -> home queue
    (Msg.MIG,   r, wl, rstate)                     -> migration slot

Protocol assertion violations (Requirement 2) are modelled as
transitions labelled ``assertion_violation(<name>)`` into a terminal
violation state, so that "no assertion is violated" is a plain
reachability question.
"""

from __future__ import annotations

from enum import IntEnum

from repro.errors import ModelError
from repro.jackal.actions import (
    C_COPY,
    C_HOME,
    HOMEQUEUE_EMPTY,
    LOCK_EMPTY,
    REMOTEQUEUE_EMPTY,
    Labels,
)
from repro.jackal.params import Config, ProtocolVariant


class Phase(IntEnum):
    """Thread phases."""

    IDLE = 0
    WANT_SERVER = 1
    HAVE_SERVER = 2
    WANT_FAULT = 3
    HAVE_FAULT = 4
    WAIT_DATA = 5
    REMOTE_READY = 6
    WANT_FLUSH = 7
    HAVE_FLUSH = 8
    LOCAL = 9
    #: adaptive-lazy-flushing fast paths (variant extension, paper §4.5)
    ALF_WRITE = 10
    ALF_FLUSH = 11


class RegionState(IntEnum):
    """Region states after the paper's abstraction (Section 5.2.2)."""

    UNUSED = 0
    USED = 1


class Msg(IntEnum):
    """Message kinds (Section 5.2.3 of the paper)."""

    REQ = 0  # Data Request
    RET = 1  # Data Return
    FLUSH = 2  # Flush
    MIG = 3  # Region Sponmigrate


#: terminal state reached by assertion violations
VIOLATION = ("VIOLATION",)

# lock tuple slots
_SRV_H, _SRV_W, _FLT_H, _FLT_W, _FLS_H, _FLS_W = range(6)

# plain-int phase/message constants for the fast successor path (IntEnum
# member comparisons cost an attribute lookup per use; the hot path pays
# that millions of times)
_PH_IDLE = int(Phase.IDLE)
_PH_WANT_SERVER = int(Phase.WANT_SERVER)
_PH_HAVE_SERVER = int(Phase.HAVE_SERVER)
_PH_WANT_FAULT = int(Phase.WANT_FAULT)
_PH_HAVE_FAULT = int(Phase.HAVE_FAULT)
_PH_WAIT_DATA = int(Phase.WAIT_DATA)
_PH_REMOTE_READY = int(Phase.REMOTE_READY)
_PH_WANT_FLUSH = int(Phase.WANT_FLUSH)
_PH_HAVE_FLUSH = int(Phase.HAVE_FLUSH)
_PH_LOCAL = int(Phase.LOCAL)
_PH_ALF_WRITE = int(Phase.ALF_WRITE)
_PH_ALF_FLUSH = int(Phase.ALF_FLUSH)
#: phases whose thread makes no move of its own (it waits on a lock
#: grant or a data return) — the fast path skips dispatch for these
_PH_NO_THREAD_MOVE = frozenset(
    (_PH_WANT_SERVER, _PH_WANT_FAULT, _PH_WANT_FLUSH, _PH_WAIT_DATA)
)
_MSG_REQ = int(Msg.REQ)
_MSG_RET = int(Msg.RET)
_MSG_FLUSH = int(Msg.FLUSH)
_RS_UNUSED = int(RegionState.UNUSED)
_RS_USED = int(RegionState.USED)


def _set(t: tuple, i: int, v) -> tuple:
    """Functional update of tuple ``t`` at index ``i``."""
    return t[:i] + (v,) + t[i + 1 :]


def _is_pow2(x: int) -> bool:
    return x != 0 and (x & (x - 1)) == 0


class JackalModel:
    """The protocol as an explorable transition system.

    Parameters
    ----------
    config:
        Processor/thread/region topology and exploration options.
    variant:
        Which bug fixes are active (default: the repaired protocol).
    check_assertions:
        Emit ``assertion_violation(...)`` transitions (Requirement 2).
        Disable to reproduce the paper's pre-assertion state counts.
    """

    def __init__(
        self,
        config: Config = Config(),
        variant: ProtocolVariant = ProtocolVariant.fixed(),
        *,
        check_assertions: bool = True,
    ):
        self.config = config
        self.variant = variant
        self.check_assertions = check_assertions
        self.n_proc = config.n_processors
        self.n_threads = config.n_threads
        self.n_regions = config.n_regions
        self.pid_of = tuple(config.processor_of(t) for t in range(self.n_threads))
        self.threads_on = tuple(
            tuple(config.thread_ids_of(p)) for p in range(self.n_proc)
        )
        self._rounds0 = -1 if config.rounds is None else config.rounds
        self._W = config.writes_per_round
        self._precompute_labels()

    # -- label tables ------------------------------------------------------

    def _precompute_labels(self) -> None:
        T, P = self.n_threads, self.n_proc
        L = Labels
        self.lbl_write = [L.write(t) for t in range(T)]
        self.lbl_writeover = [L.writeover(t) for t in range(T)]
        self.lbl_flush = [L.flush(t) for t in range(T)]
        self.lbl_flushover = [L.flushover(t) for t in range(T)]
        self.lbl_restart = [L.restart_write(t) for t in range(T)]
        self.lbl_f2s = [L.fault_to_server(t) for t in range(T)]
        self.lbl_stale = [L.stale_remote_wait(t) for t in range(T)]
        self.lbl_lock_srv = [[L.lock_server(t, p) for p in range(P)] for t in range(T)]
        self.lbl_lock_flt = [[L.lock_fault(t, p) for p in range(P)] for t in range(T)]
        self.lbl_lock_fls = [[L.lock_flush(t, p) for p in range(P)] for t in range(T)]
        self.lbl_sreq = [
            [[L.send_datareq(t, s, d) for d in range(P)] for s in range(P)]
            for t in range(T)
        ]
        self.lbl_sret = [[L.send_dataret(p, d) for d in range(P)] for p in range(P)]
        self.lbl_sretm = [
            [L.send_dataret_mig(p, d) for d in range(P)] for p in range(P)
        ]
        self.lbl_sflush = [
            [[L.send_flush(t, s, d) for d in range(P)] for s in range(P)]
            for t in range(T)
        ]
        self.lbl_fwd_req = [[L.forward_req(p, d) for d in range(P)] for p in range(P)]
        self.lbl_fwd_flush = [
            [L.forward_flush(p, d) for d in range(P)] for p in range(P)
        ]
        self.lbl_signal = [[L.signal(t, p) for p in range(P)] for t in range(T)]
        self.lbl_mig = [L.recv_sponmigrate(p) for p in range(P)]
        self.lbl_frecv = [L.flush_recv(p) for p in range(P)]
        self.lbl_frecv_mig = [
            [L.flush_recv_migrate(p, d) for d in range(P)] for p in range(P)
        ]
        self.lbl_fhome = [[L.flush_home(t, p) for p in range(P)] for t in range(T)]
        self.lbl_fhome_mig = [
            [[L.flush_home_migrate(t, p, d) for d in range(P)] for p in range(P)]
            for t in range(T)
        ]
        self.lbl_hql = [L.lock_homequeue(p) for p in range(P)]
        self.lbl_rql = [L.lock_remotequeue(p) for p in range(P)]
        self.lbl_viol_lt = L.assertion("localthreads_negative")
        self.lbl_viol_ret = L.assertion("unexpected_data_return")

    # -- initial state ------------------------------------------------------

    def initial_state(self):
        """All threads idle, region(s) unused at ``config.initial_home``."""
        threads = tuple(
            (int(Phase.IDLE), 0, 0, 0, self._rounds0, 0)
            for _ in range(self.n_threads)
        )
        home = self.config.initial_home
        copies = tuple(
            tuple((home, int(RegionState.UNUSED), 0, 0) for _ in range(self.n_regions))
            for _ in range(self.n_proc)
        )
        z = (0,) * self.n_proc
        locks = tuple((0, 0, 0, 0, 0, 0) for _ in range(self.n_proc))
        migs = ((0,) * self.n_regions,) * self.n_proc
        return (threads, copies, z, z, z, z, locks, migs)

    # -- helpers -------------------------------------------------------------

    def is_done_state(self, state) -> bool:
        """Proper termination: every thread finished all rounds, no
        pending messages, no held locks."""
        if state == VIOLATION:
            return False
        threads, _copies, hq, rq, hqa, rqa, locks, migs = state
        for ph, _r, _a, _w, rounds, dirty in threads:
            if ph != Phase.IDLE or rounds != 0 or dirty:
                return False
        if any(hq) or any(rq) or any(hqa) or any(rqa):
            return False
        if any(m != 0 for row in migs for m in row):
            return False
        return all(lab == (0, 0, 0, 0, 0, 0) for lab in locks)

    def _violate(self, name: str):
        return (Labels.assertion(name), VIOLATION)

    # -- the successor relation ------------------------------------------------

    def successors(self, state):  # noqa: C901 - the protocol is one big rule set
        """All outgoing ``(label, state)`` transitions of ``state``."""
        if state == VIOLATION:
            return []
        out: list[tuple[str, tuple]] = []
        self._thread_moves(state, out)
        self._lock_grant_moves(state, out)
        self._homequeue_moves(state, out)
        self._remotequeue_moves(state, out)
        if self.config.with_probes:
            self._probe_moves(state, out)
        return out

    def successors_fast(self, state):  # noqa: C901 - deliberately inlined
        """Hand-inlined :meth:`successors` for the exploration engine.

        Semantically identical to :meth:`successors` — same transitions,
        same labels, same order — but with the tuple-surgery helpers
        (``_set``, ``_with_thread``, ...) flattened into direct tuple
        construction. The generic helpers rebuild an intermediate
        8-tuple per component touched; a typical protocol move touches
        two or three components, so the reference path allocates ~3x
        the tuples and pays ~10 function calls per transition that this
        path does not. ``tests/jackal/test_codec.py`` pins exact
        agreement between the two implementations state by state.

        Keep :meth:`successors` as the readable specification; mirror
        any rule change here.
        """
        if len(state) != 8:  # VIOLATION is the only non-8-tuple state
            return []
        threads, copies, hq, rq, hqa, rqa, locks, migs = state
        out: list[tuple[str, tuple]] = []
        out_append = out.append
        n_proc = self.n_proc
        n_regions = self.n_regions
        variant = self.variant
        alf = variant.adaptive_lazy_flushing
        home_migration = variant.home_migration
        check_assertions = self.check_assertions
        pid_of = self.pid_of
        W = self._W

        # -- thread moves --------------------------------------------------
        lbl_write = self.lbl_write
        lbl_writeover = self.lbl_writeover
        for tid in range(self.n_threads):
            th = threads[tid]
            ph, reg, aho, wdone, rounds, dirty = th
            pid = pid_of[tid]

            if ph == _PH_IDLE:
                if rounds == 0:
                    continue
                if wdone < W:
                    lp = locks[pid]
                    crow = copies[pid]
                    tbit = 1 << tid
                    # this branch emits one move per region: hoist the
                    # surrounding slices out of the region loop
                    tpre, tsuf = threads[:tid], threads[tid + 1:]
                    lpre, lsuf = locks[:pid], locks[pid + 1:]
                    for r in range(n_regions):
                        if dirty >> r & 1:
                            nt = (_PH_LOCAL, r, aho, wdone, rounds, dirty)
                            out_append((
                                lbl_write[tid],
                                (tpre + (nt,) + tsuf,
                                 copies, hq, rq, hqa, rqa, locks, migs),
                            ))
                        elif crow[r][0] == pid:
                            if alf and crow[r][2] in (0, 1 << pid):
                                nt = (_PH_ALF_WRITE, r, 0, wdone, rounds, dirty)
                                out_append((
                                    lbl_write[tid],
                                    (tpre + (nt,) + tsuf,
                                     copies, hq, rq, hqa, rqa, locks, migs),
                                ))
                                continue
                            nt = (_PH_WANT_SERVER, r, 0, wdone, rounds, dirty)
                            nlp = (lp[0], lp[1] | tbit, lp[2], lp[3], lp[4], lp[5])
                            out_append((
                                lbl_write[tid],
                                (tpre + (nt,) + tsuf,
                                 copies, hq, rq, hqa, rqa,
                                 lpre + (nlp,) + lsuf, migs),
                            ))
                        else:
                            nt = (_PH_WANT_FAULT, r, 0, wdone, rounds, dirty)
                            nlp = (lp[0], lp[1], lp[2], lp[3] | tbit, lp[4], lp[5])
                            out_append((
                                lbl_write[tid],
                                (tpre + (nt,) + tsuf,
                                 copies, hq, rq, hqa, rqa,
                                 lpre + (nlp,) + lsuf, migs),
                            ))
                elif dirty:
                    if alf and self._alf_flushable(copies, pid, dirty):
                        nt = (_PH_ALF_FLUSH, reg, 0, wdone, rounds, dirty)
                        out_append((
                            self.lbl_flush[tid],
                            (threads[:tid] + (nt,) + threads[tid + 1:],
                             copies, hq, rq, hqa, rqa, locks, migs),
                        ))
                        continue
                    nt = (_PH_WANT_FLUSH, reg, 0, wdone, rounds, dirty)
                    lp = locks[pid]
                    nlp = (lp[0], lp[1], lp[2], lp[3], lp[4], lp[5] | (1 << tid))
                    out_append((
                        self.lbl_flush[tid],
                        (threads[:tid] + (nt,) + threads[tid + 1:],
                         copies, hq, rq, hqa, rqa,
                         locks[:pid] + (nlp,) + locks[pid + 1:], migs),
                    ))
                else:
                    raise ModelError(f"thread {tid}: wdone={wdone} but clean")
                continue

            if ph == _PH_HAVE_FLUSH:
                if dirty == 0:
                    nr = rounds - 1 if rounds > 0 else rounds
                    nt = (_PH_IDLE, reg, 0, 0, nr, 0)
                    lp = locks[pid]
                    if lp[4] == 0:
                        raise ModelError(
                            f"releasing free lock slot {_FLS_H} on p{pid}"
                        )
                    nlp = (lp[0], lp[1], lp[2], lp[3], 0, lp[5])
                    out_append((
                        self.lbl_flushover[tid],
                        (threads[:tid] + (nt,) + threads[tid + 1:],
                         copies, hq, rq, hqa, rqa,
                         locks[:pid] + (nlp,) + locks[pid + 1:], migs),
                    ))
                    continue
                r = (dirty & -dirty).bit_length() - 1
                crow = copies[pid]
                home = crow[r][0]
                if home == pid:
                    h, rs, wl, lt = crow[r]
                    if check_assertions and lt <= 0:
                        out_append((self.lbl_viol_lt, VIOLATION))
                        continue
                    nlt = lt - 1
                    nwl = wl if nlt > 0 else wl & ~(1 << pid)
                    ndirty = dirty & ~(1 << r)
                    nt = (_PH_HAVE_FLUSH, reg, 0, wdone, rounds, ndirty)
                    if (home_migration and nwl != 0
                            and (nwl & (nwl - 1)) == 0
                            and nwl != (1 << pid)):
                        dst = nwl.bit_length() - 1
                        if migs[dst][r] != 0:
                            continue
                        nc = (dst, _RS_USED, 0, nlt)
                        mrow = migs[dst]
                        nmrow = (mrow[:r] + ((nwl, _RS_USED),) + mrow[r + 1:])
                        out_append((
                            self.lbl_fhome_mig[tid][pid][dst],
                            (threads[:tid] + (nt,) + threads[tid + 1:],
                             copies[:pid] + (crow[:r] + (nc,) + crow[r + 1:],)
                             + copies[pid + 1:],
                             hq, rq, hqa, rqa, locks,
                             migs[:dst] + (nmrow,) + migs[dst + 1:]),
                        ))
                    else:
                        nrs = _RS_USED if (nwl or nlt > 0) else _RS_UNUSED
                        nc = (pid, nrs, nwl, nlt)
                        out_append((
                            self.lbl_fhome[tid][pid],
                            (threads[:tid] + (nt,) + threads[tid + 1:],
                             copies[:pid] + (crow[:r] + (nc,) + crow[r + 1:],)
                             + copies[pid + 1:],
                             hq, rq, hqa, rqa, locks, migs),
                        ))
                else:
                    if hq[home] == 0:
                        h, rs, wl, lt = crow[r]
                        if check_assertions and lt <= 0:
                            out_append((self.lbl_viol_lt, VIOLATION))
                            continue
                        nc = (h, rs, wl, lt - 1)
                        msg = (_MSG_FLUSH, tid, pid, r)
                        nt = (_PH_HAVE_FLUSH, reg, 0, wdone, rounds,
                              dirty & ~(1 << r))
                        out_append((
                            self.lbl_sflush[tid][pid][home],
                            (threads[:tid] + (nt,) + threads[tid + 1:],
                             copies[:pid] + (crow[:r] + (nc,) + crow[r + 1:],)
                             + copies[pid + 1:],
                             hq[:home] + (msg,) + hq[home + 1:],
                             rq, hqa, rqa, locks, migs),
                        ))
                continue

            if ph in _PH_NO_THREAD_MOVE:
                # WANT_* / WAIT_DATA: this thread moves via other
                # components; skip the rest of the dispatch chain
                continue

            if ph == _PH_REMOTE_READY:
                crow = copies[pid]
                h, rs, wl, lt = crow[reg]
                nc = (h, rs, wl, lt + 1)
                ncopies = (copies[:pid]
                           + (crow[:reg] + (nc,) + crow[reg + 1:],)
                           + copies[pid + 1:])
                nt = (_PH_IDLE, reg, 0, wdone + 1, rounds, dirty | (1 << reg))
                lp = locks[pid]
                if lp[2] == 0:
                    raise ModelError(f"releasing free lock slot {_FLT_H} on p{pid}")
                nlp = (lp[0], lp[1], 0, lp[3], lp[4], lp[5])
                out_append((
                    lbl_writeover[tid],
                    (threads[:tid] + (nt,) + threads[tid + 1:],
                     ncopies, hq, rq, hqa, rqa,
                     locks[:pid] + (nlp,) + locks[pid + 1:], migs),
                ))
                continue

            if ph == _PH_HAVE_FAULT:
                home = copies[pid][reg][0]
                lp = locks[pid]
                if home == pid:
                    if variant.fault_lock_recheck:
                        if lp[2] == 0:
                            raise ModelError(
                                f"releasing free lock slot {_FLT_H} on p{pid}"
                            )
                        nt = (_PH_WANT_SERVER, reg, 0, wdone, rounds, dirty)
                        nlp = (lp[0], lp[1] | (1 << tid), 0, lp[3], lp[4], lp[5])
                        out_append((
                            self.lbl_f2s[tid],
                            (threads[:tid] + (nt,) + threads[tid + 1:],
                             copies, hq, rq, hqa, rqa,
                             locks[:pid] + (nlp,) + locks[pid + 1:], migs),
                        ))
                    else:
                        nt = (_PH_WAIT_DATA, reg, 0, wdone, rounds, dirty)
                        out_append((
                            self.lbl_stale[tid],
                            (threads[:tid] + (nt,) + threads[tid + 1:],
                             copies, hq, rq, hqa, rqa, locks, migs),
                        ))
                else:
                    if hq[home] == 0:
                        msg = (_MSG_REQ, tid, pid, reg)
                        nt = (_PH_WAIT_DATA, reg, 0, wdone, rounds, dirty)
                        out_append((
                            self.lbl_sreq[tid][pid][home],
                            (threads[:tid] + (nt,) + threads[tid + 1:],
                             copies, hq[:home] + (msg,) + hq[home + 1:],
                             rq, hqa, rqa, locks, migs),
                        ))
                continue

            if ph == _PH_HAVE_SERVER:
                crow = copies[pid]
                lp = locks[pid]
                if lp[0] == 0:
                    raise ModelError(f"releasing free lock slot {_SRV_H} on p{pid}")
                if crow[reg][0] == pid:
                    h, rs, wl, lt = crow[reg]
                    nc = (pid, _RS_USED, wl | (1 << pid), lt + 1)
                    ncopies = (copies[:pid]
                               + (crow[:reg] + (nc,) + crow[reg + 1:],)
                               + copies[pid + 1:])
                    nt = (_PH_IDLE, reg, 0, wdone + 1, rounds,
                          dirty | (1 << reg))
                    nlp = (0, lp[1], lp[2], lp[3], lp[4], lp[5])
                    out_append((
                        lbl_writeover[tid],
                        (threads[:tid] + (nt,) + threads[tid + 1:],
                         ncopies, hq, rq, hqa, rqa,
                         locks[:pid] + (nlp,) + locks[pid + 1:], migs),
                    ))
                else:
                    nt = (_PH_WANT_FAULT, reg, 0, wdone, rounds, dirty)
                    nlp = (0, lp[1], lp[2], lp[3] | (1 << tid), lp[4], lp[5])
                    out_append((
                        self.lbl_restart[tid],
                        (threads[:tid] + (nt,) + threads[tid + 1:],
                         copies, hq, rq, hqa, rqa,
                         locks[:pid] + (nlp,) + locks[pid + 1:], migs),
                    ))
                continue

            if ph == _PH_LOCAL:
                nt = (_PH_IDLE, reg, aho, wdone + 1, rounds, dirty)
                out_append((
                    lbl_writeover[tid],
                    (threads[:tid] + (nt,) + threads[tid + 1:],
                     copies, hq, rq, hqa, rqa, locks, migs),
                ))
                continue

            if ph == _PH_ALF_WRITE:
                crow = copies[pid]
                h, rs, wl, lt = crow[reg]
                if h == pid and wl in (0, 1 << pid):
                    nc = (pid, _RS_USED, wl | (1 << pid), lt + 1)
                    ncopies = (copies[:pid]
                               + (crow[:reg] + (nc,) + crow[reg + 1:],)
                               + copies[pid + 1:])
                    nt = (_PH_IDLE, reg, 0, wdone + 1, rounds,
                          dirty | (1 << reg))
                    out_append((
                        lbl_writeover[tid],
                        (threads[:tid] + (nt,) + threads[tid + 1:],
                         ncopies, hq, rq, hqa, rqa, locks, migs),
                    ))
                else:
                    nt = (_PH_IDLE, reg, 0, wdone, rounds, dirty)
                    out_append((
                        self.lbl_restart[tid],
                        (threads[:tid] + (nt,) + threads[tid + 1:],
                         copies, hq, rq, hqa, rqa, locks, migs),
                    ))
                continue

            if ph == _PH_ALF_FLUSH:
                if self._alf_flushable(copies, pid, dirty):
                    row = list(copies[pid])
                    ok = True
                    for r in range(n_regions):
                        if not (dirty >> r & 1):
                            continue
                        h, rs, wl, lt = row[r]
                        if check_assertions and lt <= 0:
                            ok = False
                            break
                        nlt = lt - 1
                        nwl = wl if nlt > 0 else wl & ~(1 << pid)
                        nrs = _RS_USED if (nwl or nlt > 0) else _RS_UNUSED
                        row[r] = (pid, nrs, nwl, nlt)
                    if not ok:
                        out_append((self.lbl_viol_lt, VIOLATION))
                        continue
                    nr = rounds - 1 if rounds > 0 else rounds
                    nt = (_PH_IDLE, reg, 0, 0, nr, 0)
                    out_append((
                        self.lbl_flushover[tid],
                        (threads[:tid] + (nt,) + threads[tid + 1:],
                         copies[:pid] + (tuple(row),) + copies[pid + 1:],
                         hq, rq, hqa, rqa, locks, migs),
                    ))
                else:
                    nt = (_PH_WANT_FLUSH, reg, 0, wdone, rounds, dirty)
                    lp = locks[pid]
                    nlp = (lp[0], lp[1], lp[2], lp[3], lp[4], lp[5] | (1 << tid))
                    out_append((
                        self.lbl_restart[tid],
                        (threads[:tid] + (nt,) + threads[tid + 1:],
                         copies, hq, rq, hqa, rqa,
                         locks[:pid] + (nlp,) + locks[pid + 1:], migs),
                    ))
                continue

            # WANT_* and WAIT_DATA phases move via other components

        # -- lock grants ---------------------------------------------------
        lbl_lock_srv = self.lbl_lock_srv
        lbl_lock_flt = self.lbl_lock_flt
        lbl_lock_fls = self.lbl_lock_fls
        for pid in range(n_proc):
            sh, sw, fh, fw, lh, lw = locks[pid]
            if sw and sh == 0 and lh == 0:
                m = sw
                while m:
                    low = m & -m
                    tid = low.bit_length() - 1
                    m ^= low
                    th = threads[tid]
                    nt = (_PH_HAVE_SERVER, th[1], th[2], th[3], th[4], th[5])
                    nlp = (tid + 1, sw & ~low, fh, fw, lh, lw)
                    out_append((
                        lbl_lock_srv[tid][pid],
                        (threads[:tid] + (nt,) + threads[tid + 1:],
                         copies, hq, rq, hqa, rqa,
                         locks[:pid] + (nlp,) + locks[pid + 1:], migs),
                    ))
            if fw and fh == 0 and lh == 0:
                m = fw
                while m:
                    low = m & -m
                    tid = low.bit_length() - 1
                    m ^= low
                    th = threads[tid]
                    nt = (_PH_HAVE_FAULT, th[1], th[2], th[3], th[4], th[5])
                    nlp = (sh, sw, tid + 1, fw & ~low, lh, lw)
                    out_append((
                        lbl_lock_flt[tid][pid],
                        (threads[:tid] + (nt,) + threads[tid + 1:],
                         copies, hq, rq, hqa, rqa,
                         locks[:pid] + (nlp,) + locks[pid + 1:], migs),
                    ))
            if (lw and lh == 0 and sh == 0 and fh == 0
                    and hq[pid] == 0 and rq[pid] == 0
                    and hqa[pid] == 0 and rqa[pid] == 0
                    and not any(migs[pid])):
                m = lw
                while m:
                    low = m & -m
                    tid = low.bit_length() - 1
                    m ^= low
                    th = threads[tid]
                    nt = (_PH_HAVE_FLUSH, th[1], th[2], th[3], th[4], th[5])
                    nlp = (sh, sw, fh, fw, tid + 1, lw & ~low)
                    out_append((
                        lbl_lock_fls[tid][pid],
                        (threads[:tid] + (nt,) + threads[tid + 1:],
                         copies, hq, rq, hqa, rqa,
                         locks[:pid] + (nlp,) + locks[pid + 1:], migs),
                    ))

        # -- home queue handlers -------------------------------------------
        informs = variant.sponmigrate_informs_threads
        for pid in range(n_proc):
            migrow = migs[pid]
            for r in range(n_regions):
                if migrow[r] != 0:
                    wl, rstate = migrow[r]
                    crow = copies[pid]
                    nc = (pid, rstate, wl, crow[r][3])
                    ncopies = (copies[:pid]
                               + (crow[:r] + (nc,) + crow[r + 1:],)
                               + copies[pid + 1:])
                    if informs:
                        nthreads_l = list(threads)
                        for tid in self.threads_on[pid]:
                            th = nthreads_l[tid]
                            if th[0] == _PH_WAIT_DATA and th[1] == r:
                                nthreads_l[tid] = (th[0], th[1], 1,
                                                   th[3], th[4], th[5])
                        nthreads = tuple(nthreads_l)
                    else:
                        nthreads = threads
                    nmigrow = migrow[:r] + (0,) + migrow[r + 1:]
                    out_append((
                        self.lbl_mig[pid],
                        (nthreads, ncopies, hq, rq, hqa, rqa, locks,
                         migs[:pid] + (nmigrow,) + migs[pid + 1:]),
                    ))
            held = hqa[pid]
            if held == 0:
                msg = hq[pid]
                if msg == 0:
                    continue
                rqp = rq[pid]
                rqap = rqa[pid]
                mig_pending = ((rqp != 0 and rqp[3] == 1)
                               or (rqap != 0 and rqap[3] == 1)
                               or any(migrow))
                if not mig_pending:
                    out_append((
                        self.lbl_hql[pid],
                        (threads, copies, hq[:pid] + (0,) + hq[pid + 1:],
                         rq, hqa[:pid] + (msg,) + hqa[pid + 1:],
                         rqa, locks, migs),
                    ))
                continue
            kind = held[0]
            if kind == _MSG_REQ:
                _k, tid, src, r = held
                crow = copies[pid]
                home, rs, wl, lt = crow[r]
                if home != pid:
                    if hq[home] == 0:
                        out_append((
                            self.lbl_fwd_req[pid][home],
                            (threads, copies,
                             hq[:home] + (held,) + hq[home + 1:],
                             rq, hqa[:pid] + (0,) + hqa[pid + 1:],
                             rqa, locks, migs),
                        ))
                    continue
                nwl = wl | (1 << src)
                if rq[src] != 0:
                    continue
                if home_migration and nwl == (1 << src) and src != pid:
                    nc = (src, _RS_USED, 0, lt)
                    ret = (_MSG_RET, tid, pid, 1, nwl, _RS_USED, r)
                    label = self.lbl_sretm[pid][src]
                else:
                    nc = (pid, _RS_USED, nwl, lt)
                    ret = (_MSG_RET, tid, pid, 0, 0, 0, r)
                    label = self.lbl_sret[pid][src]
                out_append((
                    label,
                    (threads,
                     copies[:pid] + (crow[:r] + (nc,) + crow[r + 1:],)
                     + copies[pid + 1:],
                     hq, rq[:src] + (ret,) + rq[src + 1:],
                     hqa[:pid] + (0,) + hqa[pid + 1:],
                     rqa, locks, migs),
                ))
            elif kind == _MSG_FLUSH:
                _k, tid, src, r = held
                crow = copies[pid]
                home, rs, wl, lt = crow[r]
                if home != pid:
                    if hq[home] == 0:
                        out_append((
                            self.lbl_fwd_flush[pid][home],
                            (threads, copies,
                             hq[:home] + (held,) + hq[home + 1:],
                             rq, hqa[:pid] + (0,) + hqa[pid + 1:],
                             rqa, locks, migs),
                        ))
                    continue
                nwl = wl & ~(1 << src)
                if (home_migration and nwl != 0
                        and (nwl & (nwl - 1)) == 0
                        and nwl != (1 << pid)):
                    dst = nwl.bit_length() - 1
                    if migs[dst][r] != 0:
                        continue
                    nc = (dst, _RS_USED, 0, lt)
                    mrow = migs[dst]
                    out_append((
                        self.lbl_frecv_mig[pid][dst],
                        (threads,
                         copies[:pid] + (crow[:r] + (nc,) + crow[r + 1:],)
                         + copies[pid + 1:],
                         hq, rq, hqa[:pid] + (0,) + hqa[pid + 1:],
                         rqa, locks,
                         migs[:dst]
                         + (mrow[:r] + ((nwl, _RS_USED),) + mrow[r + 1:],)
                         + migs[dst + 1:]),
                    ))
                else:
                    nrs = _RS_USED if (nwl or lt > 0) else _RS_UNUSED
                    nc = (pid, nrs, nwl, lt)
                    out_append((
                        self.lbl_frecv[pid],
                        (threads,
                         copies[:pid] + (crow[:r] + (nc,) + crow[r + 1:],)
                         + copies[pid + 1:],
                         hq, rq, hqa[:pid] + (0,) + hqa[pid + 1:],
                         rqa, locks, migs),
                    ))
            else:  # pragma: no cover - defensive
                raise ModelError(f"bad home-queue message {held!r}")

        # -- remote queue handlers -----------------------------------------
        lbl_signal = self.lbl_signal
        for pid in range(n_proc):
            held = rqa[pid]
            if held == 0:
                msg = rq[pid]
                if msg == 0:
                    continue
                out_append((
                    self.lbl_rql[pid],
                    (threads, copies, hq, rq[:pid] + (0,) + rq[pid + 1:],
                     hqa, rqa[:pid] + (msg,) + rqa[pid + 1:], locks, migs),
                ))
                continue
            _k, tid, sender, mig, wl, rstate, r = held
            th = threads[tid]
            ph, reg, aho, wdone, rounds, dirty = th
            if check_assertions and (
                ph != _PH_WAIT_DATA or reg != r or pid_of[tid] != pid
            ):
                out_append((self.lbl_viol_ret, VIOLATION))
                continue
            if mig:
                crow = copies[pid]
                nc = (pid, rstate, wl, crow[r][3])
                ncopies = (copies[:pid]
                           + (crow[:r] + (nc,) + crow[r + 1:],)
                           + copies[pid + 1:])
            elif aho:
                ncopies = copies
            else:
                crow = copies[pid]
                nc = (sender, _RS_USED, 0, crow[r][3])
                ncopies = (copies[:pid]
                           + (crow[:r] + (nc,) + crow[r + 1:],)
                           + copies[pid + 1:])
            nt = (_PH_REMOTE_READY, reg, aho, wdone, rounds, dirty)
            out_append((
                lbl_signal[tid][pid],
                (threads[:tid] + (nt,) + threads[tid + 1:],
                 ncopies, hq, rq, hqa,
                 rqa[:pid] + (0,) + rqa[pid + 1:], locks, migs),
            ))

        if self.config.with_probes:
            self._probe_moves(state, out)
        return out

    def codec(self):
        """The :class:`~repro.jackal.codec.StateCodec` for this topology
        (built on first use, then cached — its memo tables are shared
        by every exploration of this model)."""
        codec = getattr(self, "_codec", None)
        if codec is None:
            from repro.jackal.codec import StateCodec

            codec = self._codec = StateCodec(self)
        return codec

    # -- threads -----------------------------------------------------------------

    def _thread_moves(self, state, out) -> None:
        threads, copies, hq, rq, hqa, rqa, locks, migs = state
        W = self._W
        for tid in range(self.n_threads):
            ph, reg, aho, wdone, rounds, dirty = threads[tid]
            pid = self.pid_of[tid]

            if ph == Phase.IDLE:
                if rounds == 0:
                    continue  # finished all rounds (proper termination)
                if wdone < W:
                    # start a write to a chosen region (the access check)
                    for r in range(self.n_regions):
                        if dirty >> r & 1:
                            # valid cached copy: purely local write
                            nt = (int(Phase.LOCAL), r, aho, wdone, rounds, dirty)
                            out.append(
                                (
                                    self.lbl_write[tid],
                                    self._with_thread(state, tid, nt),
                                )
                            )
                        elif copies[pid][r][0] == pid:
                            home_copy = copies[pid][r]
                            if self.variant.adaptive_lazy_flushing and (
                                home_copy[2] in (0, 1 << pid)
                            ):
                                # exclusive at-home region: lock-free
                                # fast path (adaptive lazy flushing)
                                nt = (int(Phase.ALF_WRITE), r, 0, wdone, rounds, dirty)
                                out.append(
                                    (
                                        self.lbl_write[tid],
                                        self._with_thread(state, tid, nt),
                                    )
                                )
                                continue
                            # at home: request the server lock
                            nt = (int(Phase.WANT_SERVER), r, 0, wdone, rounds, dirty)
                            ns = self._with_thread(state, tid, nt)
                            ns = self._lock_wait(ns, pid, _SRV_W, tid)
                            out.append((self.lbl_write[tid], ns))
                        else:
                            # remote: request the fault lock
                            nt = (int(Phase.WANT_FAULT), r, 0, wdone, rounds, dirty)
                            ns = self._with_thread(state, tid, nt)
                            ns = self._lock_wait(ns, pid, _FLT_W, tid)
                            out.append((self.lbl_write[tid], ns))
                elif dirty:
                    if self.variant.adaptive_lazy_flushing and self._alf_flushable(
                        copies, pid, dirty
                    ):
                        # every dirty region is exclusive at home: skip
                        # the flush lock (adaptive lazy flushing)
                        nt = (int(Phase.ALF_FLUSH), reg, 0, wdone, rounds, dirty)
                        out.append(
                            (self.lbl_flush[tid], self._with_thread(state, tid, nt))
                        )
                        continue
                    # synchronisation point: request the flush lock
                    nt = (int(Phase.WANT_FLUSH), reg, 0, wdone, rounds, dirty)
                    ns = self._with_thread(state, tid, nt)
                    ns = self._lock_wait(ns, pid, _FLS_W, tid)
                    out.append((self.lbl_flush[tid], ns))
                else:
                    # wrote W times but nothing dirty cannot happen
                    raise ModelError(f"thread {tid}: wdone={wdone} but clean")
                continue

            if ph == Phase.LOCAL:
                # complete the local (valid-copy) write; completion is
                # writeover(t) like every other write path, so the
                # paper's Requirement-4 formula covers cached writes too
                nt = (int(Phase.IDLE), reg, aho, wdone + 1, rounds, dirty)
                out.append(
                    (self.lbl_writeover[tid], self._with_thread(state, tid, nt))
                )
                continue

            if ph == Phase.ALF_WRITE:
                h, rs, wl, lt = copies[pid][reg]
                if h == pid and wl in (0, 1 << pid):
                    # still exclusive: complete without the server lock
                    nc = (pid, int(RegionState.USED), wl | (1 << pid), lt + 1)
                    ns = self._with_copy(state, pid, reg, nc)
                    nt = (
                        int(Phase.IDLE),
                        reg,
                        0,
                        wdone + 1,
                        rounds,
                        dirty | (1 << reg),
                    )
                    out.append(
                        (self.lbl_writeover[tid], self._with_thread(ns, tid, nt))
                    )
                else:
                    # a remote writer (or migration) intervened: retry
                    # through the regular locked path
                    nt = (int(Phase.IDLE), reg, 0, wdone, rounds, dirty)
                    out.append(
                        (self.lbl_restart[tid], self._with_thread(state, tid, nt))
                    )
                continue

            if ph == Phase.ALF_FLUSH:
                if self._alf_flushable(copies, pid, dirty):
                    ns = state
                    for r in range(self.n_regions):
                        if not (dirty >> r & 1):
                            continue
                        h, rs, wl, lt = ns[1][pid][r]
                        if self.check_assertions and lt <= 0:
                            ns = None
                            break
                        nlt = lt - 1
                        nwl = wl if nlt > 0 else wl & ~(1 << pid)
                        nrs = (
                            int(RegionState.USED)
                            if (nwl or nlt > 0)
                            else int(RegionState.UNUSED)
                        )
                        ns = self._with_copy(ns, pid, r, (pid, nrs, nwl, nlt))
                    if ns is None:
                        out.append(self._violate("localthreads_negative"))
                        continue
                    nr = rounds - 1 if rounds > 0 else rounds
                    nt = (int(Phase.IDLE), reg, 0, 0, nr, 0)
                    out.append(
                        (self.lbl_flushover[tid], self._with_thread(ns, tid, nt))
                    )
                else:
                    # eligibility broken: fall back to the flush lock
                    nt = (int(Phase.WANT_FLUSH), reg, 0, wdone, rounds, dirty)
                    ns = self._with_thread(state, tid, nt)
                    ns = self._lock_wait(ns, pid, _FLS_W, tid)
                    out.append((self.lbl_restart[tid], ns))
                continue

            if ph == Phase.HAVE_SERVER:
                home = copies[pid][reg][0]
                if home == pid:
                    # write at home
                    h, rs, wl, lt = copies[pid][reg]
                    nc = (pid, int(RegionState.USED), wl | (1 << pid), lt + 1)
                    ns = self._with_copy(state, pid, reg, nc)
                    nt = (
                        int(Phase.IDLE),
                        reg,
                        0,
                        wdone + 1,
                        rounds,
                        dirty | (1 << reg),
                    )
                    ns = self._with_thread(ns, tid, nt)
                    ns = self._lock_release(ns, pid, _SRV_H)
                    out.append((self.lbl_writeover[tid], ns))
                else:
                    # the home migrated away while we waited: retry remotely
                    nt = (int(Phase.WANT_FAULT), reg, 0, wdone, rounds, dirty)
                    ns = self._with_thread(state, tid, nt)
                    ns = self._lock_release(ns, pid, _SRV_H)
                    ns = self._lock_wait(ns, pid, _FLT_W, tid)
                    out.append((self.lbl_restart[tid], ns))
                continue

            if ph == Phase.HAVE_FAULT:
                home = copies[pid][reg][0]
                if home == pid:
                    if self.variant.fault_lock_recheck:
                        # Error-1 fix: switch to the server lock
                        nt = (int(Phase.WANT_SERVER), reg, 0, wdone, rounds, dirty)
                        ns = self._with_thread(state, tid, nt)
                        ns = self._lock_release(ns, pid, _FLT_H)
                        ns = self._lock_wait(ns, pid, _SRV_W, tid)
                        out.append((self.lbl_f2s[tid], ns))
                    else:
                        # Error-1 bug: the access check inside the fault
                        # handler finds a valid local copy, so no Data
                        # Request is sent — yet the thread waits for one.
                        nt = (int(Phase.WAIT_DATA), reg, 0, wdone, rounds, dirty)
                        out.append(
                            (
                                self.lbl_stale[tid],
                                self._with_thread(state, tid, nt),
                            )
                        )
                else:
                    if hq[home] == 0:
                        msg = (int(Msg.REQ), tid, pid, reg)
                        ns = self._with_hq(state, home, msg)
                        nt = (int(Phase.WAIT_DATA), reg, 0, wdone, rounds, dirty)
                        ns = self._with_thread(ns, tid, nt)
                        out.append((self.lbl_sreq[tid][pid][home], ns))
                    # else: blocked until the home queue drains
                continue

            if ph == Phase.REMOTE_READY:
                h, rs, wl, lt = copies[pid][reg]
                nc = (h, rs, wl, lt + 1)
                ns = self._with_copy(state, pid, reg, nc)
                nt = (
                    int(Phase.IDLE),
                    reg,
                    0,
                    wdone + 1,
                    rounds,
                    dirty | (1 << reg),
                )
                ns = self._with_thread(ns, tid, nt)
                ns = self._lock_release(ns, pid, _FLT_H)
                out.append((self.lbl_writeover[tid], ns))
                continue

            if ph == Phase.HAVE_FLUSH:
                if dirty == 0:
                    # flush list empty: release and finish the round
                    nr = rounds - 1 if rounds > 0 else rounds
                    nt = (int(Phase.IDLE), reg, 0, 0, nr, 0)
                    ns = self._with_thread(state, tid, nt)
                    ns = self._lock_release(ns, pid, _FLS_H)
                    out.append((self.lbl_flushover[tid], ns))
                    continue
                r = (dirty & -dirty).bit_length() - 1  # lowest dirty region
                home = copies[pid][r][0]
                if home == pid:
                    self._flush_at_home(state, out, tid, pid, r)
                else:
                    if hq[home] == 0:
                        h, rs, wl, lt = copies[pid][r]
                        if self.check_assertions and lt <= 0:
                            out.append(self._violate("localthreads_negative"))
                            continue
                        nc = (h, rs, wl, lt - 1)
                        ns = self._with_copy(state, pid, r, nc)
                        msg = (int(Msg.FLUSH), tid, pid, r)
                        ns = self._with_hq(ns, home, msg)
                        nt = (
                            int(Phase.HAVE_FLUSH),
                            reg,
                            0,
                            wdone,
                            rounds,
                            dirty & ~(1 << r),
                        )
                        ns = self._with_thread(ns, tid, nt)
                        out.append((self.lbl_sflush[tid][pid][home], ns))
                    # else: blocked until the home queue drains
                continue

            # WANT_* and WAIT_DATA phases move via other components

    def _flush_at_home(self, state, out, tid: int, pid: int, r: int) -> None:
        threads, copies, hq, rq, hqa, rqa, locks, migs = state
        ph, reg, aho, wdone, rounds, dirty = threads[tid]
        h, rs, wl, lt = copies[pid][r]
        if self.check_assertions and lt <= 0:
            out.append(self._violate("localthreads_negative"))
            return
        nlt = lt - 1
        nwl = wl if nlt > 0 else wl & ~(1 << pid)
        migrate = (
            self.variant.home_migration
            and nwl != 0
            and _is_pow2(nwl)
            and nwl != (1 << pid)
        )
        ndirty = dirty & ~(1 << r)
        nt = (int(Phase.HAVE_FLUSH), reg, 0, wdone, rounds, ndirty)
        if migrate:
            dst = nwl.bit_length() - 1
            # In the fixed protocol the slot is always free: only the
            # home starts a migration, and it stops being the home by
            # doing so. Buggy variants can break that bookkeeping, so an
            # occupied slot blocks the flush step instead of crashing.
            if migs[dst][r] != 0:
                return
            nc = (dst, int(RegionState.USED), 0, nlt)
            ns = self._with_copy(state, pid, r, nc)
            ns = self._with_mig(ns, dst, r, (nwl, int(RegionState.USED)))
            ns = self._with_thread(ns, tid, nt)
            out.append((self.lbl_fhome_mig[tid][pid][dst], ns))
        else:
            nrs = (
                int(RegionState.USED)
                if (nwl or nlt > 0)
                else int(RegionState.UNUSED)
            )
            nc = (pid, nrs, nwl, nlt)
            ns = self._with_copy(state, pid, r, nc)
            ns = self._with_thread(ns, tid, nt)
            out.append((self.lbl_fhome[tid][pid], ns))

    # -- protocol lock manager -----------------------------------------------

    def _lock_grant_moves(self, state, out) -> None:
        threads, copies, hq, rq, hqa, rqa, locks, migs = state
        for pid in range(self.n_proc):
            sh, sw, fh, fw, lh, lw = locks[pid]
            # server lock: mutually exclusive with the flush lock
            if sw and sh == 0 and lh == 0:
                for tid in self._bits(sw):
                    ns = self._lock_grant(state, pid, _SRV_H, _SRV_W, tid)
                    ns = self._set_phase(ns, tid, Phase.HAVE_SERVER)
                    out.append((self.lbl_lock_srv[tid][pid], ns))
            # fault lock: mutually exclusive with the flush lock
            if fw and fh == 0 and lh == 0:
                for tid in self._bits(fw):
                    ns = self._lock_grant(state, pid, _FLT_H, _FLT_W, tid)
                    ns = self._set_phase(ns, tid, Phase.HAVE_FAULT)
                    out.append((self.lbl_lock_flt[tid][pid], ns))
            # flush lock: excluded by server, fault, and pending queue work
            if (
                lw
                and lh == 0
                and sh == 0
                and fh == 0
                and hq[pid] == 0
                and rq[pid] == 0
                and hqa[pid] == 0
                and rqa[pid] == 0
                and not any(migs[pid])
            ):
                for tid in self._bits(lw):
                    ns = self._lock_grant(state, pid, _FLS_H, _FLS_W, tid)
                    ns = self._set_phase(ns, tid, Phase.HAVE_FLUSH)
                    out.append((self.lbl_lock_fls[tid][pid], ns))

    # -- home queue handler ------------------------------------------------------

    def _homequeue_moves(self, state, out) -> None:
        threads, copies, hq, rq, hqa, rqa, locks, migs = state
        for pid in range(self.n_proc):
            # A Region Sponmigrate is absorbed eagerly from its control
            # slot, regardless of what the handler is doing: it is pure
            # control information (a local copy update, no sends), and
            # letting it wait behind a handler whose forward is blocked
            # can wedge processors against each other — each holding a
            # request the other's stale home pointer bounces back, with
            # the resolving migration stuck behind blocked data traffic.
            for r in range(self.n_regions):
                if migs[pid][r] != 0:
                    self._dispatch_mig(state, out, pid, r)
            held = hqa[pid]
            if held == 0:
                msg = hq[pid]
                if msg == 0:
                    continue
                # Acquire the homequeue lock and take the message out of
                # the queue (the muCRL spec's "the processor takes this
                # message") — freeing the slot before processing is what
                # prevents two capacity-one queues from wedging each
                # other during forwarding. Migration replies have
                # priority: a pending migration Data Return makes this
                # very processor the home, and popping a request before
                # learning that lets the request chase the migrating
                # home around the network forever — the bounce the
                # paper's Requirement 4 forbids. Plain replies carry no
                # home transfer and need no such ordering (and must not
                # get priority, or the Region Sponmigrate race of
                # Error 2 could never fire).
                mig_pending = any(
                    m != 0 and m[3] == 1 for m in (rq[pid], rqa[pid])
                ) or any(migs[pid])
                if not mig_pending:
                    ns = (
                        threads,
                        copies,
                        _set(hq, pid, 0),
                        rq,
                        _set(hqa, pid, msg),
                        rqa,
                        locks,
                        migs,
                    )
                    out.append((self.lbl_hql[pid], ns))
                continue
            kind = held[0]
            if kind == Msg.REQ:
                self._dispatch_req(state, out, pid, held)
            elif kind == Msg.FLUSH:
                self._dispatch_flush(state, out, pid, held)
            else:  # pragma: no cover - defensive
                raise ModelError(f"bad home-queue message {held!r}")

    def _dispatch_req(self, state, out, pid: int, msg) -> None:
        _k, tid, src, r = msg
        threads, copies, hq, rq, hqa, rqa, locks, migs = state
        home, rs, wl, lt = copies[pid][r]
        if home != pid:
            # stale destination: forward to where we believe the home is
            if hq[home] == 0:
                ns = self._hq_consumed(state, pid)
                ns = self._with_hq(ns, home, msg)
                out.append((self.lbl_fwd_req[pid][home], ns))
            return
        nwl = wl | (1 << src)
        case1 = (
            self.variant.home_migration and nwl == (1 << src) and src != pid
        )
        if rq[src] != 0:
            return  # blocked until the requester's remote queue drains
        if case1:
            # home migrates to the only writing processor
            nc = (src, int(RegionState.USED), 0, lt)
            ret = (int(Msg.RET), tid, pid, 1, nwl, int(RegionState.USED), r)
            label = self.lbl_sretm[pid][src]
        else:
            nc = (pid, int(RegionState.USED), nwl, lt)
            ret = (int(Msg.RET), tid, pid, 0, 0, 0, r)
            label = self.lbl_sret[pid][src]
        ns = self._with_copy(state, pid, r, nc)
        ns = self._hq_consumed(ns, pid)
        ns = self._with_rq(ns, src, ret)
        out.append((label, ns))

    def _dispatch_flush(self, state, out, pid: int, msg) -> None:
        _k, tid, src, r = msg
        threads, copies, hq, rq, hqa, rqa, locks, migs = state
        home, rs, wl, lt = copies[pid][r]
        if home != pid:
            if hq[home] == 0:
                ns = self._hq_consumed(state, pid)
                ns = self._with_hq(ns, home, msg)
                out.append((self.lbl_fwd_flush[pid][home], ns))
            return
        # Removing an absent writer is a no-op: a Flush can legitimately
        # arrive after its sender re-wrote at (migrated-to-it) home and
        # flushed again, so the WriterList entry may already be gone.
        nwl = wl & ~(1 << src)
        migrate = (
            self.variant.home_migration
            and nwl != 0
            and _is_pow2(nwl)
            and nwl != (1 << pid)
        )
        if migrate:
            dst = nwl.bit_length() - 1
            if migs[dst][r] != 0:
                return  # see _flush_at_home: only buggy variants get here
            nc = (dst, int(RegionState.USED), 0, lt)
            ns = self._with_copy(state, pid, r, nc)
            ns = self._hq_consumed(ns, pid)
            ns = self._with_mig(ns, dst, r, (nwl, int(RegionState.USED)))
            out.append((self.lbl_frecv_mig[pid][dst], ns))
        else:
            nrs = (
                int(RegionState.USED)
                if (nwl or lt > 0)
                else int(RegionState.UNUSED)
            )
            nc = (pid, nrs, nwl, lt)
            ns = self._with_copy(state, pid, r, nc)
            ns = self._hq_consumed(ns, pid)
            out.append((self.lbl_frecv[pid], ns))

    def _dispatch_mig(self, state, out, pid: int, r: int) -> None:
        wl, rstate = state[7][pid][r]
        copies = state[1]
        _h, _rs, _wl, lt = copies[pid][r]
        nc = (pid, rstate, wl, lt)
        ns = self._with_copy(state, pid, r, nc)
        if self.variant.sponmigrate_informs_threads:
            # Error-2 fix: local threads writing this region at the old
            # home will complete as at-home writers
            nthreads = list(ns[0])
            for tid in self.threads_on[pid]:
                ph, reg, aho, wdone, rounds, dirty = nthreads[tid]
                if ph == Phase.WAIT_DATA and reg == r:
                    nthreads[tid] = (ph, reg, 1, wdone, rounds, dirty)
            ns = _set(ns, 0, tuple(nthreads))
        ns = self._mig_consumed(ns, pid, r)
        out.append((self.lbl_mig[pid], ns))

    # -- remote queue handler ---------------------------------------------------

    def _remotequeue_moves(self, state, out) -> None:
        threads, copies, hq, rq, hqa, rqa, locks, migs = state
        for pid in range(self.n_proc):
            held = rqa[pid]
            if held == 0:
                msg = rq[pid]
                if msg == 0:
                    continue
                ns = (
                    threads,
                    copies,
                    hq,
                    _set(rq, pid, 0),
                    hqa,
                    _set(rqa, pid, msg),
                    locks,
                    migs,
                )
                out.append((self.lbl_rql[pid], ns))
                continue
            _k, tid, sender, mig, wl, rstate, r = held
            ph, reg, aho, wdone, rounds, dirty = threads[tid]
            if self.check_assertions and (
                ph != Phase.WAIT_DATA or reg != r or self.pid_of[tid] != pid
            ):
                out.append(self._violate("unexpected_data_return"))
                continue
            if mig:
                # migration reply: this processor becomes the home
                nc = (pid, rstate, wl, copies[pid][r][3])
                ns = self._with_copy(state, pid, r, nc)
            elif aho:
                # Error-2 fix active and a sponmigrate arrived meanwhile:
                # keep the home we already maintain
                ns = state
            else:
                # plain refresh: the home is the sender of the reply.
                # (Without the Error-2 fix this clobbers a home received
                # through a racing Region Sponmigrate.)
                nc = (sender, int(RegionState.USED), 0, copies[pid][r][3])
                ns = self._with_copy(state, pid, r, nc)
            nt = (int(Phase.REMOTE_READY), reg, aho, wdone, rounds, dirty)
            ns = self._with_thread(ns, tid, nt)
            ns = self._rq_consumed(ns, pid)
            out.append((self.lbl_signal[tid][pid], ns))

    # -- probes -------------------------------------------------------------------

    def _probe_moves(self, state, out) -> None:
        threads, copies, hq, rq, hqa, rqa, locks, migs = state
        any_home = False
        any_copy = False
        for r in range(self.n_regions):
            homes = sum(1 for p in range(self.n_proc) if copies[p][r][0] == p)
            if homes >= 2:
                any_home = True
            non_home = sum(1 for p in range(self.n_proc) if copies[p][r][0] != p)
            if non_home >= 2:
                any_copy = True
        if any_home:
            out.append((C_HOME, state))
        if any_copy:
            out.append((C_COPY, state))
        if (
            all(lab[_SRV_H] == 0 and lab[_FLT_H] == 0 and lab[_FLS_H] == 0 for lab in locks)
            and not any(hqa)
            and not any(rqa)
        ):
            out.append((LOCK_EMPTY, state))
        if not any(hq) and not any(m for row in migs for m in row):
            out.append((HOMEQUEUE_EMPTY, state))
        if not any(rq):
            out.append((REMOTEQUEUE_EMPTY, state))

    # -- state update helpers ------------------------------------------------------

    def _alf_flushable(self, copies, pid: int, dirty: int) -> bool:
        """Every dirty region is exclusive at home on ``pid``."""
        for r in range(self.n_regions):
            if dirty >> r & 1:
                h, _rs, wl, _lt = copies[pid][r]
                if h != pid or wl not in (0, 1 << pid):
                    return False
        return True

    @staticmethod
    def _bits(mask: int):
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def _with_thread(self, state, tid: int, nt):
        return _set(state, 0, _set(state[0], tid, nt))

    def _set_phase(self, state, tid: int, phase: Phase):
        threads = state[0]
        ph, reg, aho, wdone, rounds, dirty = threads[tid]
        return self._with_thread(state, tid, (int(phase), reg, aho, wdone, rounds, dirty))

    def _with_copy(self, state, pid: int, r: int, nc):
        copies = state[1]
        return _set(state, 1, _set(copies, pid, _set(copies[pid], r, nc)))

    def _with_hq(self, state, pid: int, msg):
        hq = state[2]
        if hq[pid] != 0:
            raise ModelError(f"home queue of p{pid} overrun")
        return _set(state, 2, _set(hq, pid, msg))

    def _with_rq(self, state, pid: int, msg):
        rq = state[3]
        if rq[pid] != 0:
            raise ModelError(f"remote queue of p{pid} overrun")
        return _set(state, 3, _set(rq, pid, msg))

    def _with_mig(self, state, pid: int, r: int, payload):
        migs = state[7]
        if migs[pid][r] != 0:
            raise ModelError(
                f"two migrations of region r{r} in flight to p{pid}"
            )
        return _set(state, 7, _set(migs, pid, _set(migs[pid], r, payload)))

    def _mig_consumed(self, state, pid: int, r: int):
        migs = state[7]
        return _set(state, 7, _set(migs, pid, _set(migs[pid], r, 0)))

    def _hq_consumed(self, state, pid: int):
        # the message was already taken out of the queue at lock grant;
        # consuming it releases the handler (and its homequeue lock)
        return _set(state, 4, _set(state[4], pid, 0))

    def _rq_consumed(self, state, pid: int):
        return _set(state, 5, _set(state[5], pid, 0))

    def _lock_wait(self, state, pid: int, slot: int, tid: int):
        locks = state[6]
        lp = locks[pid]
        return _set(state, 6, _set(locks, pid, _set(lp, slot, lp[slot] | (1 << tid))))

    def _lock_grant(self, state, pid: int, hslot: int, wslot: int, tid: int):
        locks = state[6]
        lp = locks[pid]
        lp = _set(lp, hslot, tid + 1)
        lp = _set(lp, wslot, lp[wslot] & ~(1 << tid))
        return _set(state, 6, _set(locks, pid, lp))

    def _lock_release(self, state, pid: int, hslot: int):
        locks = state[6]
        lp = locks[pid]
        if lp[hslot] == 0:
            raise ModelError(f"releasing free lock slot {hslot} on p{pid}")
        return _set(state, 6, _set(locks, pid, _set(lp, hslot, 0)))

    # -- decoding -------------------------------------------------------------------

    def decode_state(self, state) -> dict:
        """Render a state as a nested dict for humans and the trace
        explainer."""
        if state == VIOLATION:
            return {"violation": True}
        threads, copies, hq, rq, hqa, rqa, locks, migs = state
        kinds = {0: "REQ", 1: "RET", 2: "FLUSH", 3: "MIG"}

        def fmt_msg(m):
            if m == 0:
                return None
            return (kinds[m[0]],) + tuple(m[1:])

        return {
            "threads": [
                {
                    "tid": t,
                    "pid": self.pid_of[t],
                    "phase": Phase(th[0]).name,
                    "region": th[1],
                    "at_home_override": bool(th[2]),
                    "writes_done": th[3],
                    "rounds_left": th[4],
                    "dirty": [r for r in range(self.n_regions) if th[5] >> r & 1],
                }
                for t, th in enumerate(threads)
            ],
            "copies": [
                [
                    {
                        "home": c[0],
                        "state": RegionState(c[1]).name,
                        "writers": [q for q in range(self.n_proc) if c[2] >> q & 1],
                        "localthreads": c[3],
                    }
                    for c in copies[p]
                ]
                for p in range(self.n_proc)
            ],
            "homequeue": [fmt_msg(m) for m in hq],
            "migrations": [
                [
                    None
                    if migs[p][r] == 0
                    else {"writers": [q for q in range(self.n_proc)
                                      if migs[p][r][0] >> q & 1],
                          "state": RegionState(migs[p][r][1]).name}
                    for r in range(self.n_regions)
                ]
                for p in range(self.n_proc)
            ],
            "remotequeue": [fmt_msg(m) for m in rq],
            "handlers": {
                "home": [fmt_msg(m) for m in hqa],
                "remote": [fmt_msg(m) for m in rqa],
            },
            "locks": [
                {
                    "server": locks[p][_SRV_H],
                    "server_waiters": list(self._bits(locks[p][_SRV_W])),
                    "fault": locks[p][_FLT_H],
                    "fault_waiters": list(self._bits(locks[p][_FLT_W])),
                    "flush": locks[p][_FLS_H],
                    "flush_waiters": list(self._bits(locks[p][_FLS_W])),
                }
                for p in range(self.n_proc)
            ],
        }
