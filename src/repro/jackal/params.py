"""Configurations and protocol variants.

The paper analyses three configurations (Table 8):

* **C1** — two processors, one thread each;
* **C2** — two processors, one with two threads, one with one;
* **C3** — three processors, one thread each;

all with a single region. :data:`CONFIG_1`, :data:`CONFIG_2` and
:data:`CONFIG_3` are those configurations with the paper's defaults.

A :class:`ProtocolVariant` selects which of the two historical bug fixes
are applied, plus an ablation switch for automatic home migration
itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class ProtocolVariant:
    """Which protocol behaviours are active.

    Attributes
    ----------
    fault_lock_recheck:
        The fix for **Error 1**: after a thread obtains the fault lock
        it re-checks whether it still writes from remote; if the home
        migrated to its own processor meanwhile, it releases the fault
        lock and acquires the server lock instead. When false, the
        thread blindly continues down the remote-write path: the access
        check inside the fault handler then finds a valid local copy, no
        Data Request is issued, and the thread waits forever for a Data
        Return that will never come (the paper's deadlock).
    sponmigrate_informs_threads:
        The fix for **Error 2**: a processor receiving a Region
        Sponmigrate message informs local threads that are writing to
        the region at the previous home, so they complete as at-home
        writers. When false, a subsequently delivered Data Return
        overwrites the region's home with the sender of the reply,
        after which no processor is the home (the paper's Requirement
        3.2 violation).
    home_migration:
        Ablation switch: when false, automatic home node migration
        (Section 4.4 of the paper) is disabled entirely; both bugs then
        become unreachable and the state space shrinks.
    adaptive_lazy_flushing:
        The runtime optimisation of the paper's Section 4.5 (which the
        paper deliberately did *not* model): regions accessed by a
        single processor skip the protocol-lock machinery — an at-home
        write to a region with no remote writers completes without the
        server lock, and a synchronisation point whose flush list holds
        only such regions skips the flush lock. Both fast paths re-check
        their eligibility atomically at completion and fall back to the
        locked path when a remote writer appeared meanwhile.
    """

    fault_lock_recheck: bool = True
    sponmigrate_informs_threads: bool = True
    home_migration: bool = True
    adaptive_lazy_flushing: bool = False

    @staticmethod
    def fixed() -> "ProtocolVariant":
        """The repaired protocol (both fixes applied)."""
        return ProtocolVariant(True, True, True)

    @staticmethod
    def buggy() -> "ProtocolVariant":
        """The original implementation (both errors present)."""
        return ProtocolVariant(False, False, True)

    @staticmethod
    def error1() -> "ProtocolVariant":
        """Only Error 1 present (fault-lock recheck missing)."""
        return ProtocolVariant(False, True, True)

    @staticmethod
    def error2() -> "ProtocolVariant":
        """Only Error 2 present (sponmigrate does not inform threads)."""
        return ProtocolVariant(True, False, True)

    @staticmethod
    def no_migration() -> "ProtocolVariant":
        """Home migration disabled (ablation baseline)."""
        return ProtocolVariant(True, True, False)

    @staticmethod
    def alf() -> "ProtocolVariant":
        """The repaired protocol plus adaptive lazy flushing (§4.5)."""
        return ProtocolVariant(True, True, True, adaptive_lazy_flushing=True)

    def describe(self) -> str:
        """Short human-readable tag."""
        suffix = "+alf" if self.adaptive_lazy_flushing else ""
        if not self.home_migration:
            return "no-migration" + suffix
        bugs = []
        if not self.fault_lock_recheck:
            bugs.append("error1")
        if not self.sponmigrate_informs_threads:
            bugs.append("error2")
        return ("+".join(bugs) if bugs else "fixed") + suffix


@dataclass(frozen=True)
class Config:
    """A protocol configuration.

    Attributes
    ----------
    threads_per_processor:
        One entry per processor; entry ``p`` is the number of threads
        running on processor ``p``. The number of processors is implied.
    n_regions:
        Number of shared regions (the paper analyses one).
    initial_home:
        Processor that creates the region(s) and is their initial home.
    rounds:
        Number of write+flush rounds each thread performs; ``None``
        makes threads cyclic (the muCRL specification's recursive
        threads). Bounded rounds are required for the paper's exact
        inevitability formulas of Requirement 4 to be satisfiable under
        an unfair scheduler — see DESIGN.md item 7.
    writes_per_round:
        Writes a thread performs (each to a nondeterministically chosen
        region) before it reaches its synchronisation point and flushes.
    with_probes:
        Add the observability self-loops (``c_home``, ``c_copy``,
        ``lock_empty``, ``homequeue_empty``, ``remotequeue_empty``) used
        by Requirement 3, mirroring the paper's probe actions of
        Section 5.4.3.
    """

    threads_per_processor: tuple[int, ...] = (1, 1)
    n_regions: int = 1
    initial_home: int = 0
    rounds: int | None = 1
    writes_per_round: int = 1
    with_probes: bool = True

    def __post_init__(self):
        if not self.threads_per_processor:
            raise ModelError("need at least one processor")
        if any(t < 0 for t in self.threads_per_processor):
            raise ModelError("negative thread count")
        if sum(self.threads_per_processor) == 0:
            raise ModelError("need at least one thread")
        if self.n_regions < 1:
            raise ModelError("need at least one region")
        if not (0 <= self.initial_home < self.n_processors):
            raise ModelError(
                f"initial_home {self.initial_home} out of range "
                f"(have {self.n_processors} processors)"
            )
        if self.rounds is not None and self.rounds < 1:
            raise ModelError("rounds must be >= 1 or None")
        if self.writes_per_round < 1:
            raise ModelError("writes_per_round must be >= 1")

    @property
    def n_processors(self) -> int:
        """Number of processors."""
        return len(self.threads_per_processor)

    @property
    def n_threads(self) -> int:
        """Total number of threads."""
        return sum(self.threads_per_processor)

    def processor_of(self, tid: int) -> int:
        """The processor a global thread id runs on."""
        p = 0
        acc = 0
        for p, cnt in enumerate(self.threads_per_processor):
            if tid < acc + cnt:
                return p
            acc += cnt
        raise ModelError(f"thread id {tid} out of range")

    def thread_ids_of(self, pid: int) -> list[int]:
        """Global thread ids running on processor ``pid``."""
        start = sum(self.threads_per_processor[:pid])
        return list(range(start, start + self.threads_per_processor[pid]))

    def describe(self) -> str:
        """Short human-readable tag, e.g. ``2p(1+1)x1r``."""
        threads = "+".join(map(str, self.threads_per_processor))
        r = "inf" if self.rounds is None else str(self.rounds)
        return f"{self.n_processors}p({threads})x{self.n_regions}reg,rounds={r}"


#: the paper's configuration 1: two processors, one thread each
CONFIG_1 = Config(threads_per_processor=(1, 1))
#: the paper's configuration 2: two threads on one processor, one on the other
CONFIG_2 = Config(threads_per_processor=(2, 1))
#: the paper's configuration 3: three processors, one thread each
CONFIG_3 = Config(threads_per_processor=(1, 1, 1))
