"""Packed fixed-width state codec for the Jackal protocol model.

A :class:`JackalModel` state is a nested tuple —

    (threads, copies, hq, rq, hqa, rqa, locks, migs)

— some forty small-int objects plus a dozen inner tuples, costing
hundreds of bytes per state and a recursive hash on every visited-set
probe. For a fixed :class:`~repro.jackal.params.Config` every field
ranges over a small known domain, so the whole state packs losslessly
into one fixed-width integer:

* each thread tuple packs into ``phase | reg | aho | wdone | rounds |
  dirty`` bit fields;
* each region copy packs into ``home | rstate | writer_mask |
  localthreads``;
* queue slots enumerate their message alphabet (``0`` = empty, dense
  codes for ``REQ``/``FLUSH``/``RET`` payloads);
* lock tuples pack holder ids and waiter bitmasks verbatim;
* migration slots enumerate ``(writer_mask, rstate)`` payloads.

The reserved key ``0`` encodes the :data:`~repro.jackal.model.VIOLATION`
sink; every ordinary state is ``(bits << 1) | 1``.

The codec is the currency of the performance layer: visited sets and
successor memos key on the packed int (one machine word + int object
instead of a tuple tree), hash partitioning mixes it directly
(:func:`repro.lts.statehash.state_key64`), and the distributed backend
ships packed keys between workers instead of pickled tuple trees.

Packing is memoised at two levels: sub-tuples (one thread, one copy
row, one queue slot) and whole state *halves* — ``(threads, copies)``
and ``(queues, locks, migrations)``. A transition usually perturbs
only one half, so after warm-up an ``encode`` is two dict hits and a
shift rather than a field-by-field walk; the half memos are capped
(:data:`_HALF_MEMO_MAX`) so the cache never outgrows the sweep it is
accelerating.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ModelError
from repro.jackal.model import VIOLATION, JackalModel, Msg

#: fine fields :meth:`StateCodec.projector` can retract — the
#: write-only read-state bookkeeping family the cone-of-influence
#: analysis (:mod:`repro.staticcheck.slicing`) can prove sliceable
PROJECTABLE_FIELDS = frozenset(
    ("copy.rstate", "rq.rstate", "rqa.rstate", "mig.rstate")
)

#: entry cap on the half-state encode memos — pure caches (clearing
#: costs a re-walk, never correctness), so bounding them keeps the
#: codec's footprint flat on billion-state sweeps
_HALF_MEMO_MAX = 1 << 18


def _width(max_value: int) -> int:
    """Bits needed for values ``0..max_value`` (at least one)."""
    return max(1, max_value.bit_length())


class StateCodec:
    """Bijection between model states and fixed-width integers.

    Parameters
    ----------
    model:
        The model whose configuration fixes every field domain. States
        of other models with the same topology (processors, threads,
        regions, rounds, writes) encode identically.
    """

    def __init__(self, model: JackalModel):
        cfg = model.config
        self.T = T = model.n_threads
        self.P = P = model.n_proc
        self.R = R = model.n_regions
        W = cfg.writes_per_round
        rounds0 = -1 if cfg.rounds is None else cfg.rounds

        # thread fields: phase, reg, aho, wdone, rounds+1, dirty
        self._w_phase = 4  # Phase has 12 values
        self._w_reg = _width(R - 1)
        self._w_wdone = _width(W)
        self._w_rounds = _width(rounds0 + 1)
        self._w_dirty = R
        self._w_thread = (
            self._w_phase + self._w_reg + 1 + self._w_wdone
            + self._w_rounds + self._w_dirty
        )
        # copy fields: home, rstate, writer_mask, localthreads
        self._w_home = _width(P - 1)
        self._w_lt = _width(T)
        self._w_copy = self._w_home + 1 + P + self._w_lt
        self._w_copyrow = R * self._w_copy
        # home-queue slots: 0 | REQ/FLUSH x tid x src x r
        self._n_hmsg = 2 * T * P * R
        self._w_hmsg = _width(self._n_hmsg)
        # remote-queue slots: 0 | RET x tid x sender x mig x wl x rstate x r
        self._n_rmsg = T * P * 2 * (1 << P) * 2 * R
        self._w_rmsg = _width(self._n_rmsg)
        # locks: holder (0..T) and waiter masks, three lock kinds
        self._w_holder = _width(T)
        self._w_locks = 3 * (self._w_holder + T)
        # migration slots: 0 | (writer_mask, rstate)
        self._w_mig = _width(1 << (P + 1))
        self._w_migrow = R * self._w_mig

        #: bit widths of the two memoised state halves (see encode):
        #: hi = (threads, copies), lo = (queues, locks, migrations)
        self._w_hi = T * self._w_thread + P * self._w_copyrow
        self._w_lo = (
            2 * P * self._w_hmsg
            + 2 * P * self._w_rmsg
            + P * self._w_locks
            + P * self._w_migrow
        )
        #: total key width (including the violation flag bit)
        self.n_bits = 1 + self._w_hi + self._w_lo
        #: bytes needed by :meth:`encode_bytes`
        self.n_bytes = (self.n_bits + 7) // 8

        # half-state memo tables: (threads, copies) -> packed hi bits,
        # (hq, rq, hqa, rqa, locks, migs) -> packed lo bits. Successor
        # states overlap heavily in whole halves (a transition usually
        # touches one thread *or* one queue slot), so a warm encode is
        # two dict hits and one shift instead of a 20-field walk.
        self._enc_hi: dict = {}
        self._enc_lo: dict = {}
        self._dec_hi: dict = {}
        self._dec_lo: dict = {}
        self._lo_mask = (1 << self._w_lo) - 1
        # memo tables: sub-tuple -> packed bits (and the reverse)
        self._enc_thread: dict = {}
        self._enc_copyrow: dict = {}
        self._enc_hmsg: dict = {0: 0}
        self._enc_rmsg: dict = {0: 0}
        self._enc_locks: dict = {}
        self._enc_migrow: dict = {}
        self._dec_thread: dict = {}
        self._dec_copyrow: dict = {}
        self._dec_hmsg: dict = {0: 0}
        self._dec_rmsg: dict = {0: 0}
        self._dec_locks: dict = {}
        self._dec_migrow: dict = {}
        # slice projection closures, keyed by the dropped-field set
        self._projectors: dict = {}

    # -- packing helpers (cache-miss path; results are memoised) --------

    def _check(self, value: int, width: int, what: str) -> int:
        if not 0 <= value < (1 << width):
            raise ModelError(f"{what} {value} outside codec field range")
        return value

    def _pack_thread(self, th) -> int:
        ph, reg, aho, wdone, rounds, dirty = th
        v = self._check(ph, self._w_phase, "phase")
        v = v << self._w_reg | self._check(reg, self._w_reg, "reg")
        v = v << 1 | self._check(aho, 1, "aho")
        v = v << self._w_wdone | self._check(wdone, self._w_wdone, "wdone")
        v = v << self._w_rounds | self._check(
            rounds + 1, self._w_rounds, "rounds"
        )
        return v << self._w_dirty | self._check(dirty, self._w_dirty, "dirty")

    def _unpack_thread(self, v: int):
        m = (1 << self._w_dirty) - 1
        dirty = v & m
        v >>= self._w_dirty
        rounds = (v & ((1 << self._w_rounds) - 1)) - 1
        v >>= self._w_rounds
        wdone = v & ((1 << self._w_wdone) - 1)
        v >>= self._w_wdone
        aho = v & 1
        v >>= 1
        reg = v & ((1 << self._w_reg) - 1)
        return (v >> self._w_reg, reg, aho, wdone, rounds, dirty)

    def _pack_copyrow(self, row) -> int:
        v = 0
        for home, rstate, wl, lt in row:
            v = v << self._w_home | self._check(home, self._w_home, "home")
            v = v << 1 | self._check(rstate, 1, "rstate")
            v = v << self.P | self._check(wl, self.P, "writer_mask")
            v = v << self._w_lt | self._check(lt, self._w_lt, "localthreads")
        return v

    def _unpack_copyrow(self, v: int):
        out = []
        for _ in range(self.R):
            lt = v & ((1 << self._w_lt) - 1)
            v >>= self._w_lt
            wl = v & ((1 << self.P) - 1)
            v >>= self.P
            rstate = v & 1
            v >>= 1
            out.append((v & ((1 << self._w_home) - 1), rstate, wl, lt))
            v >>= self._w_home
        return tuple(reversed(out))

    def _pack_hmsg(self, msg) -> int:
        kind, tid, src, r = msg
        if kind == Msg.REQ:
            k = 0
        elif kind == Msg.FLUSH:
            k = 1
        else:
            raise ModelError(f"message kind {kind} cannot sit in a home queue")
        return 1 + ((k * self.T + tid) * self.P + src) * self.R + r

    def _unpack_hmsg(self, code: int):
        code -= 1
        code, r = divmod(code, self.R)
        code, src = divmod(code, self.P)
        k, tid = divmod(code, self.T)
        return (int(Msg.FLUSH) if k else int(Msg.REQ), tid, src, r)

    def _pack_rmsg(self, msg) -> int:
        kind, tid, sender, mig, wl, rstate, r = msg
        if kind != Msg.RET:
            raise ModelError(f"message kind {kind} cannot sit in a remote queue")
        code = (tid * self.P + sender) * 2 + mig
        code = (code << self.P | wl) * 2 + rstate
        return 1 + code * self.R + r

    def _unpack_rmsg(self, code: int):
        code -= 1
        code, r = divmod(code, self.R)
        code, rstate = divmod(code, 2)
        wl = code & ((1 << self.P) - 1)
        code >>= self.P
        code, mig = divmod(code, 2)
        tid, sender = divmod(code, self.P)
        return (int(Msg.RET), tid, sender, mig, wl, rstate, r)

    def _pack_locks(self, lp) -> int:
        v = 0
        for i in (0, 2, 4):
            v = v << self._w_holder | self._check(
                lp[i], self._w_holder, "lock holder"
            )
            v = v << self.T | self._check(lp[i + 1], self.T, "waiter mask")
        return v

    def _unpack_locks(self, v: int):
        out = []
        for _ in range(3):
            w = v & ((1 << self.T) - 1)
            v >>= self.T
            out.append(w)
            out.append(v & ((1 << self._w_holder) - 1))
            v >>= self._w_holder
        return tuple(reversed(out))

    def _pack_migrow(self, row) -> int:
        v = 0
        for m in row:
            code = 0 if m == 0 else 1 + (m[0] * 2 + m[1])
            v = v << self._w_mig | self._check(code, self._w_mig, "migration")
        return v

    def _unpack_migrow(self, v: int):
        out = []
        for _ in range(self.R):
            code = v & ((1 << self._w_mig) - 1)
            v >>= self._w_mig
            if code == 0:
                out.append(0)
            else:
                wl, rstate = divmod(code - 1, 2)
                out.append((wl, rstate))
        return tuple(reversed(out))

    # projector closures are rebuilt on demand; dropping them keeps the
    # codec picklable (distributed workers ship models, not caches)
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_projectors"] = {}
        return state

    # -- public API -----------------------------------------------------

    def _pack_hi(self, hi) -> int:
        """Pack the ``(threads, copies)`` half (field-walk slow path)."""
        threads, copies = hi
        key = 0
        et = self._enc_thread
        wt = self._w_thread
        for th in threads:
            v = et.get(th)
            if v is None:
                v = et[th] = self._pack_thread(th)
                self._dec_thread[v] = th
            key = key << wt | v
        ec = self._enc_copyrow
        wc = self._w_copyrow
        for row in copies:
            v = ec.get(row)
            if v is None:
                v = ec[row] = self._pack_copyrow(row)
                self._dec_copyrow[v] = row
            key = key << wc | v
        return key

    def _pack_lo(self, lo) -> int:
        """Pack the ``(hq, rq, hqa, rqa, locks, migs)`` half."""
        hq, rq, hqa, rqa, locks, migs = lo
        key = 0
        eh = self._enc_hmsg
        wh = self._w_hmsg
        er = self._enc_rmsg
        wr = self._w_rmsg
        for q in (hq, hqa):
            for m in q:
                v = eh.get(m)
                if v is None:
                    v = eh[m] = self._pack_hmsg(m)
                    self._dec_hmsg[v] = m
                key = key << wh | v
        for q in (rq, rqa):
            for m in q:
                v = er.get(m)
                if v is None:
                    v = er[m] = self._pack_rmsg(m)
                    self._dec_rmsg[v] = m
                key = key << wr | v
        el = self._enc_locks
        wl = self._w_locks
        for lp in locks:
            v = el.get(lp)
            if v is None:
                v = el[lp] = self._pack_locks(lp)
                self._dec_locks[v] = lp
            key = key << wl | v
        em = self._enc_migrow
        wm = self._w_migrow
        for row in migs:
            v = em.get(row)
            if v is None:
                v = em[row] = self._pack_migrow(row)
                self._dec_migrow[v] = row
            key = key << wm | v
        return key

    def encode(self, state) -> int:
        """Pack ``state`` into its integer key (``0`` = VIOLATION)."""
        if len(state) != 8:
            if state != VIOLATION:
                raise ModelError(f"not a protocol state: {state!r}")
            return 0
        hi_part = state[:2]
        hi = self._enc_hi.get(hi_part)
        if hi is None:
            if len(self._enc_hi) > _HALF_MEMO_MAX:
                self._enc_hi.clear()
            hi = self._enc_hi[hi_part] = self._pack_hi(hi_part)
            self._dec_hi.setdefault(hi, hi_part)
        lo_part = state[2:]
        lo = self._enc_lo.get(lo_part)
        if lo is None:
            if len(self._enc_lo) > _HALF_MEMO_MAX:
                self._enc_lo.clear()
            lo = self._enc_lo[lo_part] = self._pack_lo(lo_part)
            self._dec_lo.setdefault(lo, lo_part)
        return (hi << self._w_lo | lo) << 1 | 1

    def _take(self, key: int, width: int, count: int, table: dict, unpack):
        """Split ``count`` ``width``-bit fields off the low end of ``key``.

        Returns ``(remaining_key, fields)`` with the fields memoised
        through ``table``. A plain method rather than a closure inside
        :meth:`decode`: decode sits on the distributed transport's
        per-state hot path, and building a cell-variable closure per
        call costs more than the field walk itself.
        """
        mask = (1 << width) - 1
        get = table.get
        out = []
        append = out.append
        for _ in range(count):
            v = key & mask
            key >>= width
            item = get(v)
            if item is None:
                item = table[v] = unpack(v)
            append(item)
        out.reverse()
        return key, tuple(out)

    def _unpack_hi(self, bits: int):
        """Field-walk the hi half back into ``(threads, copies)``."""
        take = self._take
        bits, copies = take(bits, self._w_copyrow, self.P,
                            self._dec_copyrow, self._unpack_copyrow)
        bits, threads = take(bits, self._w_thread, self.T,
                             self._dec_thread, self._unpack_thread)
        return (threads, copies)

    def _unpack_lo(self, bits: int):
        """Field-walk the lo half back into its six components."""
        P = self.P
        take = self._take
        bits, migs = take(bits, self._w_migrow, P, self._dec_migrow,
                          self._unpack_migrow)
        bits, locks = take(bits, self._w_locks, P, self._dec_locks,
                           self._unpack_locks)
        bits, rqa = take(bits, self._w_rmsg, P, self._dec_rmsg,
                         self._unpack_rmsg)
        bits, rq = take(bits, self._w_rmsg, P, self._dec_rmsg,
                        self._unpack_rmsg)
        bits, hqa = take(bits, self._w_hmsg, P, self._dec_hmsg,
                         self._unpack_hmsg)
        bits, hq = take(bits, self._w_hmsg, P, self._dec_hmsg,
                        self._unpack_hmsg)
        return (hq, rq, hqa, rqa, locks, migs)

    def decode(self, key: int):
        """Inverse of :meth:`encode` (half-memoised like encode)."""
        if key == 0:
            return VIOLATION
        key >>= 1
        lo_bits = key & self._lo_mask
        hi_bits = key >> self._w_lo
        hi = self._dec_hi.get(hi_bits)
        if hi is None:
            if len(self._dec_hi) > _HALF_MEMO_MAX:
                self._dec_hi.clear()
            hi = self._dec_hi[hi_bits] = self._unpack_hi(hi_bits)
            self._enc_hi.setdefault(hi, hi_bits)
        lo = self._dec_lo.get(lo_bits)
        if lo is None:
            if len(self._dec_lo) > _HALF_MEMO_MAX:
                self._dec_lo.clear()
            lo = self._dec_lo[lo_bits] = self._unpack_lo(lo_bits)
            self._enc_lo.setdefault(lo, lo_bits)
        return hi + lo

    def canonicalize(self, state, perms):
        """Minimal ``(key, representative)`` over the orbit of ``state``.

        ``perms`` are the *non-identity* members of a certified
        permutation group (duck-typed: anything with ``apply``, e.g.
        :class:`repro.staticcheck.symmetry.Permutation`); the state
        itself always competes, so the identity must not be passed.
        The minimal packed key is a total, permutation-invariant
        choice of orbit representative — the symmetry-reduced visited
        set keys on it.
        """
        best_key = self.encode(state)
        best_state = state
        for perm in perms:
            permuted = perm.apply(state)
            key = self.encode(permuted)
            if key < best_key:
                best_key, best_state = key, permuted
        return best_key, best_state

    def encode_canonical(self, state, perms) -> int:
        """The canonical (orbit-minimal) packed key of ``state``."""
        return self.canonicalize(state, perms)[0]

    def projector(self, dropped) -> Callable:
        """A memoised projection retracting ``dropped`` fine fields.

        ``dropped`` must be a subset of :data:`PROJECTABLE_FIELDS`
        (the fields a certificate's slice section can license); the
        returned closure zeroes those fields at every index, returns
        the *original* object when nothing changes (so identity hits
        are cheap to detect), and passes VIOLATION through. Zeroing
        is a retraction — ``0`` is in every field's domain — and
        commutes with the admissible permutations, which never touch
        ``rstate`` payloads.
        """
        dropped = frozenset(dropped)
        cached = self._projectors.get(dropped)
        if cached is not None:
            return cached
        unsupported = dropped - PROJECTABLE_FIELDS
        if unsupported:
            raise ModelError(
                f"cannot project fields {sorted(unsupported)}: only "
                f"{sorted(PROJECTABLE_FIELDS)} are sliceable"
            )
        drop_copy = "copy.rstate" in dropped
        drop_rq = "rq.rstate" in dropped
        drop_rqa = "rqa.rstate" in dropped
        drop_mig = "mig.rstate" in dropped
        copy_memo: dict = {}
        mig_memo: dict = {}

        def proj_copyrow(row):
            v = copy_memo.get(row)
            if v is None:
                v = copy_memo[row] = tuple(
                    r if r[1] == 0 else (r[0], 0, r[2], r[3]) for r in row
                )
            return v

        def proj_rmsg(m):
            if m == 0 or m[5] == 0:
                return m
            return m[:5] + (0, m[6])

        def proj_migrow(row):
            v = mig_memo.get(row)
            if v is None:
                v = mig_memo[row] = tuple(
                    m if m == 0 or m[1] == 0 else (m[0], 0) for m in row
                )
            return v

        def project(state):
            if len(state) != 8:
                return state
            threads, copies, hq, rq, hqa, rqa, locks, migs = state
            ncopies = (
                tuple(proj_copyrow(row) for row in copies)
                if drop_copy
                else copies
            )
            nrq = tuple(proj_rmsg(m) for m in rq) if drop_rq else rq
            nrqa = tuple(proj_rmsg(m) for m in rqa) if drop_rqa else rqa
            nmigs = (
                tuple(proj_migrow(row) for row in migs)
                if drop_mig
                else migs
            )
            ns = (threads, ncopies, hq, nrq, hqa, nrqa, locks, nmigs)
            return state if ns == state else ns

        self._projectors[dropped] = project
        return project

    def project(self, state, dropped):
        """``state`` with the ``dropped`` fine fields retracted."""
        return self.projector(dropped)(state)

    def encode_sliced(self, state, dropped, perms=()) -> int:
        """The packed key of the sliced (projected) state.

        Composes with symmetry reduction: with ``perms`` the key is
        the orbit-minimal encoding of the projection — projection and
        permutation commute, so the composite is well defined and
        identifies exactly the states the certificate's slice and
        group together.
        """
        projected = self.projector(dropped)(state)
        if perms:
            return self.encode_canonical(projected, perms)
        return self.encode(projected)

    def encode_bytes(self, state) -> bytes:
        """The packed key as a fixed-width big-endian byte string."""
        return self.encode(state).to_bytes(self.n_bytes, "big")

    def decode_bytes(self, data: bytes):
        """Inverse of :meth:`encode_bytes`."""
        return self.decode(int.from_bytes(data, "big"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StateCodec(T={self.T}, P={self.P}, R={self.R}, "
            f"bits={self.n_bits})"
        )


def codec_for(system) -> StateCodec | None:
    """A codec for ``system`` when one applies (else ``None``).

    The generic exploration machinery calls this to decide whether
    packed keys are available; any system exposing a ``codec()``
    method returning an encode/decode pair participates.
    """
    factory = getattr(system, "codec", None)
    if factory is None:
        return None
    return factory()
