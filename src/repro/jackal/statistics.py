"""Protocol traffic statistics over explored state spaces.

Automatic home node migration exists "to decrease synchronization
traffic" (paper §4.4). These helpers quantify the protocol's traffic
mix over an explored LTS — how many transitions are data requests,
returns, migrations (by trigger case), forwards and flushes — which the
ablation benchmark uses to show what migration adds and costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lts.lts import LTS

#: label prefix -> category
_CATEGORIES: tuple[tuple[str, str], ...] = (
    ("send_datareq(", "data_request"),
    ("send_dataret_mig(", "migration_case1"),
    ("send_dataret(", "data_return"),
    ("flush_home_migrate(", "migration_case2"),
    ("flush_recv_migrate(", "migration_case2"),
    ("recv_sponmigrate(", "sponmigrate_recv"),
    ("forward_req(", "forward"),
    ("forward_flush(", "forward"),
    ("send_flush(", "remote_flush"),
    ("flush_home(", "home_flush"),
    ("flush_recv(", "flush_recv"),
    ("lock_server(", "lock_grant"),
    ("lock_fault(", "lock_grant"),
    ("lock_flush(", "lock_grant"),
    ("lock_homequeue(", "queue_grant"),
    ("lock_remotequeue(", "queue_grant"),
    ("signal(", "signal"),
    ("write(", "thread_write"),
    ("writeover(", "thread_write"),
    ("flush(", "thread_flush"),
    ("flushover(", "thread_flush"),
    ("restart_write(", "retry"),
    ("fault_to_server(", "retry"),
    ("stale_remote_wait(", "bug_path"),
    ("assertion_violation(", "assertion"),
)


def categorize_label(label: str) -> str:
    """The traffic category of a transition label."""
    for prefix, cat in _CATEGORIES:
        if label.startswith(prefix):
            return cat
    return "probe" if label in (
        "c_home", "c_copy", "lock_empty", "homequeue_empty",
        "remotequeue_empty",
    ) else "other"


@dataclass
class ProtocolStatistics:
    """Transition counts per traffic category."""

    by_category: dict[str, int] = field(default_factory=dict)
    total: int = 0

    def count(self, category: str) -> int:
        """Transitions in ``category`` (0 when absent)."""
        return self.by_category.get(category, 0)

    @property
    def migrations(self) -> int:
        """All home-migration transitions (both trigger cases)."""
        return self.count("migration_case1") + self.count("migration_case2")

    @property
    def messages(self) -> int:
        """All message sends (requests, returns, flushes, migrations,
        forwards)."""
        return (
            self.count("data_request")
            + self.count("data_return")
            + self.count("migration_case1")
            + self.count("migration_case2")
            + self.count("remote_flush")
            + self.count("forward")
        )

    def share(self, category: str) -> float:
        """Fraction of all transitions in ``category``."""
        return self.count(category) / self.total if self.total else 0.0

    def as_rows(self) -> list[dict[str, object]]:
        """Table rows, descending by count."""
        return [
            {"category": c, "transitions": n,
             "share": round(n / self.total, 4) if self.total else 0.0}
            for c, n in sorted(
                self.by_category.items(), key=lambda kv: -kv[1]
            )
        ]


def protocol_statistics(lts: LTS) -> ProtocolStatistics:
    """Categorise every transition of an explored protocol LTS."""
    stats = ProtocolStatistics()
    for label, n in lts.label_counts().items():
        cat = categorize_label(label)
        stats.by_category[cat] = stats.by_category.get(cat, 0) + n
        stats.total += n
    return stats
