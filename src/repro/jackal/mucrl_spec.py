"""muCRL-style algebraic specifications of protocol components.

The paper presents its model as muCRL process definitions (Tables 1-6).
This module rebuilds representative fragments in :mod:`repro.algebra`,
at the paper's own granularity, so the algebraic toolchain can be
demonstrated and cross-checked against the direct state-machine model:

* :func:`region_spec` — Table 2: a region process serialising accesses
  through ``sendback`` / ``refresh`` / ``norefresh`` handshakes;
* :func:`locker_spec` — Table 6: a protocol lock manager granting fault
  and flush locks under their mutual exclusion, with waiting counts;
* :func:`thread_write_remote_spec` — Table 1: a thread writing a region
  from remote (require fault lock, ask the home for a copy, refresh,
  release);
* :func:`locker_system` / :func:`region_system` — closed compositions
  (threads | locker | region) with the communication function and
  encapsulation set up as in the paper.

These systems are intentionally small (the paper's full composition is
reproduced by :mod:`repro.jackal.model`); they demonstrate the
specification style and are verified for deadlock freedom and mutual
exclusion in the test suite.
"""

from __future__ import annotations

from repro.algebra import (
    Act,
    Alt,
    Call,
    Comm,
    Cond,
    DVar,
    Encap,
    FiniteSort,
    Fn,
    ProcessDef,
    Seq,
    Spec,
    SpecSystem,
    Sum,
)
from repro.algebra.composition import par_all


def _eq(a, b):
    return Fn("eq", lambda x, y: x == y, a, b)


def _and(a, b):
    return Fn("and", lambda x, y: bool(x and y), a, b)


def _not(a):
    return Fn("not", lambda x: not x, a)


def _inc(a):
    return Fn("S", lambda x: x + 1, a)


def _dec(a):
    return Fn("sub1", lambda x: max(0, x - 1), a)


def _gt0(a):
    return Fn("gt0", lambda x: x > 0, a)


# ---------------------------------------------------------------------------
# Table 2: the region process
# ---------------------------------------------------------------------------


def region_spec(thread_ids: tuple[int, ...] = (0, 1)) -> Spec:
    """A region serialising thread accesses, as in the paper's Table 2.

    ``Region(home)`` hands its current record to one thread at a time
    via ``s_sendback(tid, home)``; the thread answers with
    ``r_norefresh(tid)`` (nothing changed) or ``r_refresh(tid, home')``
    (record updated — here abstracted to the home field, the part the
    paper's requirements are about).
    """
    tids = FiniteSort("TID", thread_ids)
    pids = FiniteSort("PID", (0, 1))
    body = Sum(
        "tid",
        tids,
        Seq(
            Act("s_sendback", DVar("tid"), DVar("home")),
            Alt(
                Seq(Act("r_norefresh", DVar("tid")), Call("Region", DVar("home"))),
                Sum(
                    "h",
                    pids,
                    Seq(
                        Act("r_refresh", DVar("tid"), DVar("h")),
                        Call("Region", DVar("h")),
                    ),
                ),
            ),
        ),
    )
    return Spec(defs=[ProcessDef("Region", ("home",), body)])


def region_system(thread_ids: tuple[int, ...] = (0, 1), home: int = 0) -> SpecSystem:
    """Two threads repeatedly reading/updating the region record.

    Each thread grabs the record, then either leaves it or moves the
    home to its own processor (thread ``t`` lives on processor ``t``).
    """
    spec_defs = list(region_spec(thread_ids).defs)
    tids = FiniteSort("TID", thread_ids)

    # Thread(tid): r_sendback(tid, h) . (s_norefresh(tid) + s_refresh(tid, tid)) . Thread(tid)
    pids = FiniteSort("PID", (0, 1))
    thread_body = Sum(
        "h",
        pids,
        Seq(
            Act("r_sendback", DVar("tid"), DVar("h")),
            Alt(
                Seq(Act("s_norefresh", DVar("tid")), Call("AThread", DVar("tid"))),
                Seq(
                    Act("s_refresh", DVar("tid"), DVar("tid")),
                    Call("AThread", DVar("tid")),
                ),
            ),
        ),
    )
    spec_defs.append(ProcessDef("AThread", ("tid",), thread_body))
    spec = Spec(defs=spec_defs)
    comm = Comm(
        ("s_sendback", "r_sendback", "c_sendback"),
        ("s_norefresh", "r_norefresh", "c_norefresh"),
        ("s_refresh", "r_refresh", "c_refresh"),
    )
    init = Encap(
        ["s_sendback", "r_sendback", "s_norefresh", "r_norefresh",
         "s_refresh", "r_refresh"],
        par_all(
            [Call("Region", home)] + [Call("AThread", t) for t in thread_ids],
            comm,
        ),
    )
    return SpecSystem(spec, init)


# ---------------------------------------------------------------------------
# Table 6: the protocol lock manager
# ---------------------------------------------------------------------------


def locker_spec(max_wait: int = 2) -> Spec:
    """The fault/flush lock manager of the paper's Table 6 (two of the
    five locks — the pair whose mutual exclusion matters for non-home
    writes).

    ``Locker(faulters, flushers, wf, wl)`` tracks whether each lock is
    held and how many threads wait for it; a request is granted
    immediately (``s_no_*wait``) when the exclusion allows, otherwise
    the waiting count rises and a later release signals a waiter
    (``s_signal_*wait``), exactly the paper's scheme of modelling
    waiting lists as naturals.
    """
    nat = FiniteSort("Nat", tuple(range(max_wait + 1)))
    del nat  # counts are plain data; the sort bounds tests' configurations

    faulters = DVar("faulters")
    flushers = DVar("flushers")
    wf = DVar("wf")
    wl = DVar("wl")

    grantable_fault = _not(Fn("or", lambda a, b: bool(a or b), faulters, flushers))
    grantable_flush = _not(Fn("or", lambda a, b: bool(a or b), faulters, flushers))

    body = Alt(
        Alt(
            # fault lock request
            Seq(
                Act("r_require_faultlock"),
                Cond(
                    Seq(
                        Act("s_no_faultwait"),
                        Call("Locker", True, flushers, wf, wl),
                    ),
                    grantable_fault,
                    Seq(
                        Act("queued_fault"),
                        Call("Locker", faulters, flushers, _inc(wf), wl),
                    ),
                ),
            ),
            # flush lock request
            Seq(
                Act("r_require_flushlock"),
                Cond(
                    Seq(
                        Act("s_no_flushwait"),
                        Call("Locker", faulters, True, wf, wl),
                    ),
                    grantable_flush,
                    Seq(
                        Act("queued_flush"),
                        Call("Locker", faulters, flushers, wf, _inc(wl)),
                    ),
                ),
            ),
        ),
        Alt(
            # fault lock release: maybe signal a waiter
            Seq(
                Act("r_free_faultlock"),
                Cond(
                    Seq(
                        Act("s_signal_faultwait"),
                        Call("Locker", True, flushers, _dec(wf), wl),
                    ),
                    _and(_gt0(wf), _not(flushers)),
                    Cond(
                        Seq(
                            Act("s_signal_flushwait"),
                            Call("Locker", False, True, wf, _dec(wl)),
                        ),
                        _and(_gt0(wl), _not(flushers)),
                        Call("Locker", False, flushers, wf, wl),
                    ),
                ),
            ),
            # flush lock release: maybe signal a waiter
            Seq(
                Act("r_free_flushlock"),
                Cond(
                    Seq(
                        Act("s_signal_flushwait"),
                        Call("Locker", faulters, True, wf, _dec(wl)),
                    ),
                    _and(_gt0(wl), _not(faulters)),
                    Cond(
                        Seq(
                            Act("s_signal_faultwait"),
                            Call("Locker", True, False, _dec(wf), wl),
                        ),
                        _and(_gt0(wf), _not(faulters)),
                        Call("Locker", faulters, False, wf, wl),
                    ),
                ),
            ),
        ),
    )
    return Spec(
        defs=[ProcessDef("Locker", ("faulters", "flushers", "wf", "wl"), body)]
    )


def locker_system(n_faulters: int = 1, n_flushers: int = 1) -> SpecSystem:
    """Threads contending for the fault and flush locks of one
    processor, composed with the Table-6 lock manager.

    A fault client loops: require fault lock, (granted now or signalled
    later), do ``fault_cs`` (the critical section), release. Flush
    clients mirror it with ``flush_cs``. The test suite checks mutual
    exclusion of ``fault_cs``/``flush_cs`` and deadlock freedom.
    """
    defs = list(locker_spec(max_wait=n_faulters + n_flushers).defs)
    defs.append(
        ProcessDef(
            "FaultClient",
            (),
            Seq(
                Act("s_require_faultlock"),
                Seq(
                    Alt(Act("r_no_faultwait"), Act("r_signal_faultwait")),
                    Seq(
                        Act("fault_cs"),
                        Seq(Act("s_free_faultlock"), Call("FaultClient")),
                    ),
                ),
            ),
        )
    )
    defs.append(
        ProcessDef(
            "FlushClient",
            (),
            Seq(
                Act("s_require_flushlock"),
                Seq(
                    Alt(Act("r_no_flushwait"), Act("r_signal_flushwait")),
                    Seq(
                        Act("flush_cs"),
                        Seq(Act("s_free_flushlock"), Call("FlushClient")),
                    ),
                ),
            ),
        )
    )
    spec = Spec(defs=defs)
    comm = Comm(
        ("s_require_faultlock", "r_require_faultlock", "c_require_faultlock"),
        ("s_require_flushlock", "r_require_flushlock", "c_require_flushlock"),
        ("s_no_faultwait", "r_no_faultwait", "c_no_faultwait"),
        ("s_no_flushwait", "r_no_flushwait", "c_no_flushwait"),
        ("s_signal_faultwait", "r_signal_faultwait", "c_signal_faultwait"),
        ("s_signal_flushwait", "r_signal_flushwait", "c_signal_flushwait"),
        ("s_free_faultlock", "r_free_faultlock", "c_free_faultlock"),
        ("s_free_flushlock", "r_free_flushlock", "c_free_flushlock"),
    )
    hidden = [
        "s_require_faultlock", "r_require_faultlock",
        "s_require_flushlock", "r_require_flushlock",
        "s_no_faultwait", "r_no_faultwait",
        "s_no_flushwait", "r_no_flushwait",
        "s_signal_faultwait", "r_signal_faultwait",
        "s_signal_flushwait", "r_signal_flushwait",
        "s_free_faultlock", "r_free_faultlock",
        "s_free_flushlock", "r_free_flushlock",
    ]
    clients = [Call("FaultClient") for _ in range(n_faulters)] + [
        Call("FlushClient") for _ in range(n_flushers)
    ]
    init = Encap(
        hidden,
        par_all([Call("Locker", False, False, 0, 0)] + clients, comm),
    )
    return SpecSystem(spec, init)


# ---------------------------------------------------------------------------
# Table 1: a thread writing from remote (documentation-grade fragment)
# ---------------------------------------------------------------------------


def thread_write_remote_spec() -> Spec:
    """The paper's Table 1 fragment: WriteRemote.

    ``WriteRemote(tid, pid)`` requires the fault lock, asks the home
    for a fresh copy, waits for the signalled arrival, refreshes and
    releases. Kept at the paper's granularity for demonstration; the
    full behaviour (with migration races) lives in
    :mod:`repro.jackal.model`.
    """
    body = Seq(
        Act("s_require_faultlock", DVar("pid")),
        Seq(
            Alt(
                Act("r_no_faultwait", DVar("pid")),
                Act("r_signal_faultwait", DVar("pid")),
            ),
            Seq(
                Act("s_data_requiremsg", DVar("tid"), DVar("pid")),
                Seq(
                    Act("r_signal", DVar("tid"), DVar("pid")),
                    Seq(
                        Act("s_refresh", DVar("tid"), DVar("pid")),
                        Seq(
                            Act("s_free_faultlock", DVar("pid")),
                            Call("WriteRemote", DVar("tid"), DVar("pid")),
                        ),
                    ),
                ),
            ),
        ),
    )
    return Spec(defs=[ProcessDef("WriteRemote", ("tid", "pid"), body)])
