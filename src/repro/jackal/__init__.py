"""The Jackal DSM cache coherence protocol model.

This subpackage is the reproduction of the paper's subject: the
self-invalidation based, multiple-writer cache coherence protocol of the
Jackal fine-grained Java DSM system, including **automatic home node
migration**, modelled at the abstraction level of the paper's muCRL
specification (Section 5.2):

* threads only write and flush (reads dropped);
* regions carry location/home/state/WriterList/Localthreads but no
  object or twin data;
* region states are collapsed to Unused/Used;
* per-processor Home and Remote message queues of capacity one;
* five protocol locks per processor (server, fault, flush, homequeue,
  remotequeue) with the paper's mutual-exclusion rules.

Both historical implementation errors are reproducible through
:class:`~repro.jackal.params.ProtocolVariant` switches:

* ``fault_lock_recheck=False`` re-enables **Error 1** (a remote writer
  that became local after home migration wedges the protocol — found by
  deadlock detection);
* ``sponmigrate_informs_threads=False`` re-enables **Error 2** (a stale
  Data Return overwrites the home pointer after a Region Sponmigrate,
  leaving the region with no home — found by model checking
  Requirement 3.2).
"""

from repro.jackal.params import Config, ProtocolVariant, CONFIG_1, CONFIG_2, CONFIG_3
from repro.jackal.model import JackalModel, Phase, RegionState, Msg
from repro.jackal.actions import Labels
from repro.jackal.statistics import (
    ProtocolStatistics,
    categorize_label,
    protocol_statistics,
)
from repro.jackal.requirements import (
    RequirementReport,
    check_requirement_1,
    check_requirement_2,
    check_requirement_3_1,
    check_requirement_3_2,
    check_requirement_4,
    check_all_requirements,
)

__all__ = [
    "Config",
    "ProtocolVariant",
    "CONFIG_1",
    "CONFIG_2",
    "CONFIG_3",
    "JackalModel",
    "Phase",
    "RegionState",
    "Msg",
    "Labels",
    "ProtocolStatistics",
    "categorize_label",
    "protocol_statistics",
    "RequirementReport",
    "check_requirement_1",
    "check_requirement_2",
    "check_requirement_3_1",
    "check_requirement_3_2",
    "check_requirement_4",
    "check_all_requirements",
]
