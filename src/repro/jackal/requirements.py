"""The paper's four requirements as executable checks (Section 5.3/5.4).

1. **Deadlock freeness** — no reachable improper terminal state.
2. **Assertion checking** — no ``assertion_violation(...)`` reachable.
3. **Relaxed cache coherence** — 3.1: at most one home per region
   (``[T*.c_home] F``); 3.2: no *stable* state (no lock held, queues
   empty) in which two processors hold non-home copies.
4. **Liveness** — writes and flushes complete: the paper's exact
   inevitability formulas on bounded-round models, or the fair
   reformulation (completion stays reachable) on cyclic models.

Each check returns a :class:`RequirementReport` carrying the verdict,
the sizes of the LTS analysed, and a diagnostic trace when the
requirement fails — the reproduction of the paper's error traces.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, replace

from repro.jackal.actions import ASSERTION_PREFIX, PROBE_LABELS, Labels
from repro.obs.core import current as _current_obs
from repro.jackal.model import VIOLATION, JackalModel
from repro.jackal.params import Config, ProtocolVariant
from repro.lts.deadlock import find_deadlocks, shortest_trace_to
from repro.lts.engine import explore_fast
from repro.lts.lts import LTS
from repro.lts.trace import Trace
from repro.mucalc.checker import holds
from repro.mucalc.diagnostics import counterexample_box, witness_diamond
from repro.mucalc.syntax import (
    ActLit,
    And,
    AnyAct,
    Box,
    Diamond,
    Ff,
    Formula,
    Mu,
    NotAct,
    RAct,
    RSeq,
    RStar,
    Tt,
    Var,
)


@dataclass
class RequirementReport:
    """Outcome of one requirement check."""

    requirement: str
    holds: bool
    detail: str
    trace: Trace | None = None
    lts_states: int = 0
    lts_transitions: int = 0

    def summary(self) -> str:
        """One-line verdict."""
        verdict = "HOLDS" if self.holds else "VIOLATED"
        extra = f" — {self.detail}" if self.detail else ""
        return f"requirement {self.requirement}: {verdict}{extra}"


def _observed(fn):
    """Record each requirement check on the ambient flight recorder.

    Emits one ``check`` event (requirement id, verdict, LTS sizes,
    wall seconds) and bumps the check counters; free when nothing is
    recording.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        obs = _current_obs()
        if not obs.enabled:
            return fn(*args, **kwargs)
        t0 = time.perf_counter()
        rep = fn(*args, **kwargs)
        obs.tracer.emit(
            "check", requirement=rep.requirement, holds=rep.holds,
            states=rep.lts_states, transitions=rep.lts_transitions,
            seconds=round(time.perf_counter() - t0, 6),
        )
        obs.metrics.counter(
            "repro_checks_total",
            verdict="holds" if rep.holds else "violated",
        ).inc()
        return rep

    return wrapper


def build_model(
    config: Config, variant: ProtocolVariant, *, probes: bool
) -> JackalModel:
    """A model with the probe self-loops forced on or off.

    Probes are needed by Requirement 3 and poisonous to Requirement 4
    (a probe self-loop is an infinite path avoiding every thread
    action), so each check selects its own setting.
    """
    cfg = replace(config, with_probes=probes)
    return JackalModel(cfg, variant)


def build_lts(
    config: Config,
    variant: ProtocolVariant,
    *,
    probes: bool,
    max_states: int | None = None,
    keep_states: bool = False,
    certificate=None,
) -> tuple[JackalModel, LTS]:
    """Explore the protocol into an explicit LTS.

    Generation goes through the fast engine; BFS numbering is identical
    to :func:`repro.lts.explore.explore`, so shortest-trace extraction
    is unaffected.

    With a reduction ``certificate`` the sweep runs on the certified
    reduced view (:mod:`repro.lts.certreduce`): ample pruning, the
    certified field slice, and — when the certificate's ``formulas``
    section licenses it — the full symmetry quotient. The probe LTS
    (Requirement 3) always quotients (its formulas are index-free);
    the plain LTS also carries the per-thread Requirement-4
    inevitability formulas, which individually are *not*
    quotient-invariant — a schema-v3 certificate with
    ``plain_quotient: "full"`` proves their families orbit-closed, so
    the driver checks their symmetrized orbit conjunctions on the full
    quotient instead of falling back to ample pruning only. Verdicts
    are preserved either way; traces extracted from a reduced LTS are
    representatives up to the certified commutations and renamings,
    not necessarily the shortest concrete run.
    """
    model = build_model(config, variant, probes=probes)
    system = model
    if certificate is not None:
        from repro.lts.certreduce import ReducedSystem
        from repro.staticcheck.formulasym import licenses_full_quotient

        system = ReducedSystem(
            model,
            certificate,
            canonical=probes or licenses_full_quotient(certificate),
        )
    lts = explore_fast(system, max_states=max_states, keep_states=keep_states)
    return model, lts


# ---------------------------------------------------------------------------
# requirement 1: deadlock freeness
# ---------------------------------------------------------------------------


@_observed
def check_requirement_1(
    config: Config,
    variant: ProtocolVariant = ProtocolVariant.fixed(),
    *,
    max_states: int | None = None,
    lts: LTS | None = None,
    model: JackalModel | None = None,
    certificate=None,
) -> RequirementReport:
    """The protocol never wedges (improper terminal states unreachable)."""
    if lts is None or model is None:
        model, lts = build_lts(
            config, variant, probes=False, max_states=max_states,
            keep_states=True, certificate=certificate,
        )
    # assertion-violation sink states belong to Requirement 2, not here
    report = find_deadlocks(
        lts,
        ignore_labels=PROBE_LABELS,
        is_valid_end=lambda s: s == VIOLATION or model.is_done_state(s),
    )
    return RequirementReport(
        requirement="1 (deadlock freeness)",
        holds=report.deadlock_free,
        detail=report.summary(),
        trace=report.shortest_trace,
        lts_states=lts.n_states,
        lts_transitions=lts.n_transitions,
    )


@_observed
def check_requirement_1_bitstate(
    config: Config,
    variant: ProtocolVariant = ProtocolVariant.fixed(),
    *,
    table_bytes: int = 1 << 24,
    max_states: int | None = None,
) -> RequirementReport:
    """Approximate deadlock search by bitstate (supertrace) hashing.

    For configurations whose exact LTS exceeds memory — the situation
    the paper faced with its third configuration and the muCRL
    toolset's "state-bit hashing" addresses. Hash collisions can only
    *omit* states, so a reported deadlock is real, while a clean sweep
    is strong (not absolute) evidence of deadlock freedom; the fill
    ratio in the detail line quantifies the omission risk.
    """
    from repro.lts.bitstate import bitstate_explore

    model = build_model(config, variant, probes=False)
    res = bitstate_explore(
        model,
        table_bytes=table_bytes,
        max_states=max_states,
        is_valid_end=lambda s: s == VIOLATION or model.is_done_state(s),
    )
    detail = (
        f"~{res.visited:,} states swept, {res.deadlocks} improper "
        f"terminal(s), fill {res.fill_ratio:.4f}"
    )
    return RequirementReport(
        requirement="1 (deadlock freeness, bitstate approximation)",
        holds=res.deadlocks == 0,
        detail=detail,
        lts_states=res.visited,
        lts_transitions=res.transitions,
    )


# ---------------------------------------------------------------------------
# requirement 2: assertions
# ---------------------------------------------------------------------------


@_observed
def check_requirement_2(
    config: Config,
    variant: ProtocolVariant = ProtocolVariant.fixed(),
    *,
    max_states: int | None = None,
    lts: LTS | None = None,
    certificate=None,
) -> RequirementReport:
    """No assertion from the protocol description is violated."""
    if lts is None:
        _model, lts = build_lts(
            config, variant, probes=False, max_states=max_states,
            certificate=certificate,
        )
    violated = [lab for lab in lts.labels if lab.startswith(ASSERTION_PREFIX)]
    trace = None
    if violated:
        # shortest trace to any state enabling an assertion violation
        bad = {
            t.src
            for t in lts.transitions()
            if t.label.startswith(ASSERTION_PREFIX)
        }
        trace = shortest_trace_to(lts, bad)
    return RequirementReport(
        requirement="2 (assertions)",
        holds=not violated,
        detail=("violated: " + ", ".join(sorted(violated))) if violated else "",
        trace=trace,
        lts_states=lts.n_states,
        lts_transitions=lts.n_transitions,
    )


# ---------------------------------------------------------------------------
# requirement 3: relaxed cache coherence
# ---------------------------------------------------------------------------


def formula_3_1() -> Formula:
    """The paper's 3.1: ``[T*.c_home] F``."""
    return Box(RSeq(RStar(RAct(AnyAct())), RAct(ActLit("c_home"))), Ff())


def formula_3_2_bad_state() -> Formula:
    """The paper's 3.2 existence formula:
    ``<T*> (<c_copy>T /\\ <lock_empty>T /\\ <homequeue_empty>T /\\
    <remotequeue_empty>T)`` — requirement 3.2 holds iff this is FALSE."""
    probes = And(
        And(
            Diamond(RAct(ActLit("c_copy")), Tt()),
            Diamond(RAct(ActLit("lock_empty")), Tt()),
        ),
        And(
            Diamond(RAct(ActLit("homequeue_empty")), Tt()),
            Diamond(RAct(ActLit("remotequeue_empty")), Tt()),
        ),
    )
    return Diamond(RStar(RAct(AnyAct())), probes)


@_observed
def check_requirement_3_1(
    config: Config,
    variant: ProtocolVariant = ProtocolVariant.fixed(),
    *,
    max_states: int | None = None,
    lts: LTS | None = None,
    certificate=None,
) -> RequirementReport:
    """Each region has at most one home node at any time."""
    if lts is None:
        _model, lts = build_lts(
            config, variant, probes=True, max_states=max_states,
            certificate=certificate,
        )
    f = formula_3_1()
    ok = holds(lts, f)
    trace = None
    if not ok:
        trace = counterexample_box(lts, f.reg, f.inner)
    return RequirementReport(
        requirement="3.1 (at most one home)",
        holds=ok,
        detail="" if ok else "two processors simultaneously claim the home",
        trace=trace,
        lts_states=lts.n_states,
        lts_transitions=lts.n_transitions,
    )


@_observed
def check_requirement_3_2(
    config: Config,
    variant: ProtocolVariant = ProtocolVariant.fixed(),
    *,
    max_states: int | None = None,
    lts: LTS | None = None,
    certificate=None,
) -> RequirementReport:
    """In a stable state a region has at most ``n - 1`` copies.

    As in the paper, only meaningful for two-processor configurations
    (``c_copy`` there means the home was lost).
    """
    if config.n_processors != 2:
        return RequirementReport(
            requirement="3.2 (bounded copies when stable)",
            holds=True,
            detail="skipped: formulated (as in the paper) for 2 processors",
        )
    if lts is None:
        _model, lts = build_lts(
            config, variant, probes=True, max_states=max_states,
            certificate=certificate,
        )
    f = formula_3_2_bad_state()
    bad_reachable = holds(lts, f)
    trace = None
    if bad_reachable:
        trace = witness_diamond(lts, f.reg, f.inner)
    return RequirementReport(
        requirement="3.2 (bounded copies when stable)",
        holds=not bad_reachable,
        detail=(
            "stable state with no home reached" if bad_reachable else ""
        ),
        trace=trace,
        lts_states=lts.n_states,
        lts_transitions=lts.n_transitions,
    )


# ---------------------------------------------------------------------------
# requirement 4: liveness
# ---------------------------------------------------------------------------


def formula_4_write(tid: int, *, fair: bool = False) -> Formula:
    """The paper's 4.1 for thread ``tid``:
    ``[T*.write(t)] mu X. (<T>T /\\ [not writeover(t)] X)``.

    With ``fair=True``, the fair reformulation for cyclic models:
    ``[T*.write(t).(not writeover(t))*] <(not writeover(t))*.writeover(t)> T``
    (completion remains reachable while it has not happened).
    """
    return _inevitability(Labels.write(tid), Labels.writeover(tid), fair)


def formula_4_flush(tid: int, *, fair: bool = False) -> Formula:
    """The paper's 4.2 for thread ``tid`` (flush completion)."""
    return _inevitability(Labels.flush(tid), Labels.flushover(tid), fair)


def _inevitability(start: str, finish: str, fair: bool) -> Formula:
    t_star = RStar(RAct(AnyAct()))
    after_start = RSeq(t_star, RAct(ActLit(start)))
    not_finish = RAct(NotAct(ActLit(finish)))
    if fair:
        pending = RSeq(after_start, RStar(not_finish))
        can_finish = Diamond(
            RSeq(RStar(not_finish), RAct(ActLit(finish))), Tt()
        )
        return Box(pending, can_finish)
    inner = Mu(
        "X",
        And(Diamond(RAct(AnyAct()), Tt()), Box(not_finish, Var("X"))),
    )
    return Box(after_start, inner)


@_observed
def check_requirement_4(
    config: Config,
    variant: ProtocolVariant = ProtocolVariant.fixed(),
    *,
    max_states: int | None = None,
    lts: LTS | None = None,
    certificate=None,
) -> RequirementReport:
    """Writes and flushes eventually complete for every thread.

    On failure the report carries a *lasso* witness when one exists: a
    prefix plus an unproductive cycle — the "request bounced around the
    network forever" the paper's Requirement 4 forbids, rendered as a
    concrete run (the flush storm of Error 2 shows up this way).

    With a certificate whose ``formulas`` section licenses the full
    quotient, the sweep itself takes the full symmetry quotient (that
    is where the state-space win is), and the per-thread formulas are
    evaluated on its exact *group-unfolding*
    (:func:`repro.lts.certreduce.unfold_full_quotient`): quotient edges
    carry their winning permutations, so the unfolding reconstructs the
    concrete per-thread frames the quotient LTS itself merges away —
    per-thread labels like ``write(t0)`` are not decidable on the
    quotient directly, even via their group-invariant orbit
    conjunctions. Failure attribution is then per certified thread
    orbit (``write({t0,t1})``).
    """
    fair = config.rounds is None
    quotient = False
    if certificate is not None:
        from repro.staticcheck.formulasym import licenses_full_quotient

        quotient = licenses_full_quotient(certificate)
    if lts is None:
        _model, lts = build_lts(
            config, variant, probes=False, max_states=max_states,
            certificate=certificate,
        )
    if quotient:
        from repro.lts.certreduce import unfold_full_quotient
        from repro.staticcheck.formulasym import requirement4_orbit_formulas

        checks = requirement4_orbit_formulas(config, fair=fair)
        eval_lts = unfold_full_quotient(
            build_model(config, variant, probes=False), certificate
        )
    else:
        checks = []
        for tid in range(config.n_threads):
            checks.append(
                (f"write(t{tid})", formula_4_write(tid, fair=fair))
            )
            checks.append(
                (f"flush(t{tid})", formula_4_flush(tid, fair=fair))
            )
        eval_lts = lts
    failures = [name for name, f in checks if not holds(eval_lts, f)]
    trace = None
    if failures:
        from repro.lts.cycles import find_lasso_avoiding

        progress = [
            lab
            for lab in eval_lts.labels
            if lab.startswith(("writeover", "flushover"))
        ]
        lasso = find_lasso_avoiding(eval_lts, progress)
        if lasso is not None:
            trace = Trace(lasso.prefix.labels + lasso.cycle.labels)
    mode = "fair" if fair else "exact"
    if quotient:
        mode += ", full quotient"
    return RequirementReport(
        requirement=f"4 (liveness, {mode})",
        holds=not failures,
        detail=("not inevitable: " + ", ".join(failures)) if failures else "",
        trace=trace,
        lts_states=lts.n_states,
        lts_transitions=lts.n_transitions,
    )


# ---------------------------------------------------------------------------
# all together
# ---------------------------------------------------------------------------


def check_all_requirements(
    config: Config,
    variant: ProtocolVariant = ProtocolVariant.fixed(),
    *,
    max_states: int | None = None,
    skip: tuple[str, ...] = (),
    certificate=None,
) -> dict[str, RequirementReport]:
    """Run requirements 1-4, sharing the two LTS explorations.

    ``skip`` may name requirement keys (``"1"``, ``"2"``, ``"3.1"``,
    ``"3.2"``, ``"4"``) to omit — the paper could only check 1 and 2 on
    its third configuration. ``certificate`` reduces both explorations
    (see :func:`build_lts` for which reduction each LTS can take).
    """
    out: dict[str, RequirementReport] = {}
    plain_model = plain_lts = None
    if not {"1", "2", "4"} <= set(skip):
        plain_model, plain_lts = build_lts(
            config, variant, probes=False, max_states=max_states,
            keep_states=True, certificate=certificate,
        )
    if "1" not in skip:
        out["1"] = check_requirement_1(
            config, variant, lts=plain_lts, model=plain_model
        )
    if "2" not in skip:
        out["2"] = check_requirement_2(config, variant, lts=plain_lts)
    if "3.1" not in skip or "3.2" not in skip:
        _m, probe_lts = build_lts(
            config, variant, probes=True, max_states=max_states,
            certificate=certificate,
        )
        if "3.1" not in skip:
            out["3.1"] = check_requirement_3_1(config, variant, lts=probe_lts)
        if "3.2" not in skip:
            out["3.2"] = check_requirement_3_2(config, variant, lts=probe_lts)
    if "4" not in skip:
        out["4"] = check_requirement_4(
            config, variant, lts=plain_lts, certificate=certificate
        )
    return out
