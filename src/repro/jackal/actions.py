"""Action label vocabulary of the protocol model.

All transition labels are built here so that the model, the
requirements, the benchmarks and the trace explainer agree on spelling.
Thread-indexed labels follow the paper's convention of carrying the
thread identifier (``write(t0)``, ``writeover(t0)``, ...).
"""

from __future__ import annotations

#: observability probe labels (Requirement 3, paper Section 5.4.3)
C_HOME = "c_home"
C_COPY = "c_copy"
LOCK_EMPTY = "lock_empty"
HOMEQUEUE_EMPTY = "homequeue_empty"
REMOTEQUEUE_EMPTY = "remotequeue_empty"

PROBE_LABELS = (C_HOME, C_COPY, LOCK_EMPTY, HOMEQUEUE_EMPTY, REMOTEQUEUE_EMPTY)

#: label of protocol assertion violations (Requirement 2)
ASSERTION_PREFIX = "assertion_violation"


class Labels:
    """Label builders, parameterised by ids.

    The static methods return the exact strings the model emits; they
    are used both to pre-compute label tables inside
    :class:`~repro.jackal.model.JackalModel` and to build requirement
    formulas.
    """

    # -- thread life cycle -------------------------------------------------

    @staticmethod
    def write(tid: int) -> str:
        """Thread ``tid`` starts a write (the paper's ``write(t)``)."""
        return f"write(t{tid})"

    @staticmethod
    def writeover(tid: int) -> str:
        """Thread ``tid`` completes a write (``writeover(t)``)."""
        return f"writeover(t{tid})"

    @staticmethod
    def flush(tid: int) -> str:
        """Thread ``tid`` reaches its synchronisation point."""
        return f"flush(t{tid})"

    @staticmethod
    def flushover(tid: int) -> str:
        """Thread ``tid`` completes its flush."""
        return f"flushover(t{tid})"

    # -- protocol locks ------------------------------------------------------

    @staticmethod
    def lock_server(tid: int, pid: int) -> str:
        return f"lock_server(t{tid},p{pid})"

    @staticmethod
    def lock_fault(tid: int, pid: int) -> str:
        return f"lock_fault(t{tid},p{pid})"

    @staticmethod
    def lock_flush(tid: int, pid: int) -> str:
        return f"lock_flush(t{tid},p{pid})"

    @staticmethod
    def restart_write(tid: int) -> str:
        """Server-lock holder found the home migrated away; retry."""
        return f"restart_write(t{tid})"

    @staticmethod
    def fault_to_server(tid: int) -> str:
        """Error-1 fix: fault-lock holder is now at home; switch locks."""
        return f"fault_to_server(t{tid})"

    @staticmethod
    def stale_remote_wait(tid: int) -> str:
        """Error-1 bug: fault-lock holder waits for a reply that will
        never come (its access check found a valid local copy, so no
        Data Request was issued)."""
        return f"stale_remote_wait(t{tid})"

    # -- messages --------------------------------------------------------------

    @staticmethod
    def send_datareq(tid: int, src: int, dst: int) -> str:
        return f"send_datareq(t{tid},p{src},p{dst})"

    @staticmethod
    def send_dataret(pid: int, dst: int) -> str:
        return f"send_dataret(p{pid},p{dst})"

    @staticmethod
    def send_dataret_mig(pid: int, dst: int) -> str:
        """Data Return that also migrates the home (case 1 of §4.4)."""
        return f"send_dataret_mig(p{pid},p{dst})"

    @staticmethod
    def send_flush(tid: int, src: int, dst: int) -> str:
        return f"send_flush(t{tid},p{src},p{dst})"

    @staticmethod
    def forward_req(pid: int, dst: int) -> str:
        return f"forward_req(p{pid},p{dst})"

    @staticmethod
    def forward_flush(pid: int, dst: int) -> str:
        return f"forward_flush(p{pid},p{dst})"

    @staticmethod
    def signal(tid: int, pid: int) -> str:
        """Remote queue handler wakes the waiting thread (paper's
        ``r_signal``)."""
        return f"signal(t{tid},p{pid})"

    @staticmethod
    def recv_sponmigrate(pid: int) -> str:
        return f"recv_sponmigrate(p{pid})"

    @staticmethod
    def flush_recv(pid: int) -> str:
        """Home processed a Flush message."""
        return f"flush_recv(p{pid})"

    @staticmethod
    def flush_recv_migrate(pid: int, dst: int) -> str:
        """Home processed a Flush and migrated (case 2 of §4.4)."""
        return f"flush_recv_migrate(p{pid},p{dst})"

    @staticmethod
    def flush_home(tid: int, pid: int) -> str:
        """At-home flush performed locally by a thread."""
        return f"flush_home(t{tid},p{pid})"

    @staticmethod
    def flush_home_migrate(tid: int, pid: int, dst: int) -> str:
        """At-home flush that triggered case-2 migration."""
        return f"flush_home_migrate(t{tid},p{pid},p{dst})"

    # -- queue handler locks ------------------------------------------------

    @staticmethod
    def lock_homequeue(pid: int) -> str:
        return f"lock_homequeue(p{pid})"

    @staticmethod
    def lock_remotequeue(pid: int) -> str:
        return f"lock_remotequeue(p{pid})"

    # -- assertions -------------------------------------------------------------

    @staticmethod
    def assertion(name: str) -> str:
        return f"{ASSERTION_PREFIX}({name})"
