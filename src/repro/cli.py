"""Command-line interface.

Everything the paper's authors ran by hand — generation, requirement
checking, trace narration — as subcommands::

    python -m repro check   --config 1 --variant fixed
    python -m repro check   --config 2 --variant error2 --requirement 3.2
    python -m repro explore --config 1 --rounds 2 --aut out.aut
    python -m repro table8  --rounds 2
    python -m repro narrate --config 1 --variant error1 --cyclic
    python -m repro litmus
    python -m repro formula --config 1 '[T*.c_home] F'
    python -m repro bench   --config 1 --out BENCH_explore.json --profile
    python -m repro lint    --config 2 --certify --cert-out CERT.json
    python -m repro check   --config 2 --reduce CERT.json
    python -m repro explore --config 1 --trace sweep.jsonl --metrics-out m.json
    python -m repro report  sweep.jsonl
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import os
import sys

from repro import obs
from repro.analysis.explain import narrate_trace
from repro.analysis.reporting import Table
from repro.errors import ReproError
from repro.jackal.params import CONFIG_1, CONFIG_2, CONFIG_3, Config, ProtocolVariant
from repro.jackal.requirements import (
    build_lts,
    build_model,
    check_all_requirements,
    check_requirement_1,
    check_requirement_2,
    check_requirement_3_1,
    check_requirement_3_2,
    check_requirement_4,
)

_CONFIGS = {"1": CONFIG_1, "2": CONFIG_2, "3": CONFIG_3}
_VARIANTS = {
    "fixed": ProtocolVariant.fixed,
    "buggy": ProtocolVariant.buggy,
    "error1": ProtocolVariant.error1,
    "error2": ProtocolVariant.error2,
    "no-migration": ProtocolVariant.no_migration,
    "alf": ProtocolVariant.alf,
}
_CHECKS = {
    "1": check_requirement_1,
    "2": check_requirement_2,
    "3.1": check_requirement_3_1,
    "3.2": check_requirement_3_2,
    "4": check_requirement_4,
}


def _config(args) -> Config:
    cfg = _CONFIGS[args.config]
    rounds = None if getattr(args, "cyclic", False) else args.rounds
    return dataclasses.replace(cfg, rounds=rounds)


def _add_model_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--config", choices=sorted(_CONFIGS), default="1",
                   help="paper configuration (default 1)")
    p.add_argument("--variant", choices=sorted(_VARIANTS), default="fixed",
                   help="protocol variant (default fixed)")
    p.add_argument("--rounds", type=int, default=1,
                   help="write+flush rounds per thread (default 1)")
    p.add_argument("--cyclic", action="store_true",
                   help="cyclic threads, as in the paper's muCRL spec")
    p.add_argument("--max-states", type=int, default=None,
                   help="abort beyond this many states")


def _add_reduce_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--reduce", default=None, metavar="CERT.json",
                   help="sweep under the symmetry/ample reduction this "
                   "certificate licenses (issued by `repro lint "
                   "--certify`); refuses with exit 2 unless the "
                   "certificate validates for this exact spec")


def _certificate(args):
    if getattr(args, "reduce", None) is None:
        return None
    from repro.staticcheck.certificates import load

    return load(args.reduce)


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("observability")
    g.add_argument("--trace", default=None, metavar="JSONL",
                   help="record a structured event trace to this file "
                   "(render it later with `repro report`)")
    g.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="record one trace stream per process into this "
                   "directory: trace.coordinator.jsonl plus a "
                   "trace.worker<N>.jsonl per distributed worker "
                   "(render the merged timeline with `repro report DIR`)")
    g.add_argument("--trace-ring", type=int, default=None, metavar="N",
                   help="keep only the last N events (bounded memory; "
                   "with --trace the retained tail is written at exit)")
    g.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write final metrics to this file (JSON, or "
                   "Prometheus text if the path ends in .prom)")
    g.add_argument("--progress", action="store_true",
                   help="live progress line on stderr while exploring")
    g.add_argument("--mem-pressure-mb", type=float, default=None,
                   metavar="MB",
                   help="emit a mem_pressure trace event when the "
                   "process RSS crosses this many MiB (memory "
                   "watermarks are recorded whenever any recording "
                   "flag is on)")


@contextlib.contextmanager
def _instrumented(args):
    """Activate the flight recorder the obs flags ask for (or NULL).

    On exit the trace file is closed and the metrics snapshot written,
    even when the command fails — a wedged sweep still leaves its
    black box behind.
    """
    trace = getattr(args, "trace", None)
    trace_dir = getattr(args, "trace_dir", None)
    ring = getattr(args, "trace_ring", None)
    metrics_out = getattr(args, "metrics_out", None)
    progress = getattr(args, "progress", False)
    pressure_mb = getattr(args, "mem_pressure_mb", None)
    if not (trace or trace_dir or ring or metrics_out or progress
            or pressure_mb):
        yield obs.NULL
        return
    if trace and trace_dir:
        raise ReproError("--trace and --trace-dir are mutually exclusive")
    if trace_dir:
        # the coordinator's stream lives next to the per-worker ones
        os.makedirs(trace_dir, exist_ok=True)
        trace = os.path.join(trace_dir, "trace.coordinator.jsonl")
    registry = obs.MetricsRegistry() if metrics_out else None
    tracer = obs.Tracer(path=trace, ring=ring) if (trace or ring) else None
    reporter = obs.ProgressReporter() if progress else None
    memwatch = obs.MemWatch(
        tracer=tracer, metrics=registry,
        threshold_bytes=(
            int(pressure_mb * 1024 * 1024) if pressure_mb else None
        ),
    )
    inst = obs.Instrumentation(registry, tracer, reporter, memwatch,
                               trace_dir=trace_dir)
    try:
        with obs.activate(inst):
            yield inst
    finally:
        inst.close()
        if trace_dir:
            print(f"written: {trace_dir}", file=sys.stderr)
        elif trace:
            print(f"written: {trace}", file=sys.stderr)
        if metrics_out:
            rendered = (
                registry.render_prometheus()
                if metrics_out.endswith(".prom")
                else registry.render_json() + "\n"
            )
            with open(metrics_out, "w") as fh:
                fh.write(rendered)
            print(f"written: {metrics_out}", file=sys.stderr)


def _cmd_check(args) -> int:
    cfg = _config(args)
    variant = _VARIANTS[args.variant]()
    with _instrumented(args):
        return _run_check(args, cfg, variant)


def _run_check(args, cfg, variant) -> int:
    cert = _certificate(args)
    if args.requirement:
        rep = _CHECKS[args.requirement](
            cfg, variant, max_states=args.max_states, certificate=cert
        )
        print(rep.summary())
        if rep.trace is not None and args.show_trace:
            print(rep.trace.format())
        return 0 if rep.holds else 1
    results = check_all_requirements(
        cfg, variant, max_states=args.max_states, certificate=cert
    )
    table = Table(
        f"requirements on config {args.config} ({variant.describe()}, "
        f"{cfg.describe()})",
        ["requirement", "verdict", "detail", "states"],
    )
    ok = True
    for rep in results.values():
        ok &= rep.holds
        table.add(requirement=rep.requirement,
                  verdict="HOLDS" if rep.holds else "VIOLATED",
                  detail=rep.detail, states=rep.lts_states)
    print(table.render())
    return 0 if ok else 1


def _cmd_explore(args) -> int:
    from repro.lts.aut import write_aut
    from repro.lts.stats import lts_summary

    cfg = _config(args)
    variant = _VARIANTS[args.variant]()
    cert = _certificate(args)
    if args.distributed:
        from repro.lts.distributed import distributed_explore

        model = build_model(cfg, variant, probes=args.probes)
        with _instrumented(args):
            _lts, stats = distributed_explore(
                model,
                n_workers=args.workers or os.cpu_count() or 2,
                transport=args.transport,
                max_states=args.max_states,
                certificate=cert,
            )
        row = {
            "states": stats.states, "transitions": stats.transitions,
            "workers": len(stats.per_worker_states),
            "transport": stats.transport,
            "seconds": round(stats.seconds, 3),
            "states/s": round(
                stats.states / stats.seconds if stats.seconds > 0 else 0.0
            ),
        }
        print(Table(
            f"distributed sweep of config {args.config} "
            f"({variant.describe()})",
            list(row), [row],
        ).render())
        if args.aut:
            raise ReproError(
                "--aut needs the explicit LTS; drop --distributed "
                "(the distributed backend is count-only from the CLI)"
            )
        return 0
    with _instrumented(args):
        _model, lts = build_lts(
            cfg, variant, probes=args.probes, max_states=args.max_states,
            certificate=cert,
        )
    summary = lts_summary(lts)
    print(Table(f"LTS of config {args.config} ({variant.describe()})",
                list(summary.as_row()), [summary.as_row()]).render())
    if args.aut:
        write_aut(lts, args.aut)
        print(f"written: {args.aut}")
    return 0


def _cmd_table8(args) -> int:
    rows = []
    for name, cfg in _CONFIGS.items():
        skip = ("3.1", "3.2", "4") if name == "3" else ()
        c = dataclasses.replace(
            cfg, rounds=None if args.cyclic else args.rounds
        )
        res = check_all_requirements(
            c, ProtocolVariant.fixed(), skip=skip, max_states=args.max_states
        )
        rows.append({
            "config": name,
            "states": max(r.lts_states for r in res.values()),
            "transitions": max(r.lts_transitions for r in res.values()),
            "req_checked": ", ".join(sorted(res)),
            "all_hold": all(r.holds for r in res.values()),
        })
    print(Table("Table 8 reproduction",
                ["config", "states", "transitions", "req_checked", "all_hold"],
                rows).render())
    return 0 if all(r["all_hold"] for r in rows) else 1


def _cmd_narrate(args) -> int:
    cfg = _config(args)
    variant = _VARIANTS[args.variant]()
    if args.requirement is not None:
        # an explicit requirement is checked directly — never narrate a
        # requirement-1 trace when the user asked about 3.2
        rep = _CHECKS[args.requirement](cfg, variant, max_states=args.max_states)
        print(rep.summary())
    else:
        # default: narrate whichever paper bug is present — the
        # deadlock (requirement 1) first, home loss (3.2) as fallback
        rep = check_requirement_1(cfg, variant, max_states=args.max_states)
        print(rep.summary())
        if rep.trace is None and rep.holds:
            rep = check_requirement_3_2(cfg, variant, max_states=args.max_states)
            print(rep.summary())
    if rep.trace is None:
        print("nothing to narrate (no counterexample found)")
        return 0
    model = build_model(cfg, variant, probes=not rep.holds and rep.requirement.startswith("3"))
    print()
    print(narrate_trace(model, rep.trace))
    return 1


def _cmd_bench(args) -> int:
    import json

    from repro.lts.bench import BenchMismatchError, bench_explore, format_bench

    cfg = dataclasses.replace(_config(args), with_probes=False)
    variant = _VARIANTS[args.variant]()
    model = build_model(cfg, variant, probes=False)
    backends = tuple(args.backends.split(","))
    faults = None
    if args.inject_fault:
        from repro.lts.faults import FaultPlan

        if "distributed" not in backends:
            # a fault plan that no backend would exercise must not be
            # silently ignored — the "benchmark" would claim recovery
            # coverage it never ran
            raise ReproError(
                "--inject-fault targets the distributed backend, but "
                f"--backends {args.backends!r} does not include "
                "'distributed'"
            )
        faults = FaultPlan.parse(",".join(args.inject_fault))
    cert = _certificate(args)
    try:
        with _instrumented(args):
            report = bench_explore(
                model,
                backends=backends,
                n_workers=args.workers,
                repeats=args.repeats,
                profile=args.profile,
                faults=faults,
                batch_size=args.batch_size,
                transport=args.transport,
                certificate=cert,
            )
    except BenchMismatchError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 2
    report["config"] = cfg.describe()
    report["variant"] = variant.describe()
    print(format_bench(report))
    if args.profile:
        print()
        print(report["profile"])
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"written: {args.out}")
    if args.min_sps is not None:
        best = max(
            row["states_per_second"] for row in report["backends"].values()
        )
        if best < args.min_sps:
            print(
                f"FAIL: best throughput {best:.0f} states/s below the "
                f"--min-sps floor {args.min_sps}",
                file=sys.stderr,
            )
            return 1
    if args.min_dist_speedup is not None:
        dist_speedup = report["speedup"].get("distributed")
        if dist_speedup is None:
            print(
                "FAIL: --min-dist-speedup set but the distributed "
                "backend did not run",
                file=sys.stderr,
            )
            return 1
        if dist_speedup < args.min_dist_speedup:
            print(
                f"FAIL: distributed speedup {dist_speedup:.2f}x below "
                f"the --min-dist-speedup floor {args.min_dist_speedup}",
                file=sys.stderr,
            )
            return 1
    if args.max_rss_mb is not None:
        from repro.lts.bench import rss_gate

        cap = int(args.max_rss_mb * 1024 * 1024)
        over = rss_gate(report, cap)
        if over:
            worst = max(
                report["backends"][n]["max_rss_bytes"] for n in over
            )
            print(
                f"FAIL: RSS watermark {worst / (1024 * 1024):.1f} MiB "
                f"exceeds the --max-rss-mb cap {args.max_rss_mb} "
                f"(backends: {', '.join(over)})",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_report(args) -> int:
    import json

    from repro.obs.report import report_from_file, report_from_paths

    paths = args.tracefile
    single_file = len(paths) == 1 and not os.path.isdir(paths[0])
    shown = paths[0] if len(paths) == 1 else ", ".join(paths)
    try:
        if single_file and not args.lenient:
            # one plain file keeps the strict contract: a malformed
            # line is a clean error, never a silent partial report
            rendered = report_from_file(paths[0])
        elif single_file:
            rendered = report_from_file(paths[0], lenient=True)
        else:
            # directories / multiple streams merge leniently — crashed
            # workers legitimately leave torn tails behind
            rendered = report_from_paths(paths)
    except BrokenPipeError:
        raise
    except OSError as exc:
        raise ReproError(f"cannot read trace {shown!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(
            f"malformed trace {shown!r}: {exc.msg}"
        ) from exc
    print(rendered)
    return 0


def _cmd_litmus(_args) -> int:
    from repro.jmm import LITMUS_TESTS, run_conformance

    ok = True
    for t in LITMUS_TESTS():
        res = run_conformance(t)
        ok &= res.conforms
        print(res.summary())
    return 0 if ok else 1


def _cmd_lint(args) -> int:
    from repro.mucalc.parser import parse_formula
    from repro.staticcheck import RULES, default_formulas, run_lint

    if args.rules:
        for rule, text in sorted(RULES.items()):
            print(f"{rule}  {text}")
        return 0
    cfg = _config(args)
    variant = _VARIANTS[args.variant]()
    formulas = default_formulas(cfg)
    for spec in args.formula:
        name, _, text = spec.partition("=")
        if not text:
            name, text = f"<cli:{spec}>", spec
        formulas.append((name, parse_formula(text)))
    report = run_lint(
        cfg, variant, formulas=formulas, suppress=tuple(args.suppress)
    )
    cert = None
    if args.certify:
        from repro.staticcheck.symmetry import certify

        # certification failure surfaces as JKL30x findings in the
        # report (machine-readable in --json) and flips the exit code
        cert, cert_findings = certify(cfg, variant)
        report.extend(cert_findings)
    rendered = report.render_json() if args.json else report.render_text()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(rendered + "\n")
        print(f"written: {args.out}")
    else:
        print(rendered)
    if cert is not None:
        cert.save(args.cert_out)
        print(f"written: {args.cert_out}")
    return report.exit_code


def _cmd_formula(args) -> int:
    from repro.mucalc.checker import holds
    from repro.mucalc.parser import parse_formula

    cfg = _config(args)
    variant = _VARIANTS[args.variant]()
    _model, lts = build_lts(
        cfg, variant, probes=args.probes, max_states=args.max_states
    )
    f = parse_formula(args.formula)
    result = holds(lts, f)
    print(f"{f}  on config {args.config} ({variant.describe()}): {result}")
    return 0 if result else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Jackal cache-coherence protocol verification "
        "(IPPS 2003 reproduction)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="model check the paper's requirements")
    _add_model_args(p)
    p.add_argument("--requirement", choices=sorted(_CHECKS), default=None,
                   help="check one requirement (default: all)")
    p.add_argument("--show-trace", action="store_true",
                   help="print the counterexample trace if any")
    _add_reduce_arg(p)
    _add_obs_args(p)
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("explore", help="generate the LTS, optionally to .aut")
    _add_model_args(p)
    p.add_argument("--probes", action="store_true",
                   help="include the observability probe self-loops")
    p.add_argument("--aut", default=None, help="write the LTS to this path")
    p.add_argument("--distributed", action="store_true",
                   help="count-only partitioned sweep with worker "
                   "processes (combine with --trace-dir for one trace "
                   "stream per worker)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for --distributed "
                   "(default: the machine's CPU count)")
    p.add_argument("--transport", default=None,
                   choices=("auto", "queue", "shm"),
                   help="distributed transport (default auto)")
    _add_reduce_arg(p)
    _add_obs_args(p)
    p.set_defaults(fn=_cmd_explore)

    p = sub.add_parser("table8", help="regenerate the paper's Table 8")
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument("--cyclic", action="store_true")
    p.add_argument("--max-states", type=int, default=None)
    p.set_defaults(fn=_cmd_table8)

    p = sub.add_parser("narrate", help="find and narrate an error trace")
    _add_model_args(p)
    p.add_argument("--requirement", choices=("1", "3.2"), default=None,
                   help="narrate this requirement's counterexample "
                   "(default: requirement 1, falling back to 3.2 when "
                   "1 holds)")
    p.set_defaults(fn=_cmd_narrate)

    p = sub.add_parser(
        "bench", help="benchmark the exploration backends (BENCH_explore.json)"
    )
    _add_model_args(p)
    p.add_argument(
        "--backends",
        default="serial,engine,engine-packed,distributed",
        help="comma-separated backends (serial is always run)",
    )
    p.add_argument("--workers", type=int, default=None,
                   help="partitions for the distributed backend "
                   "(default: the machine's available CPU count)")
    p.add_argument("--transport", default=None,
                   choices=("auto", "queue", "shm"),
                   help="distributed transport (default auto: "
                   "shared-memory rings when codec+fork are available, "
                   "else the pickled-queue fallback)")
    p.add_argument("--repeats", type=int, default=1,
                   help="timed runs per backend; best is reported")
    p.add_argument("--profile", action="store_true",
                   help="cProfile the engine and print hot functions")
    p.add_argument("--inject-fault", action="append", default=[],
                   metavar="KIND:W@N",
                   help="inject a worker fault into the distributed "
                   "backend (repeatable; kill:W@N, raise:W@N, "
                   "delay:W@SECONDS) — the cross-check then exercises "
                   "crash recovery")
    p.add_argument("--batch-size", type=int, default=None,
                   help="states per distributed work batch (default 256; "
                   "shrink to force many batches on small systems)")
    p.add_argument("--out", default=None, metavar="JSON",
                   help="write the report (e.g. BENCH_explore.json)")
    p.add_argument("--min-sps", type=float, default=None,
                   help="exit 1 if the best backend is slower than this")
    p.add_argument("--min-dist-speedup", type=float, default=None,
                   help="exit 1 if the distributed backend's speedup "
                   "over serial falls below this (e.g. 1.0)")
    p.add_argument("--max-rss-mb", type=float, default=None,
                   help="exit 1 if any backend's instrumented-pass RSS "
                   "watermark exceeds this many MiB (memory regression "
                   "gate)")
    _add_reduce_arg(p)
    _add_obs_args(p)
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "report", help="render recorded trace files/dirs as a timeline"
    )
    p.add_argument("tracefile", metavar="TRACE", nargs="+",
                   help="JSONL trace file(s) written by --trace, and/or "
                   "--trace-dir directories; several streams merge into "
                   "one causal timeline with per-worker lanes")
    p.add_argument("--lenient", action="store_true",
                   help="skip unparseable lines instead of failing "
                   "(always on for directories/multiple streams)")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("litmus", help="JMM conformance of the DSM runtime")
    p.set_defaults(fn=_cmd_litmus)

    p = sub.add_parser(
        "lint", help="static protocol analysis (no state-space exploration)"
    )
    p.add_argument("--config", choices=sorted(_CONFIGS), default="1",
                   help="paper configuration (default 1)")
    p.add_argument("--variant", choices=sorted(_VARIANTS), default="fixed",
                   help="protocol variant (default fixed)")
    p.add_argument("--rounds", type=int, default=1,
                   help="write+flush rounds per thread (default 1)")
    p.add_argument("--cyclic", action="store_true",
                   help="cyclic threads, as in the paper's muCRL spec")
    p.add_argument("--json", action="store_true",
                   help="render the report as JSON")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the report to this path instead of stdout")
    p.add_argument("--suppress", action="append", default=[],
                   metavar="RULE", help="drop findings of this rule id "
                   "(repeatable, e.g. --suppress JKL202)")
    p.add_argument("--formula", action="append", default=[],
                   metavar="[NAME=]TEXT", help="also cross-check the "
                   "labels of this mu-calculus formula (repeatable)")
    p.add_argument("--rules", action="store_true",
                   help="list the rule catalogue and exit")
    p.add_argument("--certify", action="store_true",
                   help="additionally certify the spec for symmetry/"
                   "ample reduction; failures surface as JKL30x "
                   "findings (exit 1), success writes --cert-out")
    p.add_argument("--cert-out", default="CERT.json", metavar="FILE",
                   help="where --certify writes the signed reduction "
                   "certificate (default CERT.json)")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser("formula", help="check a mu-calculus formula")
    _add_model_args(p)
    p.add_argument(
        "--no-probes",
        dest="probes",
        action="store_false",
        help="check on the probe-free model (needed for liveness formulas)",
    )
    p.set_defaults(probes=True)
    p.add_argument("formula", help="formula in the paper's syntax")
    p.set_defaults(fn=_cmd_formula)

    args = ap.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        # library failures (bad parameters, malformed specs/formulas,
        # exploration limits) are reported, not tracebacked; exit code 2
        # distinguishes them from verification verdicts (0/1)
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `repro ... | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
