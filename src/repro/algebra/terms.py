"""Syntax of process terms and data expressions.

Terms here are the *specification-level* syntax: they may contain free
data variables (bound by :class:`Sum` or by process definition
parameters). The runtime states produced during exploration are fully
evaluated closed forms built by :mod:`repro.algebra.semantics`.

Data is plain Python: any hashable value can flow through actions and
parameters; finite sorts (:class:`FiniteSort`) enumerate the values a
:class:`Sum` ranges over, mirroring muCRL's equational data types at the
level the paper's model actually uses them (enumerated processor /
thread / region identifiers, booleans, small naturals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SpecificationError

# ---------------------------------------------------------------------------
# data expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for data expressions."""

    def eval(self, env: dict[str, Any]) -> Any:
        """Evaluate under an environment mapping variable names to values."""
        raise NotImplementedError

    def free(self) -> frozenset[str]:
        """Free data variables."""
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    """A literal value."""

    value: Any

    def eval(self, env):
        return self.value

    def free(self):
        return frozenset()

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class DVar(Expr):
    """A data variable reference."""

    name: str

    def eval(self, env):
        try:
            return env[self.name]
        except KeyError:
            raise SpecificationError(f"unbound data variable {self.name}") from None

    def free(self):
        return frozenset([self.name])

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Fn(Expr):
    """A function application ``func(*args)``.

    ``func`` is any Python callable; ``name`` is used for display only.
    This is the pragmatic rendition of muCRL's equationally defined
    functions: the defining equations become a Python body.
    """

    name: str
    func: Callable[..., Any]
    args: tuple[Expr, ...]

    def __init__(self, name: str, func: Callable[..., Any], *args):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "args", tuple(_expr(a) for a in args))

    def eval(self, env):
        return self.func(*(a.eval(env) for a in self.args))

    def free(self):
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.free()
        return out

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


def _expr(x: Any) -> Expr:
    """Coerce a Python value (or expression) to an :class:`Expr`."""
    if isinstance(x, Expr):
        return x
    return Const(x)


@dataclass(frozen=True)
class FiniteSort:
    """A finite enumerated sort, the range of a :class:`Sum`."""

    name: str
    values: tuple[Any, ...]

    def __post_init__(self):
        if not self.values:
            raise SpecificationError(f"sort {self.name} has no values")

    def __str__(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# process terms
# ---------------------------------------------------------------------------


class ProcessTerm:
    """Base class for specification-level process terms."""

    def free(self) -> frozenset[str]:
        """Free data variables of this term."""
        raise NotImplementedError


@dataclass(frozen=True)
class Act(ProcessTerm):
    """An action ``name(args...)``; terminates after executing.

    The reserved name ``"tau"`` is the hidden action and must not carry
    arguments.
    """

    name: str
    args: tuple[Expr, ...]

    def __init__(self, name: str, *args):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(_expr(a) for a in args))
        if name == "tau" and self.args:
            raise SpecificationError("tau carries no data parameters")
        if name == "delta":
            raise SpecificationError("use Delta() for the deadlock constant")

    def free(self):
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.free()
        return out

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}({', '.join(map(str, self.args))})"


def Tau() -> Act:
    """The hidden action tau."""
    return Act("tau")


@dataclass(frozen=True)
class Delta(ProcessTerm):
    """The deadlock constant: no actions, no termination."""

    def free(self):
        return frozenset()

    def __str__(self) -> str:
        return "delta"


@dataclass(frozen=True)
class Seq(ProcessTerm):
    """Sequential composition ``left . right``."""

    left: ProcessTerm
    right: ProcessTerm

    def free(self):
        return self.left.free() | self.right.free()

    def __str__(self) -> str:
        return f"{self.left} . {self.right}"


@dataclass(frozen=True)
class Alt(ProcessTerm):
    """Non-deterministic choice ``left + right``."""

    left: ProcessTerm
    right: ProcessTerm

    def free(self):
        return self.left.free() | self.right.free()

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class Sum(ProcessTerm):
    """Summation over a finite sort: ``sum(var: sort, body)``."""

    var: str
    sort: FiniteSort
    body: ProcessTerm

    def free(self):
        return self.body.free() - {self.var}

    def __str__(self) -> str:
        return f"sum({self.var}:{self.sort}, {self.body})"


@dataclass(frozen=True)
class Cond(ProcessTerm):
    """The conditional ``then <| cond |> els`` of muCRL."""

    then: ProcessTerm
    cond: Expr
    els: ProcessTerm

    def __init__(self, then: ProcessTerm, cond, els: ProcessTerm | None = None):
        object.__setattr__(self, "then", then)
        object.__setattr__(self, "cond", _expr(cond))
        object.__setattr__(self, "els", els if els is not None else Delta())

    def free(self):
        return self.then.free() | self.cond.free() | self.els.free()

    def __str__(self) -> str:
        return f"({self.then} <| {self.cond} |> {self.els})"


@dataclass(frozen=True)
class Call(ProcessTerm):
    """A recursion variable with actual parameters: ``P(e1, ..., en)``."""

    name: str
    args: tuple[Expr, ...]

    def __init__(self, name: str, *args):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(_expr(a) for a in args))

    def free(self):
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.free()
        return out

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}({', '.join(map(str, self.args))})"
