"""Process specifications: named, parameterised process definitions.

A :class:`Spec` collects the recursive definitions of a muCRL
specification (the ``proc`` section). Static validation catches the
mistakes the paper's authors report spending much time on: unknown
process names, arity mismatches, and unbound data variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import SpecificationError
from repro.algebra.terms import (
    Act,
    Alt,
    Call,
    Cond,
    Delta,
    ProcessTerm,
    Seq,
    Sum,
)


@dataclass(frozen=True)
class ProcessDef:
    """``name(param1, ..., paramN) = body``."""

    name: str
    params: tuple[str, ...]
    body: ProcessTerm

    def __str__(self) -> str:
        if self.params:
            return f"proc {self.name}({', '.join(self.params)}) = {self.body}"
        return f"proc {self.name} = {self.body}"


@dataclass
class Spec:
    """A set of process definitions.

    Validation (``validate()``, also run on construction) checks:

    * unique definition names;
    * every :class:`Call` resolves to a known definition with the right
      arity;
    * every data variable is bound by a parameter or an enclosing
      :class:`Sum`.
    """

    defs: list[ProcessDef] = field(default_factory=list)

    def __post_init__(self):
        self._by_name: dict[str, ProcessDef] = {}
        for d in self.defs:
            if d.name in self._by_name:
                raise SpecificationError(f"duplicate definition of {d.name}")
            self._by_name[d.name] = d
        self.validate()

    def lookup(self, name: str) -> ProcessDef:
        """The definition of ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SpecificationError(f"unknown process {name}") from None

    def process_names(self) -> Iterable[str]:
        """Names of all defined processes."""
        return self._by_name.keys()

    def validate(self, extra_terms: Iterable[ProcessTerm] = ()) -> None:
        """Run static checks over all definitions (and ``extra_terms``,
        e.g. an initial term, which must be closed)."""
        for d in self.defs:
            if len(set(d.params)) != len(d.params):
                raise SpecificationError(
                    f"{d.name}: duplicate parameter names {d.params}"
                )
            self._check(d.body, set(d.params), where=d.name)
        for t in extra_terms:
            self._check(t, set(), where="<initial term>")

    def _check(self, term: ProcessTerm, scope: set[str], where: str) -> None:
        if isinstance(term, (Act, Call)):
            for a in term.args:
                missing = a.free() - scope
                if missing:
                    raise SpecificationError(
                        f"{where}: unbound data variable(s) "
                        f"{sorted(missing)} in {term}"
                    )
            if isinstance(term, Call):
                d = self._by_name.get(term.name)
                if d is None:
                    raise SpecificationError(
                        f"{where}: call to unknown process {term.name}"
                    )
                if len(d.params) != len(term.args):
                    raise SpecificationError(
                        f"{where}: {term.name} takes {len(d.params)} "
                        f"parameter(s), called with {len(term.args)}"
                    )
            return
        if isinstance(term, Delta):
            return
        if isinstance(term, (Seq, Alt)):
            self._check(term.left, scope, where)
            self._check(term.right, scope, where)
            return
        if isinstance(term, Sum):
            if term.var in scope:
                raise SpecificationError(
                    f"{where}: sum variable {term.var} shadows an "
                    "enclosing binding"
                )
            self._check(term.body, scope | {term.var}, where)
            return
        if isinstance(term, Cond):
            missing = term.cond.free() - scope
            if missing:
                raise SpecificationError(
                    f"{where}: unbound data variable(s) {sorted(missing)} "
                    f"in condition {term.cond}"
                )
            self._check(term.then, scope, where)
            self._check(term.els, scope, where)
            return
        # composition operators inside definitions are checked by the
        # semantics module (they carry their own sub-terms)
        from repro.algebra.composition import Par, Encap, Hide, Rename

        if isinstance(term, (Par, Encap, Hide, Rename)):
            for sub in term.subterms():
                self._check(sub, scope, where)
            return
        raise SpecificationError(f"{where}: not a process term: {term!r}")
