"""A muCRL-flavoured concrete syntax for specifications.

The paper's model is an 1800-line textual muCRL specification; this
module gives the reproduction the same workflow — write specifications
as text, load them, explore them::

    sort D = 0 | 1
    proc B = sum(d: D, in(d) . out(d) . B)
    comm s | r = c
    init encap({s, r}, B || C)

Supported declarations (one per line; ``%`` starts a comment):

* ``sort NAME = v1 | v2 | ...`` — finite sorts; values are integers or
  bare names (loaded as strings);
* ``func NAME`` — declare that ``NAME`` refers to a Python function
  supplied via the ``functions`` argument (builtins ``eq``, ``ne``,
  ``not``, ``and``, ``or``, ``flip``, ``inc``, ``dec`` are always
  available);
* ``proc NAME(p1: S1, ...) = term`` — process definitions;
* ``comm a | b = c`` — the communication function;
* ``init term`` — the initial composition.

Terms use muCRL notation: ``.`` (sequence), ``+`` (choice),
``sum(v: S, p)``, ``p <| cond |> q``, ``delta``, ``tau``, ``P(args)``
(call or action, resolved against the declared processes), ``p || q``
(parallel, using the declared communications), ``encap({a, ...}, p)``
and ``hide({a, ...}, p)``.

:func:`parse_mcrl` returns a :class:`McrlModule`;
``module.system()`` builds the explorable
:class:`~repro.algebra.semantics.SpecSystem`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SpecificationError
from repro.algebra.composition import Comm, Encap, Hide, Par
from repro.algebra.semantics import SpecSystem
from repro.algebra.spec import ProcessDef, Spec
from repro.algebra.terms import (
    Act,
    Alt,
    Call,
    Cond,
    Const,
    Delta,
    DVar,
    Expr,
    FiniteSort,
    Fn,
    ProcessTerm,
    Seq,
    Sum,
)

_BUILTINS: dict[str, Callable[..., Any]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "not": lambda a: not a,
    "and": lambda a, b: bool(a and b),
    "or": lambda a, b: bool(a or b),
    "flip": lambda b: 1 - b,
    "inc": lambda n: n + 1,
    "dec": lambda n: max(0, n - 1),
}

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>%[^\n]*)
  | (?P<arrowl><\|)
  | (?P<arrowr>\|>)
  | (?P<par>\|\|)
  | (?P<eqeq>==)
  | (?P<neq>!=)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<sym>[=|(){}:,.+])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"sort", "proc", "comm", "init", "func", "sum", "delta", "tau",
             "encap", "hide", "true", "false"}


@dataclass(frozen=True)
class _Tok:
    kind: str
    text: str
    pos: int
    line: int


def _tokenize(text: str) -> list[_Tok]:
    toks: list[_Tok] = []
    pos = 0
    line = 1
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m:
            raise SpecificationError(
                f"line {line}: unexpected character {text[pos]!r}"
            )
        kind = m.lastgroup or ""
        chunk = m.group()
        if kind not in ("ws", "comment"):
            toks.append(_Tok(kind, chunk, pos, line))
        line += chunk.count("\n")
        pos = m.end()
    toks.append(_Tok("eof", "", len(text), line))
    return toks


@dataclass
class McrlModule:
    """A parsed textual specification."""

    sorts: dict[str, FiniteSort] = field(default_factory=dict)
    spec: Spec | None = None
    comm: Comm | None = None
    init: ProcessTerm | None = None
    functions: dict[str, Callable[..., Any]] = field(default_factory=dict)

    def system(self) -> SpecSystem:
        """The explorable semantics of the module's ``init``."""
        if self.spec is None or self.init is None:
            raise SpecificationError("module has no proc/init sections")
        return SpecSystem(self.spec, self.init)


class _Parser:
    def __init__(self, text: str, functions: dict[str, Callable] | None):
        self.toks = _tokenize(text)
        self.i = 0
        self.sorts: dict[str, FiniteSort] = {}
        self.proc_names: set[str] = set()
        self.functions = {**_BUILTINS, **(functions or {})}
        self.declared_funcs: set[str] = set()
        self.comm_triples: list[tuple[str, str, str]] = []
        self.defs: list[ProcessDef] = []
        self.init_term: ProcessTerm | None = None

    # -- plumbing ---------------------------------------------------------

    @property
    def cur(self) -> _Tok:
        return self.toks[self.i]

    def advance(self) -> _Tok:
        t = self.cur
        self.i += 1
        return t

    def expect(self, kind: str, text: str | None = None) -> _Tok:
        t = self.cur
        if t.kind != kind or (text is not None and t.text != text):
            want = text if text is not None else kind
            raise SpecificationError(
                f"line {t.line}: expected {want!r}, found "
                f"{t.text or 'end of input'!r}"
            )
        return self.advance()

    def at(self, kind: str, text: str | None = None) -> bool:
        return self.cur.kind == kind and (text is None or self.cur.text == text)

    def eat(self, kind: str, text: str | None = None) -> bool:
        if self.at(kind, text):
            self.advance()
            return True
        return False

    # -- declarations --------------------------------------------------------

    def parse(self) -> McrlModule:
        # first pass: proc names (so calls resolve during term parsing)
        save = self.i
        while self.cur.kind != "eof":
            if self.at("ident", "proc"):
                self.advance()
                self.proc_names.add(self.expect("ident").text)
            else:
                self.advance()
        self.i = save

        while self.cur.kind != "eof":
            head = self.expect("ident")
            if head.text == "sort":
                self._sort_decl()
            elif head.text == "func":
                self._func_decl()
            elif head.text == "proc":
                self._proc_decl()
            elif head.text == "comm":
                self._comm_decl()
            elif head.text == "init":
                if self.init_term is not None:
                    raise SpecificationError(
                        f"line {head.line}: duplicate init section"
                    )
                self.init_term = self.term()
            else:
                raise SpecificationError(
                    f"line {head.line}: expected a declaration, found "
                    f"{head.text!r}"
                )
        if self.init_term is None:
            raise SpecificationError("missing init section")
        module = McrlModule(
            sorts=self.sorts,
            spec=Spec(defs=self.defs),
            comm=Comm(*self.comm_triples) if self.comm_triples else None,
            init=self.init_term,
            functions=self.functions,
        )
        module.spec.validate(extra_terms=[module.init])
        return module

    def _sort_decl(self) -> None:
        name = self.expect("ident").text
        self.expect("sym", "=")
        values: list[Any] = [self._value()]
        while self.eat("sym", "|"):
            values.append(self._value())
        if name in self.sorts:
            raise SpecificationError(f"duplicate sort {name}")
        self.sorts[name] = FiniteSort(name, tuple(values))

    def _value(self) -> Any:
        t = self.advance()
        if t.kind == "number":
            return int(t.text)
        if t.kind == "ident":
            return t.text
        raise SpecificationError(f"line {t.line}: bad sort value {t.text!r}")

    def _func_decl(self) -> None:
        name = self.expect("ident").text
        if name not in self.functions:
            raise SpecificationError(
                f"declared function {name!r} was not supplied "
                "(pass it via parse_mcrl(..., functions={...}))"
            )
        self.declared_funcs.add(name)

    def _proc_decl(self) -> None:
        name = self.expect("ident").text
        params: list[str] = []
        if self.eat("sym", "("):
            while not self.at("sym", ")"):
                if params:
                    self.expect("sym", ",")
                params.append(self.expect("ident").text)
                self.expect("sym", ":")
                self.expect("ident")  # parameter sort (informational)
            self.expect("sym", ")")
        self.expect("sym", "=")
        body = self.term()
        self.defs.append(ProcessDef(name, tuple(params), body))

    def _comm_decl(self) -> None:
        a = self.expect("ident").text
        self.expect("sym", "|")
        b = self.expect("ident").text
        self.expect("sym", "=")
        c = self.expect("ident").text
        self.comm_triples.append((a, b, c))

    # -- terms -----------------------------------------------------------------

    def term(self) -> ProcessTerm:
        return self._par()

    def _par(self) -> ProcessTerm:
        left = self._cond()
        while self.eat("par"):
            right = self._cond()
            left = Par(left, right, Comm(*self.comm_triples)
                       if self.comm_triples else None)
        return left

    def _cond(self) -> ProcessTerm:
        left = self._alt()
        if self.eat("arrowl"):
            cond = self.expr()
            self.expect("arrowr")
            els = self._alt()
            return Cond(left, cond, els)
        return left

    def _alt(self) -> ProcessTerm:
        left = self._seq()
        while self.eat("sym", "+"):
            left = Alt(left, self._seq())
        return left

    def _seq(self) -> ProcessTerm:
        left = self._factor()
        while self.eat("sym", "."):
            left = Seq(left, self._factor())
        return left

    def _factor(self) -> ProcessTerm:
        t = self.cur
        if self.eat("sym", "("):
            inner = self.term()
            self.expect("sym", ")")
            return inner
        if t.kind != "ident":
            raise SpecificationError(
                f"line {t.line}: expected a process term, found {t.text!r}"
            )
        name = self.advance().text
        if name == "delta":
            return Delta()
        if name == "tau":
            return Act("tau")
        if name == "sum":
            self.expect("sym", "(")
            var = self.expect("ident").text
            self.expect("sym", ":")
            sort_name = self.expect("ident").text
            sort = self.sorts.get(sort_name)
            if sort is None:
                raise SpecificationError(f"unknown sort {sort_name}")
            self.expect("sym", ",")
            body = self.term()
            self.expect("sym", ")")
            return Sum(var, sort, body)
        if name in ("encap", "hide"):
            self.expect("sym", "(")
            self.expect("sym", "{")
            names = [self.expect("ident").text]
            while self.eat("sym", ","):
                names.append(self.expect("ident").text)
            self.expect("sym", "}")
            self.expect("sym", ",")
            inner = self.term()
            self.expect("sym", ")")
            return Encap(names, inner) if name == "encap" else Hide(names, inner)
        args: list[Expr] = []
        if self.eat("sym", "("):
            while not self.at("sym", ")"):
                if args:
                    self.expect("sym", ",")
                args.append(self.expr())
            self.expect("sym", ")")
        if name in self.proc_names:
            return Call(name, *args)
        return Act(name, *args)

    # -- data expressions ----------------------------------------------------

    def expr(self) -> Expr:
        left = self._expr_atom()
        if self.eat("eqeq"):
            return Fn("eq", _BUILTINS["eq"], left, self._expr_atom())
        if self.eat("neq"):
            return Fn("ne", _BUILTINS["ne"], left, self._expr_atom())
        return left

    def _expr_atom(self) -> Expr:
        t = self.cur
        if t.kind == "number":
            self.advance()
            return Const(int(t.text))
        if self.eat("sym", "("):
            e = self.expr()
            self.expect("sym", ")")
            return e
        if t.kind == "ident":
            self.advance()
            if t.text == "true":
                return Const(True)
            if t.text == "false":
                return Const(False)
            if self.at("sym", "("):
                fn = self.functions.get(t.text)
                if fn is None:
                    raise SpecificationError(
                        f"line {t.line}: unknown function {t.text!r}"
                    )
                self.advance()
                args: list[Expr] = []
                while not self.at("sym", ")"):
                    if args:
                        self.expect("sym", ",")
                    args.append(self.expr())
                self.expect("sym", ")")
                return Fn(t.text, fn, *args)
            return DVar(t.text)
        raise SpecificationError(
            f"line {t.line}: expected an expression, found {t.text!r}"
        )


def parse_mcrl(
    text: str, *, functions: dict[str, Callable[..., Any]] | None = None
) -> McrlModule:
    """Parse a textual specification into a :class:`McrlModule`.

    ``functions`` supplies Python implementations for names declared
    with ``func`` (the pragmatic stand-in for muCRL's equational
    function definitions).
    """
    return _Parser(text, functions).parse()
