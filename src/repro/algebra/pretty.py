"""Pretty printing of runtime process terms.

Exploration states are nested tuples; when a deadlock trace ends in a
mysterious state, :func:`pretty_term` renders it back into algebra
notation for human consumption (the paper notes that interpreting raw
states and traces was a major time sink).
"""

from __future__ import annotations

from repro.algebra.semantics import TERMINATED


def pretty_term(state, *, _prec: int = 0) -> str:
    """Render a runtime term (see :mod:`repro.algebra.semantics`)."""
    if state == TERMINATED:
        return "√"
    kind = state[0]
    if kind == "delta":
        return "delta"
    if kind == "act":
        _, name, args = state
        if not args:
            return name
        return f"{name}({','.join(map(str, args))})"
    if kind == "call":
        _, name, args = state
        if not args:
            return name
        return f"{name}({','.join(map(str, args))})"
    if kind == "seq":
        _, p, q = state
        txt = f"{pretty_term(p, _prec=2)} . {pretty_term(q, _prec=1)}"
        return f"({txt})" if _prec > 1 else txt
    if kind == "alt":
        _, p, q = state
        txt = f"{pretty_term(p, _prec=1)} + {pretty_term(q, _prec=0)}"
        return f"({txt})" if _prec > 0 else txt
    if kind == "par":
        _, p, q, _comm = state
        return f"({pretty_term(p)} || {pretty_term(q)})"
    if kind == "encap":
        _, names, p = state
        return f"encap({{{','.join(sorted(names))}}}, {pretty_term(p)})"
    if kind == "hide":
        _, names, p = state
        return f"hide({{{','.join(sorted(names))}}}, {pretty_term(p)})"
    if kind == "rename":
        _, mapping, p = state
        ren = ",".join(f"{a}->{b}" for a, b in mapping)
        return f"rename({{{ren}}}, {pretty_term(p)})"
    return repr(state)
