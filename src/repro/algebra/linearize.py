"""Linearization: specifications to linear process equations (LPEs).

The muCRL toolset's first step — the paper: "The muCRL toolset is a
collection of tools ... based on term rewriting and linearization
techniques" — rewrites a specification into a *linear process
equation*: one flat list of condition/action/effect summands over a
state vector. Everything downstream (instantiation, symbolic analysis,
parallel expansion) works on that form.

This module implements linearization for the sequential (pCRL) fragment
with finite sorts:

1. bodies are normalised to *action-prefix form*: sequential
   composition is rotated right and distributed over choice, summation
   and conditionals until every action literally prefixes its
   continuation (non-tail calls, i.e. ``Call . p``, are outside the
   fragment and rejected);
2. every action occurrence becomes a :class:`Summand` — its bound sum
   variables, path condition, action, and symbolic successor (another
   program position, a recursive call, or termination);
3. the result is an :class:`LPE`, itself a
   :class:`~repro.lts.explore.TransitionSystem`, strongly bisimilar to
   the original specification semantics (asserted in the test suite).

On LPEs the *expansion theorem* becomes mechanical:
:func:`parallel_expand` composes two LPEs under a communication
function into one LPE whose summands are the left moves, the right
moves, and the synchronisations — exactly how muCRL eliminates the
parallel operator. :func:`encapsulate` and :func:`hide_actions` finish
the job, so the full paper pipeline (components -> linearise ->
expand -> encapsulate -> hide -> instantiate) runs end to end.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import SpecificationError
from repro.algebra.composition import Comm
from repro.algebra.spec import Spec
from repro.algebra.terms import (
    Act,
    Alt,
    Call,
    Cond,
    Delta,
    DVar,
    Expr,
    FiniteSort,
    Fn,
    ProcessTerm,
    Seq,
    Sum,
)

# ---------------------------------------------------------------------------
# summands and LPEs
# ---------------------------------------------------------------------------

#: successor kinds
NEXT_POS = "pos"
NEXT_TERM = "term"


@dataclass(frozen=True)
class Summand:
    """One LPE summand::

        sum(v1: S1, ..., vk: Sk,  action(args) . next  <| cond |> delta)

    ``src`` is the source program position; ``scope`` the ordered
    variables live there. ``next_kind`` is :data:`NEXT_POS` (with
    ``next_pos`` and ``next_args`` computing the target scope) or
    :data:`NEXT_TERM` for successful termination.
    """

    src: int
    scope: tuple[str, ...]
    sum_vars: tuple[tuple[str, FiniteSort], ...]
    conds: tuple[Expr, ...]
    action: str
    action_args: tuple[Expr, ...]
    next_kind: str
    next_pos: int = -1
    next_args: tuple[Expr, ...] = ()

    def describe(self) -> str:
        """muCRL-style one-line rendering."""
        parts = []
        if self.sum_vars:
            binders = ", ".join(f"{v}:{s.name}" for v, s in self.sum_vars)
            parts.append(f"sum({binders})")
        act = self.action
        if self.action_args:
            act += "(" + ", ".join(map(str, self.action_args)) + ")"
        parts.append(act)
        if self.next_kind == NEXT_TERM:
            tail = "√"
        else:
            tail = f"P{self.next_pos}(" + ", ".join(map(str, self.next_args)) + ")"
        cond = " && ".join(map(str, self.conds)) if self.conds else "T"
        return f"P{self.src}: {' . '.join(parts)} -> {tail}  <| {cond} |>"


@dataclass
class LPE:
    """A linear process equation over program positions.

    ``scopes[p]`` is the ordered variable tuple of position ``p``;
    ``summands`` the flat rule list; ``initial`` a ``(position,
    values)`` pair. The class implements the transition-system protocol
    so it can be explored, reduced, and model checked directly.
    """

    scopes: dict[int, tuple[str, ...]] = field(default_factory=dict)
    summands: list[Summand] = field(default_factory=list)
    initial_pos: int = 0
    initial_vals: tuple = ()

    # -- TransitionSystem -------------------------------------------------

    def initial_state(self):
        return (self.initial_pos, self.initial_vals)

    def successors(self, state):
        if state == ("√",):
            return []
        pos, vals = state
        scope_env = dict(zip(self.scopes[pos], vals))
        out = []
        for s in self.summands:
            if s.src != pos:
                continue
            domains = [sort.values for _v, sort in s.sum_vars]
            names = [v for v, _s in s.sum_vars]
            for combo in itertools.product(*domains) if domains else [()]:
                env = {**scope_env, **dict(zip(names, combo))}
                if not all(bool(c.eval(env)) for c in s.conds):
                    continue
                args = tuple(a.eval(env) for a in s.action_args)
                label = (
                    f"{s.action}({','.join(map(str, args))})"
                    if args
                    else s.action
                )
                if s.next_kind == NEXT_TERM:
                    nxt = ("√",)
                else:
                    nvals = tuple(e.eval(env) for e in s.next_args)
                    nxt = (s.next_pos, nvals)
                out.append((label, nxt))
        return out

    # -- niceties ----------------------------------------------------------

    def n_positions(self) -> int:
        """Number of program positions."""
        return len(self.scopes)

    def describe(self) -> str:
        """The whole LPE, one summand per line."""
        return "\n".join(s.describe() for s in self.summands)

    def action_names(self) -> set[str]:
        """The action alphabet."""
        return {s.action for s in self.summands}


# ---------------------------------------------------------------------------
# stage 1: action-prefix normal form
# ---------------------------------------------------------------------------


def _normalize(term: ProcessTerm, fresh: "itertools.count") -> ProcessTerm:
    """Rotate/distribute Seq until every action prefixes its continuation."""
    if isinstance(term, (Act, Delta, Call)):
        return term
    if isinstance(term, Alt):
        return Alt(_normalize(term.left, fresh), _normalize(term.right, fresh))
    if isinstance(term, Sum):
        return Sum(term.var, term.sort, _normalize(term.body, fresh))
    if isinstance(term, Cond):
        return Cond(
            _normalize(term.then, fresh), term.cond, _normalize(term.els, fresh)
        )
    if isinstance(term, Seq):
        left, right = term.left, term.right
        if isinstance(left, Seq):  # (p.q).r -> p.(q.r)
            return _normalize(Seq(left.left, Seq(left.right, right)), fresh)
        if isinstance(left, Alt):  # (p+q).r -> p.r + q.r
            return Alt(
                _normalize(Seq(left.left, right), fresh),
                _normalize(Seq(left.right, right), fresh),
            )
        if isinstance(left, Sum):  # (sum v. p).r -> sum v. (p.r), v fresh
            var = left.var
            body = left.body
            if var in right.free():
                new = f"{var}_{next(fresh)}"
                body = _rename_var(body, var, new)
                var = new
            return Sum(var, left.sort, _normalize(Seq(body, right), fresh))
        if isinstance(left, Cond):
            return Cond(
                _normalize(Seq(left.then, right), fresh),
                left.cond,
                _normalize(Seq(left.els, right), fresh),
            )
        if isinstance(left, Delta):
            return Delta()
        if isinstance(left, Act):
            return Seq(left, _normalize(right, fresh))
        if isinstance(left, Call):
            raise SpecificationError(
                f"non-tail recursion ({left}) . ... is outside the "
                "linearisable fragment"
            )
        raise SpecificationError(f"cannot normalise {term}")
    raise SpecificationError(f"not a sequential process term: {term!r}")


def _rename_var(term: ProcessTerm, old: str, new: str) -> ProcessTerm:
    """Capture-avoiding rename of a data variable."""

    def ren_expr(e: Expr) -> Expr:
        if isinstance(e, DVar):
            return DVar(new) if e.name == old else e
        if isinstance(e, Fn):
            return Fn(e.name, e.func, *(ren_expr(a) for a in e.args))
        return e

    if isinstance(term, Act):
        return Act(term.name, *(ren_expr(a) for a in term.args))
    if isinstance(term, Call):
        return Call(term.name, *(ren_expr(a) for a in term.args))
    if isinstance(term, Delta):
        return term
    if isinstance(term, Seq):
        return Seq(_rename_var(term.left, old, new), _rename_var(term.right, old, new))
    if isinstance(term, Alt):
        return Alt(_rename_var(term.left, old, new), _rename_var(term.right, old, new))
    if isinstance(term, Sum):
        if term.var == old:
            return term  # shadowed
        return Sum(term.var, term.sort, _rename_var(term.body, old, new))
    if isinstance(term, Cond):
        return Cond(
            _rename_var(term.then, old, new),
            ren_expr(term.cond),
            _rename_var(term.els, old, new),
        )
    raise SpecificationError(f"cannot rename in {term!r}")


def _not(e: Expr) -> Expr:
    return Fn("not", lambda x: not x, e)


# ---------------------------------------------------------------------------
# stage 2: summand extraction
# ---------------------------------------------------------------------------


class _Linearizer:
    def __init__(self, spec: Spec):
        self.spec = spec
        self.fresh = itertools.count()
        self.lpe = LPE()
        self._next_pos = 0
        #: def name -> entry position
        self.entry: dict[str, int] = {}
        #: positions whose tree still needs extraction: pos -> (tree, scope)
        self._pending: list[tuple[int, ProcessTerm, tuple[str, ...]]] = []

    def _new_pos(self, scope: tuple[str, ...]) -> int:
        p = self._next_pos
        self._next_pos += 1
        self.lpe.scopes[p] = scope
        return p

    def run(self, init: Call) -> LPE:
        d = self.spec.lookup(init.name)
        self._entry_of(init.name)
        while self._pending:
            pos, tree, scope = self._pending.pop()
            self._extract(pos, tree, scope, tree_scope=scope, sums=(), conds=())
        self.lpe.initial_pos = self.entry[init.name]
        self.lpe.initial_vals = tuple(a.eval({}) for a in init.args)
        if len(self.lpe.initial_vals) != len(d.params):
            raise SpecificationError(
                f"{init.name} takes {len(d.params)} parameter(s)"
            )
        return self.lpe

    def _entry_of(self, name: str) -> int:
        if name in self.entry:
            return self.entry[name]
        d = self.spec.lookup(name)
        scope = tuple(d.params)
        pos = self._new_pos(scope)
        self.entry[name] = pos
        tree = _normalize(d.body, self.fresh)
        self._pending.append((pos, tree, scope))
        return pos

    def _extract(self, pos, tree, scope, *, tree_scope, sums, conds) -> None:
        """Walk the normalised tree, emitting one summand per action."""
        if isinstance(tree, Delta):
            return
        if isinstance(tree, Alt):
            self._extract(pos, tree.left, scope, tree_scope=tree_scope,
                          sums=sums, conds=conds)
            self._extract(pos, tree.right, scope, tree_scope=tree_scope,
                          sums=sums, conds=conds)
            return
        if isinstance(tree, Sum):
            self._extract(
                pos, tree.body, scope, tree_scope=tree_scope,
                sums=sums + ((tree.var, tree.sort),), conds=conds,
            )
            return
        if isinstance(tree, Cond):
            self._extract(pos, tree.then, scope, tree_scope=tree_scope,
                          sums=sums, conds=conds + (tree.cond,))
            self._extract(pos, tree.els, scope, tree_scope=tree_scope,
                          sums=sums, conds=conds + (_not(tree.cond),))
            return
        if isinstance(tree, Act):
            self.lpe.summands.append(Summand(
                src=pos, scope=scope, sum_vars=sums, conds=conds,
                action=tree.name, action_args=tree.args,
                next_kind=NEXT_TERM,
            ))
            return
        if isinstance(tree, Call):
            # an actionless jump to another definition: inline it (the
            # definition must be guarded, so inlining terminates)
            target = self.spec.lookup(tree.name)
            body = _normalize(target.body, self.fresh)
            env = dict(zip(target.params, tree.args))
            body = _substitute(body, env, self.fresh)
            self._extract(pos, body, scope, tree_scope=tree_scope,
                          sums=sums, conds=conds)
            return
        if isinstance(tree, Seq):
            act = tree.left
            cont = tree.right
            assert isinstance(act, Act), "normalisation guarantees prefixes"
            if isinstance(cont, Call):
                target_pos = self._entry_of(cont.name)
                self.lpe.summands.append(Summand(
                    src=pos, scope=scope, sum_vars=sums, conds=conds,
                    action=act.name, action_args=act.args,
                    next_kind=NEXT_POS, next_pos=target_pos,
                    next_args=tuple(cont.args),
                ))
                return
            # continuation is an inline tree: it becomes its own position
            cont_scope = tuple(
                v for v in (scope + tuple(v for v, _s in sums))
                if v in cont.free()
            )
            cont_pos = self._new_pos(cont_scope)
            self._pending.append((cont_pos, cont, cont_scope))
            self.lpe.summands.append(Summand(
                src=pos, scope=scope, sum_vars=sums, conds=conds,
                action=act.name, action_args=act.args,
                next_kind=NEXT_POS, next_pos=cont_pos,
                next_args=tuple(DVar(v) for v in cont_scope),
            ))
            return
        raise SpecificationError(f"cannot linearise {tree!r}")


def _substitute(term: ProcessTerm, env: dict[str, Expr], fresh) -> ProcessTerm:
    """Substitute expressions for variables in a term."""

    def sub_expr(e: Expr) -> Expr:
        if isinstance(e, DVar):
            return env.get(e.name, e)
        if isinstance(e, Fn):
            return Fn(e.name, e.func, *(sub_expr(a) for a in e.args))
        return e

    if isinstance(term, Act):
        return Act(term.name, *(sub_expr(a) for a in term.args))
    if isinstance(term, Call):
        return Call(term.name, *(sub_expr(a) for a in term.args))
    if isinstance(term, Delta):
        return term
    if isinstance(term, Seq):
        return Seq(_substitute(term.left, env, fresh), _substitute(term.right, env, fresh))
    if isinstance(term, Alt):
        return Alt(_substitute(term.left, env, fresh), _substitute(term.right, env, fresh))
    if isinstance(term, Sum):
        var = term.var
        body = term.body
        inner = {k: v for k, v in env.items() if k != var}
        free_in_env = set()
        for e in inner.values():
            free_in_env |= e.free()
        if var in free_in_env:
            new = f"{var}_{next(fresh)}"
            body = _rename_var(body, var, new)
            var = new
        return Sum(var, term.sort, _substitute(body, inner, fresh))
    if isinstance(term, Cond):
        return Cond(
            _substitute(term.then, env, fresh),
            sub_expr(term.cond),
            _substitute(term.els, env, fresh),
        )
    raise SpecificationError(f"cannot substitute in {term!r}")


def linearize(spec: Spec, init: Call) -> LPE:
    """Linearise a sequential specification started from ``init``.

    ``init`` must be a closed :class:`Call`. Raises
    :class:`~repro.errors.SpecificationError` outside the fragment
    (parallel operators or non-tail recursion inside definitions).
    """
    if not isinstance(init, Call):
        raise SpecificationError("linearize expects a Call as initial term")
    if init.free():
        raise SpecificationError("initial term must be closed")
    return _Linearizer(spec).run(init)


# ---------------------------------------------------------------------------
# stage 3: the expansion theorem on LPEs
# ---------------------------------------------------------------------------


def parallel_expand(a: LPE, b: LPE, comm: Comm | None = None) -> "ProductLPE":
    """Compose two LPEs in parallel under ``comm`` (expansion theorem).

    The result is a :class:`ProductLPE` transition system whose states
    pair the component states; its move list is exactly the expansion
    theorem's: left interleavings, right interleavings, and
    synchronisations of data-matching action pairs.
    """
    return ProductLPE(a, b, comm)


@dataclass
class ProductLPE:
    """The parallel composition of two LPEs (optionally communicating).

    Kept as a product system rather than flattened to one summand list:
    semantically identical, and the structure keeps blocked/hidden
    action handling simple. Supports the same exploration interface.
    """

    left: LPE
    right: LPE
    comm: Comm | None = None
    blocked: frozenset[str] = frozenset()
    hidden: frozenset[str] = frozenset()

    def initial_state(self):
        return (self.left.initial_state(), self.right.initial_state())

    def _post(self, name: str) -> str | None:
        if name in self.blocked:
            return None
        return "tau" if name in self.hidden else name

    def successors(self, state):
        ls, rs = state
        lmoves = self.left.successors(ls)
        rmoves = self.right.successors(rs)
        out = []
        for label, nl in lmoves:
            name = label.split("(", 1)[0]
            post = self._post(name)
            if post is not None:
                out.append((_relabel(label, name, post), (nl, rs)))
        for label, nr in rmoves:
            name = label.split("(", 1)[0]
            post = self._post(name)
            if post is not None:
                out.append((_relabel(label, name, post), (ls, nr)))
        if self.comm is not None:
            for llabel, nl in lmoves:
                lname, largs = _split(llabel)
                for rlabel, nr in rmoves:
                    rname, rargs = _split(rlabel)
                    c = self.comm.result(lname, rname)
                    if c is not None and largs == rargs:
                        post = self._post(c)
                        if post is not None:
                            if post == "tau" or not largs:
                                lab = post
                            else:
                                lab = f"{post}({largs})"
                            out.append((lab, (nl, nr)))
        return out

    def restrict(self, blocked: Iterable[str] = (), hidden: Iterable[str] = ()):
        """A copy with additional encapsulated / hidden action names."""
        return ProductLPE(
            self.left,
            self.right,
            self.comm,
            self.blocked | frozenset(blocked),
            self.hidden | frozenset(hidden),
        )


def _split(label: str) -> tuple[str, str]:
    if "(" in label:
        name, rest = label.split("(", 1)
        return name, rest[:-1]
    return label, ""


def _relabel(label: str, name: str, post: str) -> str:
    if post == name:
        return label
    if post == "tau":
        return "tau"
    return post + label[len(name):]


def encapsulate(p: ProductLPE, names: Iterable[str]) -> ProductLPE:
    """Block the given action names (muCRL's encapsulation)."""
    return p.restrict(blocked=names)


def hide_actions(p: ProductLPE, names: Iterable[str]) -> ProductLPE:
    """Rename the given action names to tau (muCRL's hiding)."""
    return p.restrict(hidden=names)
