"""Structural operational semantics for the process algebra.

Specification-level terms are *closed* into hashable runtime forms
(nested tuples) in which all data expressions are evaluated, sums are
expanded over their finite sorts, and conditionals are resolved. The
runtime forms are the states explored by :func:`repro.lts.explore`.

The SOS rules are the standard ACP/muCRL ones, with explicit successful
termination (the empty process) so that sequential composition
distributes correctly over parallel components.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import SpecificationError
from repro.algebra.composition import Encap, Hide, Par, Rename
from repro.algebra.spec import Spec
from repro.algebra.terms import (
    Act,
    Alt,
    Call,
    Cond,
    Delta,
    ProcessTerm,
    Seq,
    Sum,
)

#: the terminated (empty) process
TERMINATED = ("empty",)
_DELTA = ("delta",)

#: cap on recursive unfoldings while computing one state's successors;
#: exceeding it means the specification has unguarded recursion (kept
#: well below Python's own recursion limit so we fail with a helpful
#: message instead of a RecursionError)
MAX_UNFOLD_DEPTH = 80


def _mk_seq(p, q):
    if p == TERMINATED:
        return q
    if p == _DELTA:
        return _DELTA
    return ("seq", p, q)


def _mk_par(p, q, comm):
    if p == TERMINATED:
        return q
    if q == TERMINATED:
        return p
    return ("par", p, q, comm)


def _mk_encap(names, p):
    if p in (TERMINATED, _DELTA):
        return p
    return ("encap", names, p)


def _mk_hide(names, p):
    if p in (TERMINATED, _DELTA):
        return p
    return ("hide", names, p)


def _mk_rename(mapping, p):
    if p in (TERMINATED, _DELTA):
        return p
    return ("rename", mapping, p)


def format_action(name: str, args: tuple) -> str:
    """Render an action with its data arguments as an LTS label."""
    if not args:
        return name
    return f"{name}({','.join(map(str, args))})"


class SpecSystem:
    """A :class:`~repro.lts.explore.TransitionSystem` over a specification.

    Parameters
    ----------
    spec:
        The process definitions.
    init:
        A closed specification-level term — typically the paper-style
        ``Encap(H, Par(...))`` composition of component instances.
    """

    def __init__(self, spec: Spec, init: ProcessTerm):
        self.spec = spec
        #: the specification-level initial term, kept for static analysis
        self.init_term = init
        spec.validate(extra_terms=[init])
        self._init_state = self.close(init, {})

    # -- closing specification terms into runtime forms -----------------

    def close(self, term: ProcessTerm, env: dict[str, Any]):
        """Evaluate ``term`` under ``env`` into a runtime form."""
        if isinstance(term, Act):
            return ("act", term.name, tuple(a.eval(env) for a in term.args))
        if isinstance(term, Delta):
            return _DELTA
        if isinstance(term, Seq):
            return _mk_seq(self.close(term.left, env), self.close(term.right, env))
        if isinstance(term, Alt):
            return ("alt", self.close(term.left, env), self.close(term.right, env))
        if isinstance(term, Sum):
            out = None
            for v in term.sort.values:
                branch = self.close(term.body, {**env, term.var: v})
                out = branch if out is None else ("alt", out, branch)
            return out
        if isinstance(term, Cond):
            cond = term.cond.eval(env)
            if not isinstance(cond, bool):
                raise SpecificationError(
                    f"condition {term.cond} evaluated to non-boolean {cond!r}"
                )
            return self.close(term.then if cond else term.els, env)
        if isinstance(term, Call):
            return ("call", term.name, tuple(a.eval(env) for a in term.args))
        if isinstance(term, Par):
            return _mk_par(
                self.close(term.left, env), self.close(term.right, env), term.comm
            )
        if isinstance(term, Encap):
            return _mk_encap(term.names, self.close(term.inner, env))
        if isinstance(term, Hide):
            return _mk_hide(term.names, self.close(term.inner, env))
        if isinstance(term, Rename):
            return _mk_rename(term.mapping, self.close(term.inner, env))
        raise SpecificationError(f"not a process term: {term!r}")

    def _unfold(self, name: str, args: tuple):
        d = self.spec.lookup(name)
        if len(args) != len(d.params):
            raise SpecificationError(
                f"{name} takes {len(d.params)} parameter(s), got {len(args)}"
            )
        return self.close(d.body, dict(zip(d.params, args)))

    # -- SOS -------------------------------------------------------------

    def _moves(self, state, depth: int) -> list[tuple[str, tuple, Any]]:
        """Structured successors: (action name, args, next runtime term)."""
        if depth > MAX_UNFOLD_DEPTH:
            raise SpecificationError(
                "recursion unfolding exceeded "
                f"{MAX_UNFOLD_DEPTH} steps: unguarded recursion?"
            )
        kind = state[0]
        if kind in ("empty", "delta"):
            return []
        if kind == "act":
            return [(state[1], state[2], TERMINATED)]
        if kind == "seq":
            _, p, q = state
            return [(a, ar, _mk_seq(p2, q)) for a, ar, p2 in self._moves(p, depth)]
        if kind == "alt":
            _, p, q = state
            return self._moves(p, depth) + self._moves(q, depth)
        if kind == "call":
            return self._moves(self._unfold(state[1], state[2]), depth + 1)
        if kind == "par":
            _, p, q, comm = state
            pm = self._moves(p, depth)
            qm = self._moves(q, depth)
            out = [(a, ar, _mk_par(p2, q, comm)) for a, ar, p2 in pm]
            out += [(b, br, _mk_par(p, q2, comm)) for b, br, q2 in qm]
            if comm is not None:
                for a, ar, p2 in pm:
                    for b, br, q2 in qm:
                        c = comm.result(a, b)
                        if c is not None and ar == br:
                            out.append((c, ar, _mk_par(p2, q2, comm)))
            return out
        if kind == "encap":
            _, names, p = state
            return [
                (a, ar, _mk_encap(names, p2))
                for a, ar, p2 in self._moves(p, depth)
                if a not in names
            ]
        if kind == "hide":
            _, names, p = state
            return [
                ("tau", (), _mk_hide(names, p2)) if a in names
                else (a, ar, _mk_hide(names, p2))
                for a, ar, p2 in self._moves(p, depth)
            ]
        if kind == "rename":
            _, mapping, p = state
            m = dict(mapping)
            return [
                (m.get(a, a), ar, _mk_rename(mapping, p2))
                for a, ar, p2 in self._moves(p, depth)
            ]
        raise SpecificationError(f"unknown runtime term kind {kind!r}")

    # -- TransitionSystem protocol ----------------------------------------

    def initial_state(self):
        """The closed initial runtime term."""
        return self._init_state

    def successors(self, state) -> Iterable[tuple[str, Any]]:
        """Labelled successors of a runtime term."""
        return [
            (format_action(a, ar), nxt) for a, ar, nxt in self._moves(state, 0)
        ]

    def is_terminated(self, state) -> bool:
        """Whether ``state`` is the successfully terminated process."""
        return state == TERMINATED
