"""A muCRL-style process algebra with data.

The paper specifies the Jackal protocol in muCRL: ACP-style process
terms (action prefix/sequencing ``.``, choice ``+``, data-parameterised
summation, the conditional ``p <| b |> q``, parallel composition with a
communication function, encapsulation and hiding) over equationally
specified data. This subpackage provides the same operators as a Python
DSL with standard structural operational semantics, so specifications
can be written, composed, and instantiated into LTSs with
:func:`repro.lts.explore`.

Overview::

    from repro.algebra import (Act, Seq, Alt, Sum, Cond, Call, Delta,
                               ProcessDef, Spec, FiniteSort, DVar, Fn,
                               Par, Encap, Hide, Comm, SpecSystem)

    # a one-place buffer: B = sum(d: D, r(d) . s(d) . B)
    D = FiniteSort("D", (0, 1))
    spec = Spec(
        defs=[ProcessDef("B", (), Sum("d", D, Seq(Act("r", DVar("d")),
                                                  Seq(Act("s", DVar("d")),
                                                      Call("B")))))],
    )
    system = SpecSystem(spec, Call("B"))

Synchronisation follows muCRL: two actions communicate iff the
communication function maps their pair of names and their data
arguments are equal, which models value passing.
"""

from repro.algebra.terms import (
    Act,
    Alt,
    Call,
    Cond,
    Delta,
    Expr,
    Const,
    DVar,
    Fn,
    FiniteSort,
    ProcessTerm,
    Seq,
    Sum,
    Tau,
)
from repro.algebra.spec import ProcessDef, Spec
from repro.algebra.composition import Comm, Par, Encap, Hide, Rename
from repro.algebra.semantics import SpecSystem, TERMINATED
from repro.algebra.pretty import pretty_term
from repro.algebra.linearize import (
    LPE,
    Summand,
    linearize,
    parallel_expand,
    encapsulate,
    hide_actions,
)
from repro.algebra.mcrl_text import McrlModule, parse_mcrl

__all__ = [
    "Act",
    "Alt",
    "Call",
    "Cond",
    "Delta",
    "Tau",
    "Expr",
    "Const",
    "DVar",
    "Fn",
    "FiniteSort",
    "ProcessTerm",
    "Seq",
    "Sum",
    "ProcessDef",
    "Spec",
    "Comm",
    "Par",
    "Encap",
    "Hide",
    "Rename",
    "SpecSystem",
    "TERMINATED",
    "pretty_term",
    "LPE",
    "Summand",
    "linearize",
    "parallel_expand",
    "encapsulate",
    "hide_actions",
    "McrlModule",
    "parse_mcrl",
]
