"""Parallel composition, encapsulation, hiding, renaming.

These are the operators the paper uses to assemble the protocol model:
"our model of the cache coherence protocol is a parallel composition of
threads, processors, regions, protocol lock managers and message queues
upon a set of communication actions", closed under the encapsulation
operator (forcing paired send/receive actions to synchronise) and
hiding.

A :class:`Comm` object is muCRL's communication function gamma: it maps
unordered pairs of action names to the name of their communication
action. Data parameters must agree for a synchronisation to fire, which
is how value passing works in muCRL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import SpecificationError
from repro.algebra.terms import ProcessTerm


@dataclass(frozen=True)
class Comm:
    """A communication function.

    Built from triples ``(a, b, c)`` meaning gamma(a, b) = c. The
    function must be commutative (pairs are unordered) and partial
    (unlisted pairs do not communicate). Communication of three or more
    actions (gamma(c, d) with c itself a communication result) is
    supported by listing the corresponding pairs explicitly.
    """

    table: tuple[tuple[frozenset, str], ...]

    def __init__(self, *triples: tuple[str, str, str]):
        seen: dict[frozenset, str] = {}
        for a, b, c in triples:
            key = frozenset((a, b))
            if a == b:
                # gamma(a, a) = c is legal in muCRL; key is {a}
                key = frozenset((a,))
            if key in seen and seen[key] != c:
                raise SpecificationError(
                    f"conflicting communication for {sorted(key)}: "
                    f"{seen[key]} vs {c}"
                )
            seen[key] = c
        object.__setattr__(self, "table", tuple(sorted(seen.items(), key=str)))

    def result(self, a: str, b: str) -> str | None:
        """The communication action of names ``a`` and ``b``, or None."""
        key = frozenset((a, b)) if a != b else frozenset((a,))
        for k, c in self.table:
            if k == key:
                return c
        return None

    @staticmethod
    def pairs(*names: str) -> "Comm":
        """Convenience: for each base name ``x``, declare
        gamma(``s_x``, ``r_x``) = ``c_x`` — the ubiquitous muCRL naming
        convention used throughout the paper's specification."""
        return Comm(*[(f"s_{n}", f"r_{n}", f"c_{n}") for n in names])


@dataclass(frozen=True)
class Par(ProcessTerm):
    """Parallel composition of two process terms under a communication
    function."""

    left: ProcessTerm
    right: ProcessTerm
    comm: Comm | None = None

    def subterms(self) -> Iterable[ProcessTerm]:
        return (self.left, self.right)

    def free(self):
        return self.left.free() | self.right.free()

    def __str__(self) -> str:
        return f"({self.left} || {self.right})"


def par_all(terms: Iterable[ProcessTerm], comm: Comm | None = None) -> ProcessTerm:
    """Left-associated parallel composition of several terms."""
    terms = list(terms)
    if not terms:
        raise SpecificationError("par_all of no terms")
    out = terms[0]
    for t in terms[1:]:
        out = Par(out, t, comm)
    return out


@dataclass(frozen=True)
class Encap(ProcessTerm):
    """Encapsulation: actions named in ``hidden`` are blocked
    (renamed to delta), forcing them to occur only inside
    communications."""

    names: frozenset[str]
    inner: ProcessTerm

    def __init__(self, names: Iterable[str], inner: ProcessTerm):
        object.__setattr__(self, "names", frozenset(names))
        object.__setattr__(self, "inner", inner)

    def subterms(self) -> Iterable[ProcessTerm]:
        return (self.inner,)

    def free(self):
        return self.inner.free()

    def __str__(self) -> str:
        return f"encap({sorted(self.names)}, {self.inner})"


@dataclass(frozen=True)
class Hide(ProcessTerm):
    """Hiding: actions named in ``names`` become tau."""

    names: frozenset[str]
    inner: ProcessTerm

    def __init__(self, names: Iterable[str], inner: ProcessTerm):
        object.__setattr__(self, "names", frozenset(names))
        object.__setattr__(self, "inner", inner)

    def subterms(self) -> Iterable[ProcessTerm]:
        return (self.inner,)

    def free(self):
        return self.inner.free()

    def __str__(self) -> str:
        return f"hide({sorted(self.names)}, {self.inner})"


@dataclass(frozen=True)
class Rename(ProcessTerm):
    """Action renaming by name (data parameters are preserved)."""

    mapping: tuple[tuple[str, str], ...]
    inner: ProcessTerm

    def __init__(self, mapping: Mapping[str, str], inner: ProcessTerm):
        object.__setattr__(self, "mapping", tuple(sorted(mapping.items())))
        object.__setattr__(self, "inner", inner)

    def as_dict(self) -> dict[str, str]:
        return dict(self.mapping)

    def subterms(self) -> Iterable[ProcessTerm]:
        return (self.inner,)

    def free(self):
        return self.inner.free()

    def __str__(self) -> str:
        return f"rename({dict(self.mapping)}, {self.inner})"
