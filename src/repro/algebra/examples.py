"""Classic specification examples for the process algebra.

The muCRL/CADP literature's standard warm-ups, used in the test suite
and documentation to validate the toolchain end to end:

* :func:`one_place_buffer` — the smallest data-carrying process;
* :func:`two_place_buffer` — two one-place buffers chained by an
  internal channel (branching-bisimilar to a direct two-place buffer);
* :func:`alternating_bit_protocol` — the canonical verification
  example: sender and receiver over lossy channels, correct iff the
  composition is branching-bisimilar to a one-place buffer after
  hiding.
"""

from __future__ import annotations

from repro.algebra.composition import Comm, Encap, Hide, Par, par_all
from repro.algebra.spec import ProcessDef, Spec
from repro.algebra.semantics import SpecSystem
from repro.algebra.terms import (
    Act,
    Alt,
    Call,
    DVar,
    FiniteSort,
    Fn,
    Seq,
    Sum,
)


def _flip(b):
    return Fn("flip", lambda x: 1 - x, b)


def one_place_buffer(values=(0, 1)) -> SpecSystem:
    """``B = sum(d: D, in(d) . out(d) . B)``."""
    d_sort = FiniteSort("D", tuple(values))
    spec = Spec(defs=[
        ProcessDef(
            "B", (),
            Sum("d", d_sort,
                Seq(Act("in", DVar("d")), Seq(Act("out", DVar("d")), Call("B")))),
        )
    ])
    return SpecSystem(spec, Call("B"))


def two_place_buffer(values=(0, 1)) -> SpecSystem:
    """Two chained one-place buffers with the link hidden."""
    d_sort = FiniteSort("D", tuple(values))
    spec = Spec(defs=[
        ProcessDef(
            "Left", (),
            Sum("d", d_sort,
                Seq(Act("in", DVar("d")),
                    Seq(Act("s_link", DVar("d")), Call("Left")))),
        ),
        ProcessDef(
            "Right", (),
            Sum("d", d_sort,
                Seq(Act("r_link", DVar("d")),
                    Seq(Act("out", DVar("d")), Call("Right")))),
        ),
    ])
    comm = Comm(("s_link", "r_link", "c_link"))
    init = Hide(
        ["c_link"],
        Encap(["s_link", "r_link"], Par(Call("Left"), Call("Right"), comm)),
    )
    return SpecSystem(spec, init)


def alternating_bit_protocol(values=(0, 1)) -> SpecSystem:
    """The alternating bit protocol over lossy channels.

    Components (all recursive, bit-indexed):

    * ``S(b)`` — reads ``in(d)``, then resends ``(d, b)`` until the
      acknowledgement ``b`` arrives;
    * ``R(b)`` — delivers fresh frames via ``out(d)``, acknowledges
      every frame with its bit;
    * ``K``/``L`` — the data and ack channels, which may deliver or
      lose (a ``lost`` action, hidden in the composition).

    After hiding all internal actions, the composition must be
    branching-bisimilar to :func:`one_place_buffer` — the classical
    correctness statement, asserted in the test suite.
    """
    d_sort = FiniteSort("D", tuple(values))
    bit = FiniteSort("Bit", (0, 1))

    # Sender: Send(b) = sum d. in(d) . Sending(d, b)
    # Sending(d,b) = s_frame(d,b) . ( r_ack(b).Send(1-b)
    #                               + r_ack(1-b).Sending(d,b)
    #                               + r_ack_err.Sending(d,b) )
    send = ProcessDef(
        "Send", ("b",),
        Sum("d", d_sort, Seq(Act("in", DVar("d")),
                             Call("Sending", DVar("d"), DVar("b")))),
    )
    sending = ProcessDef(
        "Sending", ("d", "b"),
        Seq(
            Act("s_frame", DVar("d"), DVar("b")),
            Alt(
                Seq(Act("r_ack", DVar("b")), Call("Send", _flip(DVar("b")))),
                Alt(
                    Seq(Act("r_ack", _flip(DVar("b"))),
                        Call("Sending", DVar("d"), DVar("b"))),
                    Seq(Act("r_ack_err"), Call("Sending", DVar("d"), DVar("b"))),
                ),
            ),
        ),
    )
    # Receiver: Recv(b) = sum d. ( r_frame(d,b) . out(d) . s_ack(b) . Recv(1-b)
    #                            + r_frame(d,1-b) . s_ack(1-b) . Recv(b) )
    #                   + r_frame_err . s_ack(1-b) . Recv(b)
    recv = ProcessDef(
        "Recv", ("b",),
        Alt(
            Sum(
                "d", d_sort,
                Alt(
                    Seq(Act("r_frame", DVar("d"), DVar("b")),
                        Seq(Act("out", DVar("d")),
                            Seq(Act("s_ack", DVar("b")),
                                Call("Recv", _flip(DVar("b")))))),
                    Seq(Act("r_frame", DVar("d"), _flip(DVar("b"))),
                        Seq(Act("s_ack", _flip(DVar("b"))), Call("Recv", DVar("b")))),
                ),
            ),
            Seq(Act("r_frame_err"),
                Seq(Act("s_ack", _flip(DVar("b"))), Call("Recv", DVar("b")))),
        ),
    )
    # Data channel: K = sum d. sum b. k_in(d,b) . (k_out(d,b) + k_err) . K
    chan_k = ProcessDef(
        "K", (),
        Sum("d", d_sort, Sum("b", bit,
            Seq(Act("k_in", DVar("d"), DVar("b")),
                Alt(
                    Seq(Act("k_out", DVar("d"), DVar("b")), Call("K")),
                    Seq(Act("k_err"), Call("K")),
                )))),
    )
    # Ack channel: L = sum b. l_in(b) . (l_out(b) + l_err) . L
    chan_l = ProcessDef(
        "L", (),
        Sum("b", bit,
            Seq(Act("l_in", DVar("b")),
                Alt(
                    Seq(Act("l_out", DVar("b")), Call("L")),
                    Seq(Act("l_err"), Call("L")),
                ))),
    )
    spec = Spec(defs=[send, sending, recv, chan_k, chan_l])
    comm = Comm(
        ("s_frame", "k_in", "c_frame_in"),
        ("k_out", "r_frame", "c_frame_out"),
        ("k_err", "r_frame_err", "c_frame_err"),
        ("s_ack", "l_in", "c_ack_in"),
        ("l_out", "r_ack", "c_ack_out"),
        ("l_err", "r_ack_err", "c_ack_err"),
    )
    blocked = [
        "s_frame", "k_in", "k_out", "r_frame", "k_err", "r_frame_err",
        "s_ack", "l_in", "l_out", "r_ack", "l_err", "r_ack_err",
    ]
    internal = [
        "c_frame_in", "c_frame_out", "c_frame_err",
        "c_ack_in", "c_ack_out", "c_ack_err",
    ]
    init = Hide(
        internal,
        Encap(
            blocked,
            par_all(
                [Call("Send", 0), Call("K"), Call("L"), Call("Recv", 0)],
                comm,
            ),
        ),
    )
    return SpecSystem(spec, init)
