"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
mistakes such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecificationError(ReproError):
    """A process-algebra specification is malformed.

    Raised for unknown process identifiers, arity mismatches, unbound
    data variables, or ill-formed communication functions.
    """


class ExplorationLimitError(ReproError):
    """State-space exploration exceeded a configured resource limit.

    Attributes
    ----------
    partial:
        The partially generated artifact — :func:`repro.lts.explore.explore`
        attaches the partial LTS, :func:`repro.lts.explore.breadth_first_states`
        the set of states discovered so far (may be ``None`` when nothing
        useful was produced before the limit hit).
    stats:
        The partially filled stats object of the aborted sweep
        (``ExplorationStats`` or ``DistributedStats``; ``None`` when the
        raising path tracks none).
    """

    def __init__(self, message: str, partial=None, stats=None):
        super().__init__(message)
        self.partial = partial
        self.stats = stats


class WorkerFailureError(ReproError):
    """A distributed sweep lost all of its worker processes.

    Single worker deaths are recovered by re-dispatching the lost
    batches to the survivors (see :mod:`repro.lts.distributed`); this
    error is raised only when no worker is left to re-dispatch to.

    Attributes
    ----------
    stats:
        Partially filled ``DistributedStats`` describing how far the
        sweep got, including ``worker_deaths`` (may be ``None``).
    """

    def __init__(self, message: str, stats=None):
        super().__init__(message)
        self.stats = stats


class FormulaSyntaxError(ReproError):
    """A mu-calculus formula failed to parse.

    Attributes
    ----------
    position:
        Character offset in the formula text where parsing failed.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class FormulaSemanticsError(ReproError):
    """A formula is syntactically valid but not checkable.

    Raised for unbound fixpoint variables, variables under an odd number
    of negations, or alternating fixpoints (this library implements the
    alternation-free fragment, like CADP's Evaluator 3.x used in the
    paper).
    """


class ModelError(ReproError):
    """The Jackal protocol model reached an internally inconsistent state.

    This signals a bug in the *model implementation* (as opposed to a
    protocol assertion failure, which is an expected analysis outcome and
    is reported as a reachable ``assertion_violation`` action).
    """


class TraceError(ReproError):
    """A trace cannot be replayed on the given model or LTS."""


class AutFormatError(ReproError):
    """An ``.aut`` file (CADP's Aldebaran format) is malformed."""
