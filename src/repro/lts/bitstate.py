"""Bitstate (supertrace) hashing exploration.

The muCRL toolset used by the paper advertises "state-bit hashing" as one
of its weapons against state explosion: instead of storing every visited
state, only ``k`` hash bits per state are kept in a large bit table.
This trades completeness for memory — hash collisions silently prune
states — but lets a search sweep through state spaces far larger than
RAM would otherwise allow (Holzmann's classic supertrace technique).

The implementation keeps the same :class:`~repro.lts.explore.TransitionSystem`
interface as exact exploration so the two are interchangeable in the
benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.lts.explore import TransitionSystem
from repro.lts.statehash import double_hashes, state_key64


@dataclass
class BitstateResult:
    """Outcome of a bitstate sweep.

    Attributes
    ----------
    visited:
        Number of states accepted as new (a lower bound on the true
        count in the presence of collisions, an exact count without).
    transitions:
        Transitions traversed from accepted states.
    table_bits:
        Size of the hash table in bits.
    hash_functions:
        Number of independent hash functions used per state.
    fill_ratio:
        Fraction of table bits set at the end — the standard estimator
        of collision (omission) risk; keep it well under 0.5.
    seconds:
        Wall-clock duration of the sweep.
    deadlocks:
        Number of terminal states encountered (improper or not).
    """

    visited: int
    transitions: int
    table_bits: int
    hash_functions: int
    fill_ratio: float
    seconds: float
    deadlocks: int
    #: terminal states accepted by ``is_valid_end`` (proper termination)
    proper_terminals: int = 0


def _hashes(state: Hashable, k: int, nbits: int) -> list[int]:
    """k double-hashed bit positions for ``state``.

    The built-in hash is run through the splitmix64 finaliser before
    double hashing: raw tuple hashes of small ints leave low bits far
    too regular for a Bloom schema, which inflates the effective
    collision (omission) rate.
    """
    return double_hashes(state_key64(state), k, nbits)


def bitstate_explore(
    system: TransitionSystem,
    *,
    table_bytes: int = 1 << 20,
    hash_functions: int = 3,
    max_states: int | None = None,
    on_state: Callable[[Hashable], None] | None = None,
    is_valid_end: Callable[[Hashable], bool] | None = None,
) -> BitstateResult:
    """Breadth-first sweep with a Bloom-filter visited set.

    Parameters
    ----------
    table_bytes:
        Size of the bit table in bytes (default 1 MiB = 8M bits).
    hash_functions:
        Bits set/tested per state; 2-3 is the classical choice.
    max_states:
        Optional cap on accepted states (the sweep simply stops).
    on_state:
        Callback invoked once per accepted state (e.g. invariant checks
        — this is how bitstate runs still find assertion violations).
    is_valid_end:
        Distinguishes proper termination from deadlock among terminal
        states (as in :func:`repro.lts.deadlock.find_deadlocks`);
        accepted terminals are counted in ``proper_terminals`` instead
        of ``deadlocks``.
    """
    t0 = time.perf_counter()
    nbits = table_bytes * 8
    table = bytearray(table_bytes)
    k = hash_functions

    def test_and_set(state: Hashable) -> bool:
        """True when the state was already (apparently) visited."""
        positions = _hashes(state, k, nbits)
        seen = True
        for p in positions:
            byte, bit = p >> 3, 1 << (p & 7)
            if not table[byte] & bit:
                seen = False
            table[byte] |= bit
        return seen

    init = system.initial_state()
    test_and_set(init)
    frontier = [init]
    visited = 1
    transitions = 0
    deadlocks = 0
    proper = 0
    bits_set = None  # computed at the end
    if on_state is not None:
        on_state(init)

    while frontier:
        nxt: list[Hashable] = []
        for state in frontier:
            out = 0
            for _label, succ in system.successors(state):
                out += 1
                transitions += 1
                if not test_and_set(succ):
                    visited += 1
                    if on_state is not None:
                        on_state(succ)
                    nxt.append(succ)
                    if max_states is not None and visited >= max_states:
                        nxt = []
                        frontier = []
                        break
            if out == 0:
                if is_valid_end is not None and is_valid_end(state):
                    proper += 1
                else:
                    deadlocks += 1
            if max_states is not None and visited >= max_states:
                break
        else:
            frontier = nxt
            continue
        break

    bits_set = sum(bin(b).count("1") for b in table)
    return BitstateResult(
        visited=visited,
        transitions=transitions,
        table_bits=nbits,
        hash_functions=k,
        fill_ratio=bits_set / nbits,
        seconds=time.perf_counter() - t0,
        deadlocks=deadlocks,
        proper_terminals=proper,
    )
