"""Compact binary LTS storage (numpy ``.npz``).

The ``.aut`` text format is the interchange standard, but a
multi-million-transition LTS round-trips an order of magnitude faster
(and smaller) through numpy's compressed container. Used for caching
generated state spaces between benchmark runs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import AutFormatError
from repro.lts.lts import LTS

_FORMAT_VERSION = 1


def save_npz(lts: LTS, path: str | Path) -> None:
    """Write ``lts`` to ``path`` as a compressed ``.npz`` archive."""
    src, lbl, dst = lts.transition_arrays()
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        initial=np.int64(lts.initial),
        n_states=np.int64(lts.n_states),
        src=np.asarray(src, dtype=np.int64),
        lbl=np.asarray(lbl, dtype=np.int64),
        dst=np.asarray(dst, dtype=np.int64),
        labels=np.array(lts.labels, dtype=object),
    )


def load_npz(path: str | Path) -> LTS:
    """Read an LTS previously written by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=True) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise AutFormatError(
                f"unsupported LTS archive version {version}"
            )
        lts = LTS(initial=int(data["initial"]))
        lts.ensure_states(int(data["n_states"]))
        labels = [str(lab) for lab in data["labels"]]
        # intern labels in stored order so ids line up
        for lab in labels:
            lts.label_id(lab)
        src = data["src"]
        lbl = data["lbl"]
        dst = data["dst"]
        # bulk append through the internal arrays for speed
        lts._src.extend(int(s) for s in src)
        lts._lbl.extend(int(i) for i in lbl)
        lts._dst.extend(int(d) for d in dst)
        bad = [i for i in set(lts._lbl) if not 0 <= i < len(labels)]
        if bad:
            raise AutFormatError(f"label ids out of range: {bad[:5]}")
        return lts
