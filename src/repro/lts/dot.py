"""Graphviz DOT export for LTS visualisation.

Small state spaces (reduced protocol LTSs, algebra examples, witness
neighbourhoods) are best understood as pictures; this writes standard
``.dot`` text renderable with ``dot -Tsvg``.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Callable, TextIO

from repro.lts.lts import LTS, TAU


def _quote(s: str) -> str:
    return '"' + s.replace("\\", "\\\\").replace('"', '\\"') + '"'


def write_dot(
    lts: LTS,
    target: str | Path | TextIO | None = None,
    *,
    name: str = "lts",
    state_label: Callable[[int], str] | None = None,
    highlight: set[int] | frozenset[int] = frozenset(),
    max_states: int = 2000,
) -> str:
    """Serialise ``lts`` as a DOT digraph; returns the text.

    Parameters
    ----------
    target:
        Optional path or open file to write to.
    state_label:
        Custom node labels (default: the state index).
    highlight:
        States drawn filled red (deadlocks, violations).
    max_states:
        Guard against accidentally rendering huge graphs.
    """
    if lts.n_states > max_states:
        raise ValueError(
            f"{lts.n_states} states exceed the rendering guard "
            f"({max_states}); reduce the LTS first"
        )
    buf = io.StringIO()
    buf.write(f"digraph {name} {{\n")
    buf.write("  rankdir=LR;\n")
    buf.write('  node [shape=circle, fontsize=10];\n')
    buf.write(f'  init [shape=point, label=""];\n')
    buf.write(f"  init -> s{lts.initial};\n")
    for s in range(lts.n_states):
        label = state_label(s) if state_label else str(s)
        attrs = [f"label={_quote(label)}"]
        if s in highlight:
            attrs.append('style=filled, fillcolor="#e74c3c", fontcolor=white')
        if lts.out_degree(s) == 0:
            attrs.append("shape=doublecircle")
        buf.write(f"  s{s} [{', '.join(attrs)}];\n")
    for t in lts.transitions():
        style = ', style=dashed, color=gray40' if t.label == TAU else ""
        buf.write(
            f"  s{t.src} -> s{t.dst} [label={_quote(t.label)}{style}];\n"
        )
    buf.write("}\n")
    text = buf.getvalue()
    if isinstance(target, (str, Path)):
        Path(target).write_text(text)
    elif target is not None:
        target.write(text)
    return text
