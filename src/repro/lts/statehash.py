"""Well-mixed 64-bit state hashing.

Python's built-in ``hash`` is deliberately cheap: small ints hash to
themselves and tuple hashing, while avalanche-free, leaves strong
arithmetic structure in the low bits. That is fine for dictionaries
(which probe with the full hash) but poor for the two places this
package reduces a hash *modulo a small number*: hash partitioning in
:mod:`repro.lts.distributed` (``owner = h % n_workers``) and bitstate
tables in :mod:`repro.lts.bitstate` (``bit = h % n_bits``). Protocol
states are nested tuples of small ints, so neighbouring states produce
clustered raw hashes and skewed partitions.

:func:`mix64` is the splitmix64 finaliser (Steele et al., the same
mixer used as a seeder for xorshift generators): a bijection on 64-bit
words with full avalanche, so every output bit depends on every input
bit. Routing raw hashes through it makes ``% n`` behave like a uniform
draw without changing equality semantics.
"""

from __future__ import annotations

from typing import Hashable, Sequence

_MASK64 = (1 << 64) - 1

#: splitmix64 increment (the golden-ratio constant), reused as the
#: second-hash salt in double hashing
GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def mix64(x: int) -> int:
    """splitmix64 finaliser: avalanche a 64-bit word (bijective)."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def state_key64(state: Hashable, key: int | None = None) -> int:
    """A well-mixed 64-bit key for ``state``.

    When the caller already holds a packed integer ``key`` for the
    state (see :class:`repro.jackal.codec.StateCodec`), it is mixed
    directly — cheaper and collision-free at the 64-bit level. Without
    one, the built-in hash is mixed, which keeps partitioning uniform
    for arbitrary hashable states.
    """
    return mix64(hash(state) if key is None else key)


def key_owner(key: Hashable, n: int) -> int:
    """The worker in ``range(n)`` owning ``key`` (stable within a run).

    ``key`` is typically a packed codec integer, but any hashable works
    (tuple shipping). Both distributed transports — the pickled-queue
    fallback and the shared-memory ring data plane — route through this
    single function, so a key's owner never depends on which transport
    carried it: the built-in hash is avalanche-mixed by :func:`mix64`
    before the modulo, because raw hashes of packed keys (plain ints)
    and of small-int tuples carry low-bit structure that ``% n`` would
    fold into skewed partitions.
    """
    return mix64(hash(key)) % n


def live_owner(key: Hashable, live: Sequence[int]) -> int:
    """The owner of ``key`` drawn from an explicit live-worker list.

    Fault-tolerant partitioning: when workers die, the key space they
    owned must be reassigned to survivors. The assignment is rendezvous
    (highest-random-weight) hashing: every worker gets a per-key score
    — an independent mix of the key's hash and the worker id — and the
    highest-scoring live worker owns the key. Unlike reducing the hash
    modulo ``len(live)``, this is **stable under further shrinkage**:
    removing any worker other than the chosen one never changes the
    choice, so a key re-routed to survivor *A* after one crash keeps
    routing to *A* across later crashes for as long as *A* lives —
    which is what lets *A*'s visited set deduplicate rediscoveries
    instead of a second survivor expanding (and counting) the key
    again. The avalanche property of :func:`mix64` makes the per-key
    scores independent across workers, so a dead worker's keys still
    spread evenly over all survivors.
    """
    h = mix64(hash(key))
    best = live[0]
    best_score = -1
    for w in live:
        score = mix64(h ^ ((w + 1) * GOLDEN_GAMMA))
        if score > best_score:
            best_score, best = score, w
    return best


def double_hashes(h: int, k: int, n: int) -> list[int]:
    """``k`` double-hashed positions in ``range(n)`` derived from ``h``.

    The classic Bloom-filter schema ``h1 + i*h2`` with independent
    mixes of ``h``; ``h2`` is forced odd so the stride cycles through
    the whole table even when ``n`` is a power of two.
    """
    h1 = mix64(h)
    h2 = mix64(h ^ GOLDEN_GAMMA) | 1
    return [((h1 + i * h2) & _MASK64) % n for i in range(k)]
