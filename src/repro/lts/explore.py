"""Explicit-state LTS generation.

This module is the serial instantiator: it turns any object implementing
the :class:`TransitionSystem` protocol (an initial state plus a successor
function over hashable states) into an explicit :class:`~repro.lts.LTS`
by breadth-first search. BFS order matters: state 0 is the initial state
and the discovered distance ordering lets deadlock analysis return
*shortest* error traces, exactly how the paper's counterexamples were
extracted.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Protocol, runtime_checkable

from repro.errors import ExplorationLimitError
from repro.lts.lts import LTS
from repro.obs.core import current as _current_obs


@runtime_checkable
class TransitionSystem(Protocol):
    """Anything that can be explored into an LTS.

    States must be hashable and equality-comparable; the successor
    relation must be deterministic as a *function of the state* (calling
    it twice on the same state yields the same transitions), which every
    model in this package guarantees.
    """

    def initial_state(self) -> Hashable:
        """The (single) initial state."""
        ...

    def successors(self, state: Hashable) -> Iterable[tuple[str, Hashable]]:
        """All outgoing ``(action label, next state)`` pairs of ``state``."""
        ...


@dataclass
class ExplorationStats:
    """Bookkeeping gathered while generating an LTS."""

    states: int = 0
    transitions: int = 0
    max_frontier: int = 0
    seconds: float = 0.0
    depth: int = 0
    #: states per BFS level, level 0 being the initial state
    level_sizes: list[int] = field(default_factory=list)

    def states_per_second(self) -> float:
        """Generation throughput (0 when timing was too fast to measure)."""
        return self.states / self.seconds if self.seconds > 0 else 0.0


def explore(
    system: TransitionSystem,
    *,
    max_states: int | None = None,
    max_depth: int | None = None,
    keep_states: bool = False,
    on_level: Callable[[int, int], None] | None = None,
    stats: ExplorationStats | None = None,
    certificate=None,
    obs=None,
) -> LTS:
    """Generate the reachable LTS of ``system`` by breadth-first search.

    Parameters
    ----------
    system:
        The transition system to instantiate.
    max_states:
        Abort with :class:`~repro.errors.ExplorationLimitError` once more
        than this many states have been discovered. The partially built
        LTS is attached to the exception, mirroring how the paper could
        only partially analyse its third configuration.
    max_depth:
        Stop expanding beyond this BFS depth (the LTS is then a
        depth-bounded under-approximation; no error is raised).
    keep_states:
        When true, store each model state in ``lts.state_meta`` so traces
        can be decoded back into protocol configurations.
    on_level:
        Callback ``(depth, states_so_far)`` invoked per completed level.
    stats:
        Optional stats object to fill in. A fresh one is created when
        omitted so every exit path — including the limit error, which
        carries it on ``.stats`` — reports complete timing.
    certificate:
        Optional :class:`~repro.staticcheck.certificates.ReductionCertificate`.
        When given, the sweep runs on a certificate-validated
        :class:`~repro.lts.certreduce.ReducedSystem` view (symmetry
        quotient + ample pruning) and refuses with
        :class:`~repro.errors.ReproError` if the certificate does not
        validate for this system (JKL303–JKL305).
    obs:
        Optional :class:`~repro.obs.core.Instrumentation`; defaults to
        the ambient bundle (disabled unless activated).

    Returns
    -------
    LTS
        States are numbered in BFS discovery order; state 0 is initial.
    """
    if certificate is not None:
        from repro.lts.certreduce import ReducedSystem

        system = ReducedSystem(system, certificate)
    if obs is None:
        obs = _current_obs()
    recording = obs.enabled
    # reduction counters are cumulative on the (possibly reused)
    # wrapper, so metrics report this sweep's delta
    red0 = (
        (system.canonical_hits, system.ample_prunes, system.slice_hits)
        if hasattr(system, "canonical_hits")
        else None
    )
    if stats is None:
        stats = ExplorationStats()
    t0 = time.perf_counter()
    lts = LTS(initial=0)
    init = system.initial_state()
    index: dict[Hashable, int] = {init: 0}
    lts.ensure_states(1)
    if keep_states:
        lts.state_meta[0] = init

    frontier: list[Hashable] = [init]
    depth = 0
    level_sizes = [1]
    max_frontier = 1
    succ = system.successors
    add_transition = lts.add_transition

    succ_seconds = [0.0]
    if recording:
        obs.tracer.emit(
            "sweep_start", backend="serial",
            max_states=max_states, max_depth=max_depth,
        )
        # charge successor generation (including generator consumption)
        # to its own clock so waves can split succ time from dedup time
        raw_succ = succ
        acc = succ_seconds

        def succ(state):  # noqa: F811 - instrumented wrapper
            t = time.perf_counter()
            out = list(raw_succ(state))
            acc[0] += time.perf_counter() - t
            return out

    def _finish_stats() -> None:
        stats.states = len(index)
        stats.transitions = lts.n_transitions
        stats.max_frontier = max_frontier
        stats.seconds = time.perf_counter() - t0
        stats.depth = depth
        stats.level_sizes = level_sizes

    def _emit_end(outcome: str) -> None:
        reduction = (
            {
                "canonical_hits": system.canonical_hits - red0[0],
                "ample_prunes": system.ample_prunes - red0[1],
                "slice_hits": system.slice_hits - red0[2],
            }
            if red0 is not None
            else None
        )
        obs.memwatch.note("visited_index", sys.getsizeof(index))
        obs.memwatch.sample(force=True)
        obs.tracer.emit(
            "sweep_end", backend="serial", outcome=outcome,
            states=stats.states, transitions=stats.transitions,
            seconds=round(stats.seconds, 6),
            states_per_second=round(stats.states_per_second(), 1),
            depth=stats.depth, max_frontier=stats.max_frontier,
            reduction=reduction,
            max_rss_bytes=obs.memwatch.max_rss_bytes,
            mem_pressure_events=obs.memwatch.pressure_events,
        )
        m = obs.metrics
        m.counter("repro_sweeps_total", backend="serial",
                  outcome=outcome).inc()
        m.counter("repro_sweep_states_total").inc(stats.states)
        m.counter("repro_sweep_transitions_total").inc(stats.transitions)
        m.gauge("repro_sweep_seconds", backend="serial").set(
            round(stats.seconds, 6)
        )
        m.gauge("repro_sweep_states_per_second", backend="serial").set(
            round(stats.states_per_second(), 1)
        )
        if red0 is not None:
            m.counter("repro_reduce_canonical_hits_total").inc(
                system.canonical_hits - red0[0]
            )
            m.counter("repro_reduce_ample_prunes_total").inc(
                system.ample_prunes - red0[1]
            )
            m.counter("repro_reduce_slice_hits_total").inc(
                system.slice_hits - red0[2]
            )

    while frontier:
        if max_depth is not None and depth >= max_depth:
            break
        wave_t0 = time.perf_counter()
        wave_succ0 = succ_seconds[0]
        next_frontier: list[Hashable] = []
        for state in frontier:
            sidx = index[state]
            for label, nxt in succ(state):
                didx = index.get(nxt)
                if didx is None:
                    didx = len(index)
                    index[nxt] = didx
                    lts.ensure_states(didx + 1)
                    if keep_states:
                        lts.state_meta[didx] = nxt
                    next_frontier.append(nxt)
                    if max_states is not None and len(index) > max_states:
                        add_transition(sidx, label, didx)
                        max_frontier = max(max_frontier, len(next_frontier))
                        _finish_stats()
                        if recording:
                            _emit_end("limit")
                        raise ExplorationLimitError(
                            f"state limit {max_states} exceeded at depth {depth}",
                            partial=lts,
                            stats=stats,
                        )
                add_transition(sidx, label, didx)
        depth += 1
        frontier = next_frontier
        if frontier:
            level_sizes.append(len(frontier))
        max_frontier = max(max_frontier, len(frontier))
        if recording:
            wave_s = time.perf_counter() - wave_t0
            succ_s = succ_seconds[0] - wave_succ0
            obs.tracer.emit(
                "wave", depth=depth, states=len(index),
                frontier=len(frontier), wave_s=round(wave_s, 6),
                succ_s=round(succ_s, 6),
                dedup_s=round(max(wave_s - succ_s, 0.0), 6),
            )
            obs.memwatch.note("visited_index", sys.getsizeof(index))
            obs.memwatch.sample()
            elapsed = time.perf_counter() - t0
            obs.progress.maybe(
                states=len(index),
                sps=len(index) / elapsed if elapsed > 0 else 0.0,
                frontier=len(frontier), depth=depth,
            )
        if on_level is not None:
            on_level(depth, len(index))

    _finish_stats()
    if recording:
        _emit_end("ok")
    return lts


def breadth_first_states(
    system: TransitionSystem, *, max_states: int | None = None
) -> Iterable[Hashable]:
    """Yield the reachable states of ``system`` in BFS order.

    A lighter-weight alternative to :func:`explore` for analyses that do
    not need the transition structure (e.g. invariant checking). When
    ``max_states`` is exceeded, the raised
    :class:`~repro.errors.ExplorationLimitError` carries the set of
    states discovered so far on its ``partial`` attribute.
    """
    init = system.initial_state()
    seen = {init}
    frontier = [init]
    yield init
    while frontier:
        nxt: list[Hashable] = []
        for state in frontier:
            for _label, succ in system.successors(state):
                if succ not in seen:
                    seen.add(succ)
                    if max_states is not None and len(seen) > max_states:
                        raise ExplorationLimitError(
                            f"state limit {max_states} exceeded",
                            partial=seen,
                        )
                    nxt.append(succ)
                    yield succ
        frontier = nxt
