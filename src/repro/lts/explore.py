"""Explicit-state LTS generation.

This module is the serial instantiator: it turns any object implementing
the :class:`TransitionSystem` protocol (an initial state plus a successor
function over hashable states) into an explicit :class:`~repro.lts.LTS`
by breadth-first search. BFS order matters: state 0 is the initial state
and the discovered distance ordering lets deadlock analysis return
*shortest* error traces, exactly how the paper's counterexamples were
extracted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Protocol, runtime_checkable

from repro.errors import ExplorationLimitError
from repro.lts.lts import LTS


@runtime_checkable
class TransitionSystem(Protocol):
    """Anything that can be explored into an LTS.

    States must be hashable and equality-comparable; the successor
    relation must be deterministic as a *function of the state* (calling
    it twice on the same state yields the same transitions), which every
    model in this package guarantees.
    """

    def initial_state(self) -> Hashable:
        """The (single) initial state."""
        ...

    def successors(self, state: Hashable) -> Iterable[tuple[str, Hashable]]:
        """All outgoing ``(action label, next state)`` pairs of ``state``."""
        ...


@dataclass
class ExplorationStats:
    """Bookkeeping gathered while generating an LTS."""

    states: int = 0
    transitions: int = 0
    max_frontier: int = 0
    seconds: float = 0.0
    depth: int = 0
    #: states per BFS level, level 0 being the initial state
    level_sizes: list[int] = field(default_factory=list)

    def states_per_second(self) -> float:
        """Generation throughput (0 when timing was too fast to measure)."""
        return self.states / self.seconds if self.seconds > 0 else 0.0


def explore(
    system: TransitionSystem,
    *,
    max_states: int | None = None,
    max_depth: int | None = None,
    keep_states: bool = False,
    on_level: Callable[[int, int], None] | None = None,
    stats: ExplorationStats | None = None,
) -> LTS:
    """Generate the reachable LTS of ``system`` by breadth-first search.

    Parameters
    ----------
    system:
        The transition system to instantiate.
    max_states:
        Abort with :class:`~repro.errors.ExplorationLimitError` once more
        than this many states have been discovered. The partially built
        LTS is attached to the exception, mirroring how the paper could
        only partially analyse its third configuration.
    max_depth:
        Stop expanding beyond this BFS depth (the LTS is then a
        depth-bounded under-approximation; no error is raised).
    keep_states:
        When true, store each model state in ``lts.state_meta`` so traces
        can be decoded back into protocol configurations.
    on_level:
        Callback ``(depth, states_so_far)`` invoked per completed level.
    stats:
        Optional stats object to fill in.

    Returns
    -------
    LTS
        States are numbered in BFS discovery order; state 0 is initial.
    """
    t0 = time.perf_counter()
    lts = LTS(initial=0)
    init = system.initial_state()
    index: dict[Hashable, int] = {init: 0}
    lts.ensure_states(1)
    if keep_states:
        lts.state_meta[0] = init

    frontier: list[Hashable] = [init]
    depth = 0
    level_sizes = [1]
    max_frontier = 1
    succ = system.successors
    add_transition = lts.add_transition

    while frontier:
        if max_depth is not None and depth >= max_depth:
            break
        next_frontier: list[Hashable] = []
        for state in frontier:
            sidx = index[state]
            for label, nxt in succ(state):
                didx = index.get(nxt)
                if didx is None:
                    didx = len(index)
                    index[nxt] = didx
                    lts.ensure_states(didx + 1)
                    if keep_states:
                        lts.state_meta[didx] = nxt
                    next_frontier.append(nxt)
                    if max_states is not None and len(index) > max_states:
                        add_transition(sidx, label, didx)
                        if stats is not None:
                            stats.states = len(index)
                            stats.transitions = lts.n_transitions
                            stats.max_frontier = max(
                                max_frontier, len(next_frontier)
                            )
                            stats.seconds = time.perf_counter() - t0
                            stats.depth = depth
                            stats.level_sizes = level_sizes
                        raise ExplorationLimitError(
                            f"state limit {max_states} exceeded at depth {depth}",
                            partial=lts,
                        )
                add_transition(sidx, label, didx)
        depth += 1
        frontier = next_frontier
        if frontier:
            level_sizes.append(len(frontier))
        max_frontier = max(max_frontier, len(frontier))
        if on_level is not None:
            on_level(depth, len(index))

    if stats is not None:
        stats.states = len(index)
        stats.transitions = lts.n_transitions
        stats.max_frontier = max_frontier
        stats.seconds = time.perf_counter() - t0
        stats.depth = depth
        stats.level_sizes = level_sizes
    return lts


def breadth_first_states(
    system: TransitionSystem, *, max_states: int | None = None
) -> Iterable[Hashable]:
    """Yield the reachable states of ``system`` in BFS order.

    A lighter-weight alternative to :func:`explore` for analyses that do
    not need the transition structure (e.g. invariant checking). When
    ``max_states`` is exceeded, the raised
    :class:`~repro.errors.ExplorationLimitError` carries the set of
    states discovered so far on its ``partial`` attribute.
    """
    init = system.initial_state()
    seen = {init}
    frontier = [init]
    yield init
    while frontier:
        nxt: list[Hashable] = []
        for state in frontier:
            for _label, succ in system.successors(state):
                if succ not in seen:
                    seen.add(succ)
                    if max_states is not None and len(seen) > max_states:
                        raise ExplorationLimitError(
                            f"state limit {max_states} exceeded",
                            partial=seen,
                        )
                    nxt.append(succ)
                    yield succ
        frontier = nxt
