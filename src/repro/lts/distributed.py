"""Distributed (partitioned) state-space generation.

The paper generated its larger LTSs with the muCRL *distributed* LTS
generation tool on an eight-node cluster at CWI; the technique is
hash-based state ownership: every node owns the states that hash into
its partition, keeps a local visited set for them, and forwards newly
discovered states to their owners.

This module reproduces that architecture at laptop scale with
``multiprocessing`` workers (one OS process per cluster node). Two
backends are provided:

``"process"``
    Real worker processes in a **pipelined** schedule: the coordinator
    routes work to state owners the moment it arrives, each owner
    deduplicates against its local visited set, expands, partitions the
    successors by owner *worker-side*, and sends them straight back for
    routing. There is no per-level barrier — a fast partition keeps
    expanding while a slow one catches up — and termination is detected
    by outstanding-message counting: every work batch put on the wire
    increments a counter, every completion message decrements it, and
    the sweep is finished exactly when the counter is zero and no
    routed states are pending. (With all traffic flowing through the
    coordinator, the counter is a degenerate—and exact—form of
    Mattern's credit scheme; no idle-token round is needed.)

``"inline"``
    The same partitioned algorithm run sequentially in-process in the
    classical bulk-synchronous level order (deterministic; used for
    testing the routing logic and on platforms where spawning is
    expensive).

States travel between processes as packed codec keys when the system
provides a :meth:`codec` (as :class:`~repro.jackal.model.JackalModel`
does): a ~20-byte integer per state instead of a pickled tuple tree,
with the encode/decode cost carried by the workers, in parallel.

Ownership hashes are routed through the splitmix64 finaliser
(:func:`repro.lts.statehash.mix64`): protocol states are nested tuples
of small ints whose raw ``hash()`` clusters badly modulo a small worker
count, and a skewed partition turns one worker into the whole sweep's
critical path (see ``DistributedStats.imbalance``).

For exact LTS construction the transitions can be collected
(``collect=True``); for large sweeps the default is a count-only run,
which is what the paper's Table 8 numbers require.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Hashable

from repro.errors import ExplorationLimitError
from repro.lts.explore import TransitionSystem
from repro.lts.lts import LTS
from repro.lts.statehash import mix64

#: states per work batch (packed keys are ~20 bytes, so a batch fits
#: comfortably in an OS pipe buffer and never blocks the coordinator)
_BATCH = 256
#: work batches a worker may have in flight; >1 keeps its inbox warm
#: while a completion message is in transit (the pipelining window)
_WINDOW = 4


@dataclass
class DistributedStats:
    """Result of a partitioned sweep.

    Attributes
    ----------
    states / transitions:
        Exact totals (hash partitioning does not lose states, unlike
        bitstate hashing — each owner keeps an exact visited set).
    deadlocks:
        Terminal states encountered.
    per_worker_states:
        Visited-set size per worker; the balance of this vector is the
        classical health metric of hash partitioning.
    per_worker_batches:
        Work batches each worker expanded (pipelined backend only);
        measures scheduling balance as opposed to storage balance.
    levels:
        Bulk-synchronous backends: BFS levels processed. Pipelined
        backend: the maximum routing depth, an upper bound on the BFS
        depth.
    batches:
        Total work batches routed (pipelined backend only).
    seconds:
        Wall-clock duration.
    """

    states: int = 0
    transitions: int = 0
    deadlocks: int = 0
    per_worker_states: list[int] = field(default_factory=list)
    per_worker_batches: list[int] = field(default_factory=list)
    levels: int = 0
    batches: int = 0
    seconds: float = 0.0

    def imbalance(self) -> float:
        """max/mean ratio of the partition sizes (1.0 = perfectly even)."""
        if not self.per_worker_states or self.states == 0:
            return 1.0
        mean = self.states / len(self.per_worker_states)
        return max(self.per_worker_states) / mean if mean else 1.0


def _owner(state: Hashable, n: int) -> int:
    """The worker owning ``state`` (stable within one run).

    ``state`` may equally be a packed codec key. The built-in hash is
    routed through splitmix64 before the modulo: raw hashes of
    small-int tuples (and of packed keys, which are plain ints) carry
    strong low-bit structure that ``% n`` would fold into skewed
    partitions.
    """
    return mix64(hash(state)) % n


def _expand_batch(system, batch, visited, collect, decode=None):
    """Owner-side work: dedup ``batch``, expand new states.

    ``batch`` holds packed keys when ``decode`` is given, states
    otherwise. Returns ``(new_successor_states, n_transitions,
    n_deadlocks, collected_transitions)``; successors (and collected
    endpoints) are packed through ``encode`` by the caller's
    partitioning step, not here.
    """
    out_states = []
    n_trans = 0
    n_dead = 0
    collected = []
    succ = getattr(system, "successors_fast", None) or system.successors
    for item in batch:
        if item in visited:
            continue
        visited.add(item)
        state = item if decode is None else decode(item)
        succs = succ(state)
        n_trans += len(succs)
        if not succs:
            n_dead += 1
        for label, nxt in succs:
            out_states.append(nxt)
            if collect:
                collected.append((item, label, nxt))
    return out_states, n_trans, n_dead, collected


def _partition(states, n_workers, encode=None):
    """Bucket ``states`` by owner, packing through ``encode`` if given."""
    buckets: list[list] = [[] for _ in range(n_workers)]
    if encode is None:
        for s in states:
            buckets[_owner(s, n_workers)].append(s)
    else:
        for s in states:
            k = encode(s)
            buckets[_owner(k, n_workers)].append(k)
    return buckets


def _worker_main(system, n_workers, wid, inbox, outbox, collect, packed):
    """Worker process loop: expand routed batches until told to stop.

    Each ``("work", depth, batch)`` message is answered with exactly
    one ``("done", ...)`` message — the invariant the coordinator's
    outstanding-message termination count rests on.
    """
    codec = system.codec() if packed else None
    decode = codec.decode if codec else None
    encode = codec.encode if codec else None
    visited: set = set()
    while True:
        msg = inbox.get()
        if msg is None:
            outbox.put(("bye", wid, len(visited)))
            return
        _tag, depth, batch = msg
        new_states, n_trans, n_dead, collected = _expand_batch(
            system, batch, visited, collect, decode
        )
        buckets = _partition(new_states, n_workers, encode)
        if collect and encode is not None:
            collected = [(src, lab, encode(d)) for src, lab, d in collected]
        outbox.put(
            ("done", wid, depth, buckets, n_trans, n_dead,
             len(visited), collected)
        )


def _inline_sweep(system, n_workers, collect, max_states, stats, packed):
    """The partitioned algorithm run sequentially (test backend).

    Bulk-synchronous by construction: each iteration of the outer loop
    is one BFS level, which keeps the backend deterministic and its
    ``levels`` statistic exact.
    """
    codec = system.codec() if packed else None
    decode = codec.decode if codec else None
    encode = codec.encode if codec else None
    visited: list[set] = [set() for _ in range(n_workers)]
    init = system.initial_state()
    init_item = init if encode is None else encode(init)
    frontier = [init]
    transitions = []
    n_trans = 0
    n_dead = 0
    levels = 0
    while frontier:
        batches = _partition(frontier, n_workers, encode)
        frontier = []
        for w in range(n_workers):
            new_states, t, d, coll = _expand_batch(
                system, batches[w], visited[w], collect, decode
            )
            n_trans += t
            n_dead += d
            if collect and encode is not None:
                coll = [(src, lab, encode(dd)) for src, lab, dd in coll]
            transitions.extend(coll)
            frontier.extend(new_states)
        levels += 1
        total = sum(len(v) for v in visited)
        if max_states is not None and total > max_states:
            raise ExplorationLimitError(f"state limit {max_states} exceeded")
    stats.states = sum(len(v) for v in visited)
    stats.transitions = n_trans
    stats.deadlocks = n_dead
    stats.per_worker_states = [len(v) for v in visited]
    stats.levels = levels
    return transitions, init_item


def _process_sweep(system, n_workers, collect, max_states, stats, packed):
    """The pipelined partitioned sweep with real worker processes.

    The coordinator keeps per-owner pending queues and routes bounded
    batches to any worker with spare window capacity; it never waits
    for a level to finish. ``outstanding`` counts work batches on the
    wire (incremented per dispatch, decremented per completion);
    ``outstanding == 0`` with every pending queue empty is exact
    quiescence, because workers only create work as part of answering
    a batch the coordinator counted.
    """
    ctx = (
        mp.get_context("fork")
        if "fork" in mp.get_all_start_methods()
        else mp.get_context()
    )
    inboxes = [ctx.SimpleQueue() for _ in range(n_workers)]
    outbox = ctx.SimpleQueue()
    workers = [
        ctx.Process(
            target=_worker_main,
            args=(system, n_workers, w, inboxes[w], outbox, collect, packed),
            daemon=True,
        )
        for w in range(n_workers)
    ]
    for p in workers:
        p.start()

    codec = system.codec() if packed else None
    init = system.initial_state()
    init_item = init if codec is None else codec.encode(init)

    pending: list[list] = [[] for _ in range(n_workers)]
    pending[_owner(init_item, n_workers)].append((0, [init_item]))
    inflight = [0] * n_workers
    outstanding = 0
    sizes = [0] * n_workers
    n_batches = [0] * n_workers
    transitions = []
    n_trans = 0
    n_dead = 0
    max_depth = 0
    total_batches = 0
    limit_hit = False
    try:
        while True:
            for w in range(n_workers):
                queue = pending[w]
                while queue and inflight[w] < _WINDOW:
                    depth, batch = queue[0]
                    if len(batch) > _BATCH:
                        chunk, rest = batch[:_BATCH], batch[_BATCH:]
                        queue[0] = (depth, rest)
                    else:
                        chunk = batch
                        queue.pop(0)
                    inboxes[w].put(("work", depth, chunk))
                    inflight[w] += 1
                    outstanding += 1
                    total_batches += 1
            if outstanding == 0:
                break  # nothing in flight, nothing pending: quiescent
            msg = outbox.get()
            _tag, wid, depth, buckets, t, d, n_visited, coll = msg
            inflight[wid] -= 1
            outstanding -= 1
            n_batches[wid] += 1
            sizes[wid] = n_visited
            n_trans += t
            n_dead += d
            transitions.extend(coll)
            max_depth = max(max_depth, depth)
            for w, bucket in enumerate(buckets):
                if bucket:
                    queue = pending[w]
                    # coalesce with the tail entry of the same depth so
                    # trickling successor buckets form full batches
                    if (
                        queue
                        and queue[-1][0] == depth + 1
                        and len(queue[-1][1]) < _BATCH
                    ):
                        queue[-1] = (depth + 1, queue[-1][1] + bucket)
                    else:
                        queue.append((depth + 1, bucket))
            if max_states is not None and sum(sizes) > max_states:
                limit_hit = True
                break
    finally:
        for w in range(n_workers):
            inboxes[w].put(None)
        byes = 0
        while byes < n_workers:
            msg = outbox.get()
            if msg[0] == "bye":
                sizes[msg[1]] = msg[2]
                byes += 1
        for p in workers:
            p.join(timeout=10)
    stats.states = sum(sizes)
    stats.transitions = n_trans
    stats.deadlocks = n_dead
    stats.per_worker_states = sizes
    stats.per_worker_batches = n_batches
    stats.levels = max_depth + 1
    stats.batches = total_batches
    if limit_hit or (max_states is not None and stats.states > max_states):
        raise ExplorationLimitError(f"state limit {max_states} exceeded")
    return transitions, init_item


def distributed_explore(
    system: TransitionSystem,
    *,
    n_workers: int = 4,
    backend: str = "process",
    collect: bool = False,
    max_states: int | None = None,
    packed: bool | None = None,
) -> tuple[LTS | None, DistributedStats]:
    """Partitioned sweep of ``system`` (pipelined when ``"process"``).

    Parameters
    ----------
    system:
        Must be picklable for the ``"process"`` backend (all models in
        this package are).
    n_workers:
        Number of partitions (cluster nodes in the paper's setting).
    backend:
        ``"process"`` for pipelined worker processes, ``"inline"`` for
        the deterministic bulk-synchronous in-process rendition.
    collect:
        When true, transitions are shipped back and an explicit
        :class:`LTS` is assembled (only sensible for small systems); the
        returned LTS is otherwise ``None``.
    max_states:
        Abort when the visited total exceeds this bound.
    packed:
        Ship/store packed codec keys instead of state tuples. ``None``
        (default) auto-enables when the system provides a ``codec()``;
        ``True`` requires one; ``False`` forces tuple shipping.

    Returns
    -------
    (lts, stats):
        ``lts`` is ``None`` unless ``collect`` was requested.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if backend not in ("process", "inline"):
        raise ValueError(f"unknown backend {backend!r}")
    if packed is None:
        packed = getattr(system, "codec", None) is not None
    elif packed and getattr(system, "codec", None) is None:
        raise ValueError("packed=True needs a system with a codec()")
    stats = DistributedStats()
    t0 = time.perf_counter()
    sweep = _inline_sweep if backend == "inline" else _process_sweep
    transitions, init_item = sweep(
        system, n_workers, collect, max_states, stats, packed
    )
    stats.seconds = time.perf_counter() - t0

    if not collect:
        return None, stats
    # assemble an explicit LTS; BFS renumbering for a canonical result
    index: dict[Hashable, int] = {init_item: 0}
    adj: dict[Hashable, list[tuple[str, Hashable]]] = {}
    for s, label, d in transitions:
        adj.setdefault(s, []).append((label, d))
    lts = LTS(initial=0)
    lts.ensure_states(1)
    frontier = [init_item]
    while frontier:
        nxt = []
        for s in frontier:
            for label, d in adj.get(s, []):
                di = index.get(d)
                if di is None:
                    di = len(index)
                    index[d] = di
                    lts.ensure_states(di + 1)
                    nxt.append(d)
                lts.add_transition(index[s], label, di)
        frontier = nxt
    return lts, stats
