"""Distributed (partitioned) state-space generation.

The paper generated its larger LTSs with the muCRL *distributed* LTS
generation tool on an eight-node cluster at CWI; the technique is
hash-based state ownership: every node owns the states that hash into
its partition, keeps a local visited set for them, and forwards newly
discovered states to their owners.

This module reproduces that architecture at laptop scale with
``multiprocessing`` workers (one OS process per cluster node). Two
backends are provided:

``"process"``
    Real worker processes in a **pipelined** schedule with two
    interchangeable transports (``transport="shm"|"queue"``, default
    auto):

    ``"shm"`` — the shared-memory ring data plane. Each ordered worker
    pair owns a single-producer single-consumer ring buffer in
    :mod:`multiprocessing.shared_memory` (:mod:`repro.lts.shmring`);
    workers write fixed-width packed codec keys straight into the ring
    of each successor's owner, gather adaptive wall-clock-targeted
    quanta out of their inbound rings, and the coordinator is off the
    steady-state path entirely — it carries only control traffic
    (per-quantum acknowledgements with the counts and the recovery
    ledger, relays for blocks a full ring rejected, membership changes,
    termination). Termination is a double-scan balance check over the
    ring counters plus the ack and inject ledgers.

    ``"queue"`` — the original coordinator-routed pickled-queue
    transport (and the fallback for tuple-shipping systems without a
    codec): the coordinator routes work to state owners the moment it
    arrives, each owner deduplicates against its local visited set,
    expands, partitions the successors by owner *worker-side*, and
    sends them straight back for routing. Termination is detected by
    outstanding-message counting: every work batch put on the wire
    increments a counter, every completion message decrements it, and
    the sweep is finished exactly when the counter is zero and no
    routed states are pending. (With all traffic flowing through the
    coordinator, the counter is a degenerate—and exact—form of
    Mattern's credit scheme; no idle-token round is needed.)

    Neither transport has a per-level barrier — a fast partition keeps
    expanding while a slow one catches up — and both route ownership
    through the same :func:`repro.lts.statehash.key_owner`, so the
    explored LTS never depends on the transport.

``"inline"``
    The same partitioned algorithm run sequentially in-process in the
    classical bulk-synchronous level order (deterministic; used for
    testing the routing logic and on platforms where spawning is
    expensive).

The ``"process"`` coordinator is **fault tolerant**: eight-node-cluster
sweeps die with their weakest node, so worker loss is treated as an
expected event, not a hang. The outbox wait is a timed poll backed by
worker ``exitcode`` checks (a dead worker is detected within the poll
interval), every dispatched batch is held in a per-worker in-flight
ledger until its completion message arrives, and on a crash the dead
worker's lost batches — in flight and pending — are re-partitioned
over the surviving workers (:func:`repro.lts.statehash.live_owner`,
rendezvous hashing: the assignment is stable under *further* crashes,
so a key re-routed to one survivor never silently migrates to — and
gets re-counted by — another when a second worker dies later).
The crashed worker's visited set dies with it, but the coordinator
reconstructs it exactly from the ledger of batches the worker
*acknowledged* (a worker adds every item of a batch to its visited set
before answering), so re-routed states that were already expanded are
dropped instead of expanded twice: a sweep that loses workers still
reports exact state/transition totals. The acknowledged-key ledger is
kept in compact packed form (a fixed-width byte buffer per worker —
roughly the codec key width per state rather than a duplicate Python
set) and can be switched off entirely with ``fault_tolerant=False``
for sweeps so large that the coordinator must not hold any per-state
record; crashes then still fail fast instead of hanging, they just
cannot be recovered from. Recovery is observable through
:class:`DistributedStats` (``worker_deaths``, ``redispatched_batches``,
``recovered``) and reproducible on demand through the fault-injection
harness in :mod:`repro.lts.faults`. Only when *every* worker dies does
the sweep give up, raising :class:`~repro.errors.WorkerFailureError`
within one poll interval.

States travel between processes as packed codec keys when the system
provides a :meth:`codec` (as :class:`~repro.jackal.model.JackalModel`
does): a ~20-byte integer per state instead of a pickled tuple tree,
with the encode/decode cost carried by the workers, in parallel.

Ownership hashes are routed through the splitmix64 finaliser
(:func:`repro.lts.statehash.mix64`): protocol states are nested tuples
of small ints whose raw ``hash()`` clusters badly modulo a small worker
count, and a skewed partition turns one worker into the whole sweep's
critical path (see ``DistributedStats.imbalance``).

For exact LTS construction the transitions can be collected
(``collect=True``); for large sweeps the default is a count-only run,
which is what the paper's Table 8 numbers require.
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from queue import Empty
from typing import Hashable

from repro.errors import ExplorationLimitError, WorkerFailureError
from repro.lts.explore import TransitionSystem
from repro.lts.faults import FaultPlan, WorkerFault, crash_process
from repro.lts.lts import LTS
from repro.lts.shmring import (
    DEFAULT_RING_BYTES,
    AdaptiveBatch,
    RingBuffer,
    pack_keys,
    unpack_keys,
)
from repro.lts.statehash import key_owner, live_owner
from repro.obs.core import current as _current_obs
from repro.obs.memwatch import MemWatch
from repro.obs.merge import worker_stream_name
from repro.obs.tracer import Tracer

#: states per work batch (packed keys are ~20 bytes, so a batch fits
#: comfortably in an OS pipe buffer and never blocks the coordinator)
_BATCH = 256
#: work batches a worker may have in flight; >1 keeps its inbox warm
#: while a completion message is in transit (the pipelining window)
_WINDOW = 4
#: default coordinator poll interval: an outbox wait never blocks
#: longer than this before worker liveness is re-checked
_POLL = 0.25
#: completion messages handled between opportunistic liveness checks,
#: bounding crash detection latency while the outbox stays busy
_CRASH_CHECK_EVERY = 64
#: shm transport: wall-clock target for one expansion quantum (the
#: adaptive batch controller sizes quanta to roughly this long; a
#: parameter sweep put the knee at 10 ms — enough work per ack to
#: amortise the control round trip without starving peers)
_QUANTUM_TARGET_S = 0.01
#: shm transport: adaptive quantum bounds
_QUANTUM_LO = 32
_QUANTUM_HI = 8192
#: shm transport: longest idle-poll backoff of a starved worker (kept
#: short — on an oversubscribed host a long sleep here serialises the
#: pipeline, since the peer that would refill the ring runs next)
_IDLE_BACKOFF_MAX = 0.002
#: worker-process startup deadline (spawn barrier; generous — covers
#: a cold ``fork`` + codec construction on a loaded machine)
_SPAWN_DEADLINE = 60.0
#: 64-bit mask for the worker-loop-inlined splitmix64 finaliser
_M64 = (1 << 64) - 1
#: shm transport: entry cap on the worker-local ship memo and
#: shipped-key filter; both are pure caches whose clearing costs only
#: repeated work (re-encodes, duplicate ships the consumer dedups), so
#: capping them bounds worker memory without touching exactness
_SHIP_CACHE_MAX = 200_000


@dataclass
class DistributedStats:
    """Result of a partitioned sweep.

    Attributes
    ----------
    states / transitions:
        Exact totals (hash partitioning does not lose states, unlike
        bitstate hashing — each owner keeps an exact visited set).
        Exactness survives worker crashes: lost batches are re-expanded
        and re-reported work is deduplicated at the coordinator.
    deadlocks:
        Terminal states encountered.
    per_worker_states:
        Visited-set size per worker; the balance of this vector is the
        classical health metric of hash partitioning. For a crashed
        worker this is the size its visited set had reached when it
        died (the count carried by its last acknowledged batch).
    per_worker_batches:
        Work batches each worker expanded (pipelined backend only);
        measures scheduling balance as opposed to storage balance.
    levels:
        Bulk-synchronous backends: BFS levels processed. Pipelined
        backend: the maximum routing depth, an upper bound on the BFS
        depth.
    batches:
        Total work batches routed (pipelined backend only).
    worker_deaths:
        Worker processes that died mid-sweep (pipelined backend only).
    redispatched_batches:
        Work batches whose assignment was lost to a crash — in flight
        at, or still pending for, a dead worker — and were
        re-partitioned over the survivors.
    recovered:
        True when at least one worker died and the sweep nevertheless
        ran to its normal end on the survivors.
    seconds:
        Wall-clock duration, worker spawn excluded (see ``spawn_s``).
    spawn_s:
        Seconds from starting the worker processes to the last worker's
        hello message (``"process"`` backend). Reported separately so
        throughput comparisons against in-process backends measure the
        sweep, not ``fork``+interpreter warm-up — the fixed cost that
        used to doom small-config speedup numbers.
    transport:
        ``"queue"`` or ``"shm"`` for the ``"process"`` backend,
        ``"local"`` otherwise.
    relayed_batches:
        shm transport: successor blocks that could not be written to a
        ring (full, or the destination was dead) and fell back to a
        coordinator relay. A persistently high share means the rings
        are undersized for the model.
    worker_succ_s / worker_expand_s:
        Summed worker-side seconds spent generating successors /
        expanding whole batches (dedup + successor generation). Filled
        only on instrumented sweeps (the flight recorder active);
        0.0 otherwise — worker-side timing is off the hot path by
        default.
    coord_put_s / coord_handle_s / coord_idle_s:
        Coordinator-side seconds spent serialising batches onto worker
        inboxes / handling completion messages / blocked in timed
        outbox waits that expired. Instrumented sweeps only.
    ring_put_s / ring_get_s:
        shm transport, instrumented sweeps only: summed worker-side
        seconds spent writing successor blocks into / gathering quanta
        out of the shared-memory rings — the data-plane cost that
        replaces the queue transport's pickling.
    """

    states: int = 0
    transitions: int = 0
    deadlocks: int = 0
    per_worker_states: list[int] = field(default_factory=list)
    per_worker_batches: list[int] = field(default_factory=list)
    levels: int = 0
    batches: int = 0
    worker_deaths: int = 0
    redispatched_batches: int = 0
    recovered: bool = False
    seconds: float = 0.0
    spawn_s: float = 0.0
    transport: str = "local"
    relayed_batches: int = 0
    worker_succ_s: float = 0.0
    worker_expand_s: float = 0.0
    coord_put_s: float = 0.0
    coord_handle_s: float = 0.0
    coord_idle_s: float = 0.0
    ring_put_s: float = 0.0
    ring_get_s: float = 0.0

    def imbalance(self) -> float:
        """max/mean ratio over partitions that actually held states.

        Workers that died before owning anything (or were never routed
        a state) are excluded from the mean: averaging their zeros in
        understates the survivors' skew precisely after the recoveries
        this metric is meant to diagnose. 1.0 = perfectly even.
        """
        held = [c for c in self.per_worker_states if c > 0]
        if not held:
            return 1.0
        mean = sum(held) / len(held)
        return max(held) / mean if mean else 1.0


def _owner(state: Hashable, n: int) -> int:
    """The worker owning ``state`` (stable within one run).

    ``state`` may equally be a packed codec key. Delegates to
    :func:`repro.lts.statehash.key_owner` — the single routing function
    shared by the queue and shm transports, so ownership never depends
    on which transport carried the key.
    """
    return key_owner(state, n)


class _AckLedger:
    """Compact per-worker record of acknowledged batch keys.

    A worker adds every item of a batch to its visited set before
    answering, so the union of its acknowledged batches *is* its
    visited set — the record that lets the coordinator drop re-routed
    keys a dead worker had already expanded (and counted). Holding that
    union as a Python set would duplicate every worker's visited set at
    the coordinator and defeat the memory-scaling point of hash
    partitioning, so packed codec keys are instead appended to a
    fixed-width byte buffer — roughly the key width per state — and
    only materialised into a set on the (rare) crash path. The slot
    width is seeded from the system codec's key byte-width when the
    caller knows it (every real key used to trigger an O(buffer)
    pure-Python ``_rewiden`` away from the old width-1 default on its
    first arrival, mid-sweep); it still widens in place if an even
    larger key arrives. Non-integer states (tuple shipping) have no
    compact form and fall back to a set.
    """

    __slots__ = ("_width", "_buf", "_set")

    def __init__(self, width: int = 1):
        if width < 1:
            raise ValueError("width must be >= 1")
        self._width = width
        self._buf = bytearray()
        self._set: set | None = None

    def _rewiden(self, width: int) -> None:
        old, buf = self._width, self._buf
        out = bytearray(len(buf) // old * width)
        for i in range(len(buf) // old):
            out[i * width: i * width + old] = buf[i * old: (i + 1) * old]
        self._width, self._buf = width, out

    def _add_packed(self, keys) -> None:
        width = self._width
        for k in keys:
            n = (k.bit_length() + 7) // 8 or 1
            if n > width:
                self._rewiden(n)
                width = n
            self._buf += k.to_bytes(width, "little")

    def add(self, keys) -> None:
        """Record the keys of one acknowledged batch."""
        if self._set is None:
            try:
                self._add_packed(keys)
                return
            except (AttributeError, OverflowError):
                # not non-negative ints: keep whatever packed cleanly
                # (to_set dedups the partially appended batch) and
                # continue in set mode
                self._set = self.to_set()
                self._buf = bytearray()
        self._set.update(keys)

    def add_bytes(self, data: bytes, width: int) -> None:
        """Record an already-packed block of ``width``-byte keys.

        The shm transport's acks carry their newly expanded keys in
        exactly the ledger's wire format (little-endian fixed width),
        so a matching width is a straight buffer append — no per-key
        Python ints at all on the steady-state path.
        """
        if self._set is not None:
            self._set.update(unpack_keys(data, width))
            return
        if width != self._width:
            if width > self._width:
                self._rewiden(width)
            else:
                self._add_packed(unpack_keys(data, width))
                return
        self._buf += data

    def to_set(self) -> set:
        """The acknowledged-key union as a set (the crash path)."""
        if self._set is not None:
            return set(self._set)
        w, buf = self._width, self._buf
        return {
            int.from_bytes(buf[i: i + w], "little")
            for i in range(0, len(buf), w)
        }

    @property
    def nbytes(self) -> int:
        """Approximate coordinator memory held by this ledger."""
        if self._set is not None:
            return sys.getsizeof(self._set)
        return len(self._buf)

    def clear(self) -> None:
        self._buf = bytearray()
        self._set = None


def _worker_obs(trace_dir, wid, clock_origin):
    """Per-worker flight recorder: own trace stream + memory watcher.

    Workers are separate processes, so they cannot share the
    coordinator's tracer (concurrent writers would tear JSONL lines).
    Each worker instead opens its own line-buffered stream in
    ``trace_dir`` and performs the clock handshake: its first event,
    ``worker_start``, records ``clock_offset`` — this tracer's
    ``perf_counter`` epoch minus the coordinator's — which
    :mod:`repro.obs.merge` adds to the stream's timestamps to map them
    onto the coordinator's timebase (``perf_counter`` is system-wide
    monotonic on Linux, so fork children share the underlying clock).

    Returns ``(tracer, memwatch)``, both ``None`` when no ``trace_dir``
    is configured — callers branch once per quantum, never per state.
    """
    if trace_dir is None:
        return None, None
    tracer = Tracer(os.path.join(trace_dir, worker_stream_name(wid)))
    tracer.emit(
        "worker_start", worker=wid, pid=os.getpid(),
        clock_offset=round(tracer.epoch - clock_origin, 6),
    )
    return tracer, MemWatch(tracer=tracer)


def _expand_batch(system, batch, visited, collect, decode=None, succ=None,
                  timer=None):
    """Owner-side work: dedup ``batch``, expand new states.

    ``batch`` holds packed keys when ``decode`` is given, states
    otherwise. Returns ``(new_successor_states, n_transitions,
    n_deadlocks, collected_transitions)``; successors (and collected
    endpoints) are packed through ``encode`` by the caller's
    partitioning step, not here. When ``timer`` (a one-element list) is
    given, seconds spent generating successors accumulate into
    ``timer[0]`` — the instrumented path's succ-vs-dedup split.
    """
    out_states = []
    n_trans = 0
    n_dead = 0
    collected = []
    if succ is None:
        succ = getattr(system, "successors_fast", None) or system.successors
    if timer is not None:
        raw = succ
        clock = time.perf_counter

        def succ(state):  # noqa: F811 - timing wrapper
            t = clock()
            out = list(raw(state))
            timer[0] += clock() - t
            return out

    for item in batch:
        if item in visited:
            continue
        visited.add(item)
        state = item if decode is None else decode(item)
        # the TransitionSystem protocol only promises an Iterable, so
        # materialize before measuring (generator-based systems)
        succs = list(succ(state))
        n_trans += len(succs)
        if not succs:
            n_dead += 1
        for label, nxt in succs:
            out_states.append(nxt)
            if collect:
                collected.append((item, label, nxt))
    return out_states, n_trans, n_dead, collected


def _partition(states, n_workers, encode=None):
    """Bucket ``states`` by owner, packing through ``encode`` if given."""
    buckets: list[list] = [[] for _ in range(n_workers)]
    if encode is None:
        for s in states:
            buckets[_owner(s, n_workers)].append(s)
    else:
        for s in states:
            k = encode(s)
            buckets[_owner(k, n_workers)].append(k)
    return buckets


def _coalesce(queue, depth, bucket, batch_size) -> None:
    """Append ``bucket`` to a pending ``deque``, merging into the tail.

    Trickling successor buckets of the same depth are merged into the
    tail entry (in place — the entry's item list is mutable) until it
    reaches a full batch, so dispatches carry full batches instead of
    bucket-sized fragments. The tail list is extended in place and the
    deque appended at the ends only: both O(len(bucket)), where the old
    list-based queue rebuilt the whole tail entry per merge
    (``queue[-1][1] + bucket``) and went quadratic on wide frontiers.
    ``bucket`` must be a list the caller cedes ownership of.
    """
    if queue:
        tail = queue[-1]
        if tail[0] == depth and len(tail[1]) < batch_size:
            tail[1].extend(bucket)
            return
    queue.append((depth, bucket))


def _take_chunk(queue, batch_size):
    """Pop up to ``batch_size`` items off the head entry of a pending
    ``deque``; returns ``(depth, chunk)``.

    An oversized head entry is split from its *end* (``del
    batch[-batch_size:]``), which is O(chunk) where the old
    ``queue.pop(0)`` / front-slice pattern copied the whole remainder
    per dispatch. Within one depth the frontier is an unordered set, so
    taking from either end explores the same LTS.
    """
    depth, batch = queue[0]
    if len(batch) > batch_size:
        chunk = batch[-batch_size:]
        del batch[-batch_size:]
    else:
        chunk = batch
        queue.popleft()
    return depth, chunk


def _worker_main(
    system, n_workers, wid, inbox, outbox, collect, packed,
    fault: WorkerFault | None = None,
    instrument: bool = False,
    trace_dir=None,
    clock_origin: float = 0.0,
):
    """Worker process loop: expand routed batches until told to stop.

    Each ``("work", seq, depth, batch)`` message is answered with
    exactly one ``("done", ..., seq, ...)`` message — the invariant
    both the coordinator's outstanding-message termination count and
    its in-flight ledger rest on. ``fault`` injects the misbehaviours
    of :mod:`repro.lts.faults` for recovery testing. ``instrument``
    additionally times each batch (total expansion and successor
    generation seconds travel on the ``done`` message) for the flight
    recorder's per-phase breakdown; off by default to keep the hot
    path clock-free. With a ``trace_dir`` the worker also keeps its own
    trace stream and memory watcher (see :func:`_worker_obs`), stamping
    each batch's worker-side ``ack`` with the ``(worker, seq)``
    correlation id the coordinator used on its ``dispatch``.
    """
    codec = system.codec() if packed else None
    decode = codec.decode if codec else None
    encode = codec.encode if codec else None
    visited: set = set()
    answered = 0
    wtracer, wmem = _worker_obs(trace_dir, wid, clock_origin)
    # the spawn barrier: the coordinator times worker start-up
    # (stats.spawn_s) from process start to the last hello, and only
    # then starts the sweep clock — see bench_explore's spawn split
    outbox.put(("hello", wid))
    while True:
        msg = inbox.get()
        if (
            fault is not None
            and fault.kill_after is not None
            and answered >= fault.kill_after
        ):
            crash_process(outbox)
        if msg is None:
            if wtracer is not None:
                wmem.close()
                wtracer.close()
            outbox.put(("bye", wid, len(visited)))
            return
        _tag, seq, depth, batch = msg
        if fault is not None and fault.delay:
            time.sleep(fault.delay)
        succ = None
        if fault is not None and fault.raise_at == answered:
            succ = fault.raising_successors(wid)
        timer = [0.0] if instrument else None
        t_batch = time.perf_counter() if instrument else 0.0
        new_states, n_trans, n_dead, collected = _expand_batch(
            system, batch, visited, collect, decode, succ=succ, timer=timer
        )
        expand_s = time.perf_counter() - t_batch if instrument else 0.0
        buckets = _partition(new_states, n_workers, encode)
        if collect and encode is not None:
            collected = [(src, lab, encode(d)) for src, lab, d in collected]
        outbox.put(
            ("done", wid, seq, depth, buckets, n_trans, n_dead,
             len(visited), collected,
             timer[0] if timer else 0.0, expand_s)
        )
        if wtracer is not None:
            wtracer.emit(
                "ack", worker=wid, seq=seq, depth=depth,
                states=len(new_states), transitions=n_trans,
                visited=len(visited),
                succ_s=round(timer[0] if timer else 0.0, 6),
                expand_s=round(expand_s, 6),
            )
            wmem.note("visited", sys.getsizeof(visited))
            wmem.sample()
        answered += 1


def _inline_sweep(system, n_workers, collect, max_states, stats, packed,
                  obs=None):
    """The partitioned algorithm run sequentially (test backend).

    Bulk-synchronous by construction: each iteration of the outer loop
    is one BFS level, which keeps the backend deterministic and its
    ``levels`` statistic exact.
    """
    recording = obs is not None and obs.enabled
    codec = system.codec() if packed else None
    decode = codec.decode if codec else None
    encode = codec.encode if codec else None
    visited: list[set] = [set() for _ in range(n_workers)]
    init = system.initial_state()
    init_item = init if encode is None else encode(init)
    frontier = [init]
    transitions = []
    n_trans = 0
    n_dead = 0
    levels = 0
    while frontier:
        wave_t0 = time.perf_counter()
        timer = [0.0] if recording else None
        batches = _partition(frontier, n_workers, encode)
        frontier = []
        for w in range(n_workers):
            new_states, t, d, coll = _expand_batch(
                system, batches[w], visited[w], collect, decode, timer=timer
            )
            n_trans += t
            n_dead += d
            if collect and encode is not None:
                coll = [(src, lab, encode(dd)) for src, lab, dd in coll]
            transitions.extend(coll)
            frontier.extend(new_states)
        levels += 1
        total = sum(len(v) for v in visited)
        if recording:
            wave_s = time.perf_counter() - wave_t0
            succ_s = timer[0]
            obs.tracer.emit(
                "wave", depth=levels, states=total, frontier=len(frontier),
                wave_s=round(wave_s, 6), succ_s=round(succ_s, 6),
                dedup_s=round(max(wave_s - succ_s, 0.0), 6),
            )
            obs.progress.maybe(states=total, frontier=len(frontier),
                               depth=levels)
        if max_states is not None and total > max_states:
            # an aborted sweep still reports how far it got
            stats.states = total
            stats.transitions = n_trans
            stats.deadlocks = n_dead
            stats.per_worker_states = [len(v) for v in visited]
            stats.levels = levels
            raise ExplorationLimitError(
                f"state limit {max_states} exceeded", stats=stats
            )
    stats.states = sum(len(v) for v in visited)
    stats.transitions = n_trans
    stats.deadlocks = n_dead
    stats.per_worker_states = [len(v) for v in visited]
    stats.levels = levels
    return transitions, init_item


def _process_sweep(
    system, n_workers, collect, max_states, stats, packed,
    faults: FaultPlan | None = None,
    poll: float = _POLL,
    batch_size: int = _BATCH,
    fault_tolerant: bool = True,
    obs=None,
    trace_dir=None,
):
    """The pipelined partitioned sweep with real worker processes.

    The coordinator keeps per-owner pending queues and routes bounded
    batches to any worker with spare window capacity; it never waits
    for a level to finish. ``outstanding`` counts work batches on the
    wire (incremented per dispatch, decremented per completion);
    ``outstanding == 0`` with every pending queue empty is exact
    quiescence, because workers only create work as part of answering
    a batch the coordinator counted.

    Fault tolerance (see the module docstring for the recovery
    argument): the outbox wait polls with a timeout and re-checks
    worker exit codes, dispatched batches live in ``ledger`` until
    acknowledged, and a dead worker's lost batches are re-partitioned
    over the survivors with already-expanded keys filtered out through
    the acknowledged-key record (``acked``, a compact
    :class:`_AckLedger` per worker). ``fault_tolerant=False`` drops the
    record entirely — no per-state coordinator memory — at the price of
    turning any worker death into an immediate
    :class:`~repro.errors.WorkerFailureError` instead of a recovery.
    """
    recording = obs is not None and obs.enabled
    tracer = obs.tracer if recording else None
    clock_origin = obs.tracer.epoch if recording else 0.0
    if not recording:
        trace_dir = None
    ctx = (
        mp.get_context("fork")
        if "fork" in mp.get_all_start_methods()
        else mp.get_context()
    )
    inboxes = [ctx.SimpleQueue() for _ in range(n_workers)]
    # a real Queue (not SimpleQueue): the coordinator needs a timed get
    outbox = ctx.Queue()
    workers = [
        ctx.Process(
            target=_worker_main,
            args=(system, n_workers, w, inboxes[w], outbox, collect, packed,
                  faults.for_worker(w) if faults is not None else None,
                  recording, trace_dir, clock_origin),
            daemon=True,
        )
        for w in range(n_workers)
    ]
    t_spawn0 = time.perf_counter()
    for p in workers:
        p.start()

    codec = system.codec() if packed else None
    init = system.initial_state()
    init_item = init if codec is None else codec.encode(init)

    live = list(range(n_workers))
    dead: set[int] = set()
    #: keys expanded by workers that later died (never re-dispatch
    #: these); populated — and therefore O(states) — only after a crash
    dead_visited: set = set()
    #: per worker, the union of keys in batches it acknowledged — the
    #: coordinator-side reconstruction of each worker's visited set,
    #: kept compact (see :class:`_AckLedger`) or not at all
    acked: list[_AckLedger] | None = (
        [_AckLedger(width=codec.n_bytes if codec is not None else 1)
         for _ in range(n_workers)]
        if fault_tolerant else None
    )
    #: per worker, seq -> (depth, chunk) for every unacknowledged batch
    ledger: list[dict[int, tuple[int, list]]] = [{} for _ in range(n_workers)]
    pending: list[deque] = [deque() for _ in range(n_workers)]
    pending[_owner(init_item, n_workers)].append((0, [init_item]))
    inflight = [0] * n_workers
    outstanding = 0
    sizes = [0] * n_workers
    n_batches = [0] * n_workers
    transitions = []
    n_trans = 0
    n_dead = 0
    max_depth = 0
    total_batches = 0
    next_seq = 0
    limit_hit = False
    t_sweep0 = time.perf_counter()
    #: instrumented-only accumulators (see DistributedStats docstring)
    worker_succ_s = 0.0
    worker_expand_s = 0.0
    coord_put_s = 0.0
    coord_handle_s = 0.0
    coord_idle_s = 0.0

    def _push(w, depth, bucket):
        _coalesce(pending[w], depth, bucket, batch_size)

    def _route(orig_owner, depth, bucket):
        # final routing decision: workers partition over the original
        # worker count, so buckets aimed at a dead owner are
        # re-partitioned here over the live list — rendezvous hashing,
        # so the chosen survivor for a key does not change when the
        # membership shrinks again — dropping keys the dead owner had
        # already expanded (they were counted once)
        if orig_owner not in dead:
            _push(orig_owner, depth, bucket)
            return
        regrouped: dict[int, list] = {}
        for k in bucket:
            if k in dead_visited:
                continue
            regrouped.setdefault(live_owner(k, live), []).append(k)
        for w, items in regrouped.items():
            _push(w, depth, items)

    def _fill_stats():
        stats.states = sum(sizes)
        stats.transitions = n_trans
        stats.deadlocks = n_dead
        stats.per_worker_states = sizes
        stats.per_worker_batches = n_batches
        stats.levels = max_depth + 1
        stats.batches = total_batches
        stats.worker_succ_s = round(worker_succ_s, 6)
        stats.worker_expand_s = round(worker_expand_s, 6)
        stats.coord_put_s = round(coord_put_s, 6)
        stats.coord_handle_s = round(coord_handle_s, 6)
        stats.coord_idle_s = round(coord_idle_s, 6)

    def _reap(w):
        nonlocal outstanding
        live.remove(w)
        dead.add(w)
        stats.worker_deaths += 1
        if tracer is not None:
            tracer.emit(
                "worker_death", worker=w, inflight=len(ledger[w]),
                pending=len(pending[w]), alive=len(live),
                visited=sizes[w],
            )
        if acked is None:
            # no acknowledged-key record was kept, so a recovery could
            # not be exact; fail fast (still within the poll bound)
            _fill_stats()
            raise WorkerFailureError(
                f"worker {w} died and fault_tolerant=False disabled the "
                f"recovery ledger; partial results are on .stats",
                stats=stats,
            )
        # a worker adds every item of a batch to its visited set before
        # answering, so the acknowledged-key union *is* its visited set
        # (sizes[w] already holds its last reported count, which equals
        # that union's size — _check_liveness drained the outbox first)
        dead_visited.update(acked[w].to_set())
        acked[w].clear()
        lost = list(ledger[w].values())
        outstanding -= len(ledger[w])
        ledger[w].clear()
        inflight[w] = 0
        lost.extend(pending[w])
        pending[w] = deque()
        if not live:
            _fill_stats()
            raise WorkerFailureError(
                f"all {n_workers} workers died before the sweep finished",
                stats=stats,
            )
        stats.redispatched_batches += len(lost)
        if tracer is not None:
            tracer.emit("redispatch", worker=w, batches=len(lost))
        for depth, chunk in lost:
            _route(w, depth, chunk)

    def _handle(msg):
        nonlocal outstanding, n_trans, n_dead, max_depth, limit_hit
        nonlocal worker_succ_s, worker_expand_s, coord_handle_s
        if msg[0] != "done":
            return
        t_handle = time.perf_counter() if recording else 0.0
        _tag, wid, seq, depth, buckets, t, d, n_visited, coll, s_s, e_s = msg
        entry = ledger[wid].pop(seq, None)
        if entry is None:
            return  # late answer from a worker already reaped
        if acked is not None:
            acked[wid].add(entry[1])
        inflight[wid] -= 1
        outstanding -= 1
        n_batches[wid] += 1
        sizes[wid] = n_visited
        n_trans += t
        n_dead += d
        transitions.extend(coll)
        if depth > max_depth:
            max_depth = depth
        for w, bucket in enumerate(buckets):
            if bucket:
                _route(w, depth + 1, bucket)
        if max_states is not None and sum(sizes) > max_states:
            limit_hit = True
        if recording:
            worker_succ_s += s_s
            worker_expand_s += e_s
            tracer.emit(
                "ack", worker=wid, seq=seq, depth=depth, transitions=t,
                visited=n_visited, succ_s=round(s_s, 6),
                expand_s=round(e_s, 6),
            )
            coord_handle_s += time.perf_counter() - t_handle

    def _check_liveness():
        crashed = [w for w in live if workers[w].exitcode is not None]
        if not crashed:
            return
        # a worker's sends complete before it can show an exit code,
        # so drain the already-delivered answers first: they finish
        # the acknowledged-key record the re-dispatch relies on
        while True:
            try:
                _handle(outbox.get_nowait())
            except Empty:
                break
        for w in crashed:
            if w in live:
                _reap(w)

    def _sample():
        tracer.emit(
            "coord_sample", outstanding=outstanding,
            pending=[len(q) for q in pending], inflight=list(inflight),
            states=sum(sizes), alive=len(live),
        )
        if acked is not None:
            obs.memwatch.note(
                "ack_ledger", sum(a.nbytes for a in acked)
            )
        obs.memwatch.sample()
        elapsed = time.perf_counter() - t_sweep0
        total = sum(sizes)
        obs.progress.maybe(
            states=total,
            sps=total / elapsed if elapsed > 0 else 0.0,
            outstanding=outstanding,
            workers=f"{len(live)}/{n_workers}",
        )

    since_check = 0
    try:
        # spawn barrier: every worker says hello before any dispatch,
        # so ``stats.spawn_s`` isolates fork + interpreter warm-up from
        # the sweep proper (bench reports the two separately)
        awaiting_hello = set(live)
        hello_deadline = time.monotonic() + _SPAWN_DEADLINE
        while awaiting_hello:
            try:
                msg = outbox.get(timeout=poll)
            except Empty:
                for w in [w for w in live
                          if workers[w].exitcode is not None]:
                    awaiting_hello.discard(w)
                    _reap(w)
                if time.monotonic() > hello_deadline:  # pragma: no cover
                    _fill_stats()
                    raise WorkerFailureError(
                        f"workers {sorted(awaiting_hello)} never said "
                        f"hello within {_SPAWN_DEADLINE}s",
                        stats=stats,
                    )
                continue
            if msg[0] == "hello":
                awaiting_hello.discard(msg[1])
        stats.spawn_s = round(time.perf_counter() - t_spawn0, 6)
        while not limit_hit:
            for w in live:
                queue = pending[w]
                while queue and inflight[w] < _WINDOW:
                    depth, chunk = _take_chunk(queue, batch_size)
                    ledger[w][next_seq] = (depth, chunk)
                    if recording:
                        t_put = time.perf_counter()
                        inboxes[w].put(("work", next_seq, depth, chunk))
                        coord_put_s += time.perf_counter() - t_put
                        tracer.emit("dispatch", worker=w, seq=next_seq,
                                    depth=depth, n=len(chunk))
                        obs.metrics.counter(
                            "repro_dist_batches_total", worker=w
                        ).inc()
                    else:
                        inboxes[w].put(("work", next_seq, depth, chunk))
                    next_seq += 1
                    inflight[w] += 1
                    outstanding += 1
                    total_batches += 1
            if outstanding == 0:
                break  # nothing in flight, nothing pending: quiescent
            try:
                if recording:
                    t_get = time.perf_counter()
                    try:
                        msg = outbox.get(timeout=poll)
                    except Empty:
                        coord_idle_s += time.perf_counter() - t_get
                        raise
                else:
                    msg = outbox.get(timeout=poll)
            except Empty:
                if recording:
                    _sample()
                _check_liveness()
                continue
            _handle(msg)
            since_check += 1
            if since_check >= _CRASH_CHECK_EVERY:
                since_check = 0
                if recording:
                    _sample()
                _check_liveness()
    finally:
        for w in live:
            try:
                inboxes[w].put(None)
            except (OSError, ValueError):  # pragma: no cover
                pass
        awaiting = set(live)
        deadline = time.monotonic() + 10.0
        while awaiting and time.monotonic() < deadline:
            try:
                msg = outbox.get(timeout=0.25)
            except Empty:
                for w in list(awaiting):
                    if workers[w].exitcode is not None:
                        awaiting.discard(w)  # died during shutdown
                continue
            if msg[0] == "bye":
                sizes[msg[1]] = msg[2]
                awaiting.discard(msg[1])
            # residual "done" answers of an aborted sweep are dropped
        for p in workers:
            p.join(timeout=5)
            if p.is_alive():  # pragma: no cover
                p.terminate()
                p.join(timeout=5)
    _fill_stats()
    stats.recovered = stats.worker_deaths > 0
    if limit_hit or (max_states is not None and stats.states > max_states):
        raise ExplorationLimitError(
            f"state limit {max_states} exceeded", stats=stats
        )
    return transitions, init_item


def _shm_worker_main(
    system, n_workers, wid, ctrl_in, ctrl_out, rings_in, rings_out,
    collect, key_width, batch_size,
    fault: WorkerFault | None = None,
    instrument: bool = False,
    fault_tolerant: bool = True,
    trace_dir=None,
    clock_origin: float = 0.0,
):
    """Worker loop of the shared-memory transport.

    The data plane is the ring matrix: ``rings_in[p]`` carries packed
    keys from producer ``p`` to this worker, ``rings_out[q]`` from this
    worker to owner ``q`` (including the self-ring ``wid -> wid``, so
    *every* expansion input is recoverable from shared memory after a
    crash). The control plane is a queue pair with the coordinator:
    inbound ``("inject", seq, depth, payload)`` blocks (seeding, relays
    and crash re-dispatches), ``("dead", w)`` membership updates and
    ``None`` (stop); outbound ``("hello", wid)``, ``("relay", wid, dst,
    depth, payload)`` for blocks a ring would not take, ``("dead_ack",
    wid, w)``, one ``("ack", ...)`` per expansion quantum and a final
    ``("bye", wid, n_visited)``.

    Exactness contract (mirrors the queue transport's
    batch-acknowledgement invariant): a quantum's states and
    transitions are counted *iff* its ack reaches the coordinator, and
    the ring read counters advance only *after* the ack has been handed
    to the control queue — so everything an unacked quantum consumed is
    still physically in this worker's inbound rings (or in the
    coordinator's inject ledger) when the worker dies, and
    already-acked keys travel on the ack itself into the coordinator's
    :class:`_AckLedger` for duplicate suppression.

    Quantum sizing is adaptive (:class:`~repro.lts.shmring.AdaptiveBatch`):
    each quantum's measured expansion rate retargets the next gather to
    ``_QUANTUM_TARGET_S`` of work, replacing the queue transport's
    fixed batch size that forced thousands of tiny round trips on fast
    models.
    """
    gc.disable()  # allocation-heavy sweep loop; the process is short-lived
    codec = system.codec()
    decode = codec.decode
    encode = codec.encode
    succ_fn = getattr(system, "successors_fast", None) or system.successors
    visited: set = set()
    # -- worker-local shipping caches (speed only, never correctness) --
    # ship_memo: successor state -> (owner, key). Successor events
    # repeat heavily (the same state is generated along many
    # transitions), and one flat dict hit replaces the codec walk and
    # the owner mix on every repeat; byte packing happens at ship time
    # only, so chased keys never pay it.
    ship_memo: dict = {}
    # a lone worker owns every key: skip the owner mix per successor
    single = n_workers == 1
    # shipped: keys this worker already forwarded. A key's owner is a
    # pure function of the key, so a second ship of the same key is a
    # guaranteed duplicate at the same consumer — skip the transport
    # entirely. Safe under crashes: recovery only ever relies on the
    # first copy (ring drain + acked-key filtering), never on repeats.
    shipped: set[int] = set()
    # stash: self-owned key -> already-decoded state, filled at ship
    # time and popped at consume time, skipping the decode for every
    # state this worker both generated and owns.
    stash: dict = {}
    stash_pop = stash.pop
    adapt = AdaptiveBatch(
        initial=batch_size, lo=_QUANTUM_LO, hi=_QUANTUM_HI,
        target_s=_QUANTUM_TARGET_S,
    )
    cursors = [r.rd_bytes for r in rings_in]
    injects: deque = deque()
    dead: set[int] = set()
    stop = False
    answered = 0
    clock = time.perf_counter
    wtracer, wmem = _worker_obs(trace_dir, wid, clock_origin)

    def _ctrl(msg):
        nonlocal stop
        if msg is None:
            stop = True
        elif msg[0] == "inject":
            injects.append((msg[1], msg[2], msg[3]))
        elif msg[0] == "dead":
            # after this answer the coordinator may drain msg[1]'s
            # inbound rings, so never write to them again
            dead.add(msg[1])
            ctrl_out.put(("dead_ack", wid, msg[1]))

    ctrl_out.put(("hello", wid))
    backoff = 0.0005
    while True:
        while True:
            try:
                _ctrl(ctrl_in.get_nowait())
            except Empty:
                break
        if stop:
            if wtracer is not None:
                wmem.close()
                wtracer.close()
            ctrl_out.put(("bye", wid, len(visited)))
            return

        # -- gather one quantum (rings round-robin, then injects) ----
        t_get = clock() if instrument else 0.0
        target = adapt.size
        quantum = []  # (depth, keys) per transport record
        consumed = [0] * n_workers    # ring records taken, per producer
        consumed_b = [0] * n_workers  # ring bytes taken (pads included)
        inject_seqs = []
        n_keys = 0
        progressed = True
        while n_keys < target and progressed:
            progressed = False
            for p in range(n_workers):
                rec = rings_in[p].peek(cursors[p])
                if rec is None:
                    continue
                depth, payload, nxt = rec
                quantum.append((depth, unpack_keys(payload, key_width)))
                consumed[p] += 1
                consumed_b[p] += nxt - cursors[p]
                cursors[p] = nxt
                n_keys += len(payload) // key_width
                progressed = True
                if n_keys >= target:
                    break
        while injects and n_keys < target:
            seq, depth, payload = injects.popleft()
            quantum.append((depth, unpack_keys(payload, key_width)))
            inject_seqs.append(seq)
            n_keys += len(payload) // key_width
        get_s = clock() - t_get if instrument else 0.0

        if not quantum:
            # starved: sleep on the control inbox (which is also where
            # membership changes and stop arrive) with growing backoff
            try:
                _ctrl(ctrl_in.get(timeout=backoff))
            except Empty:
                backoff = min(backoff * 2.0, _IDLE_BACKOFF_MAX)
            continue
        backoff = 0.0005
        if wtracer is not None:
            # quantum pickup: opens the (worker, seq) latency window the
            # coordinator-side ack for the same seq will close
            wtracer.emit(
                "ring_get", worker=wid, seq=answered,
                records=len(quantum), keys=n_keys,
                seconds=round(get_s, 6),
            )

        # -- fault injection (mirrors the queue worker's semantics) --
        if fault is not None:
            if (
                fault.kill_after is not None
                and answered >= fault.kill_after
            ):
                crash_process(ctrl_out)
            if fault.delay:
                time.sleep(fault.delay)
        succ = succ_fn
        if fault is not None and fault.raise_at == answered:
            succ = fault.raising_successors(wid)

        # -- expand --------------------------------------------------
        # Two passes: first every ring/inject key taken above
        # (mandatory — their records are acked as consumed), then
        # *chased* self-owned successors. Chasing is the transport's
        # biggest saving: a successor this worker owns is expanded in
        # the same quantum with its already-built state tuple in hand
        # — no byte packing, no self-ring round trip, no decode — and
        # still rides the quantum's ack (counted iff acked; its
        # successors are flushed before the ack like any other).
        # Chasing stops at twice the quantum target so flushes keep
        # flowing to the other owners; leftovers spill to the
        # self-ring exactly as before (with their decoded states
        # stashed, so the spill costs no decode either). The expansion
        # body is spelled out twice on purpose — an extra function
        # call or per-key tuple here is a measurable slice of the
        # per-state budget.
        t0 = clock()
        succ_s = 0.0
        new_keys: list[int] = []
        new_keys_append = new_keys.append
        collected = []
        n_trans = 0
        n_dead = 0
        max_d = 0
        # per destination, per successor depth, a flat key block
        out: list[dict[int, bytearray]] = [{} for _ in range(n_workers)]
        memo_get = ship_memo.get
        chase: deque = deque()
        chase_append = chase.append
        chase_pop = chase.popleft
        chase_cap = 2 * target
        visited_add = visited.add
        shipped_add = shipped.add
        for depth, keys in quantum:
            if depth > max_d:
                max_d = depth
            d1 = depth + 1
            for k in keys:
                if k in visited:
                    stash_pop(k, None)  # release a stale stash entry
                    continue
                visited_add(k)
                new_keys_append(k)
                state = stash_pop(k, None)
                if state is None:
                    state = decode(k)
                if instrument:
                    ts = clock()
                    succs = list(succ(state))
                    succ_s += clock() - ts
                else:
                    succs = succ(state)
                    if type(succs) is not list:
                        succs = list(succs)
                n_trans += len(succs)
                if not succs:
                    n_dead += 1
                for label, nxt in succs:
                    rec = memo_get(nxt)
                    if rec is None:
                        nk = encode(nxt)
                        if single:
                            q = wid
                        else:
                            # inlined key_owner(nk, n_workers) — the
                            # splitmix64 finaliser written out to skip
                            # a function call per first-seen successor;
                            # asserted equal in tests so routing stays
                            # transport- and path-independent
                            h = hash(nk) & _M64
                            h = ((h ^ (h >> 30))
                                 * 0xBF58476D1CE4E5B9) & _M64
                            h = ((h ^ (h >> 27))
                                 * 0x94D049BB133111EB) & _M64
                            q = (h ^ (h >> 31)) % n_workers
                        rec = ship_memo[nxt] = (q, nk)
                    else:
                        q, nk = rec
                    if collect:
                        collected.append((k, label, nk))
                    if nk in shipped or nk in visited:
                        continue  # provably a duplicate at the consumer
                    shipped_add(nk)
                    if q == wid:
                        chase_append((d1, nk, nxt))  # expand locally
                        continue
                    ob = out[q]
                    buf = ob.get(d1)
                    if buf is None:
                        buf = ob[d1] = bytearray()
                    buf += nk.to_bytes(key_width, "little")
        n_before_chase = len(new_keys)
        while chase and n_keys < chase_cap:
            depth, k, state = chase_pop()
            n_keys += 1
            if k in visited:
                continue  # shipped to us meanwhile, expanded above
            visited_add(k)
            new_keys_append(k)
            if depth > max_d:
                max_d = depth
            d1 = depth + 1
            if instrument:
                ts = clock()
                succs = list(succ(state))
                succ_s += clock() - ts
            else:
                succs = succ(state)
                if type(succs) is not list:
                    succs = list(succs)
            n_trans += len(succs)
            if not succs:
                n_dead += 1
            for label, nxt in succs:
                rec = memo_get(nxt)
                if rec is None:
                    nk = encode(nxt)
                    if single:
                        q = wid
                    else:
                        h = hash(nk) & _M64
                        h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _M64
                        h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _M64
                        q = (h ^ (h >> 31)) % n_workers
                    rec = ship_memo[nxt] = (q, nk)
                else:
                    q, nk = rec
                if collect:
                    collected.append((k, label, nk))
                if nk in shipped or nk in visited:
                    continue
                shipped_add(nk)
                if q == wid:
                    chase_append((d1, nk, nxt))
                    continue
                ob = out[q]
                buf = ob.get(d1)
                if buf is None:
                    buf = ob[d1] = bytearray()
                buf += nk.to_bytes(key_width, "little")
        # chase leftovers beyond the cap: spill to the self-ring
        ob = out[wid]
        for d1, nk, nxt in chase:
            if nk in visited:
                continue
            stash[nk] = nxt
            buf = ob.get(d1)
            if buf is None:
                buf = ob[d1] = bytearray()
            buf += nk.to_bytes(key_width, "little")
        expand_s = clock() - t0
        if len(ship_memo) > _SHIP_CACHE_MAX:
            ship_memo.clear()
        if len(shipped) > _SHIP_CACHE_MAX:
            shipped.clear()
        if wtracer is not None and len(new_keys) > n_before_chase:
            wtracer.emit(
                "local_chase", worker=wid, seq=answered,
                chased=len(new_keys) - n_before_chase,
            )

        # -- flush successor blocks straight to their owners ---------
        t1 = clock() if instrument else 0.0
        max_block = max(target, _QUANTUM_LO) * key_width
        n_blocks = 0
        n_bytes_out = 0
        for q in range(n_workers):
            per_depth = out[q]
            if not per_depth:
                continue
            ring = None if q in dead else rings_out[q]
            for d1, buf in per_depth.items():
                for i in range(0, len(buf), max_block):
                    block = bytes(buf[i: i + max_block])
                    n_blocks += 1
                    n_bytes_out += len(block)
                    if ring is None or not ring.try_write(d1, block):
                        # dead owner or full ring: control-plane detour
                        ctrl_out.put(("relay", wid, q, d1, block))
        put_s = clock() - t1 if instrument else 0.0
        if wtracer is not None and n_blocks:
            wtracer.emit(
                "ring_put", worker=wid, seq=answered, blocks=n_blocks,
                n_bytes=n_bytes_out, seconds=round(put_s, 6),
            )

        # -- acknowledge, then (and only then) release ring input ----
        consumed_list = [
            (p, consumed[p], consumed_b[p])
            for p in range(n_workers)
            if consumed[p]
        ]
        keys_blob = pack_keys(new_keys, key_width) if fault_tolerant else b""
        ctrl_out.put((
            "ack", wid, consumed_list, inject_seqs, keys_blob,
            n_trans, n_dead, len(visited), collected, max_d,
            round(succ_s, 6), round(expand_s, 6),
            round(put_s, 6), round(get_s, 6), answered,
        ))
        if wtracer is not None:
            wtracer.emit(
                "ack", worker=wid, seq=answered, depth=max_d,
                states=len(new_keys), transitions=n_trans,
                visited=len(visited),
                succ_s=round(succ_s, 6), expand_s=round(expand_s, 6),
                ring_put_s=round(put_s, 6), ring_get_s=round(get_s, 6),
            )
            wmem.note("visited", sys.getsizeof(visited))
            wmem.note("ship_memo", sys.getsizeof(ship_memo))
            wmem.sample()
        for p, recs, nbytes in consumed_list:
            rings_in[p].commit(nbytes, recs)
        answered += 1
        adapt.update(n_keys, expand_s)


def _shm_sweep(
    system, n_workers, collect, max_states, stats,
    faults: FaultPlan | None = None,
    poll: float = _POLL,
    batch_size: int = _BATCH,
    fault_tolerant: bool = True,
    ring_bytes: int = DEFAULT_RING_BYTES,
    obs=None,
    trace_dir=None,
):
    """The pipelined sweep over the shared-memory ring transport.

    Data flows owner-to-owner through the ``n_workers``-squared ring
    matrix (see :mod:`repro.lts.shmring`); the coordinator handles only
    control traffic — the per-quantum acks that carry the counts and
    the recovery ledger, relays for blocks a ring would not take,
    membership changes, and termination detection.

    Termination is a shared-memory balance check instead of the queue
    transport's outstanding-message count: the sweep is quiescent
    exactly when (a) no crash recovery is mid-flight, (b) every
    injected block has been acked, (c) every ring's write counters
    equal its read counters, (d) per live worker the records its rings
    say it consumed all appear in received acks, and (e) a second scan
    sees identical counters. Any in-progress quantum violates one of
    these: consumed-but-unacked records hold (d) (ring tails advance
    only after the ack is queued, and an ack, once received, implies
    the blocks it flushed were already in the rings — workers flush
    before acking), unconsumed blocks hold (c), and un-acked injects
    hold (b).

    Crash recovery reuses the queue transport's invariants (counted iff
    acked; rendezvous re-partitioning; the packed acked-key ledger) on
    ring state: a dead worker's unconsumed ring input is physically
    still there, so after a two-phase membership broadcast (every live
    peer must ack ``("dead", w)`` before the coordinator reads rings it
    might still be writing) the coordinator drains those rings, filters
    the dead worker's acked keys out, and re-injects the rest to the
    rendezvous survivors.
    """
    recording = obs is not None and obs.enabled
    tracer = obs.tracer if recording else None
    clock_origin = obs.tracer.epoch if recording else 0.0
    if not recording:
        trace_dir = None
    ctx = mp.get_context("fork")
    codec = system.codec()
    key_width = codec.n_bytes
    init_item = codec.encode(system.initial_state())

    #: rings[p][q] carries packed keys from producer p to consumer q
    rings = [
        [RingBuffer.create(ring_bytes) for _q in range(n_workers)]
        for _p in range(n_workers)
    ]
    if recording:
        # the ring matrix is the transport's fixed memory footprint
        obs.memwatch.note(
            "shm_rings", n_workers * n_workers * rings[0][0].capacity
        )
    # real Queues on both directions: workers need a timed control get
    # (idle backoff), the coordinator a timed outbox get (liveness)
    ctrl_ins = [ctx.Queue() for _ in range(n_workers)]
    ctrl_out = ctx.Queue()
    workers = [
        ctx.Process(
            target=_shm_worker_main,
            args=(system, n_workers, w, ctrl_ins[w], ctrl_out,
                  [rings[p][w] for p in range(n_workers)],
                  [rings[w][q] for q in range(n_workers)],
                  collect, key_width, batch_size,
                  faults.for_worker(w) if faults is not None else None,
                  recording, fault_tolerant, trace_dir, clock_origin),
            daemon=True,
        )
        for w in range(n_workers)
    ]
    t_spawn0 = time.perf_counter()
    for p in workers:
        p.start()

    live = list(range(n_workers))
    dead: set[int] = set()
    dead_visited: set = set()
    acked: list[_AckLedger] | None = (
        [_AckLedger(width=key_width) for _ in range(n_workers)]
        if fault_tolerant else None
    )
    #: per worker, seq -> (depth, payload) for every unacked inject
    inject_ledger: list[dict[int, tuple[int, bytes]]] = [
        {} for _ in range(n_workers)
    ]
    #: ring records covered by received acks, per consumer
    acked_recs = [0] * n_workers
    #: dead worker -> live peers whose dead_ack is still outstanding
    reaping: dict[int, set[int]] = {}
    sizes = [0] * n_workers
    n_batches = [0] * n_workers
    transitions = []
    n_trans = 0
    n_dead = 0
    max_depth = 0
    total_quanta = 0
    next_seq = 0
    limit_hit = False
    relayed = 0
    t_sweep0 = time.perf_counter()
    #: instrumented-only accumulators (see DistributedStats docstring)
    worker_succ_s = 0.0
    worker_expand_s = 0.0
    ring_put_s = 0.0
    ring_get_s = 0.0
    coord_handle_s = 0.0
    coord_idle_s = 0.0

    def _fill_stats():
        stats.states = sum(sizes)
        stats.transitions = n_trans
        stats.deadlocks = n_dead
        stats.per_worker_states = sizes
        stats.per_worker_batches = n_batches
        stats.levels = max_depth + 1
        stats.batches = total_quanta
        stats.relayed_batches = relayed
        stats.worker_succ_s = round(worker_succ_s, 6)
        stats.worker_expand_s = round(worker_expand_s, 6)
        stats.coord_handle_s = round(coord_handle_s, 6)
        stats.coord_idle_s = round(coord_idle_s, 6)
        stats.ring_put_s = round(ring_put_s, 6)
        stats.ring_get_s = round(ring_get_s, 6)

    def _inject(w, depth, payload):
        nonlocal next_seq
        inject_ledger[w][next_seq] = (depth, payload)
        ctrl_ins[w].put(("inject", next_seq, depth, payload))
        next_seq += 1

    def _route_block(dst, depth, payload):
        # control-plane routing (seeding, relays, recovery): blocks
        # aimed at a live owner are injected whole; a dead owner's keys
        # are filtered against its reconstructed visited set and
        # re-partitioned over the survivors — rendezvous hashing, so
        # the chosen survivor never migrates under further crashes
        if dst not in dead:
            _inject(dst, depth, payload)
            return
        regrouped: dict[int, list[int]] = {}
        for k in unpack_keys(payload, key_width):
            if k in dead_visited:
                continue
            regrouped.setdefault(live_owner(k, live), []).append(k)
        for w, keys in regrouped.items():
            _inject(w, depth, pack_keys(keys, key_width))

    def _finalize_reap(w):
        # every live peer confirmed it will no longer write to w's
        # inbound rings, and dead producers stopped by definition, so
        # the drain below cannot race a writer
        del reaping[w]
        n_redis = 0
        for p in range(n_workers):
            for depth, payload in rings[p][w].drain_unconsumed():
                _route_block(w, depth, payload)
                n_redis += 1
        stats.redispatched_batches += n_redis
        if tracer is not None:
            tracer.emit("redispatch", worker=w, batches=n_redis)

    def _reap(w):
        live.remove(w)
        dead.add(w)
        stats.worker_deaths += 1
        if tracer is not None:
            tracer.emit(
                "worker_death", worker=w, inflight=len(inject_ledger[w]),
                pending=0, alive=len(live), visited=sizes[w],
            )
        if acked is None:
            _fill_stats()
            raise WorkerFailureError(
                f"worker {w} died and fault_tolerant=False disabled the "
                f"recovery ledger; partial results are on .stats",
                stats=stats,
            )
        dead_visited.update(acked[w].to_set())
        acked[w].clear()
        # w owes no dead_acks any more; finalize reaps it was blocking
        for peers in reaping.values():
            peers.discard(w)
        for dw in [dw for dw, peers in list(reaping.items()) if not peers]:
            _finalize_reap(dw)
        if not live:
            _fill_stats()
            raise WorkerFailureError(
                f"all {n_workers} workers died before the sweep finished",
                stats=stats,
            )
        # unacked injected blocks re-route immediately (coordinator
        # memory); unacked ring input needs the two-phase drain below
        lost = list(inject_ledger[w].values())
        inject_ledger[w] = {}
        stats.redispatched_batches += len(lost)
        for depth, payload in lost:
            _route_block(w, depth, payload)
        reaping[w] = set(live)
        for p in live:
            ctrl_ins[p].put(("dead", w))

    def _handle(msg):
        nonlocal n_trans, n_dead, max_depth, limit_hit, relayed
        nonlocal total_quanta, worker_succ_s, worker_expand_s
        nonlocal ring_put_s, ring_get_s, coord_handle_s
        kind = msg[0]
        if kind == "ack":
            t_handle = time.perf_counter() if recording else 0.0
            (_tag, wid, consumed, inject_seqs, keys_blob, t, d, n_visited,
             coll, max_d, succ_s, expand_s, put_s, get_s, seq) = msg
            if wid in dead:  # pragma: no cover - acks drain before reaps
                return
            for _p, recs, _nbytes in consumed:
                acked_recs[wid] += recs
            for seq in inject_seqs:
                inject_ledger[wid].pop(seq, None)
            if acked is not None and keys_blob:
                acked[wid].add_bytes(keys_blob, key_width)
            n_batches[wid] += 1
            total_quanta += 1
            sizes[wid] = n_visited
            n_trans += t
            n_dead += d
            transitions.extend(coll)
            if max_d > max_depth:
                max_depth = max_d
            if max_states is not None and sum(sizes) > max_states:
                limit_hit = True
            if recording:
                worker_succ_s += succ_s
                worker_expand_s += expand_s
                ring_put_s += put_s
                ring_get_s += get_s
                tracer.emit(
                    "ack", worker=wid, seq=seq, depth=max_d, transitions=t,
                    visited=n_visited, succ_s=succ_s, expand_s=expand_s,
                    ring_put_s=put_s, ring_get_s=get_s,
                )
                obs.metrics.counter(
                    "repro_dist_batches_total", worker=wid
                ).inc()
                coord_handle_s += time.perf_counter() - t_handle
        elif kind == "relay":
            _tag, _wid, dst, depth, payload = msg
            relayed += 1
            _route_block(dst, depth, payload)
        elif kind == "dead_ack":
            peers = reaping.get(msg[2])
            if peers is not None:
                peers.discard(msg[1])
                if not peers:
                    _finalize_reap(msg[2])
        # "hello" is consumed by the spawn barrier; late ones ignored

    def _check_liveness():
        crashed = [w for w in live if workers[w].exitcode is not None]
        if not crashed:
            return
        # a worker's sends complete before it can show an exit code:
        # drain the delivered acks first, they close the ledger the
        # recovery filter relies on
        while True:
            try:
                _handle(ctrl_out.get_nowait())
            except Empty:
                break
        for w in crashed:
            if w in live:
                _reap(w)

    def _scan():
        return [
            rings[p][q].counters()
            for q in live for p in range(n_workers)
        ]

    def _quiescent():
        if reaping:
            return False
        if any(inject_ledger[w] for w in live):
            return False
        snap = _scan()
        if any(c[0] != c[1] or c[2] != c[3] for c in snap):
            return False  # unconsumed (or torn mid-quantum) ring data
        idx = 0
        for q in live:
            rd_total = 0
            for _p in range(n_workers):
                rd_total += snap[idx][3]
                idx += 1
            if rd_total != acked_recs[q]:
                return False  # consumed records whose ack is in flight
        return _scan() == snap  # nothing moved while we looked

    def _sample():
        tracer.emit(
            "coord_sample", states=sum(sizes), alive=len(live),
            inject_pending=[len(led) for led in inject_ledger],
        )
        if acked is not None:
            obs.memwatch.note(
                "ack_ledger", sum(a.nbytes for a in acked)
            )
        obs.memwatch.sample()
        elapsed = time.perf_counter() - t_sweep0
        total = sum(sizes)
        obs.progress.maybe(
            states=total,
            sps=total / elapsed if elapsed > 0 else 0.0,
            workers=f"{len(live)}/{n_workers}",
        )

    since_check = 0
    try:
        # spawn barrier (see _process_sweep): isolates start-up cost
        awaiting_hello = set(live)
        hello_deadline = time.monotonic() + _SPAWN_DEADLINE
        while awaiting_hello:
            try:
                msg = ctrl_out.get(timeout=poll)
            except Empty:
                for w in [w for w in live
                          if workers[w].exitcode is not None]:
                    awaiting_hello.discard(w)
                    _reap(w)
                if time.monotonic() > hello_deadline:  # pragma: no cover
                    _fill_stats()
                    raise WorkerFailureError(
                        f"workers {sorted(awaiting_hello)} never said "
                        f"hello within {_SPAWN_DEADLINE}s",
                        stats=stats,
                    )
                continue
            if msg[0] == "hello":
                awaiting_hello.discard(msg[1])
            else:
                _handle(msg)
        stats.spawn_s = round(time.perf_counter() - t_spawn0, 6)
        # seed: the initial state is the one coordinator-routed data
        # block of a crash-free sweep
        _route_block(
            _owner(init_item, n_workers), 0,
            pack_keys([init_item], key_width),
        )
        while not limit_hit:
            if _quiescent():
                break
            try:
                if recording:
                    t_get = time.perf_counter()
                    try:
                        msg = ctrl_out.get(timeout=poll)
                    except Empty:
                        coord_idle_s += time.perf_counter() - t_get
                        raise
                else:
                    msg = ctrl_out.get(timeout=poll)
            except Empty:
                if recording:
                    _sample()
                _check_liveness()
                continue
            _handle(msg)
            since_check += 1
            if since_check >= _CRASH_CHECK_EVERY:
                since_check = 0
                if recording:
                    _sample()
                _check_liveness()
    finally:
        for w in live:
            try:
                ctrl_ins[w].put(None)
            except (OSError, ValueError):  # pragma: no cover
                pass
        awaiting = set(live)
        deadline = time.monotonic() + 10.0
        while awaiting and time.monotonic() < deadline:
            try:
                msg = ctrl_out.get(timeout=0.25)
            except Empty:
                for w in list(awaiting):
                    if workers[w].exitcode is not None:
                        awaiting.discard(w)  # died during shutdown
                continue
            if msg[0] == "bye":
                sizes[msg[1]] = msg[2]
                awaiting.discard(msg[1])
            # residual acks/relays of an aborted sweep are dropped
        for p in workers:
            p.join(timeout=5)
            if p.is_alive():  # pragma: no cover
                p.terminate()
                p.join(timeout=5)
        for row in rings:
            for ring in row:
                ring.close()
                ring.unlink()
    _fill_stats()
    stats.recovered = stats.worker_deaths > 0
    if limit_hit or (max_states is not None and stats.states > max_states):
        raise ExplorationLimitError(
            f"state limit {max_states} exceeded", stats=stats
        )
    return transitions, init_item


def distributed_explore(
    system: TransitionSystem,
    *,
    n_workers: int = 4,
    backend: str = "process",
    collect: bool = False,
    max_states: int | None = None,
    packed: bool | None = None,
    faults: FaultPlan | None = None,
    poll_interval: float = _POLL,
    batch_size: int | None = None,
    fault_tolerant: bool = True,
    transport: str | None = None,
    ring_bytes: int = DEFAULT_RING_BYTES,
    certificate=None,
    obs=None,
    trace_dir: str | None = None,
) -> tuple[LTS | None, DistributedStats]:
    """Partitioned sweep of ``system`` (pipelined when ``"process"``).

    Parameters
    ----------
    system:
        Must be picklable for the ``"process"`` backend (all models in
        this package are).
    n_workers:
        Number of partitions (cluster nodes in the paper's setting).
    backend:
        ``"process"`` for pipelined worker processes, ``"inline"`` for
        the deterministic bulk-synchronous in-process rendition.
    collect:
        When true, transitions are shipped back and an explicit
        :class:`LTS` is assembled (only sensible for small systems); the
        returned LTS is otherwise ``None``.
    max_states:
        Abort when the visited total exceeds this bound. The raised
        :class:`~repro.errors.ExplorationLimitError` carries the
        partially filled stats on its ``stats`` attribute.
    packed:
        Ship/store packed codec keys instead of state tuples. ``None``
        (default) auto-enables when the system provides a ``codec()``;
        ``True`` requires one; ``False`` forces tuple shipping.
    faults:
        Optional :class:`~repro.lts.faults.FaultPlan` injected into the
        workers (``"process"`` backend only) — the test harness for the
        crash-recovery path.
    poll_interval:
        Upper bound, in seconds, on how long the coordinator blocks
        before re-checking worker liveness (``"process"`` backend).
    batch_size:
        States per work batch (``"process"`` backend; default 256).
        Tests shrink it to force many batches on small systems.
    transport:
        ``"process"`` backend: how states travel between workers.
        ``"shm"`` is the shared-memory ring data plane — workers
        forward packed keys directly to their owners and the
        coordinator only carries control traffic — and needs a system
        with a ``codec()`` (packed keys) plus the ``fork`` start
        method. ``"queue"`` is the original coordinator-routed pickled
        transport. ``None``/``"auto"`` (default) picks ``"shm"``
        whenever its requirements hold, ``"queue"`` otherwise. Both
        transports share routing (:func:`~repro.lts.statehash.key_owner`),
        recovery semantics and the fault-injection harness.
    ring_bytes:
        Data capacity of each shm ring (one per ordered worker pair;
        default 1 MiB). Blocks that do not fit fall back to
        coordinator relays (``stats.relayed_batches``), so undersizing
        costs throughput, never correctness.
    fault_tolerant:
        ``"process"`` backend: keep the acknowledged-key ledger that
        makes crash recovery exact. The ledger is compact — roughly one
        packed-key width per state at the coordinator, not a duplicate
        of the workers' visited sets — but it is still per-state
        memory; pass ``False`` for sweeps so large that the coordinator
        must hold none, accepting that any worker death then raises
        :class:`~repro.errors.WorkerFailureError` (with partial stats
        attached) instead of recovering. Crash *detection* stays on
        either way: the coordinator never hangs on a dead worker.
    certificate:
        Optional :class:`~repro.staticcheck.certificates.ReductionCertificate`.
        When given, workers sweep a certificate-validated
        :class:`~repro.lts.certreduce.ReducedSystem` view (validated
        once at the coordinator; workers receive the wrapper
        pre-validated through pickling) and the sweep refuses with
        :class:`~repro.errors.ReproError` if the certificate does not
        validate for this system (JKL303–JKL305).
    obs:
        Optional :class:`~repro.obs.core.Instrumentation`; defaults to
        the ambient bundle. When enabled, the sweep emits lifecycle
        events (dispatch/ack, worker deaths, re-dispatches, coordinator
        samples), workers time their batches for the per-phase
        breakdown, and recovery counters land in the metrics registry.
    trace_dir:
        Directory for per-worker trace streams (``"process"`` backend,
        recording sweeps only; created if missing). Each worker writes
        its own ``trace.worker<N>.jsonl`` — quantum pickups, local
        chases, ring flushes and worker-side acks, all stamped with the
        ``(worker, seq)`` correlation id — opened with a clock
        handshake so :mod:`repro.obs.merge` can align the streams with
        the coordinator's. Defaults to ``obs.trace_dir`` (the CLI's
        ``--trace-dir`` flag, which also routes the coordinator's own
        stream into the same directory).

    Returns
    -------
    (lts, stats):
        ``lts`` is ``None`` unless ``collect`` was requested. When
        workers died mid-sweep, ``stats.recovered`` is true and the
        totals are nevertheless exact.

    Raises
    ------
    WorkerFailureError:
        All workers died — or any worker died while
        ``fault_tolerant=False``; detection (and therefore the raise)
        happens within ``poll_interval`` of the death, never a hang.
    """
    if certificate is not None:
        from repro.lts.certreduce import ReducedSystem

        system = ReducedSystem(system, certificate)
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if backend not in ("process", "inline"):
        raise ValueError(f"unknown backend {backend!r}")
    if faults is not None and backend != "process":
        raise ValueError("fault injection requires the 'process' backend")
    if poll_interval <= 0:
        raise ValueError("poll_interval must be positive")
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if packed is None:
        packed = getattr(system, "codec", None) is not None
    elif packed and getattr(system, "codec", None) is None:
        raise ValueError("packed=True needs a system with a codec()")
    fork_ok = "fork" in mp.get_all_start_methods()
    if transport in (None, "auto"):
        transport = "shm" if (packed and fork_ok) else "queue"
    elif transport == "shm":
        if not packed:
            raise ValueError(
                "transport='shm' ships packed codec keys and needs a "
                "system with a codec() (and packed not disabled)"
            )
        if not fork_ok:  # pragma: no cover - all POSIX dev targets fork
            raise ValueError(
                "transport='shm' needs the 'fork' start method (workers "
                "inherit the shared-memory rings)"
            )
    elif transport != "queue":
        raise ValueError(f"unknown transport {transport!r}")
    if obs is None:
        obs = _current_obs()
    recording = obs.enabled
    if trace_dir is None:
        trace_dir = getattr(obs, "trace_dir", None)
    if trace_dir is not None and recording and backend == "process":
        os.makedirs(trace_dir, exist_ok=True)
    if recording:
        obs.tracer.emit(
            "sweep_start", backend=f"distributed-{backend}",
            n_workers=n_workers, packed=packed,
            transport=transport if backend == "process" else "local",
            batch_size=batch_size or _BATCH,
            fault_tolerant=fault_tolerant, max_states=max_states,
        )
        if faults is not None:
            for wid, n in sorted(faults.kill.items()):
                obs.tracer.emit("fault_plan", worker=wid, kind="kill", arg=n)
            for wid, n in sorted(faults.raise_in.items()):
                obs.tracer.emit("fault_plan", worker=wid, kind="raise", arg=n)
            for wid, d in sorted(faults.delay.items()):
                obs.tracer.emit("fault_plan", worker=wid, kind="delay", arg=d)

    def _emit_end(outcome: str) -> None:
        obs.memwatch.sample(force=True)
        obs.tracer.emit(
            "sweep_end", backend=f"distributed-{backend}", outcome=outcome,
            states=stats.states, transitions=stats.transitions,
            seconds=round(stats.seconds, 6),
            states_per_second=round(
                stats.states / stats.seconds if stats.seconds > 0 else 0.0, 1
            ),
            transport=stats.transport,
            spawn_s=stats.spawn_s,
            relayed_batches=stats.relayed_batches,
            worker_deaths=stats.worker_deaths,
            redispatched_batches=stats.redispatched_batches,
            recovered=stats.recovered,
            worker_succ_s=stats.worker_succ_s,
            worker_expand_s=stats.worker_expand_s,
            coord_put_s=stats.coord_put_s,
            coord_handle_s=stats.coord_handle_s,
            coord_idle_s=stats.coord_idle_s,
            ring_put_s=stats.ring_put_s,
            ring_get_s=stats.ring_get_s,
            max_rss_bytes=obs.memwatch.max_rss_bytes,
            mem_pressure_events=obs.memwatch.pressure_events,
        )
        m = obs.metrics
        m.counter("repro_sweeps_total", backend=f"distributed-{backend}",
                  outcome=outcome).inc()
        m.counter("repro_sweep_states_total").inc(stats.states)
        m.counter("repro_sweep_transitions_total").inc(stats.transitions)
        m.counter("repro_dist_worker_deaths_total").inc(stats.worker_deaths)
        m.counter("repro_dist_redispatched_batches_total").inc(
            stats.redispatched_batches
        )
        m.gauge("repro_dist_recovered").set(int(stats.recovered))
        m.gauge("repro_dist_workers").set(n_workers)
        m.gauge("repro_sweep_seconds", backend=f"distributed-{backend}").set(
            round(stats.seconds, 6)
        )
        for w, batches in enumerate(stats.per_worker_batches):
            m.counter("repro_dist_worker_batches_total", worker=w).inc(batches)
        for w, n_states in enumerate(stats.per_worker_states):
            m.gauge("repro_dist_worker_states", worker=w).set(n_states)

    stats = DistributedStats()
    if backend == "process":
        stats.transport = transport
    t0 = time.perf_counter()
    try:
        if backend == "inline":
            transitions, init_item = _inline_sweep(
                system, n_workers, collect, max_states, stats, packed,
                obs=obs,
            )
        elif transport == "shm":
            transitions, init_item = _shm_sweep(
                system, n_workers, collect, max_states, stats,
                faults=faults, poll=poll_interval,
                batch_size=batch_size or _BATCH,
                fault_tolerant=fault_tolerant,
                ring_bytes=ring_bytes,
                obs=obs, trace_dir=trace_dir,
            )
        else:
            transitions, init_item = _process_sweep(
                system, n_workers, collect, max_states, stats, packed,
                faults=faults, poll=poll_interval,
                batch_size=batch_size or _BATCH,
                fault_tolerant=fault_tolerant,
                obs=obs, trace_dir=trace_dir,
            )
    except (ExplorationLimitError, WorkerFailureError) as exc:
        # an aborted sweep still reports how far it got and how long it ran
        stats.seconds = time.perf_counter() - t0
        if exc.stats is None:
            exc.stats = stats
        if recording:
            _emit_end(
                "limit" if isinstance(exc, ExplorationLimitError)
                else "worker_failure"
            )
        raise
    stats.seconds = time.perf_counter() - t0
    if recording:
        _emit_end("ok")

    if not collect:
        return None, stats
    # assemble an explicit LTS; BFS renumbering for a canonical result
    index: dict[Hashable, int] = {init_item: 0}
    adj: dict[Hashable, list[tuple[str, Hashable]]] = {}
    for s, label, d in transitions:
        adj.setdefault(s, []).append((label, d))
    lts = LTS(initial=0)
    lts.ensure_states(1)
    frontier = [init_item]
    while frontier:
        nxt = []
        for s in frontier:
            for label, d in adj.get(s, []):
                di = index.get(d)
                if di is None:
                    di = len(index)
                    index[d] = di
                    lts.ensure_states(di + 1)
                    nxt.append(d)
                lts.add_transition(index[s], label, di)
        frontier = nxt
    return lts, stats
