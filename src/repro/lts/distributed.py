"""Distributed (partitioned) state-space generation.

The paper generated its larger LTSs with the muCRL *distributed* LTS
generation tool on an eight-node cluster at CWI; the technique is
hash-based state ownership: every node owns the states that hash into
its partition, keeps a local visited set for them, and forwards newly
discovered states to their owners.

This module reproduces that architecture at laptop scale with
``multiprocessing`` workers (one OS process per cluster node) in a
bulk-synchronous level-by-level schedule:

1. the coordinator routes the current frontier to state owners;
2. each owner deduplicates against its local visited set and expands the
   genuinely new states;
3. successor states flow back and become the next frontier.

Two backends are provided: ``"process"`` (real worker processes — the
cluster stand-in) and ``"inline"`` (the same partitioned algorithm run
sequentially in-process; deterministic, used for testing the routing
logic and on platforms where spawning is expensive).

For exact LTS construction the transitions can be collected
(``collect=True``); for large sweeps the default is a count-only run,
which is what the paper's Table 8 numbers require.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Hashable

from repro.errors import ExplorationLimitError
from repro.lts.explore import TransitionSystem
from repro.lts.lts import LTS


@dataclass
class DistributedStats:
    """Result of a partitioned sweep.

    Attributes
    ----------
    states / transitions:
        Exact totals (hash partitioning does not lose states, unlike
        bitstate hashing — each owner keeps an exact visited set).
    deadlocks:
        Terminal states encountered.
    per_worker_states:
        Visited-set size per worker; the balance of this vector is the
        classical health metric of hash partitioning.
    levels:
        Number of BFS levels processed.
    seconds:
        Wall-clock duration.
    """

    states: int = 0
    transitions: int = 0
    deadlocks: int = 0
    per_worker_states: list[int] = field(default_factory=list)
    levels: int = 0
    seconds: float = 0.0

    def imbalance(self) -> float:
        """max/mean ratio of the partition sizes (1.0 = perfectly even)."""
        if not self.per_worker_states or self.states == 0:
            return 1.0
        mean = self.states / len(self.per_worker_states)
        return max(self.per_worker_states) / mean if mean else 1.0


def _owner(state: Hashable, n: int) -> int:
    """The worker owning ``state`` (stable within one run)."""
    return hash(state) % n


def _expand_batch(system, batch, visited, collect):
    """Owner-side work: dedup ``batch``, expand new states.

    Returns (new_successor_states, n_transitions, n_deadlocks,
    collected_transitions).
    """
    out_states = []
    n_trans = 0
    n_dead = 0
    collected = []
    for state in batch:
        if state in visited:
            continue
        visited.add(state)
        succs = list(system.successors(state))
        n_trans += len(succs)
        if not succs:
            n_dead += 1
        for label, nxt in succs:
            out_states.append(nxt)
            if collect:
                collected.append((state, label, nxt))
    return out_states, n_trans, n_dead, collected


def _worker_main(system, n_workers, inbox, outbox, collect):
    """Worker process loop: expand batches until told to stop."""
    visited: set = set()
    while True:
        msg = inbox.get()
        if msg is None:
            outbox.put(("bye", len(visited)))
            return
        batch = msg
        new_states, n_trans, n_dead, collected = _expand_batch(
            system, batch, visited, collect
        )
        outbox.put(("level", new_states, n_trans, n_dead, collected))


def _inline_sweep(system, n_workers, collect, max_states, stats):
    """The partitioned algorithm run sequentially (test backend)."""
    visited: list[set] = [set() for _ in range(n_workers)]
    init = system.initial_state()
    frontier = [init]
    transitions = []
    n_trans = 0
    n_dead = 0
    levels = 0
    while frontier:
        batches: list[list] = [[] for _ in range(n_workers)]
        for s in frontier:
            batches[_owner(s, n_workers)].append(s)
        frontier = []
        for w in range(n_workers):
            new_states, t, d, coll = _expand_batch(
                system, batches[w], visited[w], collect
            )
            n_trans += t
            n_dead += d
            transitions.extend(coll)
            frontier.extend(new_states)
        levels += 1
        total = sum(len(v) for v in visited)
        if max_states is not None and total > max_states:
            raise ExplorationLimitError(f"state limit {max_states} exceeded")
    stats.states = sum(len(v) for v in visited)
    stats.transitions = n_trans
    stats.deadlocks = n_dead
    stats.per_worker_states = [len(v) for v in visited]
    stats.levels = levels
    return transitions, init


def _process_sweep(system, n_workers, collect, max_states, stats):
    """The partitioned algorithm with real worker processes."""
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    inboxes = [ctx.SimpleQueue() for _ in range(n_workers)]
    outbox = ctx.SimpleQueue()
    workers = [
        ctx.Process(
            target=_worker_main,
            args=(system, n_workers, inboxes[w], outbox, collect),
            daemon=True,
        )
        for w in range(n_workers)
    ]
    for p in workers:
        p.start()

    init = system.initial_state()
    frontier = [init]
    transitions = []
    n_trans = 0
    n_dead = 0
    levels = 0
    total_states_upper = 0
    try:
        while frontier:
            batches: list[list] = [[] for _ in range(n_workers)]
            for s in frontier:
                batches[_owner(s, n_workers)].append(s)
            for w in range(n_workers):
                inboxes[w].put(batches[w])
            frontier = []
            for _ in range(n_workers):
                msg = outbox.get()
                _tag, new_states, t, d, coll = msg
                n_trans += t
                n_dead += d
                transitions.extend(coll)
                frontier.extend(new_states)
            levels += 1
            total_states_upper += sum(len(b) for b in batches)
            if max_states is not None and total_states_upper > 4 * max_states:
                raise ExplorationLimitError(f"state limit {max_states} exceeded")
    finally:
        for w in range(n_workers):
            inboxes[w].put(None)
        sizes = [0] * n_workers
        got = 0
        for _ in range(n_workers):
            msg = outbox.get()
            if msg[0] == "bye":
                sizes[got] = msg[1]
                got += 1
        for p in workers:
            p.join(timeout=10)
    stats.states = sum(sizes)
    stats.transitions = n_trans
    stats.deadlocks = n_dead
    stats.per_worker_states = sizes
    stats.levels = levels
    if max_states is not None and stats.states > max_states:
        raise ExplorationLimitError(f"state limit {max_states} exceeded")
    return transitions, init


def distributed_explore(
    system: TransitionSystem,
    *,
    n_workers: int = 4,
    backend: str = "process",
    collect: bool = False,
    max_states: int | None = None,
) -> tuple[LTS | None, DistributedStats]:
    """Partitioned breadth-first sweep of ``system``.

    Parameters
    ----------
    system:
        Must be picklable for the ``"process"`` backend (all models in
        this package are).
    n_workers:
        Number of partitions (cluster nodes in the paper's setting).
    backend:
        ``"process"`` for real worker processes, ``"inline"`` for the
        deterministic sequential rendition of the same algorithm.
    collect:
        When true, transitions are shipped back and an explicit
        :class:`LTS` is assembled (only sensible for small systems); the
        returned LTS is otherwise ``None``.
    max_states:
        Abort when the visited total exceeds this bound.

    Returns
    -------
    (lts, stats):
        ``lts`` is ``None`` unless ``collect`` was requested.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if backend not in ("process", "inline"):
        raise ValueError(f"unknown backend {backend!r}")
    stats = DistributedStats()
    t0 = time.perf_counter()
    sweep = _inline_sweep if backend == "inline" else _process_sweep
    transitions, init = sweep(system, n_workers, collect, max_states, stats)
    stats.seconds = time.perf_counter() - t0

    if not collect:
        return None, stats
    # assemble an explicit LTS; BFS renumbering for a canonical result
    index: dict[Hashable, int] = {init: 0}
    adj: dict[Hashable, list[tuple[str, Hashable]]] = {}
    for s, label, d in transitions:
        adj.setdefault(s, []).append((label, d))
    lts = LTS(initial=0)
    lts.ensure_states(1)
    frontier = [init]
    while frontier:
        nxt = []
        for s in frontier:
            for label, d in adj.get(s, []):
                di = index.get(d)
                if di is None:
                    di = len(index)
                    index[d] = di
                    lts.ensure_states(di + 1)
                    nxt.append(d)
                lts.add_transition(index[s], label, di)
        frontier = nxt
    return lts, stats
