"""Distributed (partitioned) state-space generation.

The paper generated its larger LTSs with the muCRL *distributed* LTS
generation tool on an eight-node cluster at CWI; the technique is
hash-based state ownership: every node owns the states that hash into
its partition, keeps a local visited set for them, and forwards newly
discovered states to their owners.

This module reproduces that architecture at laptop scale with
``multiprocessing`` workers (one OS process per cluster node). Two
backends are provided:

``"process"``
    Real worker processes in a **pipelined** schedule: the coordinator
    routes work to state owners the moment it arrives, each owner
    deduplicates against its local visited set, expands, partitions the
    successors by owner *worker-side*, and sends them straight back for
    routing. There is no per-level barrier — a fast partition keeps
    expanding while a slow one catches up — and termination is detected
    by outstanding-message counting: every work batch put on the wire
    increments a counter, every completion message decrements it, and
    the sweep is finished exactly when the counter is zero and no
    routed states are pending. (With all traffic flowing through the
    coordinator, the counter is a degenerate—and exact—form of
    Mattern's credit scheme; no idle-token round is needed.)

``"inline"``
    The same partitioned algorithm run sequentially in-process in the
    classical bulk-synchronous level order (deterministic; used for
    testing the routing logic and on platforms where spawning is
    expensive).

The ``"process"`` coordinator is **fault tolerant**: eight-node-cluster
sweeps die with their weakest node, so worker loss is treated as an
expected event, not a hang. The outbox wait is a timed poll backed by
worker ``exitcode`` checks (a dead worker is detected within the poll
interval), every dispatched batch is held in a per-worker in-flight
ledger until its completion message arrives, and on a crash the dead
worker's lost batches — in flight and pending — are re-partitioned
over the surviving workers (:func:`repro.lts.statehash.live_owner`,
rendezvous hashing: the assignment is stable under *further* crashes,
so a key re-routed to one survivor never silently migrates to — and
gets re-counted by — another when a second worker dies later).
The crashed worker's visited set dies with it, but the coordinator
reconstructs it exactly from the ledger of batches the worker
*acknowledged* (a worker adds every item of a batch to its visited set
before answering), so re-routed states that were already expanded are
dropped instead of expanded twice: a sweep that loses workers still
reports exact state/transition totals. The acknowledged-key ledger is
kept in compact packed form (a fixed-width byte buffer per worker —
roughly the codec key width per state rather than a duplicate Python
set) and can be switched off entirely with ``fault_tolerant=False``
for sweeps so large that the coordinator must not hold any per-state
record; crashes then still fail fast instead of hanging, they just
cannot be recovered from. Recovery is observable through
:class:`DistributedStats` (``worker_deaths``, ``redispatched_batches``,
``recovered``) and reproducible on demand through the fault-injection
harness in :mod:`repro.lts.faults`. Only when *every* worker dies does
the sweep give up, raising :class:`~repro.errors.WorkerFailureError`
within one poll interval.

States travel between processes as packed codec keys when the system
provides a :meth:`codec` (as :class:`~repro.jackal.model.JackalModel`
does): a ~20-byte integer per state instead of a pickled tuple tree,
with the encode/decode cost carried by the workers, in parallel.

Ownership hashes are routed through the splitmix64 finaliser
(:func:`repro.lts.statehash.mix64`): protocol states are nested tuples
of small ints whose raw ``hash()`` clusters badly modulo a small worker
count, and a skewed partition turns one worker into the whole sweep's
critical path (see ``DistributedStats.imbalance``).

For exact LTS construction the transitions can be collected
(``collect=True``); for large sweeps the default is a count-only run,
which is what the paper's Table 8 numbers require.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from queue import Empty
from typing import Hashable

from repro.errors import ExplorationLimitError, WorkerFailureError
from repro.lts.explore import TransitionSystem
from repro.lts.faults import FaultPlan, WorkerFault, crash_process
from repro.lts.lts import LTS
from repro.lts.statehash import live_owner, mix64
from repro.obs.core import current as _current_obs

#: states per work batch (packed keys are ~20 bytes, so a batch fits
#: comfortably in an OS pipe buffer and never blocks the coordinator)
_BATCH = 256
#: work batches a worker may have in flight; >1 keeps its inbox warm
#: while a completion message is in transit (the pipelining window)
_WINDOW = 4
#: default coordinator poll interval: an outbox wait never blocks
#: longer than this before worker liveness is re-checked
_POLL = 0.25
#: completion messages handled between opportunistic liveness checks,
#: bounding crash detection latency while the outbox stays busy
_CRASH_CHECK_EVERY = 64


@dataclass
class DistributedStats:
    """Result of a partitioned sweep.

    Attributes
    ----------
    states / transitions:
        Exact totals (hash partitioning does not lose states, unlike
        bitstate hashing — each owner keeps an exact visited set).
        Exactness survives worker crashes: lost batches are re-expanded
        and re-reported work is deduplicated at the coordinator.
    deadlocks:
        Terminal states encountered.
    per_worker_states:
        Visited-set size per worker; the balance of this vector is the
        classical health metric of hash partitioning. For a crashed
        worker this is the size its visited set had reached when it
        died (the count carried by its last acknowledged batch).
    per_worker_batches:
        Work batches each worker expanded (pipelined backend only);
        measures scheduling balance as opposed to storage balance.
    levels:
        Bulk-synchronous backends: BFS levels processed. Pipelined
        backend: the maximum routing depth, an upper bound on the BFS
        depth.
    batches:
        Total work batches routed (pipelined backend only).
    worker_deaths:
        Worker processes that died mid-sweep (pipelined backend only).
    redispatched_batches:
        Work batches whose assignment was lost to a crash — in flight
        at, or still pending for, a dead worker — and were
        re-partitioned over the survivors.
    recovered:
        True when at least one worker died and the sweep nevertheless
        ran to its normal end on the survivors.
    seconds:
        Wall-clock duration.
    worker_succ_s / worker_expand_s:
        Summed worker-side seconds spent generating successors /
        expanding whole batches (dedup + successor generation). Filled
        only on instrumented sweeps (the flight recorder active);
        0.0 otherwise — worker-side timing is off the hot path by
        default.
    coord_put_s / coord_handle_s / coord_idle_s:
        Coordinator-side seconds spent serialising batches onto worker
        inboxes / handling completion messages / blocked in timed
        outbox waits that expired. Instrumented sweeps only.
    """

    states: int = 0
    transitions: int = 0
    deadlocks: int = 0
    per_worker_states: list[int] = field(default_factory=list)
    per_worker_batches: list[int] = field(default_factory=list)
    levels: int = 0
    batches: int = 0
    worker_deaths: int = 0
    redispatched_batches: int = 0
    recovered: bool = False
    seconds: float = 0.0
    worker_succ_s: float = 0.0
    worker_expand_s: float = 0.0
    coord_put_s: float = 0.0
    coord_handle_s: float = 0.0
    coord_idle_s: float = 0.0

    def imbalance(self) -> float:
        """max/mean ratio of the partition sizes (1.0 = perfectly even)."""
        if not self.per_worker_states or self.states == 0:
            return 1.0
        mean = self.states / len(self.per_worker_states)
        return max(self.per_worker_states) / mean if mean else 1.0


def _owner(state: Hashable, n: int) -> int:
    """The worker owning ``state`` (stable within one run).

    ``state`` may equally be a packed codec key. The built-in hash is
    routed through splitmix64 before the modulo: raw hashes of
    small-int tuples (and of packed keys, which are plain ints) carry
    strong low-bit structure that ``% n`` would fold into skewed
    partitions.
    """
    return mix64(hash(state)) % n


class _AckLedger:
    """Compact per-worker record of acknowledged batch keys.

    A worker adds every item of a batch to its visited set before
    answering, so the union of its acknowledged batches *is* its
    visited set — the record that lets the coordinator drop re-routed
    keys a dead worker had already expanded (and counted). Holding that
    union as a Python set would duplicate every worker's visited set at
    the coordinator and defeat the memory-scaling point of hash
    partitioning, so packed codec keys are instead appended to a
    fixed-width byte buffer — roughly the key width per state, widened
    in place the first time a larger key arrives — and only
    materialised into a set on the (rare) crash path. Non-integer
    states (tuple shipping) have no compact form and fall back to a
    set.
    """

    __slots__ = ("_width", "_buf", "_set")

    def __init__(self):
        self._width = 1
        self._buf = bytearray()
        self._set: set | None = None

    def _rewiden(self, width: int) -> None:
        old, buf = self._width, self._buf
        out = bytearray(len(buf) // old * width)
        for i in range(len(buf) // old):
            out[i * width: i * width + old] = buf[i * old: (i + 1) * old]
        self._width, self._buf = width, out

    def _add_packed(self, keys) -> None:
        width = self._width
        for k in keys:
            n = (k.bit_length() + 7) // 8 or 1
            if n > width:
                self._rewiden(n)
                width = n
            self._buf += k.to_bytes(width, "little")

    def add(self, keys) -> None:
        """Record the keys of one acknowledged batch."""
        if self._set is None:
            try:
                self._add_packed(keys)
                return
            except (AttributeError, OverflowError):
                # not non-negative ints: keep whatever packed cleanly
                # (to_set dedups the partially appended batch) and
                # continue in set mode
                self._set = self.to_set()
                self._buf = bytearray()
        self._set.update(keys)

    def to_set(self) -> set:
        """The acknowledged-key union as a set (the crash path)."""
        if self._set is not None:
            return set(self._set)
        w, buf = self._width, self._buf
        return {
            int.from_bytes(buf[i: i + w], "little")
            for i in range(0, len(buf), w)
        }

    def clear(self) -> None:
        self._buf = bytearray()
        self._set = None


def _expand_batch(system, batch, visited, collect, decode=None, succ=None,
                  timer=None):
    """Owner-side work: dedup ``batch``, expand new states.

    ``batch`` holds packed keys when ``decode`` is given, states
    otherwise. Returns ``(new_successor_states, n_transitions,
    n_deadlocks, collected_transitions)``; successors (and collected
    endpoints) are packed through ``encode`` by the caller's
    partitioning step, not here. When ``timer`` (a one-element list) is
    given, seconds spent generating successors accumulate into
    ``timer[0]`` — the instrumented path's succ-vs-dedup split.
    """
    out_states = []
    n_trans = 0
    n_dead = 0
    collected = []
    if succ is None:
        succ = getattr(system, "successors_fast", None) or system.successors
    if timer is not None:
        raw = succ
        clock = time.perf_counter

        def succ(state):  # noqa: F811 - timing wrapper
            t = clock()
            out = list(raw(state))
            timer[0] += clock() - t
            return out

    for item in batch:
        if item in visited:
            continue
        visited.add(item)
        state = item if decode is None else decode(item)
        # the TransitionSystem protocol only promises an Iterable, so
        # materialize before measuring (generator-based systems)
        succs = list(succ(state))
        n_trans += len(succs)
        if not succs:
            n_dead += 1
        for label, nxt in succs:
            out_states.append(nxt)
            if collect:
                collected.append((item, label, nxt))
    return out_states, n_trans, n_dead, collected


def _partition(states, n_workers, encode=None):
    """Bucket ``states`` by owner, packing through ``encode`` if given."""
    buckets: list[list] = [[] for _ in range(n_workers)]
    if encode is None:
        for s in states:
            buckets[_owner(s, n_workers)].append(s)
    else:
        for s in states:
            k = encode(s)
            buckets[_owner(k, n_workers)].append(k)
    return buckets


def _worker_main(
    system, n_workers, wid, inbox, outbox, collect, packed,
    fault: WorkerFault | None = None,
    instrument: bool = False,
):
    """Worker process loop: expand routed batches until told to stop.

    Each ``("work", seq, depth, batch)`` message is answered with
    exactly one ``("done", ..., seq, ...)`` message — the invariant
    both the coordinator's outstanding-message termination count and
    its in-flight ledger rest on. ``fault`` injects the misbehaviours
    of :mod:`repro.lts.faults` for recovery testing. ``instrument``
    additionally times each batch (total expansion and successor
    generation seconds travel on the ``done`` message) for the flight
    recorder's per-phase breakdown; off by default to keep the hot
    path clock-free.
    """
    codec = system.codec() if packed else None
    decode = codec.decode if codec else None
    encode = codec.encode if codec else None
    visited: set = set()
    answered = 0
    while True:
        msg = inbox.get()
        if (
            fault is not None
            and fault.kill_after is not None
            and answered >= fault.kill_after
        ):
            crash_process(outbox)
        if msg is None:
            outbox.put(("bye", wid, len(visited)))
            return
        _tag, seq, depth, batch = msg
        if fault is not None and fault.delay:
            time.sleep(fault.delay)
        succ = None
        if fault is not None and fault.raise_at == answered:
            succ = fault.raising_successors(wid)
        timer = [0.0] if instrument else None
        t_batch = time.perf_counter() if instrument else 0.0
        new_states, n_trans, n_dead, collected = _expand_batch(
            system, batch, visited, collect, decode, succ=succ, timer=timer
        )
        expand_s = time.perf_counter() - t_batch if instrument else 0.0
        buckets = _partition(new_states, n_workers, encode)
        if collect and encode is not None:
            collected = [(src, lab, encode(d)) for src, lab, d in collected]
        outbox.put(
            ("done", wid, seq, depth, buckets, n_trans, n_dead,
             len(visited), collected,
             timer[0] if timer else 0.0, expand_s)
        )
        answered += 1


def _inline_sweep(system, n_workers, collect, max_states, stats, packed,
                  obs=None):
    """The partitioned algorithm run sequentially (test backend).

    Bulk-synchronous by construction: each iteration of the outer loop
    is one BFS level, which keeps the backend deterministic and its
    ``levels`` statistic exact.
    """
    recording = obs is not None and obs.enabled
    codec = system.codec() if packed else None
    decode = codec.decode if codec else None
    encode = codec.encode if codec else None
    visited: list[set] = [set() for _ in range(n_workers)]
    init = system.initial_state()
    init_item = init if encode is None else encode(init)
    frontier = [init]
    transitions = []
    n_trans = 0
    n_dead = 0
    levels = 0
    while frontier:
        wave_t0 = time.perf_counter()
        timer = [0.0] if recording else None
        batches = _partition(frontier, n_workers, encode)
        frontier = []
        for w in range(n_workers):
            new_states, t, d, coll = _expand_batch(
                system, batches[w], visited[w], collect, decode, timer=timer
            )
            n_trans += t
            n_dead += d
            if collect and encode is not None:
                coll = [(src, lab, encode(dd)) for src, lab, dd in coll]
            transitions.extend(coll)
            frontier.extend(new_states)
        levels += 1
        total = sum(len(v) for v in visited)
        if recording:
            wave_s = time.perf_counter() - wave_t0
            succ_s = timer[0]
            obs.tracer.emit(
                "wave", depth=levels, states=total, frontier=len(frontier),
                wave_s=round(wave_s, 6), succ_s=round(succ_s, 6),
                dedup_s=round(max(wave_s - succ_s, 0.0), 6),
            )
            obs.progress.maybe(states=total, frontier=len(frontier),
                               depth=levels)
        if max_states is not None and total > max_states:
            # an aborted sweep still reports how far it got
            stats.states = total
            stats.transitions = n_trans
            stats.deadlocks = n_dead
            stats.per_worker_states = [len(v) for v in visited]
            stats.levels = levels
            raise ExplorationLimitError(
                f"state limit {max_states} exceeded", stats=stats
            )
    stats.states = sum(len(v) for v in visited)
    stats.transitions = n_trans
    stats.deadlocks = n_dead
    stats.per_worker_states = [len(v) for v in visited]
    stats.levels = levels
    return transitions, init_item


def _process_sweep(
    system, n_workers, collect, max_states, stats, packed,
    faults: FaultPlan | None = None,
    poll: float = _POLL,
    batch_size: int = _BATCH,
    fault_tolerant: bool = True,
    obs=None,
):
    """The pipelined partitioned sweep with real worker processes.

    The coordinator keeps per-owner pending queues and routes bounded
    batches to any worker with spare window capacity; it never waits
    for a level to finish. ``outstanding`` counts work batches on the
    wire (incremented per dispatch, decremented per completion);
    ``outstanding == 0`` with every pending queue empty is exact
    quiescence, because workers only create work as part of answering
    a batch the coordinator counted.

    Fault tolerance (see the module docstring for the recovery
    argument): the outbox wait polls with a timeout and re-checks
    worker exit codes, dispatched batches live in ``ledger`` until
    acknowledged, and a dead worker's lost batches are re-partitioned
    over the survivors with already-expanded keys filtered out through
    the acknowledged-key record (``acked``, a compact
    :class:`_AckLedger` per worker). ``fault_tolerant=False`` drops the
    record entirely — no per-state coordinator memory — at the price of
    turning any worker death into an immediate
    :class:`~repro.errors.WorkerFailureError` instead of a recovery.
    """
    recording = obs is not None and obs.enabled
    tracer = obs.tracer if recording else None
    ctx = (
        mp.get_context("fork")
        if "fork" in mp.get_all_start_methods()
        else mp.get_context()
    )
    inboxes = [ctx.SimpleQueue() for _ in range(n_workers)]
    # a real Queue (not SimpleQueue): the coordinator needs a timed get
    outbox = ctx.Queue()
    workers = [
        ctx.Process(
            target=_worker_main,
            args=(system, n_workers, w, inboxes[w], outbox, collect, packed,
                  faults.for_worker(w) if faults is not None else None,
                  recording),
            daemon=True,
        )
        for w in range(n_workers)
    ]
    for p in workers:
        p.start()

    codec = system.codec() if packed else None
    init = system.initial_state()
    init_item = init if codec is None else codec.encode(init)

    live = list(range(n_workers))
    dead: set[int] = set()
    #: keys expanded by workers that later died (never re-dispatch
    #: these); populated — and therefore O(states) — only after a crash
    dead_visited: set = set()
    #: per worker, the union of keys in batches it acknowledged — the
    #: coordinator-side reconstruction of each worker's visited set,
    #: kept compact (see :class:`_AckLedger`) or not at all
    acked: list[_AckLedger] | None = (
        [_AckLedger() for _ in range(n_workers)] if fault_tolerant else None
    )
    #: per worker, seq -> (depth, chunk) for every unacknowledged batch
    ledger: list[dict[int, tuple[int, list]]] = [{} for _ in range(n_workers)]
    pending: list[list] = [[] for _ in range(n_workers)]
    pending[_owner(init_item, n_workers)].append((0, [init_item]))
    inflight = [0] * n_workers
    outstanding = 0
    sizes = [0] * n_workers
    n_batches = [0] * n_workers
    transitions = []
    n_trans = 0
    n_dead = 0
    max_depth = 0
    total_batches = 0
    next_seq = 0
    limit_hit = False
    t_sweep0 = time.perf_counter()
    #: instrumented-only accumulators (see DistributedStats docstring)
    worker_succ_s = 0.0
    worker_expand_s = 0.0
    coord_put_s = 0.0
    coord_handle_s = 0.0
    coord_idle_s = 0.0

    def _push(w, depth, bucket):
        queue = pending[w]
        # coalesce with the tail entry of the same depth so trickling
        # successor buckets form full batches
        if queue and queue[-1][0] == depth and len(queue[-1][1]) < batch_size:
            queue[-1] = (depth, queue[-1][1] + bucket)
        else:
            queue.append((depth, bucket))

    def _route(orig_owner, depth, bucket):
        # final routing decision: workers partition over the original
        # worker count, so buckets aimed at a dead owner are
        # re-partitioned here over the live list — rendezvous hashing,
        # so the chosen survivor for a key does not change when the
        # membership shrinks again — dropping keys the dead owner had
        # already expanded (they were counted once)
        if orig_owner not in dead:
            _push(orig_owner, depth, bucket)
            return
        regrouped: dict[int, list] = {}
        for k in bucket:
            if k in dead_visited:
                continue
            regrouped.setdefault(live_owner(k, live), []).append(k)
        for w, items in regrouped.items():
            _push(w, depth, items)

    def _fill_stats():
        stats.states = sum(sizes)
        stats.transitions = n_trans
        stats.deadlocks = n_dead
        stats.per_worker_states = sizes
        stats.per_worker_batches = n_batches
        stats.levels = max_depth + 1
        stats.batches = total_batches
        stats.worker_succ_s = round(worker_succ_s, 6)
        stats.worker_expand_s = round(worker_expand_s, 6)
        stats.coord_put_s = round(coord_put_s, 6)
        stats.coord_handle_s = round(coord_handle_s, 6)
        stats.coord_idle_s = round(coord_idle_s, 6)

    def _reap(w):
        nonlocal outstanding
        live.remove(w)
        dead.add(w)
        stats.worker_deaths += 1
        if tracer is not None:
            tracer.emit(
                "worker_death", worker=w, inflight=len(ledger[w]),
                pending=len(pending[w]), alive=len(live),
                visited=sizes[w],
            )
        if acked is None:
            # no acknowledged-key record was kept, so a recovery could
            # not be exact; fail fast (still within the poll bound)
            _fill_stats()
            raise WorkerFailureError(
                f"worker {w} died and fault_tolerant=False disabled the "
                f"recovery ledger; partial results are on .stats",
                stats=stats,
            )
        # a worker adds every item of a batch to its visited set before
        # answering, so the acknowledged-key union *is* its visited set
        # (sizes[w] already holds its last reported count, which equals
        # that union's size — _check_liveness drained the outbox first)
        dead_visited.update(acked[w].to_set())
        acked[w].clear()
        lost = list(ledger[w].values())
        outstanding -= len(ledger[w])
        ledger[w].clear()
        inflight[w] = 0
        lost.extend(pending[w])
        pending[w] = []
        if not live:
            _fill_stats()
            raise WorkerFailureError(
                f"all {n_workers} workers died before the sweep finished",
                stats=stats,
            )
        stats.redispatched_batches += len(lost)
        if tracer is not None:
            tracer.emit("redispatch", worker=w, batches=len(lost))
        for depth, chunk in lost:
            _route(w, depth, chunk)

    def _handle(msg):
        nonlocal outstanding, n_trans, n_dead, max_depth, limit_hit
        nonlocal worker_succ_s, worker_expand_s, coord_handle_s
        if msg[0] != "done":
            return
        t_handle = time.perf_counter() if recording else 0.0
        _tag, wid, seq, depth, buckets, t, d, n_visited, coll, s_s, e_s = msg
        entry = ledger[wid].pop(seq, None)
        if entry is None:
            return  # late answer from a worker already reaped
        if acked is not None:
            acked[wid].add(entry[1])
        inflight[wid] -= 1
        outstanding -= 1
        n_batches[wid] += 1
        sizes[wid] = n_visited
        n_trans += t
        n_dead += d
        transitions.extend(coll)
        if depth > max_depth:
            max_depth = depth
        for w, bucket in enumerate(buckets):
            if bucket:
                _route(w, depth + 1, bucket)
        if max_states is not None and sum(sizes) > max_states:
            limit_hit = True
        if recording:
            worker_succ_s += s_s
            worker_expand_s += e_s
            tracer.emit(
                "ack", worker=wid, seq=seq, depth=depth, transitions=t,
                visited=n_visited, succ_s=round(s_s, 6),
                expand_s=round(e_s, 6),
            )
            coord_handle_s += time.perf_counter() - t_handle

    def _check_liveness():
        crashed = [w for w in live if workers[w].exitcode is not None]
        if not crashed:
            return
        # a worker's sends complete before it can show an exit code,
        # so drain the already-delivered answers first: they finish
        # the acknowledged-key record the re-dispatch relies on
        while True:
            try:
                _handle(outbox.get_nowait())
            except Empty:
                break
        for w in crashed:
            if w in live:
                _reap(w)

    def _sample():
        tracer.emit(
            "coord_sample", outstanding=outstanding,
            pending=[len(q) for q in pending], inflight=list(inflight),
            states=sum(sizes), alive=len(live),
        )
        elapsed = time.perf_counter() - t_sweep0
        total = sum(sizes)
        obs.progress.maybe(
            states=total,
            sps=total / elapsed if elapsed > 0 else 0.0,
            outstanding=outstanding,
            workers=f"{len(live)}/{n_workers}",
        )

    since_check = 0
    try:
        while not limit_hit:
            for w in live:
                queue = pending[w]
                while queue and inflight[w] < _WINDOW:
                    depth, batch = queue[0]
                    if len(batch) > batch_size:
                        chunk, rest = batch[:batch_size], batch[batch_size:]
                        queue[0] = (depth, rest)
                    else:
                        chunk = batch
                        queue.pop(0)
                    ledger[w][next_seq] = (depth, chunk)
                    if recording:
                        t_put = time.perf_counter()
                        inboxes[w].put(("work", next_seq, depth, chunk))
                        coord_put_s += time.perf_counter() - t_put
                        tracer.emit("dispatch", worker=w, seq=next_seq,
                                    depth=depth, n=len(chunk))
                        obs.metrics.counter(
                            "repro_dist_batches_total", worker=w
                        ).inc()
                    else:
                        inboxes[w].put(("work", next_seq, depth, chunk))
                    next_seq += 1
                    inflight[w] += 1
                    outstanding += 1
                    total_batches += 1
            if outstanding == 0:
                break  # nothing in flight, nothing pending: quiescent
            try:
                if recording:
                    t_get = time.perf_counter()
                    try:
                        msg = outbox.get(timeout=poll)
                    except Empty:
                        coord_idle_s += time.perf_counter() - t_get
                        raise
                else:
                    msg = outbox.get(timeout=poll)
            except Empty:
                if recording:
                    _sample()
                _check_liveness()
                continue
            _handle(msg)
            since_check += 1
            if since_check >= _CRASH_CHECK_EVERY:
                since_check = 0
                if recording:
                    _sample()
                _check_liveness()
    finally:
        for w in live:
            try:
                inboxes[w].put(None)
            except (OSError, ValueError):  # pragma: no cover
                pass
        awaiting = set(live)
        deadline = time.monotonic() + 10.0
        while awaiting and time.monotonic() < deadline:
            try:
                msg = outbox.get(timeout=0.25)
            except Empty:
                for w in list(awaiting):
                    if workers[w].exitcode is not None:
                        awaiting.discard(w)  # died during shutdown
                continue
            if msg[0] == "bye":
                sizes[msg[1]] = msg[2]
                awaiting.discard(msg[1])
            # residual "done" answers of an aborted sweep are dropped
        for p in workers:
            p.join(timeout=5)
            if p.is_alive():  # pragma: no cover
                p.terminate()
                p.join(timeout=5)
    _fill_stats()
    stats.recovered = stats.worker_deaths > 0
    if limit_hit or (max_states is not None and stats.states > max_states):
        raise ExplorationLimitError(
            f"state limit {max_states} exceeded", stats=stats
        )
    return transitions, init_item


def distributed_explore(
    system: TransitionSystem,
    *,
    n_workers: int = 4,
    backend: str = "process",
    collect: bool = False,
    max_states: int | None = None,
    packed: bool | None = None,
    faults: FaultPlan | None = None,
    poll_interval: float = _POLL,
    batch_size: int | None = None,
    fault_tolerant: bool = True,
    certificate=None,
    obs=None,
) -> tuple[LTS | None, DistributedStats]:
    """Partitioned sweep of ``system`` (pipelined when ``"process"``).

    Parameters
    ----------
    system:
        Must be picklable for the ``"process"`` backend (all models in
        this package are).
    n_workers:
        Number of partitions (cluster nodes in the paper's setting).
    backend:
        ``"process"`` for pipelined worker processes, ``"inline"`` for
        the deterministic bulk-synchronous in-process rendition.
    collect:
        When true, transitions are shipped back and an explicit
        :class:`LTS` is assembled (only sensible for small systems); the
        returned LTS is otherwise ``None``.
    max_states:
        Abort when the visited total exceeds this bound. The raised
        :class:`~repro.errors.ExplorationLimitError` carries the
        partially filled stats on its ``stats`` attribute.
    packed:
        Ship/store packed codec keys instead of state tuples. ``None``
        (default) auto-enables when the system provides a ``codec()``;
        ``True`` requires one; ``False`` forces tuple shipping.
    faults:
        Optional :class:`~repro.lts.faults.FaultPlan` injected into the
        workers (``"process"`` backend only) — the test harness for the
        crash-recovery path.
    poll_interval:
        Upper bound, in seconds, on how long the coordinator blocks
        before re-checking worker liveness (``"process"`` backend).
    batch_size:
        States per work batch (``"process"`` backend; default 256).
        Tests shrink it to force many batches on small systems.
    fault_tolerant:
        ``"process"`` backend: keep the acknowledged-key ledger that
        makes crash recovery exact. The ledger is compact — roughly one
        packed-key width per state at the coordinator, not a duplicate
        of the workers' visited sets — but it is still per-state
        memory; pass ``False`` for sweeps so large that the coordinator
        must hold none, accepting that any worker death then raises
        :class:`~repro.errors.WorkerFailureError` (with partial stats
        attached) instead of recovering. Crash *detection* stays on
        either way: the coordinator never hangs on a dead worker.
    certificate:
        Optional :class:`~repro.staticcheck.certificates.ReductionCertificate`.
        When given, workers sweep a certificate-validated
        :class:`~repro.lts.certreduce.ReducedSystem` view (validated
        once at the coordinator; workers receive the wrapper
        pre-validated through pickling) and the sweep refuses with
        :class:`~repro.errors.ReproError` if the certificate does not
        validate for this system (JKL303–JKL305).
    obs:
        Optional :class:`~repro.obs.core.Instrumentation`; defaults to
        the ambient bundle. When enabled, the sweep emits lifecycle
        events (dispatch/ack, worker deaths, re-dispatches, coordinator
        samples), workers time their batches for the per-phase
        breakdown, and recovery counters land in the metrics registry.

    Returns
    -------
    (lts, stats):
        ``lts`` is ``None`` unless ``collect`` was requested. When
        workers died mid-sweep, ``stats.recovered`` is true and the
        totals are nevertheless exact.

    Raises
    ------
    WorkerFailureError:
        All workers died — or any worker died while
        ``fault_tolerant=False``; detection (and therefore the raise)
        happens within ``poll_interval`` of the death, never a hang.
    """
    if certificate is not None:
        from repro.lts.certreduce import ReducedSystem

        system = ReducedSystem(system, certificate)
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if backend not in ("process", "inline"):
        raise ValueError(f"unknown backend {backend!r}")
    if faults is not None and backend != "process":
        raise ValueError("fault injection requires the 'process' backend")
    if poll_interval <= 0:
        raise ValueError("poll_interval must be positive")
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if packed is None:
        packed = getattr(system, "codec", None) is not None
    elif packed and getattr(system, "codec", None) is None:
        raise ValueError("packed=True needs a system with a codec()")
    if obs is None:
        obs = _current_obs()
    recording = obs.enabled
    if recording:
        obs.tracer.emit(
            "sweep_start", backend=f"distributed-{backend}",
            n_workers=n_workers, packed=packed,
            batch_size=batch_size or _BATCH,
            fault_tolerant=fault_tolerant, max_states=max_states,
        )
        if faults is not None:
            for wid, n in sorted(faults.kill.items()):
                obs.tracer.emit("fault_plan", worker=wid, kind="kill", arg=n)
            for wid, n in sorted(faults.raise_in.items()):
                obs.tracer.emit("fault_plan", worker=wid, kind="raise", arg=n)
            for wid, d in sorted(faults.delay.items()):
                obs.tracer.emit("fault_plan", worker=wid, kind="delay", arg=d)

    def _emit_end(outcome: str) -> None:
        obs.tracer.emit(
            "sweep_end", backend=f"distributed-{backend}", outcome=outcome,
            states=stats.states, transitions=stats.transitions,
            seconds=round(stats.seconds, 6),
            states_per_second=round(
                stats.states / stats.seconds if stats.seconds > 0 else 0.0, 1
            ),
            worker_deaths=stats.worker_deaths,
            redispatched_batches=stats.redispatched_batches,
            recovered=stats.recovered,
            worker_succ_s=stats.worker_succ_s,
            worker_expand_s=stats.worker_expand_s,
            coord_put_s=stats.coord_put_s,
            coord_handle_s=stats.coord_handle_s,
            coord_idle_s=stats.coord_idle_s,
        )
        m = obs.metrics
        m.counter("repro_sweeps_total", backend=f"distributed-{backend}",
                  outcome=outcome).inc()
        m.counter("repro_sweep_states_total").inc(stats.states)
        m.counter("repro_sweep_transitions_total").inc(stats.transitions)
        m.counter("repro_dist_worker_deaths_total").inc(stats.worker_deaths)
        m.counter("repro_dist_redispatched_batches_total").inc(
            stats.redispatched_batches
        )
        m.gauge("repro_dist_recovered").set(int(stats.recovered))
        m.gauge("repro_dist_workers").set(n_workers)
        m.gauge("repro_sweep_seconds", backend=f"distributed-{backend}").set(
            round(stats.seconds, 6)
        )
        for w, batches in enumerate(stats.per_worker_batches):
            m.counter("repro_dist_worker_batches_total", worker=w).inc(batches)
        for w, n_states in enumerate(stats.per_worker_states):
            m.gauge("repro_dist_worker_states", worker=w).set(n_states)

    stats = DistributedStats()
    t0 = time.perf_counter()
    try:
        if backend == "inline":
            transitions, init_item = _inline_sweep(
                system, n_workers, collect, max_states, stats, packed,
                obs=obs,
            )
        else:
            transitions, init_item = _process_sweep(
                system, n_workers, collect, max_states, stats, packed,
                faults=faults, poll=poll_interval,
                batch_size=batch_size or _BATCH,
                fault_tolerant=fault_tolerant,
                obs=obs,
            )
    except (ExplorationLimitError, WorkerFailureError) as exc:
        # an aborted sweep still reports how far it got and how long it ran
        stats.seconds = time.perf_counter() - t0
        if exc.stats is None:
            exc.stats = stats
        if recording:
            _emit_end(
                "limit" if isinstance(exc, ExplorationLimitError)
                else "worker_failure"
            )
        raise
    stats.seconds = time.perf_counter() - t0
    if recording:
        _emit_end("ok")

    if not collect:
        return None, stats
    # assemble an explicit LTS; BFS renumbering for a canonical result
    index: dict[Hashable, int] = {init_item: 0}
    adj: dict[Hashable, list[tuple[str, Hashable]]] = {}
    for s, label, d in transitions:
        adj.setdefault(s, []).append((label, d))
    lts = LTS(initial=0)
    lts.ensure_states(1)
    frontier = [init_item]
    while frontier:
        nxt = []
        for s in frontier:
            for label, d in adj.get(s, []):
                di = index.get(d)
                if di is None:
                    di = len(index)
                    index[d] = di
                    lts.ensure_states(di + 1)
                    nxt.append(d)
                lts.add_transition(index[s], label, di)
        frontier = nxt
    return lts, stats
