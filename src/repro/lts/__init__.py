"""Labelled transition system (LTS) toolkit.

This subpackage is the reproduction's stand-in for the LTS side of the
muCRL toolset and CADP used in the paper: explicit-state generation
(serial, bitstate-hashed, and distributed), the Aldebaran ``.aut``
interchange format, behavioural reductions (strong and branching
bisimulation, tau-compression), deadlock detection with shortest
counterexample traces, and trace replay.
"""

from repro.lts.lts import LTS, Transition
from repro.lts.explore import (
    TransitionSystem,
    explore,
    breadth_first_states,
    ExplorationStats,
)
from repro.lts.engine import explore_fast
from repro.lts.statehash import mix64, state_key64, double_hashes, live_owner
from repro.lts.faults import FaultPlan, WorkerFault, FaultInjection
from repro.lts.deadlock import DeadlockReport, find_deadlocks, shortest_trace_to
from repro.lts.trace import Trace, replay
from repro.lts.reduction import (
    strong_bisimulation_classes,
    minimize_strong,
    branching_bisimulation_classes,
    minimize_branching,
    compress_tau_cycles,
    bisimilar,
)
from repro.lts.bitstate import bitstate_explore, BitstateResult
from repro.lts.distributed import distributed_explore, DistributedStats
from repro.lts.aut import read_aut, write_aut
from repro.lts.stats import lts_summary, degree_histogram
from repro.lts.cycles import Lasso, find_lasso_avoiding
from repro.lts.dot import write_dot

__all__ = [
    "LTS",
    "Transition",
    "TransitionSystem",
    "explore",
    "explore_fast",
    "breadth_first_states",
    "ExplorationStats",
    "mix64",
    "state_key64",
    "double_hashes",
    "live_owner",
    "FaultPlan",
    "WorkerFault",
    "FaultInjection",
    "DeadlockReport",
    "find_deadlocks",
    "shortest_trace_to",
    "Trace",
    "replay",
    "strong_bisimulation_classes",
    "minimize_strong",
    "branching_bisimulation_classes",
    "minimize_branching",
    "compress_tau_cycles",
    "bisimilar",
    "bitstate_explore",
    "BitstateResult",
    "distributed_explore",
    "DistributedStats",
    "read_aut",
    "write_aut",
    "lts_summary",
    "degree_histogram",
    "Lasso",
    "find_lasso_avoiding",
    "write_dot",
]
