"""Behavioural reductions: strong and branching bisimulation.

The paper fed its generated LTSs to CADP, whose reductions keep model
checking tractable. This module implements the two workhorse
equivalences by signature-based partition refinement:

* **strong bisimulation** — two states are equivalent when they have the
  same multiset-free set of ``(label, successor class)`` moves;
* **branching bisimulation** — like strong, but a move may be preceded
  by internal ``tau`` steps that stay inside the source class, and a
  ``tau`` move into the *same* class is invisible.

Signature refinement (Blom & Orzan's algorithm, which the muCRL toolset
itself uses for distributed minimisation) is quadratic in the worst case
but simple, exact, and fast enough for the configurations analysed here.

Branching bisimulation additionally requires pre-compressing strongly
connected ``tau`` components (states on a tau-cycle are branching
bisimilar when divergence is ignored), provided by
:func:`compress_tau_cycles`.
"""

from __future__ import annotations

from repro.lts.lts import LTS, TAU


def _refine(lts: LTS, signature_of) -> list[int]:
    """Generic signature refinement; returns a class id per state."""
    n = lts.n_states
    # start from the trivial partition
    classes = [0] * n
    n_classes = 1
    while True:
        sigs: dict[tuple, int] = {}
        new_classes = [0] * n
        for s in range(n):
            sig = (classes[s], signature_of(s, classes))
            idx = sigs.get(sig)
            if idx is None:
                idx = len(sigs)
                sigs[sig] = idx
            new_classes[s] = idx
        if len(sigs) == n_classes:
            return new_classes
        classes = new_classes
        n_classes = len(sigs)


def strong_bisimulation_classes(lts: LTS) -> list[int]:
    """Class id per state for the coarsest strong bisimulation."""

    def signature(s: int, classes: list[int]) -> tuple:
        return tuple(sorted({(label, classes[d]) for label, d in lts.successors(s)}))

    return _refine(lts, signature)


def _quotient(lts: LTS, classes: list[int], *, drop_tau_self_loops: bool) -> LTS:
    """Build the quotient LTS induced by ``classes``."""
    out = LTS(initial=classes[lts.initial])
    n_classes = max(classes) + 1 if classes else 0
    out.ensure_states(n_classes)
    seen: set[tuple[int, str, int]] = set()
    for t in lts.transitions():
        cs, cd = classes[t.src], classes[t.dst]
        if drop_tau_self_loops and t.label == TAU and cs == cd:
            continue
        key = (cs, t.label, cd)
        if key not in seen:
            seen.add(key)
            out.add_transition(cs, t.label, cd)
    return out


def minimize_strong(lts: LTS) -> LTS:
    """The quotient of ``lts`` modulo strong bisimulation."""
    classes = strong_bisimulation_classes(lts)
    return _quotient(lts, classes, drop_tau_self_loops=False).restricted_to_reachable()


def compress_tau_cycles(lts: LTS) -> tuple[LTS, list[int]]:
    """Collapse each strongly connected component of ``tau`` edges.

    Returns the compressed LTS and the mapping state -> component id.
    Tarjan's algorithm, iterative to survive deep graphs.
    """
    n = lts.n_states
    tau_succ: list[list[int]] = [[] for _ in range(n)]
    for t in lts.transitions():
        if t.label == TAU:
            tau_succ[t.src].append(t.dst)

    index = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    comp = [-1] * n
    stack: list[int] = []
    counter = 0
    n_comps = 0

    for root in range(n):
        if index[root] != -1:
            continue
        # iterative Tarjan
        work = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            while pi < len(tau_succ[v]):
                w = tau_succ[v][pi]
                pi += 1
                if index[w] == -1:
                    work[-1] = (v, pi)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if low[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp[w] = n_comps
                    if w == v:
                        break
                n_comps += 1
            if work:
                u, _ = work[-1]
                low[u] = min(low[u], low[v])

    out = _quotient(lts, comp, drop_tau_self_loops=True)
    return out.restricted_to_reachable(), comp


def branching_bisimulation_classes(lts: LTS) -> list[int]:
    """Class id per state for (divergence-blind) branching bisimulation.

    The input should be free of tau-cycles; apply
    :func:`compress_tau_cycles` first (done by
    :func:`minimize_branching`).
    """

    def signature(s: int, classes: list[int]) -> tuple:
        # The branching signature of s: all (label, class) moves reachable
        # via a (possibly empty) sequence of tau steps that stays in
        # class(s), where a tau move into class(s) itself is dropped.
        own = classes[s]
        sig: set[tuple[str, int]] = set()
        seen = {s}
        stack = [s]
        while stack:
            u = stack.pop()
            for label, d in lts.successors(u):
                cd = classes[d]
                if label == TAU and cd == own:
                    if d not in seen:
                        seen.add(d)
                        stack.append(d)
                else:
                    sig.add((label, cd))
        return tuple(sorted(sig))

    return _refine(lts, signature)


def _disjoint_union(a: LTS, b: LTS) -> tuple[LTS, int, int]:
    """One LTS containing both, with the two initial states returned."""
    u = LTS(a.initial)
    u.ensure_states(a.n_states + b.n_states)
    for t in a.transitions():
        u.add_transition(t.src, t.label, t.dst)
    off = a.n_states
    for t in b.transitions():
        u.add_transition(t.src + off, t.label, t.dst + off)
    return u, a.initial, b.initial + off


#: marker action used to make divergence observable
DIVERGENCE_MARK = "@div"


def _mark_divergence(lts: LTS) -> LTS:
    """A copy with a ``@div`` self-loop on every tau-divergent state.

    A state is tau-divergent when an infinite tau-path starts there:
    it lies on a tau-cycle, or reaches one via tau steps.
    """
    n = lts.n_states
    tau_adj: list[list[int]] = [[] for _ in range(n)]
    for t in lts.transitions():
        if t.label == TAU:
            tau_adj[t.src].append(t.dst)
    # states on tau-cycles: non-trivial tau-SCCs or tau-self-loops
    _c, comp = compress_tau_cycles(lts)
    comp_sizes: dict[int, int] = {}
    for s in range(n):
        comp_sizes[comp[s]] = comp_sizes.get(comp[s], 0) + 1
    divergent = {
        s
        for s in range(n)
        if comp_sizes[comp[s]] > 1 or s in tau_adj[s]
    }
    # backwards closure through tau edges
    changed = True
    while changed:
        changed = False
        for s in range(n):
            if s not in divergent and any(d in divergent for d in tau_adj[s]):
                divergent.add(s)
                changed = True
    out = LTS(lts.initial)
    out.ensure_states(n)
    for t in lts.transitions():
        out.add_transition(t.src, t.label, t.dst)
    for s in divergent:
        out.add_transition(s, DIVERGENCE_MARK, s)
    return out


def bisimilar(a: LTS, b: LTS, *, kind: str = "strong") -> bool:
    """Whether the initial states of ``a`` and ``b`` are bisimilar.

    ``kind``:

    * ``"strong"`` — classical strong bisimulation;
    * ``"branching"`` — branching bisimulation, divergence-blind (a
      tau-loop is as good as no tau at all);
    * ``"branching-div"`` — divergence-*sensitive* branching
      bisimulation: tau-divergent states only match tau-divergent
      states. Under this notion the lossy-channel ABP is **not** a
      one-place buffer (the channels can babble forever) — the
      divergence-blind verdict encodes the fairness assumption.

    The check runs partition refinement on the disjoint union — the
    textbook decision procedure.
    """
    if kind == "branching-div":
        a = _mark_divergence(a)
        b = _mark_divergence(b)
        kind = "branching"
    u, ia, ib = _disjoint_union(a, b)
    if kind == "strong":
        classes = strong_bisimulation_classes(u)
        return classes[ia] == classes[ib]
    if kind == "branching":
        compressed, comp = compress_tau_cycles(u)
        # compress_tau_cycles reindexes through restricted_to_reachable;
        # recompute on the raw quotient to keep index tracking simple
        quot = _quotient(u, comp, drop_tau_self_loops=True)
        classes = branching_bisimulation_classes(quot)
        del compressed
        return classes[comp[ia]] == classes[comp[ib]]
    raise ValueError(f"unknown bisimulation kind {kind!r}")


def minimize_branching(lts: LTS) -> LTS:
    """The quotient of ``lts`` modulo branching bisimulation.

    Divergence-blind: tau-cycles are first collapsed, so a divergent
    state and its non-divergent sibling may be merged. This matches the
    default reduction used when preparing LTSs for alternation-free
    mu-calculus checking of tau-insensitive properties.
    """
    compressed, comp = compress_tau_cycles(lts)
    classes = branching_bisimulation_classes(compressed)
    return _quotient(
        compressed, classes, drop_tau_self_loops=True
    ).restricted_to_reachable()
