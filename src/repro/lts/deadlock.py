"""Deadlock detection with shortest counterexample traces.

Requirement 1 of the paper ("the protocol never ends up in a state where
it cannot perform any action") is checked here. Two refinements over the
naive notion are needed in practice:

* *probe labels* — the observability self-loops added for the
  mu-calculus checks (``c_home`` etc.) must not mask a deadlock, so they
  are discounted;
* *legitimate termination* — in the bounded-rounds protocol model, a
  state where every thread finished all its work is proper termination,
  not a deadlock. The caller supplies an ``is_valid_end`` predicate over
  state metadata to make that distinction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from repro.lts.lts import LTS
from repro.lts.trace import Trace


@dataclass
class DeadlockReport:
    """Outcome of a deadlock search.

    Attributes
    ----------
    deadlock_free:
        True when no improper terminal state is reachable.
    deadlocks:
        Indices of improper terminal states (empty when deadlock free).
    terminal_ok:
        Indices of terminal states accepted by ``is_valid_end``.
    shortest_trace:
        Shortest action trace from the initial state to some deadlock
        (``None`` when deadlock free).
    """

    deadlock_free: bool
    deadlocks: list[int] = field(default_factory=list)
    terminal_ok: list[int] = field(default_factory=list)
    shortest_trace: Trace | None = None

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.deadlock_free:
            return (
                f"deadlock free ({len(self.terminal_ok)} proper terminal "
                f"state(s))"
            )
        n = len(self.deadlocks)
        tl = len(self.shortest_trace) if self.shortest_trace else "?"
        return f"{n} deadlock state(s); shortest error trace: {tl} transitions"


def shortest_trace_to(lts: LTS, targets: Iterable[int]) -> Trace | None:
    """Shortest label trace from ``lts.initial`` to any state in ``targets``.

    Plain BFS over the explicit LTS; returns ``None`` when no target is
    reachable.
    """
    target_set = set(targets)
    if not target_set:
        return None
    if lts.initial in target_set:
        return Trace(())
    # parent[s] = (pred_state, label) along a BFS tree
    parent: dict[int, tuple[int, str]] = {lts.initial: (-1, "")}
    queue = deque([lts.initial])
    found: int | None = None
    while queue:
        s = queue.popleft()
        for label, d in lts.successors(s):
            if d not in parent:
                parent[d] = (s, label)
                if d in target_set:
                    found = d
                    queue.clear()
                    break
                queue.append(d)
    if found is None:
        return None
    labels: list[str] = []
    cur = found
    while cur != lts.initial:
        pred, label = parent[cur]
        labels.append(label)
        cur = pred
    labels.reverse()
    return Trace(tuple(labels))


def find_deadlocks(
    lts: LTS,
    *,
    ignore_labels: Iterable[str] = (),
    is_valid_end: Callable[[Hashable], bool] | None = None,
) -> DeadlockReport:
    """Search ``lts`` for improper terminal states.

    Parameters
    ----------
    lts:
        The system under analysis. When ``is_valid_end`` is given, the
        LTS must carry state metadata (``keep_states=True`` during
        exploration) for the terminal states so the predicate can be
        evaluated; terminal states without metadata are conservatively
        reported as deadlocks.
    ignore_labels:
        Labels that do not count as activity (probe self-loops).
    is_valid_end:
        Predicate over state metadata distinguishing proper termination
        from deadlock. Default: every terminal state is a deadlock, the
        classical definition used in the paper's cyclic model.
    """
    terminal = lts.deadlock_states(ignore_labels=ignore_labels)
    deadlocks: list[int] = []
    ok: list[int] = []
    for s in terminal:
        if is_valid_end is not None:
            meta = lts.state_meta.get(s)
            if meta is not None and is_valid_end(meta):
                ok.append(s)
                continue
        deadlocks.append(s)
    trace = shortest_trace_to(lts, deadlocks) if deadlocks else None
    return DeadlockReport(
        deadlock_free=not deadlocks,
        deadlocks=deadlocks,
        terminal_ok=ok,
        shortest_trace=trace,
    )
