"""Aldebaran ``.aut`` format I/O.

``.aut`` is the textual LTS interchange format of CADP, which the muCRL
toolset emits and the paper's toolchain consumed:

.. code-block:: text

    des (<initial>, <n_transitions>, <n_states>)
    (<src>, "<label>", <dst>)
    ...

Labels containing special characters are quoted; the hidden action may
be written ``i``, ``tau`` or ``"i"`` and is normalised to ``tau`` on
input.
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import TextIO

from repro.errors import AutFormatError
from repro.lts.lts import LTS, TAU

_HEADER = re.compile(r"^\s*des\s*\(\s*(\d+)\s*,\s*(\d+)\s*,\s*(\d+)\s*\)\s*$")
_UNQUOTED = re.compile(r"^[A-Za-z0-9_.!?:()'\[\]{}<>=+\-*/|&^%$#@~;, ]*$")


def _parse_transition(line: str, lineno: int) -> tuple[int, str, int]:
    line = line.strip()
    if not (line.startswith("(") and line.endswith(")")):
        raise AutFormatError(f"line {lineno}: expected (src, label, dst)")
    body = line[1:-1]
    # src up to first comma
    try:
        src_txt, rest = body.split(",", 1)
        src = int(src_txt.strip())
    except ValueError as exc:
        raise AutFormatError(f"line {lineno}: bad source state") from exc
    rest = rest.strip()
    if rest.startswith('"'):
        end = rest.find('"', 1)
        while end != -1 and end + 1 < len(rest) and rest[end - 1] == "\\":
            end = rest.find('"', end + 1)
        if end == -1:
            raise AutFormatError(f"line {lineno}: unterminated label quote")
        label = rest[1:end].replace('\\"', '"')
        tail = rest[end + 1 :].strip()
        if not tail.startswith(","):
            raise AutFormatError(f"line {lineno}: expected comma after label")
        dst_txt = tail[1:].strip()
    else:
        try:
            label, dst_txt = rest.rsplit(",", 1)
        except ValueError as exc:
            raise AutFormatError(f"line {lineno}: bad transition body") from exc
        label = label.strip()
        dst_txt = dst_txt.strip()
    try:
        dst = int(dst_txt)
    except ValueError as exc:
        raise AutFormatError(f"line {lineno}: bad destination state") from exc
    if label in ("i", "tau", "TAU"):
        label = TAU
    return src, label, dst


def read_aut(source: str | Path | TextIO) -> LTS:
    """Parse an ``.aut`` file (path, text, or open file) into an LTS."""
    if isinstance(source, (str, Path)):
        p = Path(source)
        if isinstance(source, Path) or "\n" not in str(source):
            text = p.read_text()
        else:
            text = str(source)
    else:
        text = source.read()
    lines = text.splitlines()
    if not lines:
        raise AutFormatError("empty .aut input")
    m = _HEADER.match(lines[0])
    if not m:
        raise AutFormatError(f"bad header: {lines[0]!r}")
    initial, n_trans, n_states = (int(g) for g in m.groups())
    lts = LTS(initial=initial)
    lts.ensure_states(n_states)
    count = 0
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        src, label, dst = _parse_transition(line, lineno)
        if src >= n_states or dst >= n_states:
            raise AutFormatError(
                f"line {lineno}: state index out of range (header says "
                f"{n_states} states)"
            )
        lts.add_transition(src, label, dst)
        count += 1
    if count != n_trans:
        raise AutFormatError(
            f"header promises {n_trans} transitions, found {count}"
        )
    return lts


def write_aut(lts: LTS, target: str | Path | TextIO | None = None) -> str:
    """Serialise ``lts`` to ``.aut``; returns the text.

    ``target`` may be a path or open file; when ``None`` only the text is
    returned.
    """
    buf = io.StringIO()
    buf.write(f"des ({lts.initial}, {lts.n_transitions}, {lts.n_states})\n")
    for t in lts.transitions():
        label = t.label
        if label == TAU:
            out = "i"
        elif _UNQUOTED.match(label) and "," not in label:
            out = label
        else:
            out = '"' + label.replace('"', '\\"') + '"'
        buf.write(f"({t.src}, {out}, {t.dst})\n")
    text = buf.getvalue()
    if isinstance(target, (str, Path)):
        Path(target).write_text(text)
    elif target is not None:
        target.write(text)
    return text
