"""Exploration benchmark harness.

One entry point, :func:`bench_explore`, runs the same transition system
through the exploration backends — the reference serial explorer, the
fast engine (tuple-keyed and packed), and the partitioned backend — and
cross-checks that every path reports identical state, transition and
deadlock counts before any throughput number is reported. A benchmark
that silently explores a different LTS is worse than no benchmark.

The resulting report is a plain dict so the CLI can dump it as
``BENCH_explore.json``:

``system``
    states / transitions / deadlocks (identical across backends).
``backends``
    per-backend ``seconds``, ``states_per_second``, ``max_frontier``
    (serial paths), and for the distributed backend the transport,
    the worker-pool ``spawn_s`` (a fixed per-run cost excluded from
    ``states_per_second``) and the partition balance
    (``per_worker_states``, ``per_worker_batches``, ``imbalance``,
    ``batches``).
``speedup``
    each backend's throughput relative to the serial reference.
``phases``
    per-phase seconds (successor generation / dedup / transport) from
    one extra instrumented engine pass — the timed runs themselves stay
    un-instrumented.
``phases_distributed``
    the same breakdown from one instrumented distributed pass per
    transport (the resolved transport plus the ``queue`` baseline when
    they differ), making the data-plane saving visible: shm transport
    seconds are expected strictly below the queue transport's.
``metrics``
    the metrics snapshot of that pass, plus the distributed backend's
    recovery counters (worker deaths, re-dispatched batches) when it
    ran.
``backends.<name>.max_rss_bytes`` / ``backends.<name>.mem``
    memory telemetry from the instrumented passes (serial, engine and
    the distributed coordinator): the RSS high-watermark, the bounded
    watermark series, per-structure byte notes and the count of
    ``mem_pressure`` events. The passes share one process and run in
    order, so each backend's watermark is its *observed* ceiling in
    that context — exactly what :func:`rss_gate` regresses against, not
    an isolated-process measurement.
``reduction``
    present when a reduction certificate was supplied: unreduced vs
    reduced visited counts, the reduction ``factor``, the same sweep
    with the certified field slice disabled
    (``states_canonical_only``/``factor_canonical_only`` — what the
    cone-of-influence projection buys over canonical+ample alone), and
    the canonicalization/pruning/slice counters of one reduced sweep.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import sys

from repro.errors import ExplorationLimitError
from repro.lts.distributed import distributed_explore
from repro.lts.engine import explore_fast
from repro.lts.explore import ExplorationStats, TransitionSystem, explore
from repro.obs import (
    Instrumentation,
    MemWatch,
    MetricsRegistry,
    Tracer,
    phase_breakdown,
)

#: backends in report order
BACKENDS = ("serial", "engine", "engine-packed", "distributed")

#: states explored by the untimed distributed warm-up pass
_WARMUP_STATES = 4096


def machine_workers() -> int:
    """Distributed worker count sized to this machine.

    The CPUs actually available to the process (the affinity mask under
    cgroup/container limits, not the host count). On a single-CPU box
    this is 1 — the partitioned sweep then runs as one pipelined worker
    plus a control-plane coordinator, which is the only shape that can
    match serial throughput without parallel hardware.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class BenchMismatchError(AssertionError):
    """Backends disagreed on the explored system — timings are void."""


def _deadlocks(lts) -> int:
    return len(lts.deadlock_states())


def bench_explore(
    system: TransitionSystem,
    *,
    backends: tuple[str, ...] = BACKENDS,
    n_workers: int | None = None,
    repeats: int = 1,
    profile: bool = False,
    faults=None,
    batch_size: int | None = None,
    transport: str | None = None,
    certificate=None,
) -> dict:
    """Benchmark exploration backends on ``system`` and cross-check them.

    Parameters
    ----------
    backends:
        Subset of :data:`BACKENDS` to run (``"serial"`` is always run —
        it is the correctness reference and the speedup denominator).
    n_workers:
        Partition count for the distributed backend; default
        :func:`machine_workers` (the process's CPU affinity count).
    repeats:
        Timed runs per backend; the best (minimum-time) run is
        reported, the standard guard against scheduler noise.
    profile:
        Additionally run the engine under :mod:`cProfile` and include
        the top functions by cumulative time in the report.
    faults:
        Optional :class:`~repro.lts.faults.FaultPlan` injected into the
        distributed backend's workers. The cross-check then doubles as
        a recovery test: a crashed worker's sweep must still report the
        serial reference counts exactly.
    batch_size:
        States per distributed work batch (default 256; the shm
        transport treats it as the initial adaptive quantum).
    transport:
        Distributed transport (``"shm"``, ``"queue"`` or
        ``None``/``"auto"`` — shared-memory rings whenever the system
        has a codec and ``fork`` is available).
    certificate:
        Optional :class:`~repro.staticcheck.certificates.ReductionCertificate`.
        When given, every backend sweeps the certificate-validated
        reduced view (:class:`~repro.lts.certreduce.ReducedSystem`) —
        the cross-check then covers the reduced system — and the
        report gains a ``reduction`` block comparing one unreduced
        engine pass against the reduced sweep (``factor`` is the
        visited-state ratio).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if n_workers is None:
        n_workers = machine_workers()
    base_system = system
    if certificate is not None:
        from repro.lts.certreduce import ReducedSystem

        system = ReducedSystem(base_system, certificate)
    report: dict = {"backends": {}, "speedup": {}}

    # build the per-round run list; rounds interleave the backends so
    # background load perturbs all of them equally, and the best
    # (minimum-time) round per backend is reported
    runs = [("serial", lambda s: explore(system, stats=s))]
    if "engine" in backends:
        runs.append(("engine", lambda s: explore_fast(system, stats=s)))
    if "engine-packed" in backends and getattr(system, "codec", None):
        runs.append(
            ("engine-packed",
             lambda s: explore_fast(system, stats=s, packed=True))
        )
    best: dict = {}
    results: dict = {}
    best_dist = None
    if "distributed" in backends:
        # one bounded, untimed warm-up sweep: the first distributed run
        # in a process pays one-off costs (shm segment machinery,
        # allocator and bytecode warm-up in the freshly forked workers)
        # that would otherwise land entirely on the first timed round
        try:
            distributed_explore(
                system, n_workers=n_workers, backend="process",
                transport=transport, batch_size=batch_size,
                max_states=_WARMUP_STATES,
            )
        except ExplorationLimitError:
            pass
    for _ in range(repeats):
        for name, run in runs:
            st = ExplorationStats()
            lts = run(st)
            if name not in best or st.seconds < best[name].seconds:
                best[name], results[name] = st, lts
        if "distributed" in backends:
            _lts, dstats = distributed_explore(
                system, n_workers=n_workers, backend="process",
                faults=faults, batch_size=batch_size,
                transport=transport,
            )
            # rank rounds by sweep time alone — worker spawn is a
            # per-run fixed cost reported separately (spawn_s)
            if best_dist is None or (
                dstats.seconds - dstats.spawn_s
                < best_dist.seconds - best_dist.spawn_s
            ):
                best_dist = dstats

    ref = results["serial"]
    counts = (ref.n_states, ref.n_transitions, _deadlocks(ref))
    report["system"] = {
        "states": counts[0],
        "transitions": counts[1],
        "deadlocks": counts[2],
    }

    def _check(name, states, transitions, deadlocks):
        if (states, transitions, deadlocks) != counts:
            raise BenchMismatchError(
                f"backend {name!r} explored ({states}, {transitions}, "
                f"{deadlocks}); serial reference found {counts}"
            )

    for name, _run in runs:
        st, lts = best[name], results[name]
        _check(name, lts.n_states, lts.n_transitions, _deadlocks(lts))
        report["backends"][name] = {
            "seconds": st.seconds,
            "states_per_second": st.states_per_second(),
            "max_frontier": st.max_frontier,
        }
    serial_sps = report["backends"]["serial"]["states_per_second"]

    if best_dist is not None:
        _check("distributed", best_dist.states, best_dist.transitions,
               best_dist.deadlocks)
        sweep_s = best_dist.seconds - best_dist.spawn_s
        report["backends"]["distributed"] = {
            "seconds": best_dist.seconds,
            # throughput over the sweep alone: spawning the worker pool
            # is a fixed per-run cost (reported as spawn_s), and folding
            # it into the rate dooms any small-config comparison
            "states_per_second": (
                best_dist.states / sweep_s if sweep_s > 0 else 0.0
            ),
            "spawn_s": best_dist.spawn_s,
            "transport": best_dist.transport,
            "n_workers": n_workers,
            "per_worker_states": best_dist.per_worker_states,
            "per_worker_batches": best_dist.per_worker_batches,
            "imbalance": best_dist.imbalance(),
            "batches": best_dist.batches,
            "worker_deaths": best_dist.worker_deaths,
            "redispatched_batches": best_dist.redispatched_batches,
            "recovered": best_dist.recovered,
        }

    for name, row in report["backends"].items():
        report["speedup"][name] = (
            row["states_per_second"] / serial_sps if serial_sps else 0.0
        )

    if certificate is not None:
        from repro.lts.certreduce import ReducedSystem

        # one unreduced reference pass + one clean reduced pass (the
        # timed wrapper's counters accumulated across repeats) so the
        # reported factor and counters describe a single sweep each
        unreduced = explore_fast(base_system)
        hits0 = (
            system.canonical_hits, system.ample_prunes, system.slice_hits
        )
        reduced = explore_fast(system)
        # same reduction minus the slice, to isolate what the certified
        # cone-of-influence projection buys over canonical+ample alone
        unsliced_system = ReducedSystem(
            base_system, certificate, slice_fields=(), _validated=True
        )
        unsliced = explore_fast(unsliced_system)
        report["reduction"] = {
            "unreduced_states": unreduced.n_states,
            "unreduced_transitions": unreduced.n_transitions,
            "states": reduced.n_states,
            "transitions": reduced.n_transitions,
            "factor": (
                unreduced.n_states / reduced.n_states
                if reduced.n_states else 0.0
            ),
            "states_canonical_only": unsliced.n_states,
            "factor_canonical_only": (
                unreduced.n_states / unsliced.n_states
                if unsliced.n_states else 0.0
            ),
            "canonical_hits": system.canonical_hits - hits0[0],
            "ample_prunes": system.ample_prunes - hits0[1],
            "slice_hits": system.slice_hits - hits0[2],
        }

    def _note_mem(name: str, mw: MemWatch) -> None:
        row = report["backends"].get(name)
        if row is None:  # pragma: no cover - instrumented-only backends
            return
        summ = mw.summary()
        row["max_rss_bytes"] = summ["max_rss_bytes"]
        row["mem"] = summ

    # one extra instrumented engine pass feeds the phase breakdown,
    # metrics snapshot and memory watermarks — never the timed runs
    # above, so the throughput numbers stay un-instrumented
    registry = MetricsRegistry()
    tracer = Tracer()
    mw_engine = MemWatch(metrics=registry)
    with Instrumentation(metrics=registry, tracer=tracer,
                         memwatch=mw_engine) as inst:
        explore_fast(system, obs=inst)
    report["phases"] = phase_breakdown(tracer.events())
    engine_name = next(
        (n for n in ("engine", "engine-packed") if n in report["backends"]),
        None,
    )
    if engine_name is not None:
        _note_mem(engine_name, mw_engine)
    # one instrumented serial pass for its watermark series (the serial
    # reference is the out-of-core tier's memory baseline)
    mw_serial = MemWatch()
    with Instrumentation(memwatch=mw_serial) as inst_s:
        explore(system, obs=inst_s)
    _note_mem("serial", mw_serial)
    if best_dist is not None:
        # one instrumented distributed pass per transport (the resolved
        # one, plus the queue baseline when they differ) so the report
        # shows what the shm data plane saves: its transport seconds
        # must sit strictly below the queue transport's
        dist_phases: dict = {}
        for tr in dict.fromkeys((best_dist.transport, "queue")):
            reg_d, tracer_d = MetricsRegistry(), Tracer()
            mw_d = MemWatch(metrics=reg_d)
            with Instrumentation(metrics=reg_d, tracer=tracer_d,
                                 memwatch=mw_d) as inst_d:
                distributed_explore(
                    system, n_workers=n_workers, backend="process",
                    transport=tr, batch_size=batch_size, obs=inst_d,
                )
            dist_phases[tr] = phase_breakdown(tracer_d.events())
            if tr == best_dist.transport:
                _note_mem("distributed", mw_d)
        report["phases_distributed"] = dist_phases
    metrics = registry.snapshot()
    if best_dist is not None:
        metrics["repro_dist_worker_deaths_total"] = best_dist.worker_deaths
        metrics["repro_dist_redispatched_batches_total"] = (
            best_dist.redispatched_batches
        )
        metrics["repro_dist_recovered"] = int(best_dist.recovered)
    report["metrics"] = metrics

    if profile:
        prof = cProfile.Profile()
        prof.enable()
        explore_fast(system)
        prof.disable()
        buf = io.StringIO()
        pstats.Stats(prof, stream=buf).sort_stats("cumulative").print_stats(15)
        report["profile"] = buf.getvalue()

    report["environment"] = {
        "python": sys.version.split()[0],
        "platform": sys.platform,
    }
    return report


def rss_gate(report: dict, max_rss_bytes: int) -> list[str]:
    """Backends whose observed RSS watermark exceeds ``max_rss_bytes``.

    The memory analogue of the overhead gate: a refactor that keeps
    throughput flat while doubling the visited set's footprint should
    fail the benchmark, not slip through. Returns the offending backend
    names (empty means the gate passes); backends without memory
    telemetry are skipped, not failed.
    """
    if max_rss_bytes <= 0:
        raise ValueError("max_rss_bytes must be positive")
    over = []
    for name, row in report.get("backends", {}).items():
        rss = row.get("max_rss_bytes")
        if rss is not None and rss > max_rss_bytes:
            over.append(name)
    return over


def format_bench(report: dict) -> str:
    """Render a :func:`bench_explore` report as an aligned text table."""
    sysrow = report["system"]
    lines = [
        f"system: {sysrow['states']} states, {sysrow['transitions']} "
        f"transitions, {sysrow['deadlocks']} deadlocks",
        f"{'backend':<15} {'seconds':>9} {'states/s':>12} {'speedup':>9}",
    ]
    for name, row in report["backends"].items():
        lines.append(
            f"{name:<15} {row['seconds']:>9.3f} "
            f"{row['states_per_second']:>12.0f} "
            f"{report['speedup'][name]:>8.2f}x"
        )
    red = report.get("reduction")
    if red:
        lines.append(
            f"reduction: {red['unreduced_states']} -> {red['states']} "
            f"states (factor {red['factor']:.2f}x, "
            f"canonical_hits={red['canonical_hits']}, "
            f"ample_prunes={red['ample_prunes']}, "
            f"slice_hits={red.get('slice_hits', 0)})"
        )
        if "states_canonical_only" in red:
            lines.append(
                f"  without slice: {red['states_canonical_only']} states "
                f"(factor {red['factor_canonical_only']:.2f}x) — slicing "
                f"saves {red['states_canonical_only'] - red['states']} "
                "states"
            )
    dist = report["backends"].get("distributed")
    if dist:
        lines.append(
            f"distributed transport: {dist.get('transport', 'queue')} "
            f"workers={dist.get('n_workers', '?')} "
            f"spawn_s={dist.get('spawn_s', 0.0):.3f} "
            "(excluded from states/s)"
        )
        lines.append(
            f"distributed balance: imbalance={dist['imbalance']:.3f} "
            f"states/worker={dist['per_worker_states']} "
            f"batches/worker={dist['per_worker_batches']}"
        )
        dp = report.get("phases_distributed") or {}
        if dp:
            lines.append(
                "distributed transport seconds: "
                + " vs ".join(
                    f"{tr} {ph['transport_s']:.3f}s"
                    for tr, ph in dp.items()
                )
            )
        if dist.get("worker_deaths"):
            lines.append(
                f"distributed recovery: "
                f"worker_deaths={dist['worker_deaths']} "
                f"redispatched_batches={dist['redispatched_batches']} "
                f"recovered={dist['recovered']}"
            )
    mem_rows = [
        (name, row["max_rss_bytes"], row.get("mem", {}))
        for name, row in report["backends"].items()
        if row.get("max_rss_bytes") is not None
    ]
    if mem_rows:
        lines.append(
            "memory (RSS watermark): "
            + "  ".join(
                f"{name}={rss / (1024 * 1024):.1f}MiB"
                + (
                    f" (pressure={mem.get('pressure_events')})"
                    if mem.get("pressure_events")
                    else ""
                )
                for name, rss, mem in mem_rows
            )
        )
    return "\n".join(lines)
