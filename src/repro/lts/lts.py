"""In-memory labelled transition system.

States are dense integers ``0..n_states-1``; labels are interned strings.
The representation favours the access patterns of the analyses in this
package: forward iteration during generation and model checking, and
on-demand reverse adjacency for fixpoint computations.

The label ``"tau"`` (also written ``i`` in CADP) denotes the hidden
action; :data:`TAU` is the canonical spelling used throughout.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, NamedTuple, Sequence

TAU = "tau"


class Transition(NamedTuple):
    """A single labelled transition ``src --label--> dst``."""

    src: int
    label: str
    dst: int


class LTS:
    """A finite labelled transition system.

    Parameters
    ----------
    initial:
        Index of the initial state (conventionally 0).

    Notes
    -----
    Transitions are stored in three parallel ``array('i')`` columns
    (``src``, ``label index``, ``dst``); labels are interned in
    :attr:`labels`. A transition costs 12 bytes instead of three list
    slots full of boxed ints, which is what keeps the
    multi-million-transition systems produced when exploring the
    protocol configurations of the paper in memory.
    """

    __slots__ = (
        "initial",
        "_n_states",
        "_src",
        "_lbl",
        "_dst",
        "labels",
        "_label_index",
        "_fwd",
        "_bwd",
        "state_meta",
    )

    def __init__(self, initial: int = 0):
        self.initial = initial
        self._n_states = 0
        self._src: array = array("i")
        self._lbl: array = array("i")
        self._dst: array = array("i")
        self.labels: list[str] = []
        self._label_index: dict[str, int] = {}
        self._fwd: list[list[int]] | None = None
        self._bwd: list[list[int]] | None = None
        #: optional per-state annotations (e.g. the decoded model state)
        self.state_meta: dict[int, object] = {}

    # -- construction -------------------------------------------------

    def add_state(self) -> int:
        """Allocate a fresh state and return its index."""
        idx = self._n_states
        self._n_states += 1
        self._fwd = None
        self._bwd = None
        return idx

    def ensure_states(self, n: int) -> None:
        """Grow the state set so it contains at least ``n`` states."""
        if n > self._n_states:
            self._n_states = n
            self._fwd = None
            self._bwd = None

    def label_id(self, label: str) -> int:
        """Intern ``label`` and return its dense integer id."""
        idx = self._label_index.get(label)
        if idx is None:
            idx = len(self.labels)
            self.labels.append(label)
            self._label_index[label] = idx
        return idx

    def add_transition(self, src: int, label: str, dst: int) -> None:
        """Append transition ``src --label--> dst`` (states auto-grown)."""
        self.ensure_states(max(src, dst) + 1)
        self._src.append(src)
        self._lbl.append(self.label_id(label))
        self._dst.append(dst)
        self._fwd = None
        self._bwd = None

    @classmethod
    def from_columns(
        cls,
        *,
        initial: int,
        n_states: int,
        src: Sequence[int],
        lbl: Sequence[int],
        dst: Sequence[int],
        labels: Iterable[str],
    ) -> "LTS":
        """Adopt pre-built transition columns without per-call overhead.

        This is the bulk construction path used by the exploration
        engine: ``src``/``lbl``/``dst`` are parallel columns (anything
        ``array('i')`` accepts), ``labels`` the interned label table
        indexed by ``lbl``. Columns are adopted as-is when they already
        are ``array('i')``.
        """
        lts = cls(initial=initial)
        lts._n_states = n_states
        lts._src = src if isinstance(src, array) else array("i", src)
        lts._lbl = lbl if isinstance(lbl, array) else array("i", lbl)
        lts._dst = dst if isinstance(dst, array) else array("i", dst)
        if not (len(lts._src) == len(lts._lbl) == len(lts._dst)):
            raise ValueError("transition columns must have equal length")
        lts.labels = list(labels)
        lts._label_index = {lab: i for i, lab in enumerate(lts.labels)}
        return lts

    # -- basic queries -------------------------------------------------

    @property
    def n_states(self) -> int:
        """Number of states."""
        return self._n_states

    @property
    def n_transitions(self) -> int:
        """Number of transitions."""
        return len(self._src)

    def has_label(self, label: str) -> bool:
        """Whether any transition carries ``label``."""
        return label in self._label_index

    def transitions(self) -> Iterator[Transition]:
        """Iterate over all transitions in insertion order."""
        labels = self.labels
        for s, lab, d in zip(self._src, self._lbl, self._dst):
            yield Transition(s, labels[lab], d)

    def transition_arrays(self) -> tuple[array, array, array]:
        """Raw parallel ``array('i')`` columns ``(src, label_id, dst)``
        (do not mutate)."""
        return self._src, self._lbl, self._dst

    def _forward_index(self) -> list[list[int]]:
        if self._fwd is None:
            fwd: list[list[int]] = [[] for _ in range(self._n_states)]
            for ti, s in enumerate(self._src):
                fwd[s].append(ti)
            self._fwd = fwd
        return self._fwd

    def _backward_index(self) -> list[list[int]]:
        if self._bwd is None:
            bwd: list[list[int]] = [[] for _ in range(self._n_states)]
            for ti, d in enumerate(self._dst):
                bwd[d].append(ti)
            self._bwd = bwd
        return self._bwd

    def successors(self, state: int) -> list[tuple[str, int]]:
        """Outgoing ``(label, dst)`` pairs of ``state``."""
        fwd = self._forward_index()
        labels = self.labels
        return [(labels[self._lbl[t]], self._dst[t]) for t in fwd[state]]

    def predecessors(self, state: int) -> list[tuple[str, int]]:
        """Incoming ``(label, src)`` pairs of ``state``."""
        bwd = self._backward_index()
        labels = self.labels
        return [(labels[self._lbl[t]], self._src[t]) for t in bwd[state]]

    def out_degree(self, state: int) -> int:
        """Number of outgoing transitions of ``state``."""
        return len(self._forward_index()[state])

    def enabled_labels(self, state: int) -> set[str]:
        """Set of labels enabled in ``state``."""
        fwd = self._forward_index()
        labels = self.labels
        return {labels[self._lbl[t]] for t in fwd[state]}

    def deadlock_states(self, ignore_labels: Iterable[str] = ()) -> list[int]:
        """States with no outgoing transition.

        ``ignore_labels`` are treated as absent; this is used to discount
        observability probe self-loops (``c_home`` etc.) which exist only
        for the benefit of the model checker.
        """
        ignore = {self._label_index[lab] for lab in ignore_labels if lab in self._label_index}
        fwd = self._forward_index()
        dead = []
        for s in range(self._n_states):
            if all(self._lbl[t] in ignore for t in fwd[s]):
                dead.append(s)
        return dead

    def label_counts(self) -> dict[str, int]:
        """Map each label to its number of transitions."""
        counts = [0] * len(self.labels)
        for lab in self._lbl:
            counts[lab] += 1
        return {lab: c for lab, c in zip(self.labels, counts)}

    # -- transformations -----------------------------------------------

    def relabelled(self, mapping: dict[str, str]) -> "LTS":
        """A copy with labels renamed through ``mapping`` (others kept)."""
        out = LTS(self.initial)
        out.ensure_states(self._n_states)
        labels = self.labels
        for s, lab, d in zip(self._src, self._lbl, self._dst):
            lab = labels[lab]
            out.add_transition(s, mapping.get(lab, lab), d)
        return out

    def hidden(self, hide: Iterable[str]) -> "LTS":
        """A copy where every label in ``hide`` becomes :data:`TAU`."""
        return self.relabelled({lab: TAU for lab in hide})

    def restricted_to_reachable(self) -> "LTS":
        """A copy containing only states reachable from the initial state."""
        fwd = self._forward_index()
        seen = {self.initial}
        stack = [self.initial]
        while stack:
            s = stack.pop()
            for t in fwd[s]:
                d = self._dst[t]
                if d not in seen:
                    seen.add(d)
                    stack.append(d)
        remap = {old: new for new, old in enumerate(sorted(seen))}
        out = LTS(remap[self.initial])
        out.ensure_states(len(remap))
        labels = self.labels
        for s, lab, d in zip(self._src, self._lbl, self._dst):
            if s in remap and d in remap:
                out.add_transition(remap[s], labels[lab], remap[d])
        for old, meta in self.state_meta.items():
            if old in remap:
                out.state_meta[remap[old]] = meta
        return out

    # -- dunder ---------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LTS(states={self._n_states}, transitions={self.n_transitions}, "
            f"labels={len(self.labels)}, initial={self.initial})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality (same states, same transition multiset)."""
        if not isinstance(other, LTS):
            return NotImplemented
        if self._n_states != other._n_states or self.initial != other.initial:
            return False
        mine = sorted(
            (s, self.labels[lab], d) for s, lab, d in zip(self._src, self._lbl, self._dst)
        )
        theirs = sorted(
            (s, other.labels[lab], d)
            for s, lab, d in zip(other._src, other._lbl, other._dst)
        )
        return mine == theirs

    def __hash__(self):  # noqa: D105 - mutable container, identity hash
        return id(self)
