"""Fast explicit-state exploration engine.

The drop-in successor of :func:`repro.lts.explore.explore` for
performance-critical generation. Same breadth-first order, same LTS,
same limit semantics — but engineered for throughput:

* **fast successor path** — a system exposing ``successors_fast``
  (e.g. :class:`~repro.jackal.model.JackalModel`) is expanded through
  it; the readable reference relation stays the specification.
* **one hash per discovery** — the visited index is probed with
  ``dict.setdefault`` instead of a get/store pair, and the frontier
  carries ``(index, state)`` pairs so expansion never re-hashes a
  state it already numbered.
* **label interning once per label** — labels are interned into a
  local table as they appear instead of per-transition method calls
  into the LTS.
* **columnar transitions** — transitions accumulate directly into
  ``array('i')`` columns and are adopted wholesale by
  :meth:`repro.lts.lts.LTS.from_columns`, skipping the per-call
  bookkeeping (state growth, cache invalidation) of
  ``add_transition``.
* **packed visited set** — with ``packed=True`` the visited index keys
  on the :class:`~repro.jackal.codec.StateCodec` integer instead of
  the state tuple tree, cutting resident memory per visited state by
  roughly an order of magnitude (one small int vs a nested tuple
  graph) at the price of an encode per discovered successor.
* **successor memo** — pass a dict as ``memo`` to reuse the
  deterministic successor relation across repeated explorations of
  the same model (e.g. the per-requirement rebuilds in
  :mod:`repro.jackal.requirements`).
"""

from __future__ import annotations

import gc
import time
from array import array
from typing import Callable, Hashable, MutableMapping

from repro.errors import ExplorationLimitError
from repro.lts.explore import ExplorationStats, TransitionSystem
from repro.lts.lts import LTS


def _codec_for(system):
    factory = getattr(system, "codec", None)
    return None if factory is None else factory()


def explore_fast(
    system: TransitionSystem,
    *,
    max_states: int | None = None,
    max_depth: int | None = None,
    keep_states: bool = False,
    on_level: Callable[[int, int], None] | None = None,
    stats: ExplorationStats | None = None,
    memo: MutableMapping[Hashable, list] | None = None,
    packed: bool = False,
    codec=None,
) -> LTS:
    """Generate the reachable LTS of ``system`` by breadth-first search.

    Accepts everything :func:`repro.lts.explore.explore` accepts (and
    matches its semantics — state numbering, depth bounding, the
    partial LTS attached to :class:`ExplorationLimitError`), plus:

    Parameters
    ----------
    memo:
        Optional mapping used to memoise the successor relation across
        calls. Only sound because successor relations in this package
        are deterministic functions of the state.
    packed:
        Key the visited index on packed codec integers instead of the
        states themselves (requires the system to provide a codec, as
        :class:`~repro.jackal.model.JackalModel` does, or an explicit
        ``codec``). Roughly an order of magnitude less visited-set
        memory; slightly slower per state.
    codec:
        Codec overriding the system-provided one; must expose
        ``encode``/``decode``.
    """
    t0 = time.perf_counter()
    if packed and codec is None:
        codec = _codec_for(system)
        if codec is None:
            raise ValueError(
                "packed exploration needs a codec (system.codec() or codec=)"
            )
    encode = codec.encode if (packed and codec is not None) else None

    succ = getattr(system, "successors_fast", None) or system.successors
    if memo is not None:
        raw_succ = succ
        memo_get = memo.get

        def succ(state):  # noqa: F811 - deliberate wrapper
            cached = memo_get(state)
            if cached is None:
                cached = memo[state] = raw_succ(state)
            return cached

    init = system.initial_state()
    index: dict = {init if encode is None else encode(init): 0}
    n = 1
    state_meta: dict[int, object] = {}
    if keep_states:
        state_meta[0] = init

    src = array("i")
    lbl = array("i")
    dst = array("i")
    src_append = src.append
    lbl_append = lbl.append
    dst_append = dst.append
    labels: list[str] = []
    labels_append = labels.append
    lmap: dict[str, int] = {}
    lmap_get = lmap.get
    index_setdefault = index.setdefault

    frontier: list[tuple[int, Hashable]] = [(0, init)]
    depth = 0
    level_sizes = [1]
    max_frontier = 1

    def _finish_stats():
        if stats is not None:
            stats.states = n
            stats.transitions = len(src)
            stats.max_frontier = max_frontier
            stats.seconds = time.perf_counter() - t0
            stats.depth = depth
            stats.level_sizes = level_sizes

    def _partial_lts() -> LTS:
        out = LTS.from_columns(
            initial=0, n_states=n, src=src, lbl=lbl, dst=dst, labels=labels
        )
        out.state_meta = state_meta
        return out

    # nearly every allocation of the sweep stays alive in the visited
    # index, so generational GC passes rescan an ever-growing live set
    # for nothing — suspend collection for the duration
    gc_was_enabled = gc.isenabled()
    gc.disable()
    # the tight path drops the per-transition limit and codec branches
    tight = max_states is None and encode is None and not keep_states
    try:
        while frontier:
            if max_depth is not None and depth >= max_depth:
                break
            next_frontier: list[tuple[int, Hashable]] = []
            nf_append = next_frontier.append
            if tight:
                for sidx, state in frontier:
                    for label, nxt in succ(state):
                        didx = index_setdefault(nxt, n)
                        if didx == n:
                            n += 1
                            nf_append((didx, nxt))
                        lid = lmap_get(label)
                        if lid is None:
                            lid = lmap[label] = len(labels)
                            labels_append(label)
                        src_append(sidx)
                        lbl_append(lid)
                        dst_append(didx)
            else:
                for sidx, state in frontier:
                    for label, nxt in succ(state):
                        didx = index_setdefault(
                            nxt if encode is None else encode(nxt), n
                        )
                        if didx == n:
                            n += 1
                            if keep_states:
                                state_meta[didx] = nxt
                            nf_append((didx, nxt))
                        lid = lmap_get(label)
                        if lid is None:
                            lid = lmap[label] = len(labels)
                            labels_append(label)
                        src_append(sidx)
                        lbl_append(lid)
                        dst_append(didx)
                        if max_states is not None and n > max_states:
                            max_frontier = max(
                                max_frontier, len(next_frontier)
                            )
                            _finish_stats()
                            raise ExplorationLimitError(
                                f"state limit {max_states} exceeded "
                                f"at depth {depth}",
                                partial=_partial_lts(),
                            )
            depth += 1
            frontier = next_frontier
            if frontier:
                level_sizes.append(len(frontier))
                if len(frontier) > max_frontier:
                    max_frontier = len(frontier)
            if on_level is not None:
                on_level(depth, n)
    finally:
        if gc_was_enabled:
            gc.enable()

    _finish_stats()
    return _partial_lts()
