"""Fast explicit-state exploration engine.

The drop-in successor of :func:`repro.lts.explore.explore` for
performance-critical generation. Same breadth-first order, same LTS,
same limit semantics — but engineered for throughput:

* **fast successor path** — a system exposing ``successors_fast``
  (e.g. :class:`~repro.jackal.model.JackalModel`) is expanded through
  it; the readable reference relation stays the specification.
* **one hash per discovery** — the visited index is probed with
  ``dict.setdefault`` instead of a get/store pair, and the frontier
  carries ``(index, state)`` pairs so expansion never re-hashes a
  state it already numbered.
* **label interning once per label** — labels are interned into a
  local table as they appear instead of per-transition method calls
  into the LTS.
* **columnar transitions** — transitions accumulate directly into
  ``array('i')`` columns and are adopted wholesale by
  :meth:`repro.lts.lts.LTS.from_columns`, skipping the per-call
  bookkeeping (state growth, cache invalidation) of
  ``add_transition``.
* **packed visited set** — with ``packed=True`` the visited index keys
  on the :class:`~repro.jackal.codec.StateCodec` integer instead of
  the state tuple tree, cutting resident memory per visited state by
  roughly an order of magnitude (one small int vs a nested tuple
  graph) at the price of an encode per discovered successor.
* **successor memo** — pass a dict as ``memo`` to reuse the
  deterministic successor relation across repeated explorations of
  the same model (e.g. the per-requirement rebuilds in
  :mod:`repro.jackal.requirements`).
"""

from __future__ import annotations

import gc
import sys
import time
from array import array
from typing import Callable, Hashable, MutableMapping

from repro.errors import ExplorationLimitError
from repro.lts.explore import ExplorationStats, TransitionSystem
from repro.lts.lts import LTS
from repro.obs.core import current as _current_obs


def _codec_for(system):
    factory = getattr(system, "codec", None)
    return None if factory is None else factory()


def explore_fast(
    system: TransitionSystem,
    *,
    max_states: int | None = None,
    max_depth: int | None = None,
    keep_states: bool = False,
    on_level: Callable[[int, int], None] | None = None,
    stats: ExplorationStats | None = None,
    memo: MutableMapping[Hashable, list] | None = None,
    packed: bool = False,
    codec=None,
    certificate=None,
    obs=None,
) -> LTS:
    """Generate the reachable LTS of ``system`` by breadth-first search.

    Accepts everything :func:`repro.lts.explore.explore` accepts (and
    matches its semantics — state numbering, depth bounding, the
    partial LTS attached to :class:`ExplorationLimitError`), plus:

    Parameters
    ----------
    memo:
        Optional mapping used to memoise the successor relation across
        calls. Only sound because successor relations in this package
        are deterministic functions of the state.
    packed:
        Key the visited index on packed codec integers instead of the
        states themselves (requires the system to provide a codec, as
        :class:`~repro.jackal.model.JackalModel` does, or an explicit
        ``codec``). Roughly an order of magnitude less visited-set
        memory; slightly slower per state.
    codec:
        Codec overriding the system-provided one; must expose
        ``encode``/``decode``.
    certificate:
        Optional :class:`~repro.staticcheck.certificates.ReductionCertificate`.
        When given, the sweep runs on a certificate-validated
        :class:`~repro.lts.certreduce.ReducedSystem` view (symmetry
        quotient + ample pruning) and refuses with
        :class:`~repro.errors.ReproError` if the certificate does not
        validate for this system (JKL303–JKL305). Do not share a
        ``memo`` between reduced and unreduced sweeps — the memoised
        relations differ.
    obs:
        Optional :class:`~repro.obs.core.Instrumentation`; defaults to
        the ambient bundle. Disabled instrumentation costs one branch
        per BFS wave — the hot per-state loops are untouched.
    """
    if certificate is not None:
        from repro.lts.certreduce import ReducedSystem

        system = ReducedSystem(system, certificate)
    if obs is None:
        obs = _current_obs()
    recording = obs.enabled
    # reduction counters are cumulative on the (possibly reused)
    # wrapper, so metrics report this sweep's delta
    red0 = (
        (system.canonical_hits, system.ample_prunes, system.slice_hits)
        if hasattr(system, "canonical_hits")
        else None
    )
    if stats is None:
        # every exit path (incl. the limit error, which carries this
        # object on .stats) then reports complete timing
        stats = ExplorationStats()
    t0 = time.perf_counter()
    if packed and codec is None:
        codec = _codec_for(system)
        if codec is None:
            raise ValueError(
                "packed exploration needs a codec (system.codec() or codec=)"
            )
    encode = codec.encode if (packed and codec is not None) else None

    succ = getattr(system, "successors_fast", None) or system.successors
    succ_seconds = [0.0]
    memo_hits = [0]
    if recording:
        # successor generation on its own clock, so waves can split
        # succ time from dedup/bookkeeping time (enabled runs only)
        timed_succ = succ
        acc = succ_seconds

        def succ(state):  # noqa: F811 - instrumented wrapper
            t = time.perf_counter()
            out = timed_succ(state)
            acc[0] += time.perf_counter() - t
            return out

    if memo is not None:
        raw_succ = succ
        memo_get = memo.get
        if recording:
            hits = memo_hits

            def succ(state):  # noqa: F811 - deliberate wrapper
                cached = memo_get(state)
                if cached is None:
                    cached = memo[state] = raw_succ(state)
                else:
                    hits[0] += 1
                return cached
        else:

            def succ(state):  # noqa: F811 - deliberate wrapper
                cached = memo_get(state)
                if cached is None:
                    cached = memo[state] = raw_succ(state)
                return cached

    init = system.initial_state()
    index: dict = {init if encode is None else encode(init): 0}
    n = 1
    state_meta: dict[int, object] = {}
    if keep_states:
        state_meta[0] = init

    src = array("i")
    lbl = array("i")
    dst = array("i")
    src_append = src.append
    lbl_append = lbl.append
    dst_append = dst.append
    labels: list[str] = []
    labels_append = labels.append
    lmap: dict[str, int] = {}
    lmap_get = lmap.get
    index_setdefault = index.setdefault

    frontier: list[tuple[int, Hashable]] = [(0, init)]
    depth = 0
    level_sizes = [1]
    max_frontier = 1

    def _finish_stats():
        stats.states = n
        stats.transitions = len(src)
        stats.max_frontier = max_frontier
        stats.seconds = time.perf_counter() - t0
        stats.depth = depth
        stats.level_sizes = level_sizes

    def _emit_end(outcome: str) -> None:
        backend = "engine-packed" if encode is not None else "engine"
        reduction = (
            {
                "canonical_hits": system.canonical_hits - red0[0],
                "ample_prunes": system.ample_prunes - red0[1],
                "slice_hits": system.slice_hits - red0[2],
            }
            if red0 is not None
            else None
        )
        obs.memwatch.note("visited_index", sys.getsizeof(index))
        obs.memwatch.sample(force=True)
        obs.tracer.emit(
            "sweep_end", backend=backend, outcome=outcome,
            states=stats.states, transitions=stats.transitions,
            seconds=round(stats.seconds, 6),
            states_per_second=round(stats.states_per_second(), 1),
            depth=stats.depth, max_frontier=stats.max_frontier,
            memo_hits=memo_hits[0] if memo is not None else None,
            reduction=reduction,
            max_rss_bytes=obs.memwatch.max_rss_bytes,
            mem_pressure_events=obs.memwatch.pressure_events,
        )
        m = obs.metrics
        m.counter("repro_sweeps_total", backend=backend, outcome=outcome).inc()
        m.counter("repro_sweep_states_total").inc(stats.states)
        m.counter("repro_sweep_transitions_total").inc(stats.transitions)
        m.gauge("repro_sweep_seconds", backend=backend).set(
            round(stats.seconds, 6)
        )
        m.gauge("repro_sweep_states_per_second", backend=backend).set(
            round(stats.states_per_second(), 1)
        )
        if memo is not None:
            m.counter("repro_memo_hits_total").inc(memo_hits[0])
        if red0 is not None:
            m.counter("repro_reduce_canonical_hits_total").inc(
                system.canonical_hits - red0[0]
            )
            m.counter("repro_reduce_ample_prunes_total").inc(
                system.ample_prunes - red0[1]
            )
            m.counter("repro_reduce_slice_hits_total").inc(
                system.slice_hits - red0[2]
            )
        # visited-probe hits: probes that found an already-numbered
        # state (every transition probes once; discoveries miss)
        m.counter("repro_visited_probe_hits_total").inc(len(src) - n)

    def _partial_lts() -> LTS:
        out = LTS.from_columns(
            initial=0, n_states=n, src=src, lbl=lbl, dst=dst, labels=labels
        )
        out.state_meta = state_meta
        return out

    if recording:
        obs.tracer.emit(
            "sweep_start",
            backend="engine-packed" if encode is not None else "engine",
            max_states=max_states, max_depth=max_depth,
            packed=encode is not None, memo=memo is not None,
        )
        obs.tracer.emit("gc_suspend")
    # nearly every allocation of the sweep stays alive in the visited
    # index, so generational GC passes rescan an ever-growing live set
    # for nothing — suspend collection for the duration
    gc_was_enabled = gc.isenabled()
    gc.disable()
    gc_t0 = time.perf_counter()
    # the tight path drops the per-transition limit and codec branches
    tight = max_states is None and encode is None and not keep_states
    try:
        while frontier:
            if max_depth is not None and depth >= max_depth:
                break
            wave_t0 = time.perf_counter()
            wave_succ0 = succ_seconds[0]
            wave_trans0 = len(src)
            next_frontier: list[tuple[int, Hashable]] = []
            nf_append = next_frontier.append
            if tight:
                for sidx, state in frontier:
                    for label, nxt in succ(state):
                        didx = index_setdefault(nxt, n)
                        if didx == n:
                            n += 1
                            nf_append((didx, nxt))
                        lid = lmap_get(label)
                        if lid is None:
                            lid = lmap[label] = len(labels)
                            labels_append(label)
                        src_append(sidx)
                        lbl_append(lid)
                        dst_append(didx)
            else:
                for sidx, state in frontier:
                    for label, nxt in succ(state):
                        didx = index_setdefault(
                            nxt if encode is None else encode(nxt), n
                        )
                        if didx == n:
                            n += 1
                            if keep_states:
                                state_meta[didx] = nxt
                            nf_append((didx, nxt))
                        lid = lmap_get(label)
                        if lid is None:
                            lid = lmap[label] = len(labels)
                            labels_append(label)
                        src_append(sidx)
                        lbl_append(lid)
                        dst_append(didx)
                        if max_states is not None and n > max_states:
                            max_frontier = max(
                                max_frontier, len(next_frontier)
                            )
                            _finish_stats()
                            if recording:
                                _emit_end("limit")
                            raise ExplorationLimitError(
                                f"state limit {max_states} exceeded "
                                f"at depth {depth}",
                                partial=_partial_lts(),
                                stats=stats,
                            )
            depth += 1
            frontier = next_frontier
            if frontier:
                level_sizes.append(len(frontier))
                if len(frontier) > max_frontier:
                    max_frontier = len(frontier)
            if recording:
                wave_s = time.perf_counter() - wave_t0
                succ_s = succ_seconds[0] - wave_succ0
                obs.tracer.emit(
                    "wave", depth=depth, states=n, frontier=len(frontier),
                    transitions=len(src) - wave_trans0,
                    wave_s=round(wave_s, 6), succ_s=round(succ_s, 6),
                    dedup_s=round(max(wave_s - succ_s, 0.0), 6),
                )
                obs.memwatch.note("visited_index", sys.getsizeof(index))
                obs.memwatch.sample()
                elapsed = time.perf_counter() - t0
                obs.progress.maybe(
                    states=n, sps=n / elapsed if elapsed > 0 else 0.0,
                    frontier=len(frontier), depth=depth,
                )
            if on_level is not None:
                on_level(depth, n)
    finally:
        if gc_was_enabled:
            gc.enable()
        if recording:
            obs.tracer.emit(
                "gc_resume",
                suspended_s=round(time.perf_counter() - gc_t0, 6),
            )

    _finish_stats()
    if recording:
        _emit_end("ok")
    return _partial_lts()
