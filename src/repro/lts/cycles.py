"""Cycle and livelock analysis.

Requirement 4 of the paper forbids requests "bounced around the network
forever" — operationally, a reachable *lasso*: a cycle none of whose
labels signals progress. :func:`find_lasso_avoiding` produces such a
lasso as a concrete witness (prefix + cycle), which is how the Error-2
flush storm is exhibited as a trace rather than just a failed formula.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.lts.deadlock import shortest_trace_to
from repro.lts.lts import LTS
from repro.lts.trace import Trace


@dataclass(frozen=True)
class Lasso:
    """A reachable cycle: ``prefix`` leads from the initial state to the
    cycle's entry state; ``cycle`` returns to it."""

    prefix: Trace
    cycle: Trace

    def __len__(self) -> int:
        return len(self.prefix) + len(self.cycle)

    def format(self) -> str:
        """Readable rendering with the cycle marked."""
        out = [self.prefix.format()] if len(self.prefix) else []
        out.append("-- cycle --")
        out.append(self.cycle.format())
        return "\n".join(out)


def _progress_subgraph(lts: LTS, is_progress: Callable[[str], bool]):
    """Adjacency restricted to non-progress transitions."""
    n = lts.n_states
    adj: list[list[tuple[str, int]]] = [[] for _ in range(n)]
    for t in lts.transitions():
        if not is_progress(t.label):
            adj[t.src].append((t.label, t.dst))
    return adj


def find_lasso_avoiding(
    lts: LTS,
    progress_labels: Iterable[str] | Callable[[str], bool],
    *,
    ignore_self_loops_of: Iterable[str] = (),
) -> Lasso | None:
    """Find a reachable cycle using no *progress* transition.

    Parameters
    ----------
    lts:
        The system under analysis.
    progress_labels:
        Either an iterable of labels counting as progress, or a
        predicate over labels.
    ignore_self_loops_of:
        Labels whose self-loops do not count as cycles (observability
        probes).

    Returns
    -------
    The shortest-prefix lasso found, or ``None`` when every infinite run
    makes progress infinitely often (no such cycle exists).
    """
    if callable(progress_labels):
        is_progress = progress_labels
    else:
        progress_set = set(progress_labels)
        is_progress = progress_set.__contains__
    skip_loops = set(ignore_self_loops_of)

    adj = _progress_subgraph(lts, is_progress)
    n = lts.n_states

    # states on a non-progress cycle: non-trivial SCCs of the subgraph,
    # or states with a genuine self-loop (iterative Tarjan)
    index = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    comp = [-1] * n
    comp_size: list[int] = []
    stack: list[int] = []
    counter = 0

    for root in range(n):
        if index[root] != -1:
            continue
        work = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            while pi < len(adj[v]):
                _lab, w = adj[v][pi]
                pi += 1
                if index[w] == -1:
                    work[-1] = (v, pi)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if low[v] == index[v]:
                members = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp[w] = len(comp_size)
                    members.append(w)
                    if w == v:
                        break
                comp_size.append(len(members))
            if work:
                u, _ = work[-1]
                low[u] = min(low[u], low[v])

    def has_real_self_loop(s: int) -> bool:
        return any(
            d == s and lab not in skip_loops for lab, d in adj[s]
        )

    cyclic_states = {
        s
        for s in range(n)
        if comp_size[comp[s]] > 1 or has_real_self_loop(s)
    }
    if not cyclic_states:
        return None

    prefix = shortest_trace_to(lts, cyclic_states)
    if prefix is None:
        return None
    # replay the prefix to find the entry state
    entry = lts.initial
    for label in prefix.labels:
        entry = next(d for lab, d in lts.successors(entry) if lab == label)

    # shortest cycle from entry back to entry inside the subgraph
    if has_real_self_loop(entry):
        lab = next(
            lab for lab, d in adj[entry] if d == entry and lab not in skip_loops
        )
        return Lasso(prefix, Trace((lab,)))
    parent: dict[int, tuple[int, str]] = {}
    queue = deque()
    for lab, d in adj[entry]:
        if comp[d] == comp[entry] and d not in parent:
            parent[d] = (entry, lab)
            queue.append(d)
    while queue:
        s = queue.popleft()
        if s == entry:
            break
        for lab, d in adj[s]:
            if comp[d] != comp[entry]:
                continue
            if d == entry:
                labels = [lab]
                cur = s
                while cur != entry:
                    p, l2 = parent[cur]
                    labels.append(l2)
                    cur = p
                labels.reverse()
                return Lasso(prefix, Trace(tuple(labels)))
            if d not in parent:
                parent[d] = (s, lab)
                queue.append(d)
    raise AssertionError("cyclic state without recoverable cycle")  # pragma: no cover
