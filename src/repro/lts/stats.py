"""Descriptive statistics over LTSs (Table 8 style reporting)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.lts.lts import LTS, TAU


@dataclass(frozen=True)
class LTSSummary:
    """The numbers reported per configuration in the paper's Table 8,
    plus a few structural extras."""

    states: int
    transitions: int
    labels: int
    tau_transitions: int
    terminal_states: int
    avg_out_degree: float
    max_out_degree: int

    def as_row(self) -> dict[str, object]:
        """Flat dict for tabular printing."""
        return {
            "states": self.states,
            "transitions": self.transitions,
            "labels": self.labels,
            "tau": self.tau_transitions,
            "terminal": self.terminal_states,
            "avg_deg": round(self.avg_out_degree, 3),
            "max_deg": self.max_out_degree,
        }


def lts_summary(lts: LTS) -> LTSSummary:
    """Compute an :class:`LTSSummary` for ``lts``."""
    n = lts.n_states
    out_deg = [0] * n
    src, lbl, _dst = lts.transition_arrays()
    for s in src:
        out_deg[s] += 1
    tau_count = lts.label_counts().get(TAU, 0)
    terminal = sum(1 for d in out_deg if d == 0)
    m = lts.n_transitions
    return LTSSummary(
        states=n,
        transitions=m,
        labels=len(lts.labels),
        tau_transitions=tau_count,
        terminal_states=terminal,
        avg_out_degree=(m / n) if n else 0.0,
        max_out_degree=max(out_deg, default=0),
    )


def degree_histogram(lts: LTS) -> dict[int, int]:
    """Map out-degree -> number of states with that degree."""
    n = lts.n_states
    out_deg = [0] * n
    src, _lbl, _dst = lts.transition_arrays()
    for s in src:
        out_deg[s] += 1
    hist: dict[int, int] = {}
    for d in out_deg:
        hist[d] = hist.get(d, 0) + 1
    return dict(sorted(hist.items()))
