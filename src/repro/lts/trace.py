"""Execution traces and trace replay.

A :class:`Trace` is a finite sequence of action labels, optionally
annotated with the states it passes through. The paper reports that its
shortest error traces exceeded 100 transitions and typical deadlock
traces exceeded 300; the trace machinery here is what lets us measure
those lengths in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.errors import TraceError


@dataclass(frozen=True)
class Trace:
    """A finite run: labels, and optionally the visited states.

    When states are present, ``len(states) == len(labels) + 1`` and
    ``states[i] --labels[i]--> states[i+1]``.
    """

    labels: tuple[str, ...]
    states: tuple[Hashable, ...] = field(default=())

    def __post_init__(self):
        if self.states and len(self.states) != len(self.labels) + 1:
            raise TraceError(
                f"trace with {len(self.labels)} labels must carry "
                f"{len(self.labels) + 1} states, got {len(self.states)}"
            )

    def __len__(self) -> int:
        return len(self.labels)

    def __iter__(self):
        return iter(self.labels)

    @property
    def final_state(self) -> Hashable:
        """Last visited state (requires state annotations)."""
        if not self.states:
            raise TraceError("trace carries no state annotations")
        return self.states[-1]

    def count(self, label: str) -> int:
        """Occurrences of ``label`` in the trace."""
        return sum(1 for lab in self.labels if lab == label)

    def filtered(self, keep) -> "Trace":
        """Labels satisfying predicate ``keep`` (states are dropped)."""
        return Trace(tuple(lab for lab in self.labels if keep(lab)))

    def prefix(self, n: int) -> "Trace":
        """The first ``n`` steps."""
        states = self.states[: n + 1] if self.states else ()
        return Trace(self.labels[:n], states)

    def format(self, *, numbered: bool = True) -> str:
        """Human-readable one-action-per-line rendering."""
        if numbered:
            width = len(str(len(self.labels)))
            return "\n".join(
                f"{i + 1:>{width}}. {lab}" for i, lab in enumerate(self.labels)
            )
        return "\n".join(self.labels)


def replay(system, labels: Sequence[str]) -> Trace:
    """Replay ``labels`` on a transition system from its initial state.

    At each step the unique successor carrying the expected label is
    followed. Raises :class:`~repro.errors.TraceError` if a label is not
    enabled or is ambiguous (several successors carry it) — ambiguity
    would make the replayed end state ill-defined.

    Returns the fully state-annotated :class:`Trace`.
    """
    state = system.initial_state()
    states = [state]
    for i, label in enumerate(labels):
        matches = [nxt for lab, nxt in system.successors(state) if lab == label]
        if not matches:
            enabled = sorted({lab for lab, _ in system.successors(state)})
            raise TraceError(
                f"step {i + 1}: label {label!r} not enabled; enabled: {enabled}"
            )
        if len(set(matches)) > 1:
            raise TraceError(f"step {i + 1}: label {label!r} is ambiguous")
        state = matches[0]
        states.append(state)
    return Trace(tuple(labels), tuple(states))
