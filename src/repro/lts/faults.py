"""Fault injection for distributed sweeps.

The paper generated its larger LTSs on an eight-node cluster — an
environment where worker loss is routine. The fault tolerance of the
partitioned backend (:mod:`repro.lts.distributed`) is therefore a
first-class, *testable* property: this module provides the injection
harness that makes worker crashes reproducible on demand.

A :class:`FaultPlan` names, per worker, one of three misbehaviours:

``kill:W@N``
    Worker ``W`` hard-exits (``os._exit``) on the next message it
    receives after having answered ``N`` work batches — the in-flight
    batches in its inbox are lost, exactly like a machine crash.
``raise:W@N``
    Worker ``W`` raises :class:`FaultInjection` from inside the
    successor function while expanding its ``N``-th batch (0-based);
    the exception escapes the worker loop and the process dies with a
    nonzero exit code, like any model bug would make it.
``delay:W@SECONDS``
    Worker ``W`` sleeps before expanding every batch — no crash, but
    the coordinator's timed poll keeps expiring, which exercises the
    liveness-check path without any worker actually being dead.

Plans are wired through ``distributed_explore(faults=...)`` and the
``repro bench --inject-fault`` flag; recovery is observable through
``DistributedStats.worker_deaths`` / ``redispatched_batches`` /
``recovered``. Injection is transport-independent: the same plans
fire inside the queue-transport workers and the shared-memory ring
workers (where ``kill``/``raise`` count expansion *quanta* instead of
fixed-size batches), and recovery must reproduce exact serial totals
over both data planes (``tests/lts/test_faults.py``,
``tests/lts/test_shm_transport.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.errors import ReproError


def _count(text: str) -> int:
    """A non-negative batch count (negatives are parse errors)."""
    n = int(text)
    if n < 0:
        raise ValueError(text)
    return n


def _seconds(text: str) -> float:
    """A non-negative, finite delay — ``time.sleep`` rejects negatives
    inside the worker, which would turn a typo into a fake crash."""
    d = float(text)
    if not (0.0 <= d < float("inf")):  # also rejects NaN
        raise ValueError(text)
    return d


class FaultInjection(RuntimeError):
    """A deliberately injected worker failure.

    Deliberately *not* a :class:`~repro.errors.ReproError`: it stands
    in for an arbitrary crash inside a worker process, so nothing in
    the library is allowed to catch it and carry on.
    """


@dataclass(frozen=True)
class WorkerFault:
    """The faults of one worker (see :class:`FaultPlan` for semantics)."""

    kill_after: int | None = None
    raise_at: int | None = None
    delay: float = 0.0

    def raising_successors(self, wid: int) -> Callable:
        """A successor function that fails immediately (``raise`` mode)."""

        def _raise(_state: Hashable):
            raise FaultInjection(
                f"injected successor fault in worker {wid}"
            )

        return _raise


@dataclass
class FaultPlan:
    """Per-worker fault assignments for one distributed sweep.

    Attributes
    ----------
    kill:
        worker id -> die on the next message after this many answered
        batches.
    raise_in:
        worker id -> raise inside ``successors`` while expanding this
        batch (0-based count of answered batches).
    delay:
        worker id -> seconds slept before expanding every batch.
    """

    kill: dict[int, int] = field(default_factory=dict)
    raise_in: dict[int, int] = field(default_factory=dict)
    delay: dict[int, float] = field(default_factory=dict)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a comma-separated CLI spec, e.g. ``"kill:0@2,delay:1@0.05"``.

        Each clause is ``kind:worker@arg`` with ``kind`` one of
        ``kill``, ``raise``, ``delay``. Raises
        :class:`~repro.errors.ReproError` on malformed input so the
        CLI reports it as a parameter error (exit code 2).
        """
        plan = cls()
        for clause in filter(None, (c.strip() for c in spec.split(","))):
            try:
                kind, _, rest = clause.partition(":")
                wid_text, _, arg = rest.partition("@")
                wid = int(wid_text)
                if wid < 0:
                    raise ValueError(wid)
                if kind == "kill":
                    plan.kill[wid] = _count(arg)
                elif kind == "raise":
                    plan.raise_in[wid] = _count(arg)
                elif kind == "delay":
                    plan.delay[wid] = _seconds(arg)
                else:
                    raise ValueError(kind)
            except ValueError as exc:
                raise ReproError(
                    f"bad fault spec {clause!r}: expected kill:W@N, "
                    f"raise:W@N or delay:W@SECONDS"
                ) from exc
        return plan

    def for_worker(self, wid: int) -> WorkerFault | None:
        """The merged fault of worker ``wid`` (``None`` when unaffected)."""
        if (
            wid not in self.kill
            and wid not in self.raise_in
            and wid not in self.delay
        ):
            return None
        return WorkerFault(
            kill_after=self.kill.get(wid),
            raise_at=self.raise_in.get(wid),
            delay=self.delay.get(wid, 0.0),
        )


def crash_process(outbox) -> None:
    """Hard-exit the current worker process (``kill`` mode).

    Messages already handed to ``outbox`` are flushed first: a real
    crash loses whole messages, not message fragments, and a torn
    frame would desynchronise the coordinator's queue rather than
    simulate a worker death.
    """
    try:
        outbox.close()
        outbox.join_thread()
    except (OSError, ValueError, AttributeError):  # pragma: no cover
        pass
    os._exit(1)
